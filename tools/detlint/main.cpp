// detlint CLI. Usage: detlint <path>... — each path a file or directory.
// Exit 0: clean. Exit 1: findings printed, one per line. Exit 2: usage or
// I/O error.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "detlint/detlint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: detlint <file-or-dir>...\n"
                 "  lints *.h/*.hpp/*.cc/*.cpp for determinism hazards;\n"
                 "  exit 0 = clean, 1 = findings, 2 = error\n");
    return 2;
  }
  std::vector<std::string> paths(argv + 1, argv + argc);
  try {
    const std::vector<bdg::detlint::Finding> findings =
        bdg::detlint::lint_paths(paths);
    for (const bdg::detlint::Finding& f : findings)
      std::fprintf(stdout, "%s\n", bdg::detlint::format(f).c_str());
    if (!findings.empty()) {
      std::fprintf(stderr, "detlint: %zu finding(s)\n", findings.size());
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
