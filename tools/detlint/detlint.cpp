// Token-level implementation. The pipeline per file:
//   1. collect detlint pragmas from the raw text (they live in comments);
//   2. blank comments, string literals and char literals (preserving
//      offsets and newlines) so every later scan sees only code;
//   3. track declarations of interesting container variables;
//   4. run the four rule scans over the blanked text;
//   5. drop findings covered by a pragma, append pragma-hygiene findings.
#include "detlint/detlint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bdg::detlint {
namespace {

// ---------------------------------------------------------------------------
// Small text utilities
// ---------------------------------------------------------------------------

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Offsets of every '\n', for offset -> 1-based line lookups.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text) {
    for (std::size_t i = 0; i < text.size(); ++i)
      if (text[i] == '\n') newlines_.push_back(i);
  }
  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    return static_cast<std::size_t>(
               std::lower_bound(newlines_.begin(), newlines_.end(), offset) -
               newlines_.begin()) +
           1;
  }

 private:
  std::vector<std::size_t> newlines_;
};

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

struct Pragma {
  Rule rule = Rule::kPragma;
  std::size_t line = 0;  ///< 1-based line the pragma comment sits on
  bool file_scope = false;
  bool valid = false;       ///< rule name parsed
  bool has_reason = false;  ///< non-empty reason text after the ')'
  std::string bad_rule;     ///< unknown rule spelling, for the finding
};

/// Scan each raw line for allow / allow-file pragmas. detlint's own
/// sources never spell the pragma marker as one literal (here it is
/// assembled from two pieces), so the pass can lint itself without
/// tripping on this string.
void collect_pragmas(std::string_view text, std::vector<Pragma>& out) {
  static const std::string kMarker = std::string("detlint") + ": allow";
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view ln =
        text.substr(pos, (eol == std::string_view::npos ? text.size() : eol) -
                             pos);
    const std::size_t at = ln.find(kMarker);
    if (at != std::string_view::npos) {
      Pragma p;
      p.line = line;
      std::string_view rest = ln.substr(at + kMarker.size());
      if (rest.rfind("-file", 0) == 0) {
        p.file_scope = true;
        rest.remove_prefix(5);
      }
      if (!rest.empty() && rest.front() == '(') {
        const std::size_t close = rest.find(')');
        if (close != std::string_view::npos) {
          const std::string_view name = trim(rest.substr(1, close - 1));
          p.valid = rule_from_name(name, p.rule);
          if (!p.valid) p.bad_rule = std::string(name);
          p.has_reason = !trim(rest.substr(close + 1)).empty();
        }
      }
      out.push_back(std::move(p));
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
}

// ---------------------------------------------------------------------------
// Comment / literal blanking
// ---------------------------------------------------------------------------

/// Replace comments, string literals (incl. raw strings) and char literals
/// with spaces, preserving every offset and newline.
[[nodiscard]] std::string blank_noncode(std::string_view text) {
  std::string out(text);
  std::size_t i = 0;
  const auto blank = [&](std::size_t from, std::size_t to) {
    for (std::size_t j = from; j < to && j < out.size(); ++j)
      if (out[j] != '\n') out[j] = ' ';
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = text.size();
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      end = end == std::string_view::npos ? text.size() : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < text.size() && text[i + 1] == '"' &&
               (i == 0 || !ident_char(text[i - 1]))) {
      // Raw string R"delim( ... )delim"
      const std::size_t open = text.find('(', i + 2);
      if (open == std::string_view::npos) {
        ++i;
        continue;
      }
      const std::string delim(text.substr(i + 2, open - (i + 2)));
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, open + 1);
      end = end == std::string_view::npos ? text.size() : end + closer.size();
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      // 'c' may also be a digit separator (1'000) — only treat a quote as
      // a char literal when not sandwiched between digits.
      if (c == '\'' && i > 0 &&
          std::isdigit(static_cast<unsigned char>(text[i - 1])) != 0 &&
          i + 1 < text.size() &&
          (std::isdigit(static_cast<unsigned char>(text[i + 1])) != 0)) {
        out[i] = ' ';
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != c) {
        if (text[j] == '\\') ++j;
        if (text[j] == '\n') break;  // unterminated: stop at the line end
        ++j;
      }
      blank(i, std::min(j + 1, text.size()));
      i = j + 1;
    } else {
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Paren spans (for call-argument-list analysis)
// ---------------------------------------------------------------------------

enum class SpanKind { kCall, kControl, kGroup };

struct ParenSpan {
  std::size_t open = 0;    ///< offset of '('
  std::size_t close = 0;   ///< offset of ')'
  std::size_t callee = 0;  ///< start of the callee identifier (kCall only)
  SpanKind kind = SpanKind::kGroup;
};

[[nodiscard]] bool is_control_keyword(std::string_view id) {
  static constexpr std::array<std::string_view, 12> kKw = {
      "for",    "if",     "while",     "switch",  "catch",  "return",
      "sizeof", "alignof", "co_await", "co_return", "co_yield", "throw"};
  return std::find(kKw.begin(), kKw.end(), id) != kKw.end();
}

[[nodiscard]] std::vector<ParenSpan> paren_spans(std::string_view code) {
  std::vector<ParenSpan> spans;
  std::vector<std::size_t> stack;  // indices into spans
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '(') {
      ParenSpan s;
      s.open = i;
      // Look back over whitespace for what precedes the '('.
      std::size_t j = i;
      while (j > 0 &&
             std::isspace(static_cast<unsigned char>(code[j - 1])) != 0)
        --j;
      if (j > 0 && (ident_char(code[j - 1]) || code[j - 1] == '>')) {
        std::size_t b = j;
        while (b > 0 && ident_char(code[b - 1])) --b;
        const std::string_view id = code.substr(b, j - b);
        if (!id.empty() && !is_control_keyword(id)) {
          s.kind = SpanKind::kCall;
          s.callee = b;
        } else {
          s.kind = id.empty() ? SpanKind::kGroup : SpanKind::kControl;
        }
      }
      stack.push_back(spans.size());
      spans.push_back(s);
    } else if (code[i] == ')' && !stack.empty()) {
      spans[stack.back()].close = i;
      stack.pop_back();
    }
  }
  // Unclosed spans (shouldn't happen in compiling code): close at EOF.
  for (const std::size_t idx : stack) spans[idx].close = code.size();
  return spans;
}

/// Innermost call-kind span containing `pos`, or npos.
[[nodiscard]] std::size_t innermost_call(const std::vector<ParenSpan>& spans,
                                         std::size_t pos) {
  std::size_t best = std::string_view::npos;
  std::size_t best_width = std::string_view::npos;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const ParenSpan& s = spans[i];
    if (s.kind != SpanKind::kCall) continue;
    if (pos <= s.open || pos >= s.close) continue;
    const std::size_t width = s.close - s.open;
    if (width < best_width) {
      best_width = width;
      best = i;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Declaration tracking
// ---------------------------------------------------------------------------

enum class VarKind { kUnordered, kPtrVector };

struct TrackedVar {
  std::string name;
  VarKind kind = VarKind::kUnordered;
};

/// Parse balanced template arguments starting at the '<' at `pos`;
/// returns one-past the closing '>' (npos if unbalanced) and fills
/// `first_arg` with the depth-0 text before the first ',' (or the whole
/// argument list when there is no comma).
[[nodiscard]] std::size_t parse_template_args(std::string_view code,
                                              std::size_t pos,
                                              std::string& first_arg) {
  int depth = 0;
  std::size_t first_end = std::string_view::npos;
  for (std::size_t i = pos; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      // `->` is not a template closer.
      if (i > 0 && code[i - 1] == '-') continue;
      --depth;
      if (depth == 0) {
        if (first_end == std::string_view::npos) first_end = i;
        first_arg = std::string(
            trim(code.substr(pos + 1, first_end - pos - 1)));
        return i + 1;
      }
    } else if (c == ',' && depth == 1) {
      if (first_end == std::string_view::npos) first_end = i;
    } else if (c == ';') {
      return std::string_view::npos;  // statement ended mid-template: bail
    }
  }
  return std::string_view::npos;
}

struct ContainerMention {
  std::size_t name_pos = 0;  ///< offset of the container identifier
  std::size_t args_end = 0;  ///< one past the closing '>'
  std::string first_arg;
  bool unordered = false;  ///< hash container (vs ordered map/set/vector)
  bool ordered = false;    ///< std::map/set/multimap/multiset
  bool vector = false;
};

/// All mentions of interesting container templates, with their first
/// template argument parsed.
[[nodiscard]] std::vector<ContainerMention> container_mentions(
    std::string_view code) {
  struct Pat {
    std::string_view name;
    bool unordered, ordered, vector;
  };
  static constexpr std::array<Pat, 9> kPats = {{
      {"unordered_map", true, false, false},
      {"unordered_set", true, false, false},
      {"FlatMap", true, false, false},
      {"FlatSet", true, false, false},
      {"map", false, true, false},
      {"multimap", false, true, false},
      {"set", false, true, false},
      {"multiset", false, true, false},
      {"vector", false, false, true},
  }};
  std::vector<ContainerMention> out;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string_view id = code.substr(i, j - i);
    for (const Pat& p : kPats) {
      if (id != p.name) continue;
      // The ordered containers are only recognized std::-qualified
      // (bare `map`/`set` identifiers are common as locals); the hash
      // containers and vector are recognized bare too.
      if (p.ordered) {
        if (i < 5 || code.substr(i - 5, 5) != "std::") break;
      }
      std::size_t k = j;
      while (k < code.size() &&
             std::isspace(static_cast<unsigned char>(code[k])) != 0)
        ++k;
      if (k >= code.size() || code[k] != '<') break;
      ContainerMention m;
      m.name_pos = i;
      m.unordered = p.unordered;
      m.ordered = p.ordered;
      m.vector = p.vector;
      m.args_end = parse_template_args(code, k, m.first_arg);
      if (m.args_end != std::string_view::npos) out.push_back(std::move(m));
      break;
    }
    i = j;
  }
  return out;
}

/// Variable names declared with tracked container types. Heuristic: after
/// the closing '>' (and any `&`, `*`, `const`, whitespace) an identifier
/// that is not immediately a function declaration is the declarator.
[[nodiscard]] std::vector<TrackedVar> tracked_vars(
    std::string_view code, const std::vector<ContainerMention>& mentions) {
  std::vector<TrackedVar> vars;
  for (const ContainerMention& m : mentions) {
    const bool ptr_vec = m.vector && !m.first_arg.empty() &&
                         m.first_arg.back() == '*';
    if (!m.unordered && !ptr_vec) continue;
    std::size_t i = m.args_end;
    while (i < code.size()) {
      if (std::isspace(static_cast<unsigned char>(code[i])) != 0 ||
          code[i] == '&' || code[i] == '*') {
        ++i;
        continue;
      }
      if (code.compare(i, 5, "const") == 0 && !ident_char(code[i + 5])) {
        i += 5;
        continue;
      }
      break;
    }
    if (i >= code.size() || !ident_char(code[i]) ||
        std::isdigit(static_cast<unsigned char>(code[i])) != 0)
      continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string name(code.substr(i, j - i));
    std::size_t k = j;
    while (k < code.size() &&
           std::isspace(static_cast<unsigned char>(code[k])) != 0)
      ++k;
    if (k < code.size() && code[k] == '(') {
      // `T name(...)` is a function declaration unless the parens clearly
      // hold constructor arguments (digits, member access, literals).
      std::size_t close = k;
      int depth = 0;
      for (; close < code.size(); ++close) {
        if (code[close] == '(') ++depth;
        if (code[close] == ')' && --depth == 0) break;
      }
      const std::string_view inside = code.substr(k + 1, close - k - 1);
      const bool ctorish =
          inside.find_first_of("0123456789.\"[") != std::string_view::npos ||
          inside.find("->") != std::string_view::npos;
      if (!ctorish) continue;
    }
    if (k < code.size() && code[k] == ':' && k + 1 < code.size() &&
        code[k + 1] == ':')
      continue;  // `Type<...>::member` — a qualified name, not a declarator
    vars.push_back({name, ptr_vec ? VarKind::kPtrVector : VarKind::kUnordered});
  }
  return vars;
}

[[nodiscard]] bool is_tracked(const std::vector<TrackedVar>& vars,
                              std::string_view name, VarKind kind) {
  for (const TrackedVar& v : vars)
    if (v.kind == kind && v.name == name) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Rule 1: unordered-iter
// ---------------------------------------------------------------------------

void scan_unordered_iter(std::string_view code, const LineIndex& lines,
                         const std::vector<TrackedVar>& vars,
                         std::vector<Finding>& out) {
  // Range-for over a tracked hash container.
  for (std::size_t i = 0; i + 3 < code.size(); ++i) {
    if (code.compare(i, 3, "for") != 0) continue;
    if (i > 0 && ident_char(code[i - 1])) continue;
    if (ident_char(code[i + 3])) continue;
    std::size_t open = i + 3;
    while (open < code.size() &&
           std::isspace(static_cast<unsigned char>(code[open])) != 0)
      ++open;
    if (open >= code.size() || code[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string_view::npos;
    std::size_t close = open;
    for (std::size_t j = open; j < code.size(); ++j) {
      const char c = code[j];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (--depth == 0 && c == ')') {
          close = j;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string_view::npos) {
        if (j + 1 < code.size() && code[j + 1] == ':') continue;
        if (j > 0 && code[j - 1] == ':') continue;
        colon = j;
      }
    }
    if (colon == std::string_view::npos || close <= colon) continue;
    std::string_view range = trim(code.substr(colon + 1, close - colon - 1));
    if (range.rfind("this->", 0) == 0) range.remove_prefix(6);
    while (!range.empty() && (range.front() == '*' || range.front() == '('))
      range.remove_prefix(1);
    while (!range.empty() && range.back() == ')') range.remove_suffix(1);
    range = trim(range);
    if (!range.empty() &&
        std::all_of(range.begin(), range.end(), ident_char) &&
        is_tracked(vars, range, VarKind::kUnordered)) {
      out.push_back({"", lines.line_of(i), Rule::kUnorderedIter,
                     "range-for over hash container '" + std::string(range) +
                         "': iteration order is not canonical — snapshot "
                         "via util::sorted_items()/ordered_keys() or carry "
                         "an audited allow pragma"});
    }
  }

  // NAME.begin()/cbegin()/rbegin() on a tracked container, and
  // .for_each(...) on anything (the method name is unique to
  // util::FlatMap/FlatSet here; std::for_each is '::'-qualified).
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string_view id = code.substr(i, j - i);
    std::size_t k = j;
    const bool dot = k < code.size() && code[k] == '.';
    const bool arrow =
        k + 1 < code.size() && code[k] == '-' && code[k + 1] == '>';
    if (dot || arrow) {
      std::size_t m = k + (dot ? 1 : 2);
      std::size_t e = m;
      while (e < code.size() && ident_char(code[e])) ++e;
      const std::string_view method = code.substr(m, e - m);
      std::size_t p = e;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p])) != 0)
        ++p;
      if (p >= code.size() || code[p] != '(') {
        i = j;
        continue;
      }
      if ((method == "begin" || method == "cbegin" || method == "rbegin") &&
          is_tracked(vars, id, VarKind::kUnordered)) {
        out.push_back({"", lines.line_of(i), Rule::kUnorderedIter,
                       "iterator walk of hash container '" + std::string(id) +
                           "': order is not canonical — snapshot via "
                           "util::sorted_items()/ordered_keys() or carry an "
                           "audited allow pragma"});
      }
    }
    i = j;
  }
  for (std::size_t i = 0; i + 9 < code.size(); ++i) {
    if (code.compare(i, 9, "for_each(") != 0 &&
        code.compare(i, 9, "for_each ") != 0)
      continue;
    if (i < 1 || (code[i - 1] != '.' &&
                  !(i >= 2 && code[i - 1] == '>' && code[i - 2] == '-')))
      continue;
    out.push_back({"", lines.line_of(i), Rule::kUnorderedIter,
                   ".for_each() walks slot order (a pure function of "
                   "insertion history, never canonical) — snapshot via "
                   "util::sorted_items()/ordered_keys() or carry an audited "
                   "allow pragma"});
  }
}

// ---------------------------------------------------------------------------
// Rule 2: unsequenced-rng
// ---------------------------------------------------------------------------

[[nodiscard]] bool rngish(std::string_view id) {
  std::string low(id);
  std::transform(low.begin(), low.end(), low.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return low.find("rng") != std::string::npos;
}

[[nodiscard]] bool is_draw_method(std::string_view m) {
  static constexpr std::array<std::string_view, 7> kDraw = {
      "next", "below", "range", "chance", "uniform", "fork", "shuffle"};
  return std::find(kDraw.begin(), kDraw.end(), m) != kDraw.end();
}

void scan_unsequenced_rng(std::string_view code, const LineIndex& lines,
                          std::vector<Finding>& out) {
  const std::vector<ParenSpan> spans = paren_spans(code);

  // Draw roots: offset of the expression that consumes generator state.
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string_view id = code.substr(i, j - i);
    if (!rngish(id)) {
      i = j;
      continue;
    }
    const bool dot = j < code.size() && code[j] == '.';
    const bool arrow =
        j + 1 < code.size() && code[j] == '-' && code[j + 1] == '>';
    if (dot || arrow) {
      std::size_t m = j + (dot ? 1 : 2);
      std::size_t e = m;
      while (e < code.size() && ident_char(code[e])) ++e;
      if (is_draw_method(code.substr(m, e - m)) && e < code.size() &&
          code[e] == '(')
        roots.push_back(i);  // rng.below(...) — root at the receiver
      i = j;
      continue;
    }
    // Bare rng-named object passed as an argument: the enclosing call is
    // the draw. Only count argument positions (preceded by ',' or '('),
    // and skip callee/type positions (followed by '(', '::', or another
    // identifier — `Rng rng` declarations).
    if (j < code.size() && (code[j] == '(' || code[j] == ':')) {
      i = j;
      continue;
    }
    std::size_t b = i;
    while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1])) != 0)
      --b;
    if (b == 0 || (code[b - 1] != ',' && code[b - 1] != '(')) {
      i = j;
      continue;
    }
    std::size_t k = j;
    while (k < code.size() &&
           std::isspace(static_cast<unsigned char>(code[k])) != 0)
      ++k;
    if (k < code.size() && ident_char(code[k])) {
      i = j;
      continue;  // `Rng rng` — a declaration, not an argument
    }
    const std::size_t call = innermost_call(spans, i);
    if (call != std::string_view::npos) roots.push_back(spans[call].callee);
    i = j;
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());

  // (a) two or more draws whose innermost enclosing call is the same
  // argument list: argument evaluation order is unspecified.
  std::vector<std::size_t> per_span_count(spans.size(), 0);
  std::vector<std::size_t> per_span_first(spans.size(), 0);
  for (const std::size_t r : roots) {
    const std::size_t call = innermost_call(spans, r);
    if (call == std::string_view::npos) continue;
    if (per_span_count[call]++ == 0) per_span_first[call] = r;
  }
  for (std::size_t s = 0; s < spans.size(); ++s) {
    if (per_span_count[s] < 2) continue;
    out.push_back({"", lines.line_of(spans[s].open), Rule::kUnsequencedRng,
                   std::to_string(per_span_count[s]) +
                       " RNG draws in one call argument list: evaluation "
                       "order is unspecified — hoist the draws into named "
                       "locals"});
  }

  // (b) a draw inside a conditional-expression operand (after the '?').
  // Statements are spans between ';' (at paren depth 0), '{' and '}'.
  std::size_t stmt_start = 0;
  int pdepth = 0;
  const auto flag_ternary_draws = [&](std::size_t from, std::size_t to) {
    std::size_t q = std::string_view::npos;
    int d = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (code[i] == '(') ++d;
      if (code[i] == ')') --d;
      if (code[i] == '?') {
        q = i;
        break;
      }
    }
    if (q == std::string_view::npos) return;
    for (const std::size_t r : roots) {
      if (r > q && r < to) {
        out.push_back(
            {"", lines.line_of(r), Rule::kUnsequencedRng,
             "RNG draw inside a conditional-expression operand — the PR 6 "
             "GCC-12 class (both arms evaluated in build-dependent order "
             "inside a co_await argument): hoist the draw above the "
             "conditional"});
      }
    }
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(') ++pdepth;
    if (c == ')') --pdepth;
    if ((c == ';' && pdepth == 0) || c == '{' || c == '}') {
      flag_ternary_draws(stmt_start, i);
      stmt_start = i + 1;
    }
  }
  flag_ternary_draws(stmt_start, code.size());
}

// ---------------------------------------------------------------------------
// Rule 3: nondet-call
// ---------------------------------------------------------------------------

[[nodiscard]] bool in_deterministic_core(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  for (const std::string_view dir :
       {"src/core/", "src/sim/", "src/explore/", "src/gather/"})
    if (p.find(dir) != std::string::npos) return true;
  return false;
}

void scan_nondet_call(std::string_view code, const LineIndex& lines,
                      std::string_view path, std::vector<Finding>& out) {
  if (!in_deterministic_core(path)) return;
  // Identifiers that are nondeterministic wherever they appear.
  static constexpr std::array<std::string_view, 13> kAlways = {
      "random_device",  "system_clock", "steady_clock",
      "high_resolution_clock", "getenv", "secure_getenv",
      "gettimeofday",   "localtime",    "gmtime",
      "strftime",       "setlocale",    "localeconv",
      "mktime"};
  // Identifiers flagged only as free-function calls (`name(`) — common
  // words otherwise (a member `time()` would be deliberate API).
  static constexpr std::array<std::string_view, 6> kCallOnly = {
      "time", "clock", "rand", "srand", "rand_r", "drand48"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string_view id = code.substr(i, j - i);
    bool hit = std::find(kAlways.begin(), kAlways.end(), id) != kAlways.end();
    if (!hit &&
        std::find(kCallOnly.begin(), kCallOnly.end(), id) != kCallOnly.end()) {
      // Must look like a free-function call: '(' follows, and no member
      // access or qualification other than std:: precedes.
      std::size_t k = j;
      while (k < code.size() &&
             std::isspace(static_cast<unsigned char>(code[k])) != 0)
        ++k;
      const bool member =
          i >= 1 && (code[i - 1] == '.' ||
                     (i >= 2 && code[i - 1] == '>' && code[i - 2] == '-'));
      const bool qualified = i >= 2 && code[i - 1] == ':' && code[i - 2] == ':';
      const bool std_qualified = qualified && i >= 5 &&
                                 code.compare(i - 5, 5, "std::") == 0;
      hit = k < code.size() && code[k] == '(' && !member &&
            (!qualified || std_qualified);
    }
    if (hit) {
      out.push_back({"", lines.line_of(i), Rule::kNondetCall,
                     "'" + std::string(id) +
                         "' in a deterministic-core directory: all "
                         "randomness flows through bdg::Rng, all timing "
                         "stays in run/bench layers"});
    }
    i = j;
  }
}

// ---------------------------------------------------------------------------
// Rule 4: pointer-key
// ---------------------------------------------------------------------------

void scan_pointer_key(std::string_view code, const LineIndex& lines,
                      const std::vector<ContainerMention>& mentions,
                      const std::vector<TrackedVar>& vars,
                      std::vector<Finding>& out) {
  for (const ContainerMention& m : mentions) {
    if (m.vector) continue;
    if (m.first_arg.empty() || m.first_arg.back() != '*') continue;
    out.push_back({"", lines.line_of(m.name_pos), Rule::kPointerKey,
                   "pointer-valued key '" + m.first_arg +
                       "' in an associative container: iteration/hash order "
                       "becomes address order, which differs run to run"});
  }

  // Sorts whose comparator orders by raw pointer value, and two-iterator
  // sorts over a tracked vector-of-pointers.
  static constexpr std::array<std::string_view, 4> kSorts = {
      "sort", "stable_sort", "partial_sort", "nth_element"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!ident_char(code[i]) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string_view id = code.substr(i, j - i);
    if (std::find(kSorts.begin(), kSorts.end(), id) == kSorts.end()) {
      i = j;
      continue;
    }
    if (j >= code.size() || code[j] != '(') {
      i = j;
      continue;
    }
    // Split top-level arguments.
    std::vector<std::string_view> args;
    int depth = 0;
    std::size_t arg_start = j + 1;
    std::size_t close = j;
    // Angle brackets are NOT tracked: a comparator body's `a < b` is a
    // comparison, not a bracket, and would unbalance the count. Commas
    // inside lambdas sit behind [ ( { depth already; a template-id comma
    // in an argument mis-splits, which the shape checks below tolerate.
    for (std::size_t k = j; k < code.size(); ++k) {
      const char c = code[k];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          args.push_back(trim(code.substr(arg_start, k - arg_start)));
          close = k;
          break;
        }
      }
      if (c == ',' && depth == 1)
        args.push_back(trim(code.substr(arg_start, k - arg_start))),
            arg_start = k + 1;
    }
    if (close == j) {
      i = j;
      continue;
    }
    if (args.size() == 2 && args[0].size() > 8 &&
        args[0].substr(args[0].size() - 8) == ".begin()") {
      const std::string_view recv = args[0].substr(0, args[0].size() - 8);
      if (std::all_of(recv.begin(), recv.end(), ident_char) &&
          is_tracked(vars, recv, VarKind::kPtrVector)) {
        out.push_back({"", lines.line_of(i), Rule::kPointerKey,
                       "sorting a vector of pointers '" + std::string(recv) +
                           "' by address: the order differs run to run — "
                           "sort by a stable field instead"});
      }
    }
    if (!args.empty() && !args.back().empty() && args.back().front() == '[') {
      // Comparator lambda: params with a '*' compared directly by < or >.
      const std::string_view lam = args.back();
      const std::size_t po = lam.find('(');
      const std::size_t pc = po == std::string_view::npos
                                 ? std::string_view::npos
                                 : lam.find(')', po);
      if (po != std::string_view::npos && pc != std::string_view::npos &&
          lam.substr(po, pc - po).find('*') != std::string_view::npos) {
        // Parameter names: last identifier of each comma-separated param.
        std::vector<std::string> params;
        std::size_t s = po + 1;
        for (std::size_t k = po + 1; k <= pc; ++k) {
          if (k == pc || lam[k] == ',') {
            std::string_view param = trim(lam.substr(s, k - s));
            std::size_t e = param.size();
            while (e > 0 && ident_char(param[e - 1])) --e;
            if (e < param.size()) params.emplace_back(param.substr(e));
            s = k + 1;
          }
        }
        const std::size_t body = lam.find('{', pc);
        if (params.size() == 2 && body != std::string_view::npos) {
          const std::string_view b = lam.substr(body);
          for (const auto& [l, r] : {std::pair{params[0], params[1]},
                                     std::pair{params[1], params[0]}}) {
            for (const char op : {'<', '>'}) {
              const std::string needle = l + " " + op + " " + r;
              std::string squashed;
              for (const char c : b)
                if (!std::isspace(static_cast<unsigned char>(c)))
                  squashed.push_back(c);
              std::string sq_needle;
              for (const char c : needle)
                if (!std::isspace(static_cast<unsigned char>(c)))
                  sq_needle.push_back(c);
              if (squashed.find("return" + sq_needle) != std::string::npos) {
                out.push_back(
                    {"", lines.line_of(i), Rule::kPointerKey,
                     "sort comparator orders by raw pointer value: the "
                     "order differs run to run — compare a stable field"});
                goto next_sort;
              }
            }
          }
        }
      }
    }
  next_sort:
    i = j;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kUnorderedIter:
      return "unordered-iter";
    case Rule::kUnsequencedRng:
      return "unsequenced-rng";
    case Rule::kNondetCall:
      return "nondet-call";
    case Rule::kPointerKey:
      return "pointer-key";
    case Rule::kPragma:
      return "pragma";
  }
  throw std::invalid_argument("detlint::rule_name: corrupt Rule");
}

bool rule_from_name(std::string_view name, Rule& out) {
  for (const Rule r : {Rule::kUnorderedIter, Rule::kUnsequencedRng,
                       Rule::kNondetCall, Rule::kPointerKey}) {
    if (name == rule_name(r)) {
      out = r;
      return true;
    }
  }
  return false;
}

std::string format(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + rule_name(f.rule) +
         "] " + f.message;
}

std::vector<Finding> lint_text(std::string_view text, std::string path) {
  std::vector<Pragma> pragmas;
  collect_pragmas(text, pragmas);

  const std::string code = blank_noncode(text);
  const LineIndex lines(code);
  const std::vector<ContainerMention> mentions = container_mentions(code);
  const std::vector<TrackedVar> vars = tracked_vars(code, mentions);

  std::vector<Finding> raw;
  scan_unordered_iter(code, lines, vars, raw);
  scan_unsequenced_rng(code, lines, raw);
  scan_nondet_call(code, lines, path, raw);
  scan_pointer_key(code, lines, mentions, vars, raw);

  // Apply pragmas: file scope, or same/previous line (a standalone pragma
  // comment covers the statement below it).
  std::vector<Finding> kept;
  for (Finding& f : raw) {
    bool allowed = false;
    for (const Pragma& p : pragmas) {
      if (!p.valid || p.rule != f.rule) continue;
      if (p.file_scope || p.line == f.line || p.line + 1 == f.line) {
        allowed = true;
        break;
      }
    }
    if (!allowed) kept.push_back(std::move(f));
  }

  // Pragma hygiene is never suppressible: the written reason IS the audit.
  for (const Pragma& p : pragmas) {
    if (!p.valid) {
      kept.push_back({"", p.line, Rule::kPragma,
                      "allow pragma names unknown rule '" + p.bad_rule +
                          "' (or is malformed)"});
    } else if (!p.has_reason) {
      kept.push_back({"", p.line, Rule::kPragma,
                      "allow pragma for '" + std::string(rule_name(p.rule)) +
                          "' carries no reason — the written reason is the "
                          "audit trail"});
    }
  }

  for (Finding& f : kept) f.path = path;
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return kept;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("detlint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_text(ss.str(), path);
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p))
      throw std::runtime_error("detlint: no such file or directory: " + p);
    for (auto it = fs::recursive_directory_iterator(p);
         it != fs::recursive_directory_iterator(); ++it) {
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name.rfind("build", 0) == 0 || name.rfind('.', 0) == 0)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp")
        files.push_back(it->path().string());
    }
  }
  // Directory enumeration order is filesystem-dependent; the lint output
  // must not be.
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const std::string& f : files) {
    std::vector<Finding> one = lint_file(f);
    out.insert(out.end(), std::make_move_iterator(one.begin()),
               std::make_move_iterator(one.end()));
  }
  return out;
}

}  // namespace bdg::detlint
