#pragma once
// detlint — the repo's determinism-and-safety static analysis pass.
//
// Every claim this reproduction makes (byte-identical sweep resume,
// sweepd merge-by-construction, batched-vs-unbatched verdict pins) rests
// on bit-exact determinism, and the bug history is concentrated in a few
// mechanical patterns: an RNG draw inside a conditional expression that
// GCC 12 evaluated on both arms inside a co_await argument (PR 6), and
// hash-order iteration feeding ordered output. detlint moves those
// classes from "a reviewer noticed" to "a tool enforces on every push".
//
// It is deliberately token/regex-level over the source text — no libclang,
// no compile — so CI can build and run it from the normal CMake tree in
// seconds. The price is heuristics: a finding is a *suspect site*, and an
// audited site carries an allow pragma with a written reason:
//
//   // detlint: allow(unordered-iter) why the site is safe   — this line
//                                                              or the next
//   // detlint: allow-file(unordered-iter) why the file is safe — whole file
//
// A pragma without a reason is itself a finding: the audit trail is part
// of the contract.
//
// Rules:
//   unordered-iter   Iteration over a hash container (std::unordered_map/
//                    set, util::FlatMap/FlatSet): range-for over a tracked
//                    variable, .begin()/.cbegin()/.rbegin() on one, or any
//                    .for_each(...) call. Hash-order iteration must route
//                    through util::sorted_items()/ordered_keys() (which
//                    sort before anything downstream consumes the
//                    entries) or carry an audited pragma arguing why the
//                    consumer is order-insensitive.
//   unsequenced-rng  (a) Two or more RNG draws in one call argument list
//                    (argument evaluation order is unspecified); (b) a
//                    draw inside a conditional-expression operand — the
//                    exact PR 6 GCC-12/co_await divergence class. A draw
//                    is a method call next/below/range/chance/uniform/
//                    fork/shuffle on an rng-named receiver, or a call
//                    passing an rng-named object as an argument.
//   nondet-call      Wall-clock, std::random_device, getenv, locale and
//                    friends inside the deterministic core directories
//                    (src/core, src/sim, src/explore, src/gather). All
//                    randomness flows through bdg::Rng; all timing stays
//                    in run/bench layers.
//   pointer-key      Pointer-valued keys in associative containers
//                    (iteration/hash order becomes address order —
//                    the PR 8 pointer-era merge-path cluster), and sorts
//                    whose comparator orders by raw pointer value.
//   pragma           Malformed detlint pragmas: unknown rule name or a
//                    missing reason. Never suppressible.
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bdg::detlint {

enum class Rule {
  kUnorderedIter,
  kUnsequencedRng,
  kNondetCall,
  kPointerKey,
  kPragma,
};

/// Stable spelling used in pragmas, fixture manifests and output.
[[nodiscard]] const char* rule_name(Rule r);

/// Inverse of rule_name; returns false on an unknown spelling.
[[nodiscard]] bool rule_from_name(std::string_view name, Rule& out);

struct Finding {
  std::string path;
  std::size_t line = 0;  ///< 1-based
  Rule rule = Rule::kPragma;
  std::string message;
};

/// `path:line: [rule] message` — the clickable one-line form.
[[nodiscard]] std::string format(const Finding& f);

/// Lint `text` as though it lived at `path`. The path scopes the
/// nondet-call rule (deterministic-core directories only) and is echoed
/// in findings. Findings come back ordered by line.
[[nodiscard]] std::vector<Finding> lint_text(std::string_view text,
                                             std::string path);

/// Lint one file on disk. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path);

/// Lint every *.h/*.hpp/*.cc/*.cpp under each path (a regular-file path is
/// linted directly). Hidden directories and build trees are skipped; the
/// file walk is sorted, so output order never depends on directory
/// enumeration. Throws std::runtime_error on a path that neither exists
/// as a file nor as a directory.
[[nodiscard]] std::vector<Finding> lint_paths(
    const std::vector<std::string>& paths);

}  // namespace bdg::detlint
