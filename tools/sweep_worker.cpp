// sweep_worker: one worker process for the sweepd coordinator.
//
// Expands the same grid from the same flags as its coordinator (the hello
// handshake proves it via the grid fingerprint), then executes leased
// points and streams results back until the coordinator says shutdown.
// Reconnects with capped exponential backoff + jitter after any transport
// failure; --fault mounts the deterministic fault shim on this worker's
// sends, including the kill-after-N-points hook the CI smoke uses to
// simulate a worker dying mid-grid (kill_after=N,hard => _Exit(137)).
//
// Exit codes: 0 coordinator finished the grid (shutdown), 2 usage,
// 5 reconnect attempts exhausted, 6 rejected (grid fingerprint mismatch),
// 7 soft kill hook fired, 137 hard kill hook (_Exit, like SIGKILL).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "run/cli_flags.h"
#include "run/service.h"

namespace {

using namespace bdg;

void usage(std::FILE* to) {
  std::fputs("usage: sweep_worker --connect=HOST:PORT [flags]\n", to);
  run::print_grid_flag_help(to);
  std::fputs(
      "service:\n"
      "  --connect=HOST:PORT    coordinator address (required; PORT alone\n"
      "                         means 127.0.0.1:PORT)\n"
      "  --name=NAME            worker name reported in the hello\n"
      "  --dial-attempts=N      dials before giving up, per reconnect\n"
      "                         (default 30, backoff 10ms..1s + jitter)\n"
      "  --jitter-seed=S        backoff jitter stream (default 1)\n"
      "  --fault=SPEC           deterministic fault shim on worker sends\n"
      "                         (seed=S,drop=P,delay=P,delay_ms=N,\n"
      "                         close_after=N,kill_after=N[,hard])\n",
      to);
  run::print_grid_name_lists(to);
}

}  // namespace

int main(int argc, char** argv) {
  run::SweepSpec spec = run::default_cli_spec();
  run::WorkerConfig cfg;
  bool have_connect = false;

  const run::GridFlagsResult grid = run::parse_grid_flags(argc, argv, spec);
  if (!grid.ok) {
    std::fprintf(stderr, "sweep_worker: %s\n", grid.error.c_str());
    return 2;
  }
  const auto value_of = [](const std::string& arg, const char* flag)
      -> std::optional<std::string> {
    const std::size_t len = std::strlen(flag);
    if (arg.compare(0, len, flag) == 0 && arg.size() > len && arg[len] == '=')
      return arg.substr(len + 1);
    return std::nullopt;
  };
  try {
    for (const std::string& arg : grid.leftover) {
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else if (auto v = value_of(arg, "--connect")) {
        if (!run::parse_host_port(*v, cfg.host, cfg.port)) {
          std::fprintf(stderr, "sweep_worker: bad --connect '%s'\n",
                       v->c_str());
          return 2;
        }
        have_connect = true;
      } else if (auto v = value_of(arg, "--name")) {
        cfg.name = *v;
      } else if (auto v = value_of(arg, "--dial-attempts")) {
        cfg.backoff.attempts = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--jitter-seed")) {
        cfg.jitter_seed = std::stoull(*v);
      } else if (auto v = value_of(arg, "--fault")) {
        const auto fault = net::parse_fault_config(*v);
        if (!fault) {
          std::fprintf(stderr, "sweep_worker: bad --fault spec '%s'\n",
                       v->c_str());
          return 2;
        }
        cfg.fault = *fault;
      } else {
        std::fprintf(stderr, "sweep_worker: unknown flag '%s'\n\n",
                     arg.c_str());
        usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: bad flag value (%s)\n", e.what());
    return 2;
  }
  if (!have_connect) {
    std::fprintf(stderr, "sweep_worker: --connect=HOST:PORT is required\n");
    return 2;
  }
  run::apply_default_algorithms(spec);

  run::WorkerExit exit_reason;
  try {
    exit_reason = run::run_sweep_worker(spec, cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_worker: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "[sweep_worker %s: %s]\n", cfg.name.c_str(),
               run::to_string(exit_reason).c_str());
  switch (exit_reason) {
    case run::WorkerExit::kShutdown: return 0;
    case run::WorkerExit::kLostCoordinator: return 5;
    case run::WorkerExit::kRejected: return 6;
    case run::WorkerExit::kKilled: return 7;
  }
  return 2;
}
