// sweepd: the fault-tolerant sweep coordinator.
//
// Owns the expanded grid, leases batches of points to sweep_worker
// processes over localhost TCP, merges their streamed results through the
// run_sweep checkpoint path, and writes the same reports sweep_cli does —
// byte-identical to a single-shot run of the same flags:
//
//   sweepd --listen=39173 --resume=ck.jsonl --no-timing
//          --algorithms=three-group --sizes=6 --seeds=1,2 &
//   sweep_worker --connect=127.0.0.1:39173 --no-timing
//          --algorithms=three-group --sizes=6 --seeds=1,2 &
//   sweep_worker --connect=127.0.0.1:39173 ... &
//   wait %1
//
// The grid flags MUST match across coordinator and workers (the hello
// handshake rejects any drift via the grid fingerprint). Workers may come,
// go and die mid-lease: deadlines reassign their points, and with no
// reachable worker at all the coordinator runs the remainder in-process
// rather than hang. SIGTERM/SIGINT flush the checkpoint and exit 3
// (aborted), so a restart with the same --resume picks up where it
// stopped.
//
// Exit codes match sweep_cli: 0 all dispersed, 1 failures, 2 usage,
// 3 aborted, 4 round accounting saturated.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "run/cli_flags.h"
#include "run/report.h"
#include "run/service.h"

namespace {

using namespace bdg;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(std::FILE* to) {
  std::fputs("usage: sweepd [flags]\n", to);
  run::print_grid_flag_help(to);
  std::fputs(
      "service:\n"
      "  --listen=PORT          TCP port on 127.0.0.1 (0 = ephemeral; the\n"
      "                         bound port is printed to stderr either way)\n"
      "  --lease-points=N       points per lease (default 8)\n"
      "  --lease-timeout-ms=N   lease deadline; extended by every frame\n"
      "                         from the holder (default 3000)\n"
      "  --idle-grace-ms=N      no live worker for this long => run the\n"
      "                         remainder in-process (default 2000)\n"
      "  --no-local-fallback    hang instead of degrading to in-process\n"
      "  --serve                keep answering sweep_query clients after\n"
      "                         the grid completes (workers are shut down\n"
      "                         immediately); SIGTERM ends serving, and the\n"
      "                         exit code still reflects the sweep itself.\n"
      "                         With --resume over a finished checkpoint\n"
      "                         this is a standalone query server.\n"
      "  --fault=SPEC           deterministic fault shim on coordinator\n"
      "                         sends (seed=S,drop=P,delay=P,delay_ms=N,\n"
      "                         close_after=N)\n"
      "output:\n"
      "  --points-csv=PATH      per-point CSV ('-' = stdout)\n"
      "  --cells-csv=PATH       per-cell aggregate CSV ('-' = stdout)\n"
      "  --json=PATH            full JSON report ('-' = stdout)\n"
      "  --quiet                suppress the summary line\n",
      to);
  run::print_grid_name_lists(to);
}

bool write_report(const std::string& path, const run::SweepResult& result,
                  void (*write)(std::ostream&, const run::SweepResult&)) {
  if (path == "-") {
    write(std::cout, result);
    return true;
  }
  std::ofstream os(path);
  write(os, result);
  os.flush();
  if (!os) std::fprintf(stderr, "sweepd: cannot write %s\n", path.c_str());
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  run::SweepSpec spec = run::default_cli_spec();
  run::ServiceConfig svc;
  std::string points_csv, cells_csv, json;
  bool quiet = false;

  const run::GridFlagsResult grid = run::parse_grid_flags(argc, argv, spec);
  if (!grid.ok) {
    std::fprintf(stderr, "sweepd: %s\n", grid.error.c_str());
    return 2;
  }
  const auto value_of = [](const std::string& arg, const char* flag)
      -> std::optional<std::string> {
    const std::size_t len = std::strlen(flag);
    if (arg.compare(0, len, flag) == 0 && arg.size() > len && arg[len] == '=')
      return arg.substr(len + 1);
    return std::nullopt;
  };
  try {
    for (const std::string& arg : grid.leftover) {
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else if (auto v = value_of(arg, "--listen")) {
        svc.port = static_cast<std::uint16_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--lease-points")) {
        svc.lease_points = static_cast<std::uint32_t>(std::stoul(*v));
        if (svc.lease_points == 0) {
          std::fprintf(stderr, "sweepd: --lease-points must be >= 1\n");
          return 2;
        }
      } else if (auto v = value_of(arg, "--lease-timeout-ms")) {
        svc.lease_timeout_ms = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--idle-grace-ms")) {
        svc.idle_grace_ms = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (arg == "--no-local-fallback") {
        svc.local_fallback = false;
      } else if (arg == "--serve") {
        svc.serve_after_finish = true;
      } else if (auto v = value_of(arg, "--fault")) {
        const auto fault = net::parse_fault_config(*v);
        if (!fault) {
          std::fprintf(stderr, "sweepd: bad --fault spec '%s'\n", v->c_str());
          return 2;
        }
        svc.fault = *fault;
      } else if (auto v = value_of(arg, "--points-csv")) {
        points_csv = *v;
      } else if (auto v = value_of(arg, "--cells-csv")) {
        cells_csv = *v;
      } else if (auto v = value_of(arg, "--json")) {
        json = *v;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::fprintf(stderr, "sweepd: unknown flag '%s'\n\n", arg.c_str());
        usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweepd: bad flag value (%s)\n", e.what());
    return 2;
  }
  run::apply_default_algorithms(spec);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  run::SweepResult result;
  std::optional<run::CoordinatorStats> stats;
  try {
    run::Coordinator coordinator(spec, svc);
    std::fprintf(stderr, "[sweepd: listening on 127.0.0.1:%u]\n",
                 coordinator.port());
    result = coordinator.serve(&g_stop);
    stats = coordinator.stats();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweepd: %s\n", e.what());
    return 2;
  }

  bool write_ok = true;
  if (!points_csv.empty())
    write_ok &= write_report(points_csv, result, run::write_points_csv);
  if (!cells_csv.empty())
    write_ok &= write_report(cells_csv, result, run::write_cells_csv);
  if (!json.empty()) write_ok &= write_report(json, result, run::write_json);
  if (points_csv.empty() && cells_csv.empty() && json.empty())
    run::write_points_csv(std::cout, result);

  std::size_t failed = 0;
  std::size_t saturated = 0;
  for (const run::PointResult& p : result.points) {
    if (!p.skipped && !p.ok) ++failed;
    if (p.saturated) ++saturated;
  }
  if (!quiet) {
    std::fprintf(
        stderr,
        "[sweepd: %zu points, %zu skipped, %zu failed, %zu from "
        "checkpoint%s; %zu workers, %zu leases (%zu reassigned), "
        "%zu duplicate results, %zu local-fallback points, %zu clients, "
        "%zu queries, %.2fs]\n",
        result.points.size(), result.skipped(), failed,
        result.from_checkpoint, result.aborted ? ", ABORTED" : "",
        stats->workers_seen, stats->leases_granted, stats->leases_reassigned,
        stats->duplicate_results, stats->local_fallback_points,
        stats->clients_seen, stats->queries_answered, result.wall_seconds);
    if (result.torn_checkpoint_lines != 0)
      std::fprintf(stderr,
                   "[sweepd: %zu torn checkpoint line(s) skipped and re-run "
                   "— a previous run crashed mid-append]\n",
                   result.torn_checkpoint_lines);
  }
  if (saturated != 0) {
    std::fprintf(stderr,
                 "sweepd: %zu grid point(s) exceed 128-bit round "
                 "accounting; shrink the grid below the saturation "
                 "frontier.\n",
                 saturated);
    return 4;
  }
  if (failed != 0 || !write_ok) return 1;
  return result.aborted ? 3 : 0;
}
