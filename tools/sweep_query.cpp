// sweep_query: a query client for the sweepd coordinator.
//
// Dials a running (or --serve-ing) sweepd and asks for live aggregate
// state over the same framed-JSON wire the workers use:
//
//   sweep_query --connect=39173 --progress
//   sweep_query --connect=39173 --cells '--algorithm=three-group(T4)' --f=1
//   sweep_query --connect=39173 --point --derived-seed=1234567
//   sweep_query --connect=39173 --cells --csv > cells.csv
//
// Answers come from the coordinator's incrementally maintained
// CellAggregator, so querying never pauses the sweep or rebuilds a
// report; the JSON bodies printed here are byte-identical to the
// corresponding objects of sweep_cli's --json report, and --csv rows are
// byte-identical to the --cells-csv/--points-csv rows (raw-token
// passthrough, no number re-formatting). Failed attempts redial on a
// fresh connection, so seeded fault shims on either side cannot wedge a
// query — they only cost retries.
//
// Exit codes: 0 answered, 1 coordinator rejected the query (or the point
// has no result yet), 2 usage, 5 coordinator unreachable.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "run/cli_flags.h"
#include "run/report.h"
#include "run/service.h"
#include "util/json_mini.h"

namespace {

using namespace bdg;

void usage(std::FILE* to) {
  std::fputs(
      "usage: sweep_query --connect=HOST:PORT [--progress | --cells | "
      "--point] [selectors]\n"
      "queries (default --progress):\n"
      "  --progress             sweep totals, completion and coordinator\n"
      "                         counters, as one flat JSON object\n"
      "  --cells                matching live cell aggregates, one report\n"
      "                         JSON object per line\n"
      "  --point                one point's result, by --derived-seed or\n"
      "                         --index (exit 1 while it has no result)\n"
      "cell selectors (unset = wildcard):\n"
      "  --algorithm=NAME --family=NAME --mix=MIX  report spellings\n"
      "                         (mix: 'a+b' canonical sorted, '-' = none)\n"
      "  --n=N --k=K --f=F      resolved coordinates (k = n points match n)\n"
      "point lookup:\n"
      "  --derived-seed=S       the derived seed reports key points by\n"
      "  --index=I              grid index (the lease currency)\n"
      "output / transport:\n"
      "  --csv                  CSV with the report header instead of JSON\n"
      "                         lines (cells or a completed, non-skipped\n"
      "                         point; byte-identical to report CSV rows)\n"
      "  --timeout-ms=N         per-frame receive deadline (default 2000)\n"
      "  --attempts=N           full-query retries, fresh connection each\n"
      "                         (default 5)\n"
      "  --jitter-seed=S        dial backoff jitter stream (default 1)\n",
      to);
}

/// One cells-CSV row from a cell's report-JSON body, by raw-token
/// passthrough: numeric tokens are copied verbatim (no parse/re-print
/// drift), strings are unescaped and CSV-quoted exactly as
/// write_cells_csv does.
bool cell_csv_row(const std::string& body, std::string& out) {
  std::string algorithm, family, mix;
  std::string n, k, f, runs, dispersed, min_r, max_r, mean_r, mean_sim,
      mean_mov, mean_msg, mean_sec;
  if (!json::find_string(body, "algorithm", algorithm) ||
      !json::find_string(body, "family", family) ||
      !json::find_string(body, "mix", mix) || !json::find_raw(body, "n", n) ||
      !json::find_raw(body, "k", k) || !json::find_raw(body, "f", f) ||
      !json::find_raw(body, "runs", runs) ||
      !json::find_raw(body, "dispersed", dispersed) ||
      !json::find_raw(body, "min_rounds", min_r) ||
      !json::find_raw(body, "max_rounds", max_r) ||
      !json::find_raw(body, "mean_rounds", mean_r) ||
      !json::find_raw(body, "mean_simulated", mean_sim) ||
      !json::find_raw(body, "mean_moves", mean_mov) ||
      !json::find_raw(body, "mean_messages", mean_msg) ||
      !json::find_raw(body, "mean_seconds", mean_sec))
    return false;
  out = run::csv_field(algorithm) + ',' + run::csv_field(family) + ',' + n +
        ',' + k + ',' + f + ',' + run::csv_field(mix) + ',' + runs + ',' +
        dispersed + ',' + min_r + ',' + max_r + ',' + mean_r + ',' + mean_sim +
        ',' + mean_mov + ',' + mean_msg + ',' + mean_sec;
  return true;
}

/// One points-CSV row from a point's report-JSON body. Skipped points have
/// no row in write_points_csv, so they have none here either.
bool point_csv_row(const std::string& body, std::string& out) {
  bool skipped = false;
  if (json::find_bool(body, "skipped", skipped) && skipped) return false;
  std::string algorithm, family, strategy, mix;
  std::string n, k, f, seed, derived, ok, rounds, sim, moves, msgs, planned,
      seconds;
  if (!json::find_string(body, "algorithm", algorithm) ||
      !json::find_string(body, "family", family) ||
      !json::find_string(body, "strategy", strategy) ||
      !json::find_string(body, "mix", mix) || !json::find_raw(body, "n", n) ||
      !json::find_raw(body, "k", k) || !json::find_raw(body, "f", f) ||
      !json::find_raw(body, "seed", seed) ||
      !json::find_raw(body, "derived_seed", derived) ||
      !json::find_raw(body, "ok", ok) ||
      !json::find_raw(body, "rounds", rounds) ||
      !json::find_raw(body, "simulated_rounds", sim) ||
      !json::find_raw(body, "moves", moves) ||
      !json::find_raw(body, "messages", msgs) ||
      !json::find_raw(body, "planned_rounds", planned) ||
      !json::find_raw(body, "seconds", seconds))
    return false;
  out = run::csv_field(algorithm) + ',' + run::csv_field(family) + ',' + n +
        ',' + k + ',' + f + ',' + seed + ',' + run::csv_field(strategy) + ',' +
        run::csv_field(mix) + ',' + derived + ',' +
        (ok == "true" ? "1" : "0") + ',' + rounds + ',' + sim + ',' + moves +
        ',' + msgs + ',' + planned + ',' + seconds;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  run::QueryRequest req;
  run::QueryClientConfig cfg;
  bool have_connect = false;
  bool have_what = false;
  bool csv = false;

  const auto value_of = [](const std::string& arg, const char* flag)
      -> std::optional<std::string> {
    const std::size_t len = std::strlen(flag);
    if (arg.compare(0, len, flag) == 0 && arg.size() > len && arg[len] == '=')
      return arg.substr(len + 1);
    return std::nullopt;
  };
  const auto set_what = [&](const char* what) {
    if (have_what && req.what != what) {
      std::fprintf(stderr, "sweep_query: pick ONE of --progress / --cells / "
                           "--point\n");
      return false;
    }
    req.what = what;
    have_what = true;
    return true;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else if (auto v = value_of(arg, "--connect")) {
        if (!run::parse_host_port(*v, cfg.host, cfg.port)) {
          std::fprintf(stderr, "sweep_query: bad --connect '%s'\n",
                       v->c_str());
          return 2;
        }
        have_connect = true;
      } else if (arg == "--progress") {
        if (!set_what("progress")) return 2;
      } else if (arg == "--cells") {
        if (!set_what("cells")) return 2;
      } else if (arg == "--point") {
        if (!set_what("point")) return 2;
      } else if (auto v = value_of(arg, "--algorithm")) {
        req.algorithm = *v;
      } else if (auto v = value_of(arg, "--family")) {
        req.family = *v;
      } else if (auto v = value_of(arg, "--mix")) {
        req.mix = *v;
      } else if (auto v = value_of(arg, "--n")) {
        req.n = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--k")) {
        req.k = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--f")) {
        req.f = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--derived-seed")) {
        req.derived_seed = std::stoull(*v);
      } else if (auto v = value_of(arg, "--index")) {
        req.index = std::stoull(*v);
      } else if (arg == "--csv") {
        csv = true;
      } else if (auto v = value_of(arg, "--timeout-ms")) {
        cfg.timeout_ms = static_cast<std::uint32_t>(std::stoul(*v));
      } else if (auto v = value_of(arg, "--attempts")) {
        cfg.attempts = static_cast<std::uint32_t>(std::stoul(*v));
        if (cfg.attempts == 0) {
          std::fprintf(stderr, "sweep_query: --attempts must be >= 1\n");
          return 2;
        }
      } else if (auto v = value_of(arg, "--jitter-seed")) {
        cfg.jitter_seed = std::stoull(*v);
      } else {
        std::fprintf(stderr, "sweep_query: unknown flag '%s'\n\n",
                     arg.c_str());
        usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_query: bad flag value (%s)\n", e.what());
    return 2;
  }
  if (!have_connect) {
    std::fprintf(stderr, "sweep_query: --connect=HOST:PORT is required\n");
    return 2;
  }
  if (req.what == "point" &&
      req.derived_seed.has_value() == req.index.has_value()) {
    std::fprintf(stderr,
                 "sweep_query: --point needs exactly one of --derived-seed "
                 "/ --index\n");
    return 2;
  }

  const auto reply = run::run_query(req, cfg);
  if (!reply) {
    std::fprintf(stderr, "sweep_query: coordinator unreachable (or kept "
                         "dropping the response)\n");
    return 5;
  }
  if (!reply->error.empty()) {
    std::fprintf(stderr, "sweep_query: %s\n", reply->error.c_str());
    return 1;
  }

  if (req.what == "progress") {
    std::cout << "{\"total\": " << reply->total
              << ", \"completed\": " << reply->completed
              << ", \"restored\": " << reply->restored
              << ", \"cells\": " << reply->cells
              << ", \"done\": " << (reply->done ? "true" : "false")
              << ", \"workers_seen\": " << reply->stats.workers_seen
              << ", \"workers_rejected\": " << reply->stats.workers_rejected
              << ", \"leases_granted\": " << reply->stats.leases_granted
              << ", \"leases_reassigned\": " << reply->stats.leases_reassigned
              << ", \"duplicate_results\": " << reply->stats.duplicate_results
              << ", \"local_fallback_points\": "
              << reply->stats.local_fallback_points
              << ", \"protocol_errors\": " << reply->stats.protocol_errors
              << ", \"clients_seen\": " << reply->stats.clients_seen
              << ", \"queries_answered\": " << reply->stats.queries_answered
              << "}\n";
    return 0;
  }
  if (req.what == "point" && reply->pending) {
    std::fprintf(stderr, "sweep_query: point has no result yet\n");
    return 1;
  }
  if (csv) {
    std::cout << (req.what == "cells" ? run::kCellsCsvHeader
                                      : run::kPointsCsvHeader)
              << '\n';
    for (const std::string& body : reply->bodies) {
      std::string row;
      const bool ok = req.what == "cells" ? cell_csv_row(body, row)
                                          : point_csv_row(body, row);
      if (ok) std::cout << row << '\n';
    }
  } else {
    for (const std::string& body : reply->bodies) std::cout << body << '\n';
  }
  return 0;
}
