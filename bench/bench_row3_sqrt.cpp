// Table 1 row 3 (Theorem 5): O((f + |Lambda|) X(n)) rounds, arbitrary
// start, f = O(sqrt n) weak Byzantine. The cheaper Hirose et al. [27]
// gathering replaces [24]'s; the map-finding phase is a single two-group
// run (its T2 = Theta(n^3) window dominates the scaled-cost totals).
#include <cmath>

#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title = "Table 1 row 3 (Theorem 5): sqrt(n) Byzantine, arbitrary start";
  spec.claim =
      "O((f + |Lambda|) X(n)) gathering (scaled X(n)=2n+2) + one quorum "
      "map-finding window, f = O(sqrt n) weak Byzantine";
  spec.algorithm = core::Algorithm::kSqrtArbitrary;
  spec.strategy = core::ByzStrategy::kFakeSettler;
  spec.sizes = {9, 12, 16, 20, 25, 30};
  spec.bound = [](std::uint32_t n) {
    // Dominated by the single T2 = 8n^3 window in the scaled model.
    return 8.0 * std::pow(n, 3);
  };
  spec.bound_name = "8n^3";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
