// Table 1 row 2 (Theorem 2): O(n^4 |Lambda| X(n)) rounds, arbitrary start,
// f <= floor(n/2)-1 weak Byzantine, any graph. The charged [24] gathering
// bound dominates; the scaled cost model uses X(n) = 2n+2 (covering-walk
// length) so the printed totals stay interpretable — the shape column is
// the paper's bound evaluated under the same substitution.
#include <cmath>

#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title = "Table 1 row 2 (Theorem 2): tournament from arbitrary start";
  spec.claim =
      "O(n^4 |Lambda| X(n)) rounds (scaled: X(n)=2n+2), arbitrary start, "
      "f <= floor(n/2)-1 weak Byzantine";
  spec.algorithm = core::Algorithm::kTournamentArbitrary;
  spec.strategy = core::ByzStrategy::kFakeSettler;
  spec.sizes = {6, 8, 10, 12, 14};
  spec.bound = [](std::uint32_t n) {
    const double lambda = std::ceil(std::log2(static_cast<double>(n) * n));
    return 4.0 * std::pow(n, 4) * lambda * (2.0 * n + 2.0);
  };
  spec.bound_name = "n^4*L*X";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
