// Ablation 2: the paper's own design progression for Phase 2 map finding —
// O(n) pairwise runs (Theorem 3) vs three group runs (Theorem 4) vs one
// two-group run (Theorems 5/6). Compare planned round budgets and measured
// rounds at each design point's own tolerance.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/group_dispersion.h"
#include "core/strong_dispersion.h"
#include "core/tournament_dispersion.h"

int main() {
  using namespace bdg;
  std::printf("== Ablation 2: map-finding design points (gathered start) ==\n\n");

  Table table({"n", "pairwise budget", "3-group budget", "2-group budget",
               "pairwise rounds", "3-group rounds", "2-group rounds"});
  bool ok = true;
  for (const std::uint32_t n : {8u, 12u, 16u}) {
    const Graph g = bench::sweep_graph(n, 777 + n);
    std::vector<sim::RobotId> ids;
    for (std::uint32_t i = 0; i < n; ++i) ids.push_back(10 + 3 * i);
    const gather::CostModel cm{true};
    const auto pairwise = core::plan_tournament_dispersion(g, ids, true,
                                                           n / 2 - 1, cm);
    const auto three = core::plan_three_group_dispersion(g, ids, cm);
    const auto two = core::plan_strong_gathered_dispersion(g, ids, cm);

    const auto p4 = bench::run_point(core::Algorithm::kTournamentGathered, g,
                                     n / 2 - 1, core::ByzStrategy::kMapLiar, n);
    const auto p5 = bench::run_point(core::Algorithm::kThreeGroupGathered, g,
                                     n / 3 - 1, core::ByzStrategy::kMapLiar, n);
    const auto p7 =
        bench::run_point(core::Algorithm::kStrongGathered, g,
                         n / 4 >= 1 ? n / 4 - 1 : 0,
                         core::ByzStrategy::kSpoofer, n);
    ok = ok && p4.dispersed && p5.dispersed && p7.dispersed;
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(pairwise.total_rounds),
                   Table::num(three.total_rounds), Table::num(two.total_rounds),
                   Table::num(p4.rounds), Table::num(p5.rounds),
                   Table::num(p7.rounds)});
  }
  table.print(std::cout);
  std::printf(
      "\ntrade-off: fewer runs => fewer rounds but lower Byzantine "
      "tolerance (n/2-1 vs n/3-1 vs n/4-1).\nall dispersed: %s\n",
      ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
