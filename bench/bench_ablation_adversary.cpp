// Ablation 1: adversary strategy comparison. Fix the Theorem 4 algorithm
// at its maximum tolerance and compare how each strategy in the library
// stresses the system: rounds, simulated rounds (adversaries keep the
// engine awake), messages, and the dispersion verdict.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace bdg;
  std::printf(
      "== Ablation 1: adversary strategies vs Theorem 4 (n = 12, f = 3) "
      "==\n\n");
  const std::uint32_t n = 12;
  const Graph g = bench::sweep_graph(n, 222);

  Table table({"strategy", "rounds", "simulated", "dispersed", "sec"});
  bool ok = true;
  for (const core::ByzStrategy s : core::weak_strategies()) {
    const auto p = bench::run_point(core::Algorithm::kThreeGroupGathered, g,
                                    core::max_tolerated_f(
                                        core::Algorithm::kThreeGroupGathered, n),
                                    s, 17);
    ok = ok && p.dispersed;
    table.add_row({core::to_string(s), Table::num(p.rounds),
                   Table::num(p.simulated), p.dispersed ? "yes" : "NO",
                   Table::num(p.seconds, 2)});
  }
  table.print(std::cout);
  std::printf("\nall strategies defeated: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
