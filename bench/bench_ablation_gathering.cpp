// Ablation 3: charged-oracle gathering (the paper's imported Phase 1
// bounds) vs the REAL bit-epoch rendezvous gathering of the crash-fault
// extension. Quantifies how much of the Theorem 2 round bill is the
// gathering subroutine — the paper's own observation "gathering slows us down
// dramatically" — and what a weaker fault model buys.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace bdg;
  std::printf(
      "== Ablation 3: gathering — charged oracle ([24], Theorem 2) vs real "
      "bit-epoch rendezvous (crash-fault extension) ==\n\n");

  Table table({"n", "Thm2 rounds (charged gather)", "ext rounds (real gather)",
               "ratio", "Thm2 dispersed", "ext dispersed"});
  bool ok = true;
  for (const std::uint32_t n : {6u, 8u, 10u, 12u}) {
    const Graph g = bench::sweep_graph(n, 40 + n);
    // Same fault budget for comparability: crash-only adversaries, f within
    // BOTH algorithms' tolerance.
    const std::uint32_t f = n / 3 >= 1 ? n / 3 - 1 : 0;
    const auto charged =
        bench::run_point(core::Algorithm::kTournamentArbitrary, g, f,
                         core::ByzStrategy::kCrash, n);
    const auto real = bench::run_point(core::Algorithm::kCrashRealGathering,
                                       g, f, core::ByzStrategy::kCrash, n);
    ok = ok && charged.dispersed && real.dispersed;
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(charged.rounds), Table::num(real.rounds),
                   Table::num(static_cast<double>(charged.rounds) /
                                  static_cast<double>(real.rounds),
                              1),
                   charged.dispersed ? "yes" : "NO",
                   real.dispersed ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::printf(
      "\ngathering dominates Theorem 2 exactly as the paper observes; the "
      "crash-fault pipeline removes the charge entirely.\nall dispersed: "
      "%s\n",
      ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
