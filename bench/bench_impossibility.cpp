// Theorem 8: the feasibility frontier for k robots on an n-node graph with
// f Byzantine robots, and the mirror-execution violations at infeasible
// parameter points.
#include <cstdio>
#include <iostream>

#include "core/impossibility.h"
#include "util/table.h"

int main() {
  using namespace bdg;
  std::printf("== Theorem 8: impossibility when ceil(k/n) > ceil((k-f)/n) ==\n\n");

  Table table({"n", "k", "f", "ceil(k/n)", "ceil((k-f)/n)", "feasible",
               "mirror demo"});
  bool all_consistent = true;
  for (const std::uint32_t n : {4u, 5u, 8u}) {
    for (const std::uint32_t k : {n, n + 1, n + n / 2, 2 * n, 3 * n}) {
      for (const std::uint32_t f : {0u, 1u, n / 2, n}) {
        if (f >= k) continue;
        const bool feasible = core::k_dispersion_feasible(k, n, f);
        const auto demo = core::demonstrate_impossibility(n, k, f);
        const bool consistent = feasible ? !demo.violated : demo.violated;
        all_consistent = all_consistent && consistent;
        table.add_row(
            {Table::num(static_cast<std::uint64_t>(n)),
             Table::num(static_cast<std::uint64_t>(k)),
             Table::num(static_cast<std::uint64_t>(f)),
             Table::num(static_cast<std::uint64_t>((k + n - 1) / n)),
             Table::num(static_cast<std::uint64_t>((k - f + n - 1) / n)),
             feasible ? "yes" : "no",
             demo.violated ? "VIOLATION exhibited" : "no violation"});
      }
    }
  }
  table.print(std::cout);
  std::printf(
      "\nevery infeasible point exhibits a concrete mirror-execution "
      "violation: %s\n",
      all_consistent ? "yes" : "NO (inconsistency!)");
  return all_consistent ? 0 : 1;
}
