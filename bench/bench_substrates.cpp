// Substrate microbenchmarks (google-benchmark): canonical encoding, view
// refinement / quotient construction, token map building, covering walks.
#include <benchmark/benchmark.h>

#include "explore/covering_walk.h"
#include "explore/engine_map.h"
#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/quotient.h"

namespace {

using namespace bdg;

Graph bench_graph(std::int64_t n) {
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  return shuffle_ports(make_connected_er(static_cast<std::size_t>(n), 0.0, rng),
                       rng);
}

void BM_RootedCode(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(rooted_code(g, 0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RootedCode)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_UnrootedCode(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(unrooted_code(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UnrootedCode)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_QuotientGraph(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(quotient_graph(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QuotientGraph)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_QuotientSymmetric(benchmark::State& state) {
  // Fully symmetric input: refinement converges immediately to one class.
  const Graph g = make_torus(static_cast<std::size_t>(state.range(0)),
                             static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(quotient_graph(g));
}
BENCHMARK(BM_QuotientSymmetric)->DenseRange(4, 12, 4);

void BM_CoveringWalk(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(covering_walk_ports(g, 0));
}
BENCHMARK(BM_CoveringWalk)->RangeMultiplier(2)->Range(8, 128);

void BM_TokenMapBuild(benchmark::State& state) {
  // Whole honest agent+token run in the engine (two robots).
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(explore::build_map_with_token(g, 0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TokenMapBuild)->RangeMultiplier(2)->Range(8, 32)->Complexity();

void BM_Isomorphic(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  Rng rng(5);
  std::vector<NodeId> perm(g.n());
  for (NodeId v = 0; v < g.n(); ++v) perm[v] = v;
  rng.shuffle(perm);
  const Graph h = relabel_nodes(g, perm);
  for (auto _ : state) benchmark::DoNotOptimize(isomorphic(g, h));
}
BENCHMARK(BM_Isomorphic)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

BENCHMARK_MAIN();
