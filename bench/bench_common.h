#pragma once
// Shared harness for the Table 1 row benchmarks.
//
// Each row bench sweeps n, runs the row's algorithm at its maximum claimed
// Byzantine tolerance against a chosen adversary, and prints a paper-style
// table: measured rounds, the claimed bound, tolerance verdict, plus a
// fitted growth exponent of the measured series. Wall-clock timing of the
// substrate operations is handled separately by google-benchmark in
// bench_substrates.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "graph/generators.h"
#include "graph/quotient.h"
#include "util/stats.h"
#include "util/table.h"

namespace bdg::bench {

struct RowPoint {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint64_t rounds = 0;
  std::uint64_t simulated = 0;
  bool dispersed = false;
  double seconds = 0.0;
};

/// Graph used across the sweeps: a port-shuffled connected ER graph with
/// all-distinct views (so every algorithm, including Theorem 1, applies).
[[nodiscard]] inline Graph sweep_graph(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 128; ++attempt) {
    const Graph g = shuffle_ports(make_connected_er(n, 0.0, rng), rng);
    if (has_trivial_quotient(g)) return g;
  }
  throw std::runtime_error("sweep_graph: no trivial-quotient sample");
}

[[nodiscard]] RowPoint run_point(core::Algorithm algo, const Graph& g,
                                 std::uint32_t f, core::ByzStrategy strategy,
                                 std::uint64_t seed);

struct RowBenchSpec {
  std::string title;             ///< e.g. "Table 1 row 5 (Theorem 4)"
  std::string claim;             ///< e.g. "O(n^3), gathered, f <= n/3-1"
  core::Algorithm algorithm;
  core::ByzStrategy strategy = core::ByzStrategy::kFakeSettler;
  std::vector<std::uint32_t> sizes;
  /// Claimed asymptotic bound as a function of n (for the ratio column).
  std::function<double(std::uint32_t)> bound;
  std::string bound_name;        ///< e.g. "n^3"
};

/// Run the sweep and print the table + fitted exponent; returns the
/// points for callers that post-process.
std::vector<RowPoint> run_row_bench(const RowBenchSpec& spec);

}  // namespace bdg::bench
