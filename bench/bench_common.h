#pragma once
// Shared harness for the Table 1 row benchmarks, built on the run/ sweep
// subsystem.
//
// Each row bench sweeps n, runs the row's algorithm at its maximum claimed
// Byzantine tolerance against a chosen adversary, and prints a paper-style
// table: measured rounds, the claimed bound, tolerance verdict, plus a
// fitted growth exponent of the measured series. The points themselves are
// expanded and executed (in parallel, bit-reproducibly) by
// run::run_sweep; set BDG_SWEEP_JSON / BDG_SWEEP_CSV to a path to also
// dump the raw sweep result for plotting. Wall-clock timing of the
// substrate operations is handled separately by google-benchmark in
// bench_substrates.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "graph/generators.h"
#include "graph/quotient.h"
#include "run/report.h"
#include "run/sweep.h"
#include "util/stats.h"
#include "util/table.h"

namespace bdg::bench {

struct RowPoint {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  core::Round rounds = 0;
  std::uint64_t simulated = 0;
  bool dispersed = false;
  double seconds = 0.0;
};

/// Base sweep spec shared by the row/figure benches: the sparse ER family
/// restricted to all-distinct views (so every algorithm, including
/// Theorem 1, applies to the same graphs).
[[nodiscard]] run::SweepSpec sweep_base();

/// Graph used by ad-hoc bench probes: a port-shuffled connected ER graph
/// with all-distinct views, via the run/ registry.
[[nodiscard]] Graph sweep_graph(std::uint32_t n, std::uint64_t seed);

/// Run one (algorithm, graph, f) probe through core::run_scenario.
[[nodiscard]] RowPoint run_point(core::Algorithm algo, const Graph& g,
                                 std::uint32_t f, core::ByzStrategy strategy,
                                 std::uint64_t seed);

[[nodiscard]] RowPoint to_row_point(const run::PointResult& p);

/// Honor BDG_SWEEP_JSON / BDG_SWEEP_CSV: dump the raw sweep result to the
/// given paths (no-op when unset). Each binary should issue one sweep and
/// dump once — a second dump truncate-overwrites the file.
void maybe_dump_sweep(const run::SweepResult& result);

struct RowBenchSpec {
  std::string title;             ///< e.g. "Table 1 row 5 (Theorem 4)"
  std::string claim;             ///< e.g. "O(n^3), gathered, f <= n/3-1"
  core::Algorithm algorithm;
  core::ByzStrategy strategy = core::ByzStrategy::kFakeSettler;
  std::vector<std::uint32_t> sizes;
  /// Claimed asymptotic bound as a function of n (for the ratio column).
  std::function<double(std::uint32_t)> bound;
  std::string bound_name;        ///< e.g. "n^3"
};

/// Run the sweep and print the table + fitted exponent; returns the
/// points for callers that post-process.
std::vector<RowPoint> run_row_bench(const RowBenchSpec& spec);

}  // namespace bdg::bench
