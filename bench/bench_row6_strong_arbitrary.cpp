// Table 1 row 6 (Theorem 7): exponential(n) rounds, arbitrary start,
// f <= floor(n/4)-1 STRONG Byzantine, f known to the robots. The charged
// exponential gathering ([24]'s strong-Byzantine group gathering)
// dominates; the engine fast-forwards it so wall time stays flat while the
// round counter grows as 2^n.
#include <cmath>

#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title =
      "Table 1 row 6 (Theorem 7): strong Byzantine from arbitrary start";
  spec.claim =
      "exponential(n) rounds (charged 2^n gathering), arbitrary start, "
      "f <= floor(n/4)-1 strong Byzantine, f known";
  spec.algorithm = core::Algorithm::kStrongArbitrary;
  spec.strategy = core::ByzStrategy::kSpoofer;
  spec.sizes = {8, 10, 12, 16, 20, 24};
  spec.bound = [](std::uint32_t n) { return std::pow(2.0, n); };
  spec.bound_name = "2^n";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
