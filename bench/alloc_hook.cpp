// Counting global operator new. Every variant bumps the counter and
// allocates with malloc/aligned_alloc; the matching default operator
// deletes call free, so the pairing stays correct without overriding
// delete. The counter is atomic because sweeps run engines on worker
// threads.
#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace bdg::bench {
namespace {
std::atomic<std::uint64_t> g_allocs{0};

void note_alloc() noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace bdg::bench

void* operator new(std::size_t n) {
  bdg::bench::note_alloc();
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return operator new(n); }

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  bdg::bench::note_alloc();
  return std::malloc(n != 0 ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}

void* operator new(std::size_t n, std::align_val_t al) {
  bdg::bench::note_alloc();
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) {
  return operator new(n, al);
}
