// Large-n big-round smoke: the exponential rows (row 2 / Theorem 2 and
// row 6 / Theorem 7) at n = 64 and n = 128 under the THEORY cost model —
// the points the 128-bit core::Round accounting unlocks (the pre-Round
// code capped their bounds at 2^62 from n ~ 64 on, and their n = 128
// charges exceed 64 bits outright).
//
// f = 0 on a star: the charged bounds do not depend on f for these rows,
// and a Byzantine-free run keeps the active (really simulated) phases to
// seconds while the charged prefixes — up to 2^127 rounds — are
// fast-forwarded. This is the perf-smoke point gating the widened hot
// path: the wake-queue keys, the fast-forward arithmetic and the report
// serialization all carry 128-bit rounds here.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace bdg;
  using core::Algorithm;
  std::printf("== Large-n big rounds: exponential rows, theory cost ==\n\n");

  run::SweepSpec sweep = bench::sweep_base();
  // Override the row-bench family defaults: the star keeps map-finding
  // walks shallow at n = 128, and the exponential rows need neither
  // distinct views nor a common graph with other algorithms.
  sweep.families = {"star"};
  sweep.require_trivial_quotient = false;
  sweep.common_graphs = false;
  sweep.sizes = {64, 128};
  sweep.byzantine_counts = {0};
  sweep.cost = gather::CostModel{/*scaled=*/false};
  sweep.algorithms = {Algorithm::kTournamentArbitrary,
                      Algorithm::kStrongArbitrary};
  const run::SweepResult result = run::run_sweep(sweep);
  bench::maybe_dump_sweep(result);

  Table table({"algorithm", "n", "rounds", "planned", "simulated", "sec"});
  bool ok = true;
  for (const run::PointResult& p : result.points) {
    if (p.skipped) {
      std::printf("n=%u SKIPPED (%s)\n", p.point.n, p.skip_reason.c_str());
      ok = false;
      continue;
    }
    // Every point must be exact; the n = 128 charges must genuinely leave
    // 64-bit territory (row2: ~2^69, row6: 2^127).
    ok = ok && p.ok && !p.stats.rounds.is_saturated() &&
         (p.point.n < 128 || p.stats.rounds > core::Round::exp2(64));
    table.add_row({core::to_string(p.point.algorithm),
                   Table::num(static_cast<std::uint64_t>(p.point.n)),
                   Table::num(p.stats.rounds), Table::num(p.planned_rounds),
                   Table::num(p.stats.simulated_rounds),
                   Table::num(p.seconds, 2)});
  }
  table.print(std::cout);
  std::printf("\nall points exact (> 2^64, non-saturated) and dispersed: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
