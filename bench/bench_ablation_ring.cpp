// Ablation 4: ring specialization vs general machinery on the SAME rings.
// The paper generalizes the O(n) ring algorithm of [34, 36] to arbitrary
// graphs; the generality is paid for in rounds. Compare, on port-shuffled
// rings: the ring baseline (constructive O(n) Find-Map), Theorem 1
// (charged poly Find-Map via the quotient), and Theorem 4 (group map
// finding — no graph-class restriction at all, lower tolerance).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "graph/quotient.h"

int main() {
  using namespace bdg;
  std::printf(
      "== Ablation 4: ring baseline [34,36] vs general algorithms on "
      "port-shuffled rings ==\n\n");

  Table table({"n", "ring-baseline rounds", "Thm1 rounds", "Thm4 rounds",
               "baseline f", "Thm1 applies", "all dispersed"});
  bool ok = true;
  for (const std::uint32_t n : {8u, 16u, 24u, 32u}) {
    // Shuffled rings almost always have all-distinct views; resample so
    // Theorem 1 applies on the same instance.
    Rng rng(90 + n);
    Graph g = shuffle_ports(make_ring(n), rng);
    int guard = 0;
    while (!has_trivial_quotient(g) && ++guard < 64)
      g = shuffle_ports(make_ring(n), rng);
    const bool t1_applies = has_trivial_quotient(g);

    const auto ring = bench::run_point(core::Algorithm::kRingBaseline, g,
                                       n - 1, core::ByzStrategy::kFakeSettler,
                                       n);
    const auto t1 = bench::run_point(core::Algorithm::kQuotient, g, n - 1,
                                     core::ByzStrategy::kFakeSettler, n);
    const auto t4 =
        bench::run_point(core::Algorithm::kThreeGroupGathered, g, n / 3 - 1,
                         core::ByzStrategy::kMapLiar, n);
    ok = ok && ring.dispersed && t1.dispersed && t4.dispersed;
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(ring.rounds), Table::num(t1.rounds),
                   Table::num(t4.rounds),
                   Table::num(static_cast<std::uint64_t>(n - 1)),
                   t1_applies ? "yes" : "NO",
                   (ring.dispersed && t1.dispersed && t4.dispersed) ? "yes"
                                                                    : "NO"});
  }
  table.print(std::cout);
  std::printf(
      "\nthe specialization stays linear while the general Theorem 1 pays "
      "its charged poly(n) Find-Map and Theorem 4 pays Theta(n^3) windows "
      "— the cost of generality the paper's Section 1.3 discusses.\nall "
      "dispersed: %s\n",
      ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
