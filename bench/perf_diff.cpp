// perf_diff: compare a fresh benchmark CSV against a committed baseline.
//
// Works on any CSV whose header names its columns (the run/ points schema
// and the bench_hotpaths quotient schema alike). Columns split three ways:
//
//  * deterministic metrics (ok, rounds, simulated_rounds, moves, messages,
//    planned_rounds, derived_seed, num_classes): must match the baseline
//    EXACTLY — any drift means the simulation behaves differently and
//    fails regardless of tolerance;
//  * wall-clock (seconds): gated by ratio. current > tolerance * baseline
//    fails, but only when the baseline is at least --min-seconds (tiny
//    points measure scheduler noise, not the code under test);
//  * everything else: part of the row key. Baseline and current must
//    contain exactly the same key set, so a silently changed grid cannot
//    masquerade as a pass — re-record baselines when a bench changes.
//
// Usage:
//   perf_diff <baseline.csv> <current.csv> [--tolerance R] [--min-seconds S]
// Exit code: 0 = pass, 1 = regression/drift, 2 = usage/parse error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

const char* const kExactColumns[] = {
    "ok",       "rounds",       "simulated_rounds", "moves",
    "messages", "planned_rounds", "derived_seed",   "num_classes"};

bool is_exact_column(const std::string& name) {
  for (const char* c : kExactColumns)
    if (name == c) return true;
  return false;
}

/// Split one CSV line honoring double-quoted fields (algorithm names carry
/// commas in their citation brackets).
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

struct Table {
  std::vector<std::string> columns;
  // key (joined key fields) -> column -> value
  std::map<std::string, std::map<std::string, std::string>> rows;
};

bool load(const char* path, Table& out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "perf_diff: cannot open %s\n", path);
    return false;
  }
  std::string line;
  if (!std::getline(is, line)) {
    std::fprintf(stderr, "perf_diff: %s is empty\n", path);
    return false;
  }
  out.columns = split_csv(line);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv(line);
    if (fields.size() != out.columns.size()) {
      std::fprintf(stderr, "perf_diff: %s: row has %zu fields, header %zu\n",
                   path, fields.size(), out.columns.size());
      return false;
    }
    std::string key;
    std::map<std::string, std::string> row;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const std::string& col = out.columns[i];
      if (col == "seconds" || is_exact_column(col)) {
        row[col] = fields[i];
      } else {
        if (!key.empty()) key += '|';
        key += fields[i];
      }
    }
    if (!out.rows.emplace(std::move(key), std::move(row)).second) {
      std::fprintf(stderr, "perf_diff: %s: duplicate key\n", path);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double tolerance = 2.0;
  double min_seconds = 0.01;
  // Accepts both "--flag value" and "--flag=value"; a malformed or missing
  // number is a usage error, never a silently-zero gate.
  const auto parse_double = [&](const char* flag, const char* text,
                                double& out) {
    char* end = nullptr;
    out = std::strtod(text, &end);
    if (end == text || *end != '\0' || out < 0) {
      std::fprintf(stderr, "perf_diff: bad value for %s: '%s'\n", flag, text);
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    double* target = nullptr;
    const char* flag = nullptr;
    if (std::strncmp(arg, "--tolerance", 11) == 0) {
      target = &tolerance;
      flag = "--tolerance";
    } else if (std::strncmp(arg, "--min-seconds", 13) == 0) {
      target = &min_seconds;
      flag = "--min-seconds";
    }
    if (target != nullptr) {
      const char* rest = arg + std::strlen(flag);
      const char* value = nullptr;
      if (*rest == '=') {
        value = rest + 1;
      } else if (*rest == '\0' && i + 1 < argc) {
        value = argv[++i];
      } else if (*rest != '\0') {
        target = nullptr;  // e.g. --tolerancex: not this flag after all
      } else {
        std::fprintf(stderr, "perf_diff: %s needs a value\n", flag);
        return 2;
      }
      if (target != nullptr) {
        if (!parse_double(flag, value, *target)) return 2;
        continue;
      }
    }
    if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "perf_diff: unknown flag %s\n", arg);
      return 2;
    } else if (baseline_path == nullptr) {
      baseline_path = arg;
    } else if (current_path == nullptr) {
      current_path = arg;
    } else {
      std::fprintf(stderr, "perf_diff: unexpected argument %s\n", arg);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: perf_diff <baseline.csv> <current.csv>"
                 " [--tolerance R] [--min-seconds S]\n");
    return 2;
  }

  Table base, cur;
  if (!load(baseline_path, base) || !load(current_path, cur)) return 2;
  if (base.columns != cur.columns) {
    std::fprintf(stderr,
                 "FAIL: column sets differ (bench schema changed?"
                 " re-record baselines)\n");
    return 1;
  }

  int failures = 0;
  for (const auto& [key, brow] : base.rows) {
    const auto it = cur.rows.find(key);
    if (it == cur.rows.end()) {
      std::printf("FAIL [%s]: missing from current run (grid changed?"
                  " re-record baselines)\n", key.c_str());
      ++failures;
      continue;
    }
    const auto& crow = it->second;
    bool drift = false;
    for (const auto& [col, bval] : brow) {
      if (col == "seconds") continue;
      const std::string& cval = crow.at(col);
      if (bval != cval) {
        std::printf("FAIL [%s]: %s changed %s -> %s (deterministic metric"
                    " drifted)\n", key.c_str(), col.c_str(), bval.c_str(),
                    cval.c_str());
        drift = true;
      }
    }
    if (drift) ++failures;
    const auto bsec_it = brow.find("seconds");
    if (bsec_it == brow.end()) continue;
    const double bsec = std::atof(bsec_it->second.c_str());
    const double csec = std::atof(crow.at("seconds").c_str());
    const double ratio = bsec > 0 ? csec / bsec : 0.0;
    const bool gated = bsec >= min_seconds;
    const bool slow = gated && ratio > tolerance;
    std::printf("%s [%s]: %.6fs -> %.6fs (%.2fx %s)%s\n",
                slow ? "FAIL" : "  ok", key.c_str(), bsec, csec,
                ratio > 0 && ratio < 1 ? 1.0 / ratio : ratio,
                ratio <= 1 ? "speedup" : "slowdown",
                gated ? "" : " [untimed: below --min-seconds]");
    if (slow) ++failures;
  }
  for (const auto& [key, crow] : cur.rows) {
    (void)crow;
    if (base.rows.find(key) == base.rows.end()) {
      std::printf("FAIL [%s]: not in baseline (grid changed?"
                  " re-record baselines)\n", key.c_str());
      ++failures;
    }
  }

  if (failures != 0) {
    std::printf("perf_diff: %d failure(s) vs %s\n", failures, baseline_path);
    return 1;
  }
  std::printf("perf_diff: OK (%zu points, tolerance %.2fx, min %.3fs)\n",
              base.rows.size(), tolerance, min_seconds);
  return 0;
}
