// Figure A (synthetic; the paper reports bounds, we plot the series they
// imply): rounds vs n for all seven algorithms on a common graph family,
// each at its maximum claimed tolerance. The expected ordering is
//   row5 O(n^3) ~ row7 O(n^3) < row4 O(n^4) < row2 (gather-dominated)
//   << row6 exponential,
// with row1 sitting at its charged Find-Map polynomial and row3 between
// row5 and row4.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace bdg;
  using core::Algorithm;
  std::printf("== Figure A: rounds vs n, all algorithms ==\n\n");

  struct Entry {
    Algorithm algo;
    const char* label;
    core::ByzStrategy strategy;
  };
  const Entry entries[] = {
      {Algorithm::kQuotient, "row1 Thm1 quotient", core::ByzStrategy::kFakeSettler},
      {Algorithm::kTournamentArbitrary, "row2 Thm2 half-arbitrary",
       core::ByzStrategy::kFakeSettler},
      {Algorithm::kSqrtArbitrary, "row3 Thm5 sqrt-arbitrary",
       core::ByzStrategy::kFakeSettler},
      {Algorithm::kTournamentGathered, "row4 Thm3 half-gathered",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kThreeGroupGathered, "row5 Thm4 third-gathered",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kStrongArbitrary, "row6 Thm7 strong-arbitrary",
       core::ByzStrategy::kSpoofer},
      {Algorithm::kStrongGathered, "row7 Thm6 strong-gathered",
       core::ByzStrategy::kSpoofer},
  };

  const std::vector<std::uint32_t> sizes{8, 12, 16};
  Table table({"algorithm", "n=8", "n=12", "n=16", "fitted n^e"});
  bool ok = true;
  for (const Entry& e : entries) {
    std::vector<std::string> row{e.label};
    std::vector<double> xs, ys;
    for (const std::uint32_t n : sizes) {
      const Graph g = bench::sweep_graph(n, 500 + n);
      const std::uint32_t f = core::max_tolerated_f(e.algo, n);
      const auto p = bench::run_point(e.algo, g, f, e.strategy, n);
      ok = ok && p.dispersed;
      row.push_back(Table::num(p.rounds) + (p.dispersed ? "" : "(FAIL)"));
      xs.push_back(n);
      ys.push_back(static_cast<double>(p.rounds));
    }
    const PowerFit fit = fit_power_law(xs, ys);
    row.push_back(Table::num(fit.exponent, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nall points dispersed: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
