// Figure A (synthetic; the paper reports bounds, we plot the series they
// imply): rounds vs n for all seven algorithms on a common graph family,
// each at its maximum claimed tolerance. The expected ordering is
//   row5 O(n^3) ~ row7 O(n^3) < row4 O(n^4) < row2 (gather-dominated)
//   << row6 exponential,
// with row1 sitting at its charged Find-Map polynomial and row3 between
// row5 and row4. Every series is one run::run_sweep call, so the points
// execute in parallel and land in deterministic grid order.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace bdg;
  using core::Algorithm;
  std::printf("== Figure A: rounds vs n, all algorithms ==\n\n");

  struct Entry {
    Algorithm algo;
    const char* label;
    core::ByzStrategy strategy;
  };
  const Entry entries[] = {
      {Algorithm::kQuotient, "row1 Thm1 quotient", core::ByzStrategy::kFakeSettler},
      {Algorithm::kTournamentArbitrary, "row2 Thm2 half-arbitrary",
       core::ByzStrategy::kFakeSettler},
      {Algorithm::kSqrtArbitrary, "row3 Thm5 sqrt-arbitrary",
       core::ByzStrategy::kFakeSettler},
      {Algorithm::kTournamentGathered, "row4 Thm3 half-gathered",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kThreeGroupGathered, "row5 Thm4 third-gathered",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kStrongArbitrary, "row6 Thm7 strong-arbitrary",
       core::ByzStrategy::kSpoofer},
      {Algorithm::kStrongGathered, "row7 Thm6 strong-gathered",
       core::ByzStrategy::kSpoofer},
  };

  const std::vector<std::uint32_t> sizes{8, 12, 16};

  // One sweep over the full (algorithm x n) grid — all 21 points run in
  // parallel, each algorithm against its own adversary via the overrides.
  run::SweepSpec sweep = bench::sweep_base();
  sweep.sizes = sizes;
  for (const Entry& e : entries) {
    sweep.algorithms.push_back(e.algo);
    sweep.strategy_overrides[e.algo] = e.strategy;
  }
  const run::SweepResult result = run::run_sweep(sweep);
  bench::maybe_dump_sweep(result);

  Table table({"algorithm", "n=8", "n=12", "n=16", "fitted n^e"});
  bool ok = true;
  std::size_t next = 0;  // grid order is algorithm-major, sizes within
  for (const Entry& e : entries) {
    std::vector<std::string> row{e.label};
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < sizes.size(); ++i, ++next) {
      const run::PointResult& pr = result.points.at(next);
      if (pr.point.algorithm != e.algo || pr.point.n != sizes[i]) {
        std::fprintf(stderr, "grid order mismatch at point %zu\n", next);
        return 2;
      }
      if (pr.skipped) {
        ok = false;
        row.push_back("SKIP");
        continue;
      }
      ok = ok && pr.ok;
      row.push_back(Table::num(pr.stats.rounds) + (pr.ok ? "" : "(FAIL)"));
      xs.push_back(pr.point.n);
      ys.push_back(static_cast<double>(pr.stats.rounds));
    }
    const PowerFit fit = fit_power_law(xs, ys);
    row.push_back(Table::num(fit.exponent, 2));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf("\nall points dispersed: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
