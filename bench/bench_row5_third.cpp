// Table 1 row 5 (Theorem 4): O(n^3) rounds, gathered start,
// f <= floor(n/3)-1 weak Byzantine, any graph.
#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title = "Table 1 row 5 (Theorem 4): three-group map finding, gathered";
  spec.claim = "O(n^3) rounds, gathered, f <= floor(n/3)-1 weak Byzantine";
  spec.algorithm = core::Algorithm::kThreeGroupGathered;
  spec.strategy = core::ByzStrategy::kMapLiar;
  spec.sizes = {6, 9, 12, 15, 18, 24};
  spec.bound = [](std::uint32_t n) {
    return static_cast<double>(n) * n * n;
  };
  spec.bound_name = "n^3";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
