#pragma once
// Bench-only allocation counter. alloc_hook.cpp replaces the global
// operator new with a counting wrapper; it is linked ONLY into
// bench_hotpaths (see bench/CMakeLists.txt), so the library code under
// test is exactly what ships — the hook observes it from outside the
// binary's allocation seam. Used to pin the flat-container/pooled-payload
// claim directly: steady-state engine rounds perform ZERO allocations.
#include <cstdint>

namespace bdg::bench {

/// Global operator new invocations (all variants) since process start.
[[nodiscard]] std::uint64_t alloc_count() noexcept;

}  // namespace bdg::bench
