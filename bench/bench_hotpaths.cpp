// Hot-path wall-clock benchmark: the two sweep-time dominators called out
// by the ROADMAP, measured in isolation so baselines/perf_diff can gate
// them directly.
//
//  * quotient refinement (graph/quotient.cpp) on graphs chosen to stress
//    both regimes: near-symmetric graphs where refinement needs many
//    passes (path/ring: the single port "defect" propagates one hop per
//    pass) and random graphs that shatter into singletons quickly;
//  * engine sub-round scheduling (sim/engine.cpp) via mid-size scenario
//    points, where per-round work — not the protocol — dominates;
//  * tournament pairing windows (core/tournament_dispersion.cpp), batched
//    and unbatched, so the map-cache/early-close speedup is timed in
//    isolation and its active-round collapse is gated exactly — plus the
//    f > 0 compiled-adversary pair (core/byzantine.cpp range effects): an
//    always-broadcasting squatter with the interpreter on vs. off, gating
//    the adversarial-batching speedup the same way.
//
// A fourth section pins the flat-container/pooled-payload claim at the
// allocator seam: with the bench-local operator-new hook (alloc_hook.cpp,
// linked only into this binary) counting every allocation, a steady-state
// messaging loop must perform ZERO allocations per round once pools and
// spill capacities are warm. A nonzero count fails the binary directly
// AND lands in the CSV, whose rows perf_diff compares as key columns.
//
// Output: four CSVs (quotient rows: name,n,num_classes,reps,seconds;
// engine rows: the run/ points schema; pairing rows:
// algorithm,n,f,strategy,batched,compiled,reps,ok,rounds,simulated_rounds,
// moves,messages,planned_rounds,seconds; alloc rows:
// name,robots,payload_words,rounds,window_rounds,steady_allocs,messages).
// Usage:
//   bench_hotpaths [quotient_csv [engine_csv [pairing_csv [alloc_csv]]]]
// Paths default to stdout; "-" also means stdout. `seconds` is the
// minimum over reps; every other column is deterministic and compared
// exactly by perf_diff.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "alloc_hook.h"
#include "bench_common.h"
#include "sim/engine.h"

namespace {

using namespace bdg;

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void quotient_rows(std::ostream& os) {
  struct Case {
    std::string name;
    Graph g;
  };
  Rng rng(7);
  const Case cases[] = {
      {"path", make_path(1024)},
      {"ring", make_ring(512)},
      {"ring", make_ring(1024)},
      {"er_shuffled", shuffle_ports(make_connected_er(512, 0.0, rng), rng)},
      {"er_shuffled", shuffle_ports(make_connected_er(1024, 0.0, rng), rng)},
      {"torus", make_torus(32, 32)},
      {"hypercube", make_hypercube(10)},
  };
  os << "name,n,num_classes,reps,seconds\n";
  for (const Case& c : cases) {
    constexpr int kReps = 3;
    std::uint32_t classes = 0;
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double s =
          time_once([&] { classes = quotient_graph(c.g).num_classes; });
      best = rep == 0 ? s : std::min(best, s);
    }
    os << c.name << ',' << c.g.n() << ',' << classes << ',' << kReps << ','
       << best << '\n';
    std::fprintf(stderr, "[quotient %s n=%zu: %u classes, %.4fs]\n",
                 c.name.c_str(), c.g.n(), classes, best);
  }
}

/// Set false by pairing_rows if the compiled-adversary speedup claim
/// fails; main() turns it into a nonzero exit so CI perf-smoke catches a
/// regression even before perf_diff sees the baselines.
bool g_pairing_speedup_ok = true;

void pairing_rows(std::ostream& os) {
  // Row 4 (tournament-gathered) isolates Phase 2: no gathering prefix, so
  // the timer measures the pairing windows plus the short dispersion
  // phase. The f > 0 crash cases time the PR 5 early close (Byzantine
  // silence is the window tail it removes); the f > 0 squatter pair times
  // adversary compilation itself — an always-broadcasting squatter keeps
  // the engine awake every round unless the compiled interpreter parks it
  // as a range effect, so compiled=1 vs compiled=0 isolates exactly that.
  os << "algorithm,n,f,strategy,batched,compiled,reps,ok,rounds,"
        "simulated_rounds,moves,messages,planned_rounds,seconds\n";
  Rng rng(19);
  const Graph g24 = shuffle_ports(make_connected_er(24, 0.3, rng), rng);
  const Graph g48 = shuffle_ports(make_connected_er(48, 0.2, rng), rng);
  const Graph g64 = shuffle_ports(make_connected_er(64, 0.2, rng), rng);
  struct Case {
    const Graph* g;
    std::uint32_t f;
    core::ByzStrategy strategy;
    bool batched;
    bool compiled;
  };
  // Crash faults at n = 24 for the unbatched pair: unbatched, every crash
  // window costs the honest token a full t2 of active listening (at
  // n >= 48 that exceeds any sane bench budget).
  const Case cases[] = {
      {&g48, 0, core::ByzStrategy::kCrash, true, true},
      {&g48, 0, core::ByzStrategy::kCrash, false, true},
      {&g24, 5, core::ByzStrategy::kCrash, true, true},
      {&g24, 5, core::ByzStrategy::kCrash, false, true},
      {&g64, 0, core::ByzStrategy::kCrash, true, true},
      {&g64, 0, core::ByzStrategy::kCrash, false, true},
      {&g24, 5, core::ByzStrategy::kSquatter, true, true},
      {&g24, 5, core::ByzStrategy::kSquatter, true, false},
  };
  double squatter_compiled = 0, squatter_coroutine = 0;
  for (const Case& c : cases) {
    core::ScenarioConfig cfg;
    cfg.algorithm = core::Algorithm::kTournamentGathered;
    cfg.num_byzantine = c.f;
    cfg.strategy = c.strategy;
    cfg.seed = 17;
    cfg.batched_pairing = c.batched;
    cfg.compiled_adversary = c.compiled;
    constexpr int kReps = 3;
    core::ScenarioResult res;
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double s = time_once([&] { res = core::run_scenario(*c.g, cfg); });
      best = rep == 0 ? s : std::min(best, s);
    }
    if (c.strategy == core::ByzStrategy::kSquatter)
      (c.compiled ? squatter_compiled : squatter_coroutine) = best;
    os << core::to_string(cfg.algorithm) << ',' << c.g->n() << ',' << c.f
       << ',' << core::to_string(c.strategy) << ',' << (c.batched ? 1 : 0)
       << ',' << (c.compiled ? 1 : 0) << ',' << kReps << ','
       << (res.verify.ok() ? 1 : 0) << ',' << res.stats.rounds << ','
       << res.stats.simulated_rounds << ',' << res.stats.moves << ','
       << res.stats.messages << ',' << res.planned_rounds << ',' << best
       << '\n';
    std::fprintf(stderr, "[pairing n=%zu f=%u %s batched=%d compiled=%d: %.4fs]\n",
                 c.g->n(), c.f, core::to_string(c.strategy).c_str(),
                 c.batched ? 1 : 0, c.compiled ? 1 : 0, best);
  }
  // The PR's acceptance bar: compiling the adversary must at least halve
  // the batched-but-uncompiled wall clock on the squatter point.
  if (squatter_compiled * 2 > squatter_coroutine) {
    std::fprintf(stderr,
                 "pairing: compiled adversary too slow: %.4fs vs %.4fs "
                 "(need >= 2x)\n",
                 squatter_compiled, squatter_coroutine);
    g_pairing_speedup_ok = false;
  }
}

/// Set false by alloc_rows if the steady-state window allocated at all.
bool g_alloc_steady_ok = true;

constexpr std::uint32_t kChatterKind = 77;

/// Messaging hot loop: broadcast a pooled payload, read the co-located
/// inbox, repeat. Exercises exactly the engine paths the flat-container
/// work de-allocated: push_msg, pool recycle, inbox spill reuse.
sim::Proc chatter(sim::Ctx ctx, std::uint64_t rounds, std::uint64_t* sink) {
  const std::int64_t words[6] = {1, 2, 3, 4, 5,
                                 static_cast<std::int64_t>(ctx.self())};
  for (std::uint64_t r = 0; r < rounds; ++r) {
    ctx.broadcast_pooled(kChatterKind, words);
    co_await ctx.next_subround();
    std::uint64_t sum = 0;
    for (const sim::Msg& m : ctx.inbox())
      sum += m.data.size() + static_cast<std::uint64_t>(m.data[0]);
    *sink += sum;
    co_await ctx.end_round(std::nullopt);
  }
}

/// Records the allocation counter at every simulated round boundary.
struct AllocProbe final : sim::Observer {
  std::vector<std::uint64_t> counts;
  void on_round(core::Round) override {
    counts.push_back(bdg::bench::alloc_count());
  }
};

void alloc_rows(std::ostream& os) {
  constexpr std::uint64_t kRounds = 4096;
  constexpr std::uint32_t kRobots = 8;
  const Graph g = make_path(2);
  sim::Engine eng(g);
  std::uint64_t sink = 0;
  for (std::uint32_t i = 1; i <= kRobots; ++i)
    eng.add_robot(i, sim::Faultiness::kHonest, 0,
                  [&](sim::Ctx c) { return chatter(c, kRounds, &sink); });
  AllocProbe probe;
  probe.counts.reserve(kRounds + 8);  // the probe itself must not allocate
  eng.set_observer(&probe);
  const sim::RunStats st = eng.run(kRounds + 4);
  eng.set_observer(nullptr);
  // Allocations during round r land between on_round(r) and on_round(r+1);
  // the second half of the run is the steady-state window (pools warm,
  // inboxes spilled to their final capacity).
  const std::size_t lo = probe.counts.size() / 2;
  const std::size_t hi = probe.counts.size() - 1;
  const std::uint64_t steady = probe.counts[hi] - probe.counts[lo];
  os << "name,robots,payload_words,rounds,window_rounds,steady_allocs,"
        "messages\n";
  os << "engine_chatter," << kRobots << ",6," << kRounds << ',' << (hi - lo)
     << ',' << steady << ',' << st.messages << '\n';
  std::fprintf(stderr,
               "[alloc engine_chatter: %llu allocs over %zu steady rounds, "
               "%llu msgs, sink=%llu]\n",
               static_cast<unsigned long long>(steady), hi - lo,
               static_cast<unsigned long long>(st.messages),
               static_cast<unsigned long long>(sink));
  if (steady != 0) {
    std::fprintf(stderr,
                 "alloc: steady-state rounds allocated (%llu over %zu "
                 "rounds); the zero-allocation hot path regressed\n",
                 static_cast<unsigned long long>(steady), hi - lo);
    g_alloc_steady_ok = false;
  }
}

run::SweepResult engine_points() {
  run::SweepSpec spec = bench::sweep_base();
  spec.algorithms = {core::Algorithm::kQuotient,
                     core::Algorithm::kThreeGroupGathered};
  spec.strategy_overrides[core::Algorithm::kThreeGroupGathered] =
      core::ByzStrategy::kMapLiar;
  spec.sizes = {48, 64};
  return run::run_sweep(spec);
}

bool write_to(const char* path, const std::function<void(std::ostream&)>& fn) {
  if (path == nullptr || std::string(path) == "-") {
    fn(std::cout);
    return true;
  }
  std::ofstream os(path);
  fn(os);
  os.flush();
  std::fprintf(stderr, os ? "[hotpaths -> %s]\n" : "[hotpaths: cannot write %s]\n",
               path);
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = write_to(argc > 1 ? argv[1] : nullptr, quotient_rows);
  const run::SweepResult engine = engine_points();
  ok &= write_to(argc > 2 ? argv[2] : nullptr, [&](std::ostream& os) {
    run::write_points_csv(os, engine);
  });
  ok &= write_to(argc > 3 ? argv[3] : nullptr, pairing_rows);
  ok &= write_to(argc > 4 ? argv[4] : nullptr, alloc_rows);
  for (const run::PointResult& p : engine.points)
    if (!p.skipped && !p.ok) {
      std::fprintf(stderr, "engine point failed: %s\n", p.detail.c_str());
      ok = false;
    }
  ok &= g_pairing_speedup_ok;
  ok &= g_alloc_steady_ok;
  return ok ? 0 : 1;
}
