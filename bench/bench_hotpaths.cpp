// Hot-path wall-clock benchmark: the two sweep-time dominators called out
// by the ROADMAP, measured in isolation so baselines/perf_diff can gate
// them directly.
//
//  * quotient refinement (graph/quotient.cpp) on graphs chosen to stress
//    both regimes: near-symmetric graphs where refinement needs many
//    passes (path/ring: the single port "defect" propagates one hop per
//    pass) and random graphs that shatter into singletons quickly;
//  * engine sub-round scheduling (sim/engine.cpp) via mid-size scenario
//    points, where per-round work — not the protocol — dominates;
//  * tournament pairing windows (core/tournament_dispersion.cpp), batched
//    and unbatched, so the map-cache/early-close speedup is timed in
//    isolation and its active-round collapse is gated exactly — plus the
//    f > 0 compiled-adversary pair (core/byzantine.cpp range effects): an
//    always-broadcasting squatter with the interpreter on vs. off, gating
//    the adversarial-batching speedup the same way.
//
// Output: three CSVs (quotient rows: name,n,num_classes,reps,seconds;
// engine rows: the run/ points schema; pairing rows:
// algorithm,n,f,strategy,batched,compiled,reps,ok,rounds,simulated_rounds,
// moves,messages,planned_rounds,seconds). Usage:
//   bench_hotpaths [quotient_csv [engine_csv [pairing_csv]]]
// Paths default to stdout; "-" also means stdout. `seconds` is the
// minimum over reps; every other column is deterministic and compared
// exactly by perf_diff.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "bench_common.h"

namespace {

using namespace bdg;

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void quotient_rows(std::ostream& os) {
  struct Case {
    std::string name;
    Graph g;
  };
  Rng rng(7);
  const Case cases[] = {
      {"path", make_path(1024)},
      {"ring", make_ring(512)},
      {"ring", make_ring(1024)},
      {"er_shuffled", shuffle_ports(make_connected_er(512, 0.0, rng), rng)},
      {"er_shuffled", shuffle_ports(make_connected_er(1024, 0.0, rng), rng)},
      {"torus", make_torus(32, 32)},
      {"hypercube", make_hypercube(10)},
  };
  os << "name,n,num_classes,reps,seconds\n";
  for (const Case& c : cases) {
    constexpr int kReps = 3;
    std::uint32_t classes = 0;
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double s =
          time_once([&] { classes = quotient_graph(c.g).num_classes; });
      best = rep == 0 ? s : std::min(best, s);
    }
    os << c.name << ',' << c.g.n() << ',' << classes << ',' << kReps << ','
       << best << '\n';
    std::fprintf(stderr, "[quotient %s n=%zu: %u classes, %.4fs]\n",
                 c.name.c_str(), c.g.n(), classes, best);
  }
}

/// Set false by pairing_rows if the compiled-adversary speedup claim
/// fails; main() turns it into a nonzero exit so CI perf-smoke catches a
/// regression even before perf_diff sees the baselines.
bool g_pairing_speedup_ok = true;

void pairing_rows(std::ostream& os) {
  // Row 4 (tournament-gathered) isolates Phase 2: no gathering prefix, so
  // the timer measures the pairing windows plus the short dispersion
  // phase. The f > 0 crash cases time the PR 5 early close (Byzantine
  // silence is the window tail it removes); the f > 0 squatter pair times
  // adversary compilation itself — an always-broadcasting squatter keeps
  // the engine awake every round unless the compiled interpreter parks it
  // as a range effect, so compiled=1 vs compiled=0 isolates exactly that.
  os << "algorithm,n,f,strategy,batched,compiled,reps,ok,rounds,"
        "simulated_rounds,moves,messages,planned_rounds,seconds\n";
  Rng rng(19);
  const Graph g24 = shuffle_ports(make_connected_er(24, 0.3, rng), rng);
  const Graph g48 = shuffle_ports(make_connected_er(48, 0.2, rng), rng);
  const Graph g64 = shuffle_ports(make_connected_er(64, 0.2, rng), rng);
  struct Case {
    const Graph* g;
    std::uint32_t f;
    core::ByzStrategy strategy;
    bool batched;
    bool compiled;
  };
  // Crash faults at n = 24 for the unbatched pair: unbatched, every crash
  // window costs the honest token a full t2 of active listening (at
  // n >= 48 that exceeds any sane bench budget).
  const Case cases[] = {
      {&g48, 0, core::ByzStrategy::kCrash, true, true},
      {&g48, 0, core::ByzStrategy::kCrash, false, true},
      {&g24, 5, core::ByzStrategy::kCrash, true, true},
      {&g24, 5, core::ByzStrategy::kCrash, false, true},
      {&g64, 0, core::ByzStrategy::kCrash, true, true},
      {&g64, 0, core::ByzStrategy::kCrash, false, true},
      {&g24, 5, core::ByzStrategy::kSquatter, true, true},
      {&g24, 5, core::ByzStrategy::kSquatter, true, false},
  };
  double squatter_compiled = 0, squatter_coroutine = 0;
  for (const Case& c : cases) {
    core::ScenarioConfig cfg;
    cfg.algorithm = core::Algorithm::kTournamentGathered;
    cfg.num_byzantine = c.f;
    cfg.strategy = c.strategy;
    cfg.seed = 17;
    cfg.batched_pairing = c.batched;
    cfg.compiled_adversary = c.compiled;
    constexpr int kReps = 3;
    core::ScenarioResult res;
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double s = time_once([&] { res = core::run_scenario(*c.g, cfg); });
      best = rep == 0 ? s : std::min(best, s);
    }
    if (c.strategy == core::ByzStrategy::kSquatter)
      (c.compiled ? squatter_compiled : squatter_coroutine) = best;
    os << core::to_string(cfg.algorithm) << ',' << c.g->n() << ',' << c.f
       << ',' << core::to_string(c.strategy) << ',' << (c.batched ? 1 : 0)
       << ',' << (c.compiled ? 1 : 0) << ',' << kReps << ','
       << (res.verify.ok() ? 1 : 0) << ',' << res.stats.rounds << ','
       << res.stats.simulated_rounds << ',' << res.stats.moves << ','
       << res.stats.messages << ',' << res.planned_rounds << ',' << best
       << '\n';
    std::fprintf(stderr, "[pairing n=%zu f=%u %s batched=%d compiled=%d: %.4fs]\n",
                 c.g->n(), c.f, core::to_string(c.strategy).c_str(),
                 c.batched ? 1 : 0, c.compiled ? 1 : 0, best);
  }
  // The PR's acceptance bar: compiling the adversary must at least halve
  // the batched-but-uncompiled wall clock on the squatter point.
  if (squatter_compiled * 2 > squatter_coroutine) {
    std::fprintf(stderr,
                 "pairing: compiled adversary too slow: %.4fs vs %.4fs "
                 "(need >= 2x)\n",
                 squatter_compiled, squatter_coroutine);
    g_pairing_speedup_ok = false;
  }
}

run::SweepResult engine_points() {
  run::SweepSpec spec = bench::sweep_base();
  spec.algorithms = {core::Algorithm::kQuotient,
                     core::Algorithm::kThreeGroupGathered};
  spec.strategy_overrides[core::Algorithm::kThreeGroupGathered] =
      core::ByzStrategy::kMapLiar;
  spec.sizes = {48, 64};
  return run::run_sweep(spec);
}

bool write_to(const char* path, const std::function<void(std::ostream&)>& fn) {
  if (path == nullptr || std::string(path) == "-") {
    fn(std::cout);
    return true;
  }
  std::ofstream os(path);
  fn(os);
  os.flush();
  std::fprintf(stderr, os ? "[hotpaths -> %s]\n" : "[hotpaths: cannot write %s]\n",
               path);
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = write_to(argc > 1 ? argv[1] : nullptr, quotient_rows);
  const run::SweepResult engine = engine_points();
  ok &= write_to(argc > 2 ? argv[2] : nullptr, [&](std::ostream& os) {
    run::write_points_csv(os, engine);
  });
  ok &= write_to(argc > 3 ? argv[3] : nullptr, pairing_rows);
  for (const run::PointResult& p : engine.points)
    if (!p.skipped && !p.ok) {
      std::fprintf(stderr, "engine point failed: %s\n", p.detail.c_str());
      ok = false;
    }
  ok &= g_pairing_speedup_ok;
  return ok ? 0 : 1;
}
