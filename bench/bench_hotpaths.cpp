// Hot-path wall-clock benchmark: the two sweep-time dominators called out
// by the ROADMAP, measured in isolation so baselines/perf_diff can gate
// them directly.
//
//  * quotient refinement (graph/quotient.cpp) on graphs chosen to stress
//    both regimes: near-symmetric graphs where refinement needs many
//    passes (path/ring: the single port "defect" propagates one hop per
//    pass) and random graphs that shatter into singletons quickly;
//  * engine sub-round scheduling (sim/engine.cpp) via mid-size scenario
//    points, where per-round work — not the protocol — dominates.
//
// Output: two CSVs (quotient rows: name,n,num_classes,reps,seconds;
// engine rows: the run/ points schema). Usage:
//   bench_hotpaths [quotient_csv [engine_csv]]
// Paths default to stdout; "-" also means stdout. `seconds` is the
// minimum over reps; every other column is deterministic and compared
// exactly by perf_diff.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "bench_common.h"

namespace {

using namespace bdg;

double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void quotient_rows(std::ostream& os) {
  struct Case {
    std::string name;
    Graph g;
  };
  Rng rng(7);
  const Case cases[] = {
      {"path", make_path(1024)},
      {"ring", make_ring(512)},
      {"ring", make_ring(1024)},
      {"er_shuffled", shuffle_ports(make_connected_er(512, 0.0, rng), rng)},
      {"er_shuffled", shuffle_ports(make_connected_er(1024, 0.0, rng), rng)},
      {"torus", make_torus(32, 32)},
      {"hypercube", make_hypercube(10)},
  };
  os << "name,n,num_classes,reps,seconds\n";
  for (const Case& c : cases) {
    constexpr int kReps = 3;
    std::uint32_t classes = 0;
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double s =
          time_once([&] { classes = quotient_graph(c.g).num_classes; });
      best = rep == 0 ? s : std::min(best, s);
    }
    os << c.name << ',' << c.g.n() << ',' << classes << ',' << kReps << ','
       << best << '\n';
    std::fprintf(stderr, "[quotient %s n=%zu: %u classes, %.4fs]\n",
                 c.name.c_str(), c.g.n(), classes, best);
  }
}

run::SweepResult engine_points() {
  run::SweepSpec spec = bench::sweep_base();
  spec.algorithms = {core::Algorithm::kQuotient,
                     core::Algorithm::kThreeGroupGathered};
  spec.strategy_overrides[core::Algorithm::kThreeGroupGathered] =
      core::ByzStrategy::kMapLiar;
  spec.sizes = {48, 64};
  return run::run_sweep(spec);
}

bool write_to(const char* path, const std::function<void(std::ostream&)>& fn) {
  if (path == nullptr || std::string(path) == "-") {
    fn(std::cout);
    return true;
  }
  std::ofstream os(path);
  fn(os);
  os.flush();
  std::fprintf(stderr, os ? "[hotpaths -> %s]\n" : "[hotpaths: cannot write %s]\n",
               path);
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  bool ok = write_to(argc > 1 ? argv[1] : nullptr, quotient_rows);
  const run::SweepResult engine = engine_points();
  ok &= write_to(argc > 2 ? argv[2] : nullptr, [&](std::ostream& os) {
    run::write_points_csv(os, engine);
  });
  for (const run::PointResult& p : engine.points)
    if (!p.skipped && !p.ok) {
      std::fprintf(stderr, "engine point failed: %s\n", p.detail.c_str());
      ok = false;
    }
  return ok ? 0 : 1;
}
