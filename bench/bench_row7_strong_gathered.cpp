// Table 1 row 7 (Theorem 6): O(n^3) rounds, gathered start,
// f <= floor(n/4)-1 STRONG Byzantine (ID forgery), any graph.
#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title =
      "Table 1 row 7 (Theorem 6): two-group quorum map finding + silent "
      "assignment, gathered, strong Byzantine";
  spec.claim = "O(n^3) rounds, gathered, f <= floor(n/4)-1 strong Byzantine";
  spec.algorithm = core::Algorithm::kStrongGathered;
  spec.strategy = core::ByzStrategy::kSpoofer;
  spec.sizes = {8, 12, 16, 20, 24, 28};
  spec.bound = [](std::uint32_t n) {
    return static_cast<double>(n) * n * n;
  };
  spec.bound_name = "n^3";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
