// Table 1 row 4 (Theorem 3): O(n^4) rounds, gathered start,
// f <= floor(n/2)-1 weak Byzantine, any graph.
#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title = "Table 1 row 4 (Theorem 3): all-pairs tournament, gathered";
  spec.claim = "O(n^4) rounds, gathered, f <= floor(n/2)-1 weak Byzantine";
  spec.algorithm = core::Algorithm::kTournamentGathered;
  spec.strategy = core::ByzStrategy::kMapLiar;
  spec.sizes = {6, 8, 10, 12, 16};
  spec.bound = [](std::uint32_t n) {
    return static_cast<double>(n) * n * n * n;
  };
  spec.bound_name = "n^4";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
