// Figure B (synthetic): the Byzantine-tolerance frontier. For each
// algorithm, sweep f from 0 past the claimed tolerance and report whether
// dispersion still holds against the strongest matching adversary in the
// library. Within the claimed bound the verdict must be "ok" on every run;
// beyond it the guarantee lapses (failures are expected, though a weak
// adversary may still happen to lose). The whole (algorithm x f) grid is
// one run::run_sweep call with tolerance clamping off and per-algorithm
// strategy overrides, so all 45 points run in parallel; the grid is
// exported via BDG_SWEEP_JSON/CSV.
#include <cstdio>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace bdg;
  using core::Algorithm;
  std::printf("== Figure B: tolerance frontier (n = 12) ==\n\n");

  constexpr std::uint32_t kN = 12;
  constexpr std::uint32_t kMaxF = 8;

  struct Entry {
    Algorithm algo;
    const char* label;
    core::ByzStrategy strategy;
  };
  const Entry entries[] = {
      {Algorithm::kTournamentGathered, "row4 half-gathered (claim f<=5)",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kThreeGroupGathered, "row5 third-gathered (claim f<=3)",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kStrongGathered, "row7 strong-gathered (claim f<=2)",
       core::ByzStrategy::kSpoofer},
      {Algorithm::kSqrtArbitrary, "row3 sqrt-arbitrary (claim f<=2)",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kQuotient, "row1 quotient (claim f<=11)",
       core::ByzStrategy::kFakeSettler},
  };

  std::vector<std::string> header{"algorithm \\ f"};
  for (std::uint32_t f = 0; f <= kMaxF; ++f)
    header.push_back("f=" + std::to_string(f));
  Table table(std::move(header));

  run::SweepSpec sweep = bench::sweep_base();
  sweep.sizes = {kN};
  sweep.clamp_f_to_tolerance = false;
  for (std::uint32_t f = 0; f <= kMaxF; ++f)
    sweep.byzantine_counts.push_back(f);
  for (const Entry& e : entries) {
    sweep.algorithms.push_back(e.algo);
    sweep.strategy_overrides[e.algo] = e.strategy;
  }
  const run::SweepResult result = run::run_sweep(sweep);
  bench::maybe_dump_sweep(result);

  bool claims_hold = true;
  std::size_t next = 0;  // grid order: algorithm-major, f within
  for (const Entry& e : entries) {
    const std::uint32_t claimed = core::max_tolerated_f(e.algo, kN);
    std::vector<std::string> row{e.label};
    for (std::uint32_t f = 0; f <= kMaxF; ++f, ++next) {
      const run::PointResult& p = result.points.at(next);
      if (p.point.algorithm != e.algo || p.point.f != f) {
        std::fprintf(stderr, "grid order mismatch at point %zu\n", next);
        return 2;
      }
      const bool within = p.point.f <= claimed;
      if (p.skipped) {
        // A hole beyond the claim (f >= n, or no sample) proves nothing;
        // a hole within the claim voids the verdict.
        if (within) claims_hold = false;
        row.push_back(within ? "SKIP!" : "-");
        continue;
      }
      if (within && !p.ok) claims_hold = false;
      row.push_back(p.ok ? (within ? "ok" : "ok*")
                         : (within ? "FAIL!" : "fail"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf(
      "\nok = dispersed within claim; ok* = dispersed beyond claim (no "
      "guarantee); fail = expected lapse beyond claim; FAIL! = claim "
      "violation.\nall claims hold: %s\n",
      claims_hold ? "yes" : "NO");
  return claims_hold ? 0 : 1;
}
