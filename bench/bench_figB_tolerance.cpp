// Figure B (synthetic): the Byzantine-tolerance frontier. For each
// algorithm, sweep f from 0 past the claimed tolerance and report whether
// dispersion still holds against the strongest matching adversary in the
// library. Within the claimed bound the verdict must be "ok" on every run;
// beyond it the guarantee lapses (failures are expected, though a weak
// adversary may still happen to lose).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/parallel.h"

int main() {
  using namespace bdg;
  using core::Algorithm;
  std::printf("== Figure B: tolerance frontier (n = 12) ==\n\n");

  const std::uint32_t n = 12;
  const Graph g = bench::sweep_graph(n, 321);

  struct Entry {
    Algorithm algo;
    const char* label;
    core::ByzStrategy strategy;
  };
  const Entry entries[] = {
      {Algorithm::kTournamentGathered, "row4 half-gathered (claim f<=5)",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kThreeGroupGathered, "row5 third-gathered (claim f<=3)",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kStrongGathered, "row7 strong-gathered (claim f<=2)",
       core::ByzStrategy::kSpoofer},
      {Algorithm::kSqrtArbitrary, "row3 sqrt-arbitrary (claim f<=2)",
       core::ByzStrategy::kMapLiar},
      {Algorithm::kQuotient, "row1 quotient (claim f<=11)",
       core::ByzStrategy::kFakeSettler},
  };

  std::vector<std::string> header{"algorithm \\ f"};
  for (std::uint32_t f = 0; f <= 8; ++f)
    header.push_back("f=" + std::to_string(f));
  Table table(std::move(header));

  // The grid points are independent executions: sweep them in parallel
  // (each point owns its engine; results stay bit-reproducible).
  constexpr std::uint32_t kMaxF = 8;
  const std::size_t num_entries = std::size(entries);
  std::vector<bench::RowPoint> grid(num_entries * (kMaxF + 1));
  parallel_for_index(grid.size(), [&](std::size_t idx) {
    const Entry& e = entries[idx / (kMaxF + 1)];
    const auto f = static_cast<std::uint32_t>(idx % (kMaxF + 1));
    if (f >= n) return;
    grid[idx] = bench::run_point(e.algo, g, f, e.strategy, 7 * f + 3);
  });

  bool claims_hold = true;
  for (std::size_t ei = 0; ei < num_entries; ++ei) {
    const Entry& e = entries[ei];
    std::vector<std::string> row{e.label};
    const std::uint32_t claimed = core::max_tolerated_f(e.algo, n);
    for (std::uint32_t f = 0; f <= kMaxF; ++f) {
      if (f >= n) {
        row.push_back("-");
        continue;
      }
      const bench::RowPoint& p = grid[ei * (kMaxF + 1) + f];
      const bool within = f <= claimed;
      if (within && !p.dispersed) claims_hold = false;
      row.push_back(p.dispersed ? (within ? "ok" : "ok*")
                                : (within ? "FAIL!" : "fail"));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::printf(
      "\nok = dispersed within claim; ok* = dispersed beyond claim (no "
      "guarantee); fail = expected lapse beyond claim; FAIL! = claim "
      "violation.\nall claims hold: %s\n",
      claims_hold ? "yes" : "NO");
  return claims_hold ? 0 : 1;
}
