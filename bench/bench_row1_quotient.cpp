// Table 1 row 1 (Theorem 1): poly(n) rounds, arbitrary start, f <= n-1
// weak Byzantine, on graphs with G isomorphic to Q_G.
#include "bench_common.h"

int main() {
  using namespace bdg;
  bench::RowBenchSpec spec;
  spec.title = "Table 1 row 1 (Theorem 1): quotient-map dispersion";
  spec.claim =
      "polynomial(n) rounds, arbitrary start, f <= n-1 weak Byzantine, "
      "graphs with trivial quotient (charged Find-Map = n^3)";
  spec.algorithm = core::Algorithm::kQuotient;
  spec.strategy = core::ByzStrategy::kFakeSettler;
  spec.sizes = {8, 12, 16, 24, 32, 40};
  spec.bound = [](std::uint32_t n) {
    return static_cast<double>(n) * n * n;
  };
  spec.bound_name = "n^3";
  const auto points = bench::run_row_bench(spec);
  for (const auto& p : points)
    if (!p.dispersed) return 1;
  return 0;
}
