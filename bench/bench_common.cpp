#include "bench_common.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

namespace bdg::bench {

run::SweepSpec sweep_base() {
  run::SweepSpec spec;
  spec.families = {"er"};
  spec.require_trivial_quotient = true;
  spec.er_edge_probability = 0.0;  // near the connectivity threshold
  spec.strategy_follows_algorithm = false;
  // Controlled comparison: every algorithm and every f at a given (n,
  // seed) measure the same graph, as the paper's tables compare rows.
  spec.common_graphs = true;
  // Result caching across bench invocations: point a JSON-lines
  // checkpoint at a path and re-runs reuse every completed point (their
  // recorded wall seconds included — don't gate perf on cached runs).
  if (const char* ck = std::getenv("BDG_SWEEP_CHECKPOINT"))
    spec.checkpoint_path = ck;
  return spec;
}

Graph sweep_graph(std::uint32_t n, std::uint64_t seed) {
  auto g = run::build_family_graph("er", n, seed,
                                   /*need_trivial_quotient=*/true,
                                   /*er_edge_probability=*/0.0);
  if (!g) throw std::runtime_error("sweep_graph: no trivial-quotient sample");
  return *std::move(g);
}

RowPoint run_point(core::Algorithm algo, const Graph& g, std::uint32_t f,
                   core::ByzStrategy strategy, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.algorithm = algo;
  cfg.num_byzantine = f;
  cfg.strategy = strategy;
  cfg.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  const core::ScenarioResult res = core::run_scenario(g, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  RowPoint p;
  p.n = static_cast<std::uint32_t>(g.n());
  p.f = f;
  p.rounds = res.stats.rounds;
  p.simulated = res.stats.simulated_rounds;
  p.dispersed = res.verify.ok();
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

RowPoint to_row_point(const run::PointResult& p) {
  RowPoint r;
  r.n = p.point.n;
  r.f = p.point.f;
  r.rounds = p.stats.rounds;
  r.simulated = p.stats.simulated_rounds;
  r.dispersed = p.ok;
  r.seconds = p.seconds;
  return r;
}

void maybe_dump_sweep(const run::SweepResult& result) {
  const auto dump = [&](const char* env, const char* what,
                        void (*write)(std::ostream&, const run::SweepResult&)) {
    const char* path = std::getenv(env);
    if (path == nullptr) return;
    std::ofstream os(path);
    write(os, result);
    os.flush();  // surface buffered write errors before claiming success
    std::fprintf(stderr, os ? "[sweep %s -> %s]\n" : "[sweep %s: cannot write %s]\n",
                 what, path);
  };
  dump("BDG_SWEEP_JSON", "json", run::write_json);
  dump("BDG_SWEEP_CSV", "csv", run::write_points_csv);
}

std::vector<RowPoint> run_row_bench(const RowBenchSpec& spec) {
  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("paper claim: %s\n", spec.claim.c_str());
  std::printf("adversary: %s at maximum claimed tolerance\n\n",
              core::to_string(spec.strategy).c_str());

  run::SweepSpec sweep = sweep_base();
  sweep.algorithms = {spec.algorithm};
  sweep.sizes = spec.sizes;
  sweep.strategy = spec.strategy;
  const run::SweepResult result = run::run_sweep(sweep);
  maybe_dump_sweep(result);

  Table table({"n", "f", "rounds", "simulated", spec.bound_name,
               "rounds/" + spec.bound_name, "dispersed", "sec"});
  std::vector<RowPoint> points;
  std::vector<double> xs, ys;
  for (const run::PointResult& pr : result.points) {
    if (pr.skipped) {
      // A row bench point that cannot run is a failure of the bench, not
      // silence: record it undispersed so callers exit nonzero.
      std::printf("n=%u SKIPPED (%s) — counting as failure\n", pr.point.n,
                  pr.skip_reason.c_str());
      RowPoint p;
      p.n = pr.point.n;
      p.f = pr.point.f;
      p.dispersed = false;
      points.push_back(p);
      continue;
    }
    const RowPoint p = to_row_point(pr);
    points.push_back(p);
    const double bound = spec.bound(p.n);
    table.add_row({Table::num(static_cast<std::uint64_t>(p.n)),
                   Table::num(static_cast<std::uint64_t>(p.f)),
                   p.rounds.to_string(), Table::num(p.simulated),
                   Table::num(bound, 0),
                   Table::num(p.rounds.to_double() / bound, 3),
                   p.dispersed ? "yes" : "NO", Table::num(p.seconds, 2)});
    xs.push_back(p.n);
    ys.push_back(p.rounds.to_double());
  }
  table.print(std::cout);

  const PowerFit fit = fit_power_law(xs, ys);
  std::printf(
      "\nfitted growth: rounds ~ %.3g * n^%.2f   (R^2 = %.3f, claimed %s)\n\n",
      fit.constant, fit.exponent, fit.r2, spec.bound_name.c_str());
  return points;
}

}  // namespace bdg::bench
