#include "bench_common.h"

#include <chrono>

namespace bdg::bench {

RowPoint run_point(core::Algorithm algo, const Graph& g, std::uint32_t f,
                   core::ByzStrategy strategy, std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.algorithm = algo;
  cfg.num_byzantine = f;
  cfg.strategy = strategy;
  cfg.seed = seed;
  const auto t0 = std::chrono::steady_clock::now();
  const core::ScenarioResult res = core::run_scenario(g, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  RowPoint p;
  p.n = static_cast<std::uint32_t>(g.n());
  p.f = f;
  p.rounds = res.stats.rounds;
  p.simulated = res.stats.simulated_rounds;
  p.dispersed = res.verify.ok();
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

std::vector<RowPoint> run_row_bench(const RowBenchSpec& spec) {
  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("paper claim: %s\n", spec.claim.c_str());
  std::printf("adversary: %s at maximum claimed tolerance\n\n",
              core::to_string(spec.strategy).c_str());

  Table table({"n", "f", "rounds", "simulated", spec.bound_name,
               "rounds/" + spec.bound_name, "dispersed", "sec"});
  std::vector<RowPoint> points;
  std::vector<double> xs, ys;
  for (const std::uint32_t n : spec.sizes) {
    const Graph g = sweep_graph(n, 1000 + n);
    const std::uint32_t f = core::max_tolerated_f(spec.algorithm, n);
    const RowPoint p = run_point(spec.algorithm, g, f, spec.strategy, n);
    points.push_back(p);
    const double bound = spec.bound(n);
    table.add_row({Table::num(static_cast<std::uint64_t>(p.n)),
                   Table::num(static_cast<std::uint64_t>(p.f)),
                   Table::num(p.rounds), Table::num(p.simulated),
                   Table::num(bound, 0),
                   Table::num(static_cast<double>(p.rounds) / bound, 3),
                   p.dispersed ? "yes" : "NO", Table::num(p.seconds, 2)});
    xs.push_back(n);
    ys.push_back(static_cast<double>(p.rounds));
  }
  table.print(std::cout);

  const PowerFit fit = fit_power_law(xs, ys);
  std::printf(
      "\nfitted growth: rounds ~ %.3g * n^%.2f   (R^2 = %.3f, claimed %s)\n\n",
      fit.constant, fit.exponent, fit.r2, spec.bound_name.c_str());
  return points;
}

}  // namespace bdg::bench
