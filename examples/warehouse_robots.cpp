// Warehouse charging-dock assignment — the resource-allocation story the
// dispersion problem abstracts ("sharing the same resource is much more
// expensive than searching for an unused resource", paper Section 1).
//
// A fleet of transport robots roams a warehouse modeled as a grid of
// aisles; every cell has one charging dock. At the end of a shift each
// robot must claim a dock of its own. Some robots have corrupted firmware
// (they squat docks they don't use, or lie about occupying one). The
// Theorem 3 algorithm still assigns every healthy robot a private dock.
#include <cstdio>

#include "core/scenario.h"
#include "graph/generators.h"

int main() {
  using namespace bdg;

  const std::size_t rows = 3, cols = 4;
  const Graph warehouse = make_grid(rows, cols);
  const auto n = static_cast<std::uint32_t>(warehouse.n());
  std::printf("warehouse: %zux%zu grid, %u docks, %u robots\n", rows, cols, n,
              n);

  // Corrupted robots up to the Theorem 3 tolerance floor(n/2)-1; here 4.
  const std::uint32_t corrupted = 4;
  std::printf("corrupted firmware units: %u (dock squatters)\n", corrupted);

  core::ScenarioConfig cfg;
  cfg.algorithm = core::Algorithm::kTournamentGathered;  // shift start: depot
  cfg.num_byzantine = corrupted;
  cfg.strategy = core::ByzStrategy::kSquatter;
  cfg.seed = 99;

  const core::ScenarioResult res = core::run_scenario(warehouse, cfg);
  std::printf("rounds to full assignment: %s\n",
              res.stats.rounds.to_string().c_str());
  std::printf("healthy robots with a private dock: %s (worst dock load %u)\n",
              res.verify.ok() ? "all" : "FAILED", res.verify.worst_node_load);
  if (!res.verify.ok()) std::printf("detail: %s\n", res.verify.detail.c_str());

  // Contrast: the same fleet under a relocating liar.
  cfg.strategy = core::ByzStrategy::kFakeSettler;
  const core::ScenarioResult res2 = core::run_scenario(warehouse, cfg);
  std::printf("with relocating liars instead: %s\n",
              res2.verify.ok() ? "still all assigned" : "FAILED");
  return (res.verify.ok() && res2.verify.ok()) ? 0 : 1;
}
