// Sensor-network self-deployment with compromised nodes.
//
// Mobile sensors dropped at arbitrary positions on a communication
// backbone (a random regular topology) must spread out so that every relay
// site hosts at most one healthy sensor. Some sensors are compromised and
// can forge identities (strong Byzantine). This needs Theorem 7: gather
// despite strong adversaries (exponential charged rounds, f known), then
// the quorum map finding and the silent assignment phase.
#include <cstdio>

#include "core/scenario.h"
#include "graph/generators.h"

int main() {
  using namespace bdg;

  Rng rng(1234);
  const Graph backbone = make_random_regular(12, 3, rng);
  const auto n = static_cast<std::uint32_t>(backbone.n());
  const std::uint32_t compromised = n / 4 >= 1 ? n / 4 - 1 : 0;  // Thm 7 cap
  std::printf("backbone: %u relay sites (3-regular), %u sensors, %u compromised (strong)\n",
              n, n, compromised);

  core::ScenarioConfig cfg;
  cfg.algorithm = core::Algorithm::kStrongArbitrary;
  cfg.num_byzantine = compromised;
  cfg.strategy = core::ByzStrategy::kSpoofer;  // forges sensor IDs
  cfg.seed = 5;

  const core::ScenarioResult res = core::run_scenario(backbone, cfg);
  std::printf("charged rounds: %s (exponential gathering dominates)\n",
              res.stats.rounds.to_string().c_str());
  std::printf("rounds actually simulated: %llu\n",
              static_cast<unsigned long long>(res.stats.simulated_rounds));
  std::printf("healthy sensors dispersed: %s\n",
              res.verify.ok() ? "YES" : "NO");
  if (!res.verify.ok()) std::printf("detail: %s\n", res.verify.detail.c_str());

  // The same fleet, pre-gathered at a staging site, needs only O(n^3)
  // rounds (Theorem 6) — demonstrate the contrast.
  cfg.algorithm = core::Algorithm::kStrongGathered;
  const core::ScenarioResult res2 = core::run_scenario(backbone, cfg);
  std::printf("pre-gathered variant rounds: %s, dispersed: %s\n",
              res2.stats.rounds.to_string().c_str(),
              res2.verify.ok() ? "YES" : "NO");
  return (res.verify.ok() && res2.verify.ok()) ? 0 : 1;
}
