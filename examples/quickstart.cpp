// Quickstart: run Byzantine dispersion end-to-end in ~30 lines.
//
// Ten robots sit gathered on a 10-node random graph; three of them are
// Byzantine liars. The Theorem 4 algorithm (three-group map finding +
// Dispersion-Using-Map) spreads the honest robots so that no node holds
// two of them, despite the lies.
#include <cstdio>

#include "core/scenario.h"
#include "graph/generators.h"

int main() {
  using namespace bdg;

  // 1. A random connected port-labeled graph (seeded => reproducible).
  Rng rng(2021);
  const Graph g = shuffle_ports(make_connected_er(10, 0.4, rng), rng);
  std::printf("graph: n=%zu m=%zu max_degree=%u\n", g.n(), g.m(),
              g.max_degree());

  // 2. Configure the scenario: Theorem 4, f = floor(n/3)-1 = 2 Byzantine
  //    robots that claim to be settled and then relocate.
  core::ScenarioConfig cfg;
  cfg.algorithm = core::Algorithm::kThreeGroupGathered;
  cfg.num_byzantine = 2;
  cfg.strategy = core::ByzStrategy::kFakeSettler;
  cfg.seed = 7;

  // 3. Run and verify Definition 1.
  const core::ScenarioResult res = core::run_scenario(g, cfg);
  std::printf("algorithm: %s\n", core::to_string(cfg.algorithm).c_str());
  std::printf("rounds: %s (simulated %llu, fast-forwarded the rest)\n",
              res.stats.rounds.to_string().c_str(),
              static_cast<unsigned long long>(res.stats.simulated_rounds));
  std::printf("moves: %llu  messages: %llu\n",
              static_cast<unsigned long long>(res.stats.moves),
              static_cast<unsigned long long>(res.stats.messages));
  std::printf("byzantine dispersion achieved: %s\n",
              res.verify.ok() ? "YES" : "NO");
  if (!res.verify.ok()) std::printf("detail: %s\n", res.verify.detail.c_str());
  return res.verify.ok() ? 0 : 1;
}
