// dispersion_cli — run any scenario from the command line.
//
//   dispersion_cli [--algo=T1|T2|T3|T4|T5|T6|T7|EXT|RING] [--graph=er|ring|grid|
//                  torus|tree|regular|hypercube|complete] [--n=12] [--f=-1]
//                  [--strategy=NAME] [--seed=1] [--theory-cost] [--trace]
//                  [--graph-file=path.bdg1]
//
// f = -1 (default) uses the algorithm's maximum claimed tolerance.
// --theory-cost charges the paper's cited bounds verbatim (X(n) = n^5)
// instead of the scaled covering-walk model.
#include <cstdio>
#include <cstring>
#include <string>

#include <fstream>

#include "core/scenario.h"
#include "graph/generators.h"
#include "graph/serialize.h"
#include "graph/quotient.h"
#include "sim/trace.h"

namespace {

using namespace bdg;

struct Options {
  std::string algo = "T4";
  std::string graph = "er";
  std::string strategy = "fake_settler";
  std::uint32_t n = 12;
  std::int64_t f = -1;
  std::uint64_t seed = 1;
  bool theory_cost = false;
  bool trace = false;
  std::string graph_file;  // bdg1 file overriding --graph/--n
};

bool parse_arg(Options& opt, const std::string& arg) {
  auto value = [&](const char* key) -> const char* {
    const std::size_t len = std::strlen(key);
    if (arg.rfind(key, 0) == 0) return arg.c_str() + len;
    return nullptr;
  };
  if (const char* v = value("--algo=")) return (opt.algo = v, true);
  if (const char* v = value("--graph-file=")) return (opt.graph_file = v, true);
  if (const char* v = value("--graph=")) return (opt.graph = v, true);
  if (const char* v = value("--strategy=")) return (opt.strategy = v, true);
  if (const char* v = value("--n=")) return (opt.n = std::stoul(v), true);
  if (const char* v = value("--f=")) return (opt.f = std::stol(v), true);
  if (const char* v = value("--seed=")) return (opt.seed = std::stoull(v), true);
  if (arg == "--theory-cost") return (opt.theory_cost = true, true);
  if (arg == "--trace") return (opt.trace = true, true);
  return false;
}

core::Algorithm parse_algo(const std::string& s) {
  if (s == "T1") return core::Algorithm::kQuotient;
  if (s == "T2") return core::Algorithm::kTournamentArbitrary;
  if (s == "T3") return core::Algorithm::kTournamentGathered;
  if (s == "T4") return core::Algorithm::kThreeGroupGathered;
  if (s == "T5") return core::Algorithm::kSqrtArbitrary;
  if (s == "T6") return core::Algorithm::kStrongGathered;
  if (s == "T7") return core::Algorithm::kStrongArbitrary;
  if (s == "EXT") return core::Algorithm::kCrashRealGathering;
  if (s == "RING") return core::Algorithm::kRingBaseline;
  throw std::invalid_argument("unknown --algo " + s);
}

core::ByzStrategy parse_strategy(const std::string& s) {
  for (const auto strat : core::weak_strategies())
    if (core::to_string(strat) == s) return strat;
  if (s == "spoofer") return core::ByzStrategy::kSpoofer;
  throw std::invalid_argument("unknown --strategy " + s);
}

Graph build_graph(const Options& opt, Rng& rng) {
  if (!opt.graph_file.empty()) {
    std::ifstream in(opt.graph_file);
    if (!in) throw std::invalid_argument("cannot open " + opt.graph_file);
    return read_graph(in);
  }
  const std::size_t n = opt.n;
  if (opt.graph == "ring") return shuffle_ports(make_ring(n), rng);
  if (opt.graph == "grid") {
    std::size_t r = 2;
    while (r * r < n) ++r;
    return make_grid(r, (n + r - 1) / r);
  }
  if (opt.graph == "torus") {
    std::size_t r = 3;
    while (r * r < n) ++r;
    return make_torus(r, r);
  }
  if (opt.graph == "tree") return make_random_tree(n, rng);
  if (opt.graph == "regular")
    return make_random_regular(n + (n * 3 % 2), 3, rng);
  if (opt.graph == "hypercube") {
    std::size_t d = 1;
    while ((std::size_t{1} << d) < n) ++d;
    return make_hypercube(d);
  }
  if (opt.graph == "complete") return make_complete(n);
  return shuffle_ports(make_connected_er(n, 0.0, rng), rng);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (!parse_arg(opt, argv[i])) {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  Rng rng(opt.seed * 77 + 1);
  const Graph g = build_graph(opt, rng);

  core::ScenarioConfig cfg;
  cfg.algorithm = parse_algo(opt.algo);
  cfg.strategy = parse_strategy(opt.strategy);
  cfg.seed = opt.seed;
  cfg.cost = gather::CostModel{!opt.theory_cost};
  const auto n = static_cast<std::uint32_t>(g.n());
  cfg.num_byzantine = opt.f < 0 ? core::max_tolerated_f(cfg.algorithm, n)
                                : static_cast<std::uint32_t>(opt.f);

  sim::TraceRecorder trace;
  if (opt.trace) cfg.observer = &trace;

  std::printf("graph: %s n=%u m=%zu (trivial quotient: %s)\n",
              opt.graph.c_str(), n, g.m(),
              has_trivial_quotient(g) ? "yes" : "no");
  std::printf("algorithm: %s   f=%u   strategy=%s   cost=%s\n",
              core::to_string(cfg.algorithm).c_str(), cfg.num_byzantine,
              core::to_string(cfg.strategy).c_str(),
              opt.theory_cost ? "theory" : "scaled");

  const core::ScenarioResult res = core::run_scenario(g, cfg);
  std::printf("rounds=%s simulated=%llu moves=%llu messages=%llu\n",
              res.stats.rounds.to_string().c_str(),
              static_cast<unsigned long long>(res.stats.simulated_rounds),
              static_cast<unsigned long long>(res.stats.moves),
              static_cast<unsigned long long>(res.stats.messages));
  std::printf("dispersed: %s%s%s\n", res.verify.ok() ? "YES" : "NO",
              res.verify.detail.empty() ? "" : "  — ",
              res.verify.detail.c_str());

  if (opt.trace) {
    std::printf("\nper-robot activity (true IDs; message counts are per "
                "claimed ID):\n");
    for (const auto& [id, a] : trace.per_robot()) {
      std::printf("  robot %-6llu moves=%-7llu msgs=%-8llu done@%s\n",
                  static_cast<unsigned long long>(id),
                  static_cast<unsigned long long>(a.moves),
                  static_cast<unsigned long long>(a.messages),
                  a.done_round.to_string().c_str());
    }
  }
  return res.verify.ok() ? 0 : 1;
}
