// sweep_cli: the run/ scenario-sweep runner on the command line.
//
// Exposes the full (algorithm x graph-family x n x f x seed) grid that the
// benches drive programmatically, and reuses the run/ report writers, so a
// shell loop can produce the same JSON/CSV artifacts CI consumes:
//
//   sweep_cli --algorithms=quotient,three-group --families=er,ring
//             --sizes=8,12,16 --seeds=1,2,3 --points-csv=points.csv
//
// Production-sweep features ride the same grid: --k sweeps the Theorem 8
// robot-count axis, --mix pits heterogeneous adversary mixes, and
// --shard/--resume/--abort-after drive resumable sharded sweeps through a
// JSON-lines checkpoint:
//
//   sweep_cli --shard=0/2 --resume=ck.jsonl --no-timing ... &
//   sweep_cli --shard=1/2 --resume=ck.jsonl --no-timing ... &
//   wait; sweep_cli --resume=ck.jsonl --no-timing --points-csv=merged.csv ...
//
// Run with --help for the full flag list. Exit code: 0 when every
// non-skipped point disperses, 1 otherwise, 2 on usage errors, 3 when the
// sweep was aborted (--abort-after) before finishing, 4 when a grid point's
// round bound saturates 128-bit accounting (the offending (algorithm, n, f)
// is named on stderr — such grids are rejected, not silently skipped).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "run/report.h"
#include "run/sweep.h"

namespace {

using namespace bdg;

constexpr struct {
  const char* name;
  core::Algorithm algorithm;
} kAlgorithms[] = {
    {"quotient", core::Algorithm::kQuotient},
    {"tournament-arbitrary", core::Algorithm::kTournamentArbitrary},
    {"sqrt-arbitrary", core::Algorithm::kSqrtArbitrary},
    {"tournament-gathered", core::Algorithm::kTournamentGathered},
    {"three-group", core::Algorithm::kThreeGroupGathered},
    {"strong-arbitrary", core::Algorithm::kStrongArbitrary},
    {"strong-gathered", core::Algorithm::kStrongGathered},
    {"crash-real-gathering", core::Algorithm::kCrashRealGathering},
    {"ring-baseline", core::Algorithm::kRingBaseline},
};

constexpr struct {
  const char* name;
  core::ByzStrategy strategy;
} kStrategies[] = {
    {"crash", core::ByzStrategy::kCrash},
    {"random_walker", core::ByzStrategy::kRandomWalker},
    {"squatter", core::ByzStrategy::kSquatter},
    {"fake_settler", core::ByzStrategy::kFakeSettler},
    {"silent_settler", core::ByzStrategy::kSilentSettler},
    {"intent_spammer", core::ByzStrategy::kIntentSpammer},
    {"map_liar", core::ByzStrategy::kMapLiar},
    {"spoofer", core::ByzStrategy::kSpoofer},
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

void usage(std::FILE* to) {
  std::fputs(
      "usage: sweep_cli [flags]\n"
      "grid:\n"
      "  --algorithms=a,b,...   algorithms to sweep, or 'all' (default: all\n"
      "                         general-graph algorithms, no ring-baseline)\n"
      "  --families=f,g,...     graph families, or 'all' (default: er)\n"
      "  --sizes=n1,n2,...      node counts (default: 8,12,16)\n"
      "  --k=k1,k2,...          robot counts (Theorem 8 axis; default: k=n;\n"
      "                         0 means k=n; infeasible (k,n,f) points are\n"
      "                         recorded as structured skips)\n"
      "  --byz=f1,f2,...        Byzantine counts (default: per-algorithm\n"
      "                         maximum claimed tolerance)\n"
      "  --seeds=s1,s2,...      grid seeds, one repetition each (default: 1)\n"
      "scenario:\n"
      "  --strategy=name        fixed adversary for all algorithms (default:\n"
      "                         per-algorithm as the e2e suite chooses)\n"
      "  --mix=a+b,c+d,...      heterogeneous adversary mixes ('+'-joined\n"
      "                         strategy names; each mix adds a grid axis).\n"
      "                         A mix is a multiset: it is canonicalized\n"
      "                         (sorted), then Byzantine robot i runs\n"
      "                         mix[i %% len] of the canonical order\n"
      "  --no-clamp             keep f values beyond an algorithm's tolerance\n"
      "  --require-trivial-quotient  restrict graphs to all-distinct views\n"
      "  --common-graphs        share the graph across algorithms and f per\n"
      "                         (family, n, seed) cell\n"
      "  --er-p=P               ER edge probability (<=0: connectivity\n"
      "                         threshold; default 0.45)\n"
      "  --base-seed=S          reseed the whole sweep\n"
      "execution:\n"
      "  --threads=N            worker threads (default: hardware)\n"
      "  --shard=i/m            run only stripe i of m of the grid (union\n"
      "                         of all stripes = the full grid)\n"
      "  --resume=PATH          JSON-lines checkpoint: completed points are\n"
      "                         loaded instead of re-run, new ones appended\n"
      "  --abort-after=N        abort after N newly-run points (testing and\n"
      "                         CI resume smoke; exit code 3)\n"
      "  --progress             print one line per completed point to stderr\n"
      "  --no-timing            zero all seconds fields: reports become a\n"
      "                         pure function of the grid (resume/shard\n"
      "                         conformance diffs run in this mode)\n"
      "output:\n"
      "  --points-csv=PATH      per-point CSV ('-' = stdout)\n"
      "  --cells-csv=PATH       per-cell aggregate CSV ('-' = stdout)\n"
      "  --json=PATH            full JSON report ('-' = stdout)\n"
      "  --quiet                suppress the summary line\n"
      "algorithm names:\n",
      to);
  for (const auto& a : kAlgorithms) std::fprintf(to, "  %s\n", a.name);
  std::fputs("strategy names:\n", to);
  for (const auto& s : kStrategies) std::fprintf(to, "  %s\n", s.name);
}

std::optional<core::Algorithm> parse_algorithm(const std::string& name) {
  for (const auto& a : kAlgorithms)
    if (name == a.name) return a.algorithm;
  return std::nullopt;
}

std::optional<core::ByzStrategy> parse_strategy(const std::string& name) {
  return core::strategy_from_string(name);  // CLI names == to_string names
}

bool write_report(const std::string& path, const run::SweepResult& result,
                  void (*write)(std::ostream&, const run::SweepResult&)) {
  if (path == "-") {
    write(std::cout, result);
    return true;
  }
  std::ofstream os(path);
  write(os, result);
  os.flush();
  if (!os) std::fprintf(stderr, "sweep_cli: cannot write %s\n", path.c_str());
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  run::SweepSpec spec;
  spec.families = {"er"};
  spec.sizes = {8, 12, 16};
  std::string points_csv, cells_csv, json;
  bool quiet = false;
  bool progress = false;
  unsigned long abort_after = 0;  // 0 = never abort

  const auto value_of = [](const char* arg, const char* flag)
      -> std::optional<std::string> {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=')
      return std::string(arg + len + 1);
    return std::nullopt;
  };

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (auto v = value_of(argv[i], "--algorithms")) {
      for (const std::string& name : split(*v, ',')) {
        if (name == "all") {
          for (const auto& a : kAlgorithms)
            spec.algorithms.push_back(a.algorithm);
          continue;
        }
        const auto a = parse_algorithm(name);
        if (!a) {
          std::fprintf(stderr, "sweep_cli: unknown algorithm '%s'\n",
                       name.c_str());
          return 2;
        }
        spec.algorithms.push_back(*a);
      }
    } else if (auto v = value_of(argv[i], "--families")) {
      spec.families.clear();
      for (const std::string& name : split(*v, ',')) {
        if (name == "all") {
          const auto& known = run::known_families();
          spec.families.insert(spec.families.end(), known.begin(),
                               known.end());
        } else {
          spec.families.push_back(name);  // expand_grid validates
        }
      }
    } else if (auto v = value_of(argv[i], "--sizes")) {
      spec.sizes.clear();
      for (const std::string& n : split(*v, ','))
        spec.sizes.push_back(static_cast<std::uint32_t>(std::stoul(n)));
    } else if (auto v = value_of(argv[i], "--k")) {
      for (const std::string& k : split(*v, ','))
        spec.robot_counts.push_back(static_cast<std::uint32_t>(std::stoul(k)));
    } else if (auto v = value_of(argv[i], "--mix")) {
      for (const std::string& text : split(*v, ',')) {
        const auto mix = run::mix_from_string(text);
        if (!mix) {
          std::fprintf(stderr, "sweep_cli: unknown strategy in mix '%s'\n",
                       text.c_str());
          return 2;
        }
        spec.strategy_mixes.push_back(*mix);
      }
    } else if (auto v = value_of(argv[i], "--shard")) {
      const std::size_t slash = v->find('/');
      if (slash == std::string::npos) {
        std::fprintf(stderr, "sweep_cli: --shard wants i/m, got '%s'\n",
                     v->c_str());
        return 2;
      }
      spec.shard_index =
          static_cast<unsigned>(std::stoul(v->substr(0, slash)));
      spec.shard_count =
          static_cast<unsigned>(std::stoul(v->substr(slash + 1)));
      if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count) {
        std::fprintf(stderr, "sweep_cli: --shard needs i < m, got '%s'\n",
                     v->c_str());
        return 2;
      }
    } else if (auto v = value_of(argv[i], "--resume")) {
      spec.checkpoint_path = *v;
    } else if (auto v = value_of(argv[i], "--abort-after")) {
      abort_after = std::stoul(*v);
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--no-timing") {
      spec.measure_seconds = false;
    } else if (auto v = value_of(argv[i], "--byz")) {
      for (const std::string& f : split(*v, ','))
        spec.byzantine_counts.push_back(
            static_cast<std::uint32_t>(std::stoul(f)));
    } else if (auto v = value_of(argv[i], "--seeds")) {
      spec.seeds.clear();
      for (const std::string& s : split(*v, ','))
        spec.seeds.push_back(std::stoull(s));
    } else if (auto v = value_of(argv[i], "--strategy")) {
      const auto s = parse_strategy(*v);
      if (!s) {
        std::fprintf(stderr, "sweep_cli: unknown strategy '%s'\n", v->c_str());
        return 2;
      }
      spec.strategy = *s;
      spec.strategy_follows_algorithm = false;
    } else if (arg == "--no-clamp") {
      spec.clamp_f_to_tolerance = false;
    } else if (arg == "--require-trivial-quotient") {
      spec.require_trivial_quotient = true;
    } else if (arg == "--common-graphs") {
      spec.common_graphs = true;
    } else if (auto v = value_of(argv[i], "--er-p")) {
      spec.er_edge_probability = std::stod(*v);
    } else if (auto v = value_of(argv[i], "--base-seed")) {
      spec.base_seed = std::stoull(*v);
    } else if (auto v = value_of(argv[i], "--threads")) {
      spec.threads = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value_of(argv[i], "--points-csv")) {
      points_csv = *v;
    } else if (auto v = value_of(argv[i], "--cells-csv")) {
      cells_csv = *v;
    } else if (auto v = value_of(argv[i], "--json")) {
      json = *v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "sweep_cli: unknown flag '%s'\n\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  } catch (const std::exception& e) {
    // std::stoul and friends throw on malformed numbers: a usage error.
    std::fprintf(stderr, "sweep_cli: bad flag value (%s)\n", e.what());
    return 2;
  }
  if (spec.algorithms.empty()) {
    // General-graph default: every algorithm except the ring-only baseline.
    for (const auto& a : kAlgorithms)
      if (a.algorithm != core::Algorithm::kRingBaseline)
        spec.algorithms.push_back(a.algorithm);
  }

  // Progress/abort callback: live per-point lines and the forced
  // mid-sweep abort the CI resume smoke exercises. `completed` counts
  // checkpoint hits too, so --abort-after bounds *newly run* points.
  unsigned long fresh_points = 0;
  if (progress || abort_after != 0) {
    spec.progress = [&](const run::PointResult& p, std::size_t completed,
                        std::size_t total) {
      ++fresh_points;
      if (progress)
        std::fprintf(stderr, "[%zu/%zu] %s %s n=%u k=%u f=%u seed=%llu %s\n",
                     completed, total,
                     core::to_string(p.point.algorithm).c_str(),
                     p.point.family.c_str(), p.point.n, p.point.k, p.point.f,
                     static_cast<unsigned long long>(p.point.seed),
                     p.skipped ? "skipped" : (p.ok ? "ok" : "FAILED"));
      return abort_after == 0 || fresh_points < abort_after;
    };
  }

  run::SweepResult result;
  try {
    result = run::run_sweep(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_cli: %s\n", e.what());
    return 2;
  }

  bool write_ok = true;
  if (!points_csv.empty())
    write_ok &= write_report(points_csv, result, run::write_points_csv);
  if (!cells_csv.empty())
    write_ok &= write_report(cells_csv, result, run::write_cells_csv);
  if (!json.empty()) write_ok &= write_report(json, result, run::write_json);
  if (points_csv.empty() && cells_csv.empty() && json.empty())
    run::write_points_csv(std::cout, result);

  std::size_t failed = 0;
  std::size_t saturated = 0;
  const run::PointResult* first_saturated = nullptr;
  for (const run::PointResult& p : result.points) {
    if (!p.skipped && !p.ok) ++failed;
    if (p.saturated) {
      ++saturated;
      if (first_saturated == nullptr) first_saturated = &p;
    }
  }
  if (!quiet)
    std::fprintf(stderr,
                 "[sweep_cli: %zu points, %zu skipped, %zu failed, "
                 "%zu from checkpoint%s, %.2fs]\n",
                 result.points.size(), result.skipped(), failed,
                 result.from_checkpoint, result.aborted ? ", ABORTED" : "",
                 result.wall_seconds);
  if (saturated != 0) {
    // Reject the grid loudly, before any other verdict: a bound past
    // 2^128-1 cannot be swept, and a skip row alone is invisible when
    // --progress is off.
    std::fprintf(stderr,
                 "sweep_cli: %zu grid point(s) exceed 128-bit round "
                 "accounting; first offender: (%s, n=%u, f=%u). Shrink the "
                 "grid (or the cost model) below the saturation frontier.\n",
                 saturated,
                 core::to_string(first_saturated->point.algorithm).c_str(),
                 first_saturated->point.n, first_saturated->point.f);
    return 4;
  }
  if (failed != 0 || !write_ok) return 1;
  return result.aborted ? 3 : 0;
}
