// sweep_cli: the run/ scenario-sweep runner on the command line.
//
// Exposes the full (algorithm x graph-family x n x f x seed) grid that the
// benches drive programmatically, and reuses the run/ report writers, so a
// shell loop can produce the same JSON/CSV artifacts CI consumes:
//
//   sweep_cli --algorithms=quotient,three-group --families=er,ring
//             --sizes=8,12,16 --seeds=1,2,3 --points-csv=points.csv
//
// Production-sweep features ride the same grid: --k sweeps the Theorem 8
// robot-count axis, --mix pits heterogeneous adversary mixes, and
// --shard/--resume/--abort-after drive resumable sharded sweeps through a
// JSON-lines checkpoint:
//
//   sweep_cli --shard=0/2 --resume=ck.jsonl --no-timing ... &
//   sweep_cli --shard=1/2 --resume=ck.jsonl --no-timing ... &
//   wait; sweep_cli --resume=ck.jsonl --no-timing --points-csv=merged.csv ...
//
// The grid flags are shared with the distributed front-ends (sweepd,
// sweep_worker) via run/cli_flags, so the same flag set drives single-shot
// and coordinator/worker sweeps interchangeably.
//
// Run with --help for the full flag list. Exit code: 0 when every
// non-skipped point disperses, 1 otherwise, 2 on usage errors, 3 when the
// sweep was aborted (--abort-after) before finishing, 4 when a grid point's
// round bound saturates 128-bit accounting (the offending (algorithm, n, f)
// is named on stderr — such grids are rejected, not silently skipped).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "run/cli_flags.h"
#include "run/report.h"
#include "run/sweep.h"

namespace {

using namespace bdg;

void usage(std::FILE* to) {
  std::fputs("usage: sweep_cli [flags]\n", to);
  run::print_grid_flag_help(to);
  std::fputs(
      "  --abort-after=N        abort after N newly-run points (testing and\n"
      "                         CI resume smoke; exit code 3)\n"
      "  --progress             print one line per completed point to stderr\n"
      "output:\n"
      "  --points-csv=PATH      per-point CSV ('-' = stdout)\n"
      "  --cells-csv=PATH       per-cell aggregate CSV ('-' = stdout)\n"
      "  --json=PATH            full JSON report ('-' = stdout)\n"
      "  --quiet                suppress the summary line\n",
      to);
  run::print_grid_name_lists(to);
}

bool write_report(const std::string& path, const run::SweepResult& result,
                  void (*write)(std::ostream&, const run::SweepResult&)) {
  if (path == "-") {
    write(std::cout, result);
    return true;
  }
  std::ofstream os(path);
  write(os, result);
  os.flush();
  if (!os) std::fprintf(stderr, "sweep_cli: cannot write %s\n", path.c_str());
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  run::SweepSpec spec = run::default_cli_spec();
  std::string points_csv, cells_csv, json;
  bool quiet = false;
  bool progress = false;
  unsigned long abort_after = 0;  // 0 = never abort

  const run::GridFlagsResult grid = run::parse_grid_flags(argc, argv, spec);
  if (!grid.ok) {
    std::fprintf(stderr, "sweep_cli: %s\n", grid.error.c_str());
    return 2;
  }
  const auto value_of = [](const std::string& arg, const char* flag)
      -> std::optional<std::string> {
    const std::size_t len = std::strlen(flag);
    if (arg.compare(0, len, flag) == 0 && arg.size() > len && arg[len] == '=')
      return arg.substr(len + 1);
    return std::nullopt;
  };
  try {
    for (const std::string& arg : grid.leftover) {
      if (arg == "--help" || arg == "-h") {
        usage(stdout);
        return 0;
      } else if (auto v = value_of(arg, "--abort-after")) {
        abort_after = std::stoul(*v);
      } else if (arg == "--progress") {
        progress = true;
      } else if (auto v = value_of(arg, "--points-csv")) {
        points_csv = *v;
      } else if (auto v = value_of(arg, "--cells-csv")) {
        cells_csv = *v;
      } else if (auto v = value_of(arg, "--json")) {
        json = *v;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::fprintf(stderr, "sweep_cli: unknown flag '%s'\n\n", arg.c_str());
        usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    // std::stoul and friends throw on malformed numbers: a usage error.
    std::fprintf(stderr, "sweep_cli: bad flag value (%s)\n", e.what());
    return 2;
  }
  run::apply_default_algorithms(spec);

  // Progress/abort callback: live per-point lines and the forced
  // mid-sweep abort the CI resume smoke exercises. `completed` counts
  // checkpoint hits too, so --abort-after bounds *newly run* points.
  unsigned long fresh_points = 0;
  if (progress || abort_after != 0) {
    spec.progress = [&](const run::PointResult& p, std::size_t completed,
                        std::size_t total) {
      ++fresh_points;
      if (progress)
        std::fprintf(stderr, "[%zu/%zu] %s %s n=%u k=%u f=%u seed=%llu %s\n",
                     completed, total,
                     core::to_string(p.point.algorithm).c_str(),
                     p.point.family.c_str(), p.point.n, p.point.k, p.point.f,
                     static_cast<unsigned long long>(p.point.seed),
                     p.skipped ? "skipped" : (p.ok ? "ok" : "FAILED"));
      return abort_after == 0 || fresh_points < abort_after;
    };
  }

  run::SweepResult result;
  try {
    result = run::run_sweep(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_cli: %s\n", e.what());
    return 2;
  }

  bool write_ok = true;
  if (!points_csv.empty())
    write_ok &= write_report(points_csv, result, run::write_points_csv);
  if (!cells_csv.empty())
    write_ok &= write_report(cells_csv, result, run::write_cells_csv);
  if (!json.empty()) write_ok &= write_report(json, result, run::write_json);
  if (points_csv.empty() && cells_csv.empty() && json.empty())
    run::write_points_csv(std::cout, result);

  std::size_t failed = 0;
  std::size_t saturated = 0;
  const run::PointResult* first_saturated = nullptr;
  for (const run::PointResult& p : result.points) {
    if (!p.skipped && !p.ok) ++failed;
    if (p.saturated) {
      ++saturated;
      if (first_saturated == nullptr) first_saturated = &p;
    }
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "[sweep_cli: %zu points, %zu skipped, %zu failed, "
                 "%zu from checkpoint%s, %.2fs]\n",
                 result.points.size(), result.skipped(), failed,
                 result.from_checkpoint, result.aborted ? ", ABORTED" : "",
                 result.wall_seconds);
    if (result.torn_checkpoint_lines != 0)
      std::fprintf(stderr,
                   "[sweep_cli: %zu torn checkpoint line(s) skipped and "
                   "re-run — a previous run crashed mid-append]\n",
                   result.torn_checkpoint_lines);
  }
  if (saturated != 0) {
    // Reject the grid loudly, before any other verdict: a bound past
    // 2^128-1 cannot be swept, and a skip row alone is invisible when
    // --progress is off.
    std::fprintf(stderr,
                 "sweep_cli: %zu grid point(s) exceed 128-bit round "
                 "accounting; first offender: (%s, n=%u, f=%u). Shrink the "
                 "grid (or the cost model) below the saturation frontier.\n",
                 saturated,
                 core::to_string(first_saturated->point.algorithm).c_str(),
                 first_saturated->point.n, first_saturated->point.f);
    return 4;
  }
  if (failed != 0 || !write_ok) return 1;
  return result.aborted ? 3 : 0;
}
