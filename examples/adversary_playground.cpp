// Adversary playground: pit every Byzantine strategy in the library
// against every algorithm at its maximum claimed tolerance and print the
// outcome matrix. A downstream user extending the adversary library can
// use this binary to sanity-check new attacks quickly.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/scenario.h"
#include "graph/generators.h"
#include "graph/quotient.h"
#include "util/table.h"

int main() {
  using namespace bdg;
  using core::Algorithm;

  // A random graph with all-distinct views so Theorem 1 applies too.
  Rng rng(77);
  Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  for (int i = 0; i < 64 && !has_trivial_quotient(g); ++i)
    g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  const auto n = static_cast<std::uint32_t>(g.n());
  std::printf("arena: n=%u m=%zu (trivial quotient: %s)\n\n", n, g.m(),
              has_trivial_quotient(g) ? "yes" : "no");

  const std::vector<Algorithm> algos{
      Algorithm::kQuotient,           Algorithm::kTournamentGathered,
      Algorithm::kThreeGroupGathered, Algorithm::kSqrtArbitrary,
      Algorithm::kStrongGathered,
  };

  Table table({"strategy \\ algorithm", "T1", "T3", "T4", "T5", "T6"});
  for (const core::ByzStrategy s : core::weak_strategies()) {
    std::vector<std::string> row{core::to_string(s)};
    for (const Algorithm a : algos) {
      core::ScenarioConfig cfg;
      cfg.algorithm = a;
      cfg.num_byzantine = core::max_tolerated_f(a, n);
      cfg.strategy = s;
      cfg.seed = 42;
      const auto res = core::run_scenario(g, cfg);
      row.push_back(res.verify.ok() ? "ok" : "FAIL");
    }
    table.add_row(std::move(row));
  }
  // The spoofer needs strong robots; only the strong algorithm claims it.
  {
    std::vector<std::string> row{"spoofer(strong)"};
    for (const Algorithm a : algos) {
      if (!core::handles_strong(a)) {
        row.push_back("n/a");
        continue;
      }
      core::ScenarioConfig cfg;
      cfg.algorithm = a;
      cfg.num_byzantine = core::max_tolerated_f(a, n);
      cfg.strategy = core::ByzStrategy::kSpoofer;
      cfg.seed = 42;
      const auto res = core::run_scenario(g, cfg);
      row.push_back(res.verify.ok() ? "ok" : "FAIL");
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  return 0;
}
