// Seeded cross-module property sweeps ("fuzz" with deterministic seeds):
// substrate invariants that must hold on every graph we can generate.
#include <gtest/gtest.h>

#include <set>

#include "explore/engine_map.h"
#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/quotient.h"
#include "graph/serialize.h"

namespace bdg {
namespace {

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, TrivialQuotientIffAllRootedCodesDistinct) {
  // Two nodes have the same view iff their rooted canonical codes match,
  // so Q_G is trivial exactly when all n rooted codes are distinct. This
  // ties the two independent implementations (BFS codes vs refinement)
  // to each other.
  Rng rng(GetParam());
  for (int i = 0; i < 4; ++i) {
    const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
    std::set<CanonicalCode> codes;
    for (NodeId v = 0; v < g.n(); ++v) codes.insert(rooted_code(g, v));
    EXPECT_EQ(codes.size() == g.n(), has_trivial_quotient(g));
  }
}

TEST_P(FuzzSweep, QuotientClassesMatchRootedCodeEquality) {
  Rng rng(GetParam() * 31 + 1);
  const Graph g = shuffle_ports(make_connected_er(9, 0.4, rng), rng);
  const auto q = quotient_graph(g);
  for (NodeId a = 0; a < g.n(); ++a) {
    for (NodeId b = a + 1; b < g.n(); ++b) {
      const bool same_class = q.cls[a] == q.cls[b];
      const bool same_code = rooted_code(g, a) == rooted_code(g, b);
      EXPECT_EQ(same_class, same_code) << "nodes " << a << ", " << b;
    }
  }
}

TEST_P(FuzzSweep, TokenMapMatchesGroundTruth) {
  Rng rng(GetParam() * 77 + 5);
  for (const char* kind : {"er", "tree"}) {
    const Graph g = std::string(kind) == "er"
                        ? shuffle_ports(make_connected_er(7, 0.5, rng), rng)
                        : make_random_tree(7, rng);
    const NodeId start = static_cast<NodeId>(rng.below(g.n()));
    const auto res = explore::build_map_with_token(g, start);
    EXPECT_TRUE(rooted_isomorphic(res.map, 0, g, start))
        << kind << " start " << start;
  }
}

TEST_P(FuzzSweep, SerializationRoundTrip) {
  Rng rng(GetParam() * 13 + 3);
  const Graph g = shuffle_ports(make_connected_er(10, 0.35, rng), rng);
  EXPECT_EQ(graph_from_string(graph_to_string(g)), g);
}

TEST_P(FuzzSweep, ShuffleComposedWithRelabelStaysIsomorphicUnrooted) {
  // relabel_nodes produces a port-preserving isomorphic copy; shuffling
  // ports afterwards destroys port-isomorphism but preserves degrees.
  Rng rng(GetParam() * 7 + 11);
  const Graph g = make_connected_er(8, 0.45, rng);
  std::vector<NodeId> perm(g.n());
  for (NodeId v = 0; v < g.n(); ++v) perm[v] = v;
  rng.shuffle(perm);
  const Graph h = relabel_nodes(g, perm);
  EXPECT_TRUE(isomorphic(g, h));
  std::multiset<std::uint32_t> dg, dh;
  const Graph s = shuffle_ports(h, rng);
  for (NodeId v = 0; v < g.n(); ++v) {
    dg.insert(g.degree(v));
    dh.insert(s.degree(v));
  }
  EXPECT_EQ(dg, dh);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace bdg
