// Unit tests for the port-labeled graph substrate.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace bdg {
namespace {

TEST(Graph, EmptyGraphBasics) {
  Graph g;
  EXPECT_EQ(g.n(), 0u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_port_consistent());
}

TEST(Graph, AddEdgeAssignsSequentialPorts) {
  Graph g(3);
  const auto [p01a, p01b] = g.add_edge(0, 1);
  EXPECT_EQ(p01a, 0u);
  EXPECT_EQ(p01b, 0u);
  const auto [p02a, p02b] = g.add_edge(0, 2);
  EXPECT_EQ(p02a, 1u);
  EXPECT_EQ(p02b, 0u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(g.is_port_consistent());
}

TEST(Graph, HopFollowsPortsBothWays) {
  Graph g(2);
  g.add_edge(0, 1);
  const HalfEdge he = g.hop(0, 0);
  EXPECT_EQ(he.to, 1u);
  const HalfEdge back = g.hop(he.to, he.reverse);
  EXPECT_EQ(back.to, 0u);
  EXPECT_EQ(back.reverse, 0u);
}

TEST(Graph, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto d = g.bfs_distances(0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Graph, BfsDistancesUnreachable) {
  Graph g(2);  // no edges
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], UINT32_MAX);
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, ShortestPathPortsWalksToTarget) {
  const Graph g = make_grid(3, 4);
  for (NodeId s = 0; s < g.n(); ++s) {
    for (NodeId t = 0; t < g.n(); ++t) {
      const auto path = g.shortest_path_ports(s, t);
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(g.walk(s, *path), t);
      EXPECT_EQ(path->size(), g.bfs_distances(s)[t]);
    }
  }
}

TEST(Graph, ShortestPathSelfIsEmpty) {
  const Graph g = make_ring(5);
  const auto path = g.shortest_path_ports(2, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(Graph, WalkRejectsBadPort) {
  const Graph g = make_path(3);
  EXPECT_EQ(g.walk(0, {5}), kNoNode);
}

TEST(Graph, DiameterOfRing) {
  EXPECT_EQ(make_ring(6).diameter(), 3u);
  EXPECT_EQ(make_ring(7).diameter(), 3u);
  EXPECT_EQ(make_complete(5).diameter(), 1u);
  EXPECT_EQ(make_path(8).diameter(), 7u);
}

TEST(Graph, IsSimpleDetectsParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.is_simple());
  g.add_edge(0, 1);
  EXPECT_FALSE(g.is_simple());
  EXPECT_TRUE(g.is_port_consistent());  // multigraphs stay port-consistent
}

TEST(Graph, MaxDegree) {
  EXPECT_EQ(make_star(7).max_degree(), 6u);
  EXPECT_EQ(make_ring(5).max_degree(), 2u);
}

TEST(Graph, EqualityIsStructural) {
  EXPECT_EQ(make_ring(5), make_ring(5));
  EXPECT_NE(make_ring(5), make_ring(6));
}

TEST(Graph, FromAdjacencyRoundTrip) {
  const Graph g = make_grid(2, 3);
  std::vector<std::vector<HalfEdge>> adj(g.n());
  for (NodeId v = 0; v < g.n(); ++v) adj[v] = g.edges_of(v);
  EXPECT_EQ(Graph::from_adjacency(std::move(adj)), g);
}

}  // namespace
}  // namespace bdg
