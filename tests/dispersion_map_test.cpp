// Dispersion-Using-Map (paper Section 2.2): Lemma 2 (honest robots never
// blacklist honest robots — verified indirectly: honest dispersion
// succeeds), Lemma 3 (no two honest robots settle on one node) and Lemma 4
// (termination within the tour) under every adversary strategy.
#include "core/dispersion_using_map.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/byzantine.h"
#include "core/protocol_msgs.h"
#include "core/verifier.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

sim::Proc disperse_robot(sim::Ctx c, DispersionParams params,
                         std::shared_ptr<DispersionOutcome> out) {
  *out = co_await run_dispersion_using_map(c, std::move(params));
}

struct CaseSetup {
  std::vector<sim::RobotId> ids;
  std::vector<NodeId> starts;             // same length as ids
  std::vector<ByzStrategy> byz;           // strategies for first byz.size() ids
};

struct Outcome {
  VerifyResult verify;
  std::vector<std::shared_ptr<DispersionOutcome>> honest_outs;
  core::Round rounds;
};

/// Run Dispersion-Using-Map with every honest robot holding the TRUE map
/// (identity copy) rooted at its start node.
Outcome run_case(const Graph& g, const CaseSetup& setup) {
  sim::Engine eng(g);
  const core::Round phase =
      dispersion_phase_rounds(static_cast<std::uint32_t>(g.n()));
  Outcome out;
  for (std::size_t i = 0; i < setup.ids.size(); ++i) {
    if (i < setup.byz.size()) {
      eng.add_robot(setup.ids[i], sim::Faultiness::kWeakByzantine,
                    setup.starts[i],
                    make_byzantine_program(setup.byz[i], setup.ids,
                                           1000 + setup.ids[i]));
      continue;
    }
    DispersionParams params;
    params.map = g;  // identity map: map coordinates == real coordinates
    params.map_root = setup.starts[i];
    params.phase_rounds = phase;
    auto slot = std::make_shared<DispersionOutcome>();
    out.honest_outs.push_back(slot);
    eng.add_robot(setup.ids[i], sim::Faultiness::kHonest, setup.starts[i],
                  [params, slot](sim::Ctx c) {
                    return disperse_robot(c, params, slot);
                  });
  }
  const sim::RunStats st = eng.run(phase + 8);
  out.verify = verify_dispersion(eng);
  out.rounds = st.rounds;
  return out;
}

CaseSetup all_honest(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  CaseSetup s;
  for (std::size_t i = 0; i < g.n(); ++i) {
    s.ids.push_back(10 + 3 * i);
    s.starts.push_back(static_cast<NodeId>(rng.below(g.n())));
  }
  return s;
}

TEST(DispersionUsingMap, AllHonestDisperseOnEveryFamily) {
  for (const auto& [name, g] : standard_menagerie(8, 50)) {
    SCOPED_TRACE(name);
    const Outcome out = run_case(g, all_honest(g, 5));
    EXPECT_TRUE(out.verify.ok()) << out.verify.detail;
    for (const auto& o : out.honest_outs) EXPECT_TRUE(o->settled);
  }
}

TEST(DispersionUsingMap, AllHonestGatheredStart) {
  const Graph g = make_grid(3, 3);
  CaseSetup s = all_honest(g, 1);
  for (auto& st : s.starts) st = 4;  // all at the center
  const Outcome out = run_case(g, s);
  EXPECT_TRUE(out.verify.ok()) << out.verify.detail;
}

TEST(DispersionUsingMap, SingleRobotSettlesImmediately) {
  const Graph g = make_ring(5);
  CaseSetup s;
  s.ids = {7};
  s.starts = {2};
  const Outcome out = run_case(g, s);
  EXPECT_TRUE(out.verify.ok());
  EXPECT_TRUE(out.honest_outs[0]->settled);
  EXPECT_EQ(out.honest_outs[0]->settled_map_node, 2u);
  EXPECT_EQ(out.honest_outs[0]->nodes_skipped, 0u);  // Observation 1
}

TEST(DispersionUsingMap, TwoHonestAtSameNodeSplit) {
  const Graph g = make_path(4);
  CaseSetup s;
  s.ids = {5, 9};
  s.starts = {1, 1};
  const Outcome out = run_case(g, s);
  EXPECT_TRUE(out.verify.ok()) << out.verify.detail;
  // The smaller ID settles at the shared start (rank preference).
  EXPECT_EQ(out.honest_outs[0]->settled_map_node, 1u);
  EXPECT_NE(out.honest_outs[1]->settled_map_node, 1u);
}

// Lemma 3 under each adversary strategy, at maximal honest density
// (n - f honest robots, f Byzantine with the smallest IDs => they win all
// rank preferences they contest).
class AdversarySweep : public ::testing::TestWithParam<ByzStrategy> {};

TEST_P(AdversarySweep, HonestAlwaysDisperse) {
  const ByzStrategy strategy = GetParam();
  Rng rng(99);
  for (const auto& [name, g] : standard_menagerie(8, 60)) {
    SCOPED_TRACE(name + "/" + to_string(strategy));
    CaseSetup s;
    const std::size_t n = g.n();
    const std::size_t f = n - 1;  // Theorem 1 tolerance: up to n-1 Byzantine
    for (std::size_t i = 0; i < n; ++i) {
      s.ids.push_back(2 + 2 * i);
      s.starts.push_back(static_cast<NodeId>(rng.below(n)));
    }
    // Sweep several f values including the extreme.
    for (const std::size_t fs : {std::size_t{1}, n / 2, f}) {
      CaseSetup cur = s;
      cur.byz.assign(fs, strategy);
      const Outcome out = run_case(g, cur);
      EXPECT_TRUE(out.verify.ok())
          << "f=" << fs << ": " << out.verify.detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, AdversarySweep,
                         ::testing::ValuesIn(weak_strategies()),
                         [](const auto& info) { return to_string(info.param); });

/// Deterministic relocating settler: claims Settled every round while
/// shadowing the honest robot's tour direction, so the honest robot is
/// guaranteed to see the same "settled" ID at two different nodes.
sim::Proc shadow_settler(sim::Ctx ctx) {
  for (;;) {
    ctx.broadcast(kMsgStatus, {kStateSettled});
    co_await ctx.end_round(Port{0});
  }
}

TEST(DispersionUsingMap, FakeSettlerGetsBlacklisted) {
  // One honest robot on an oriented ring with a shadowing fake settler:
  // round 1 it records the liar settled at its node and skips; the liar
  // moves along with it, so round 2 exhibits the same ID "settled" at a
  // different node => blacklist (paper step 4), and the honest robot then
  // settles because the only settled claim in sight is blacklisted.
  const Graph g = make_oriented_ring(5);
  const core::Round phase =
      dispersion_phase_rounds(static_cast<std::uint32_t>(g.n()));
  sim::Engine eng(g);
  eng.add_robot(3, sim::Faultiness::kWeakByzantine, 0,
                [](sim::Ctx c) { return shadow_settler(c); });
  DispersionParams params;
  params.map = g;
  params.map_root = 0;
  params.phase_rounds = phase;
  auto slot = std::make_shared<DispersionOutcome>();
  eng.add_robot(7, sim::Faultiness::kHonest, 0,
                [params, slot](sim::Ctx c) {
                  return disperse_robot(c, params, slot);
                });
  eng.run(phase + 8);
  EXPECT_TRUE(slot->settled);
  EXPECT_GE(slot->blacklisted, 1u);
  EXPECT_GE(slot->nodes_skipped, 1u);
}

TEST(DispersionUsingMap, SettleWithinOneTourBound) {
  // Lemma 4: honest robots settle within O(n) rounds of the phase.
  const Graph g = make_grid(3, 3);
  const Outcome out = run_case(g, all_honest(g, 2));
  for (const auto& o : out.honest_outs) {
    EXPECT_TRUE(o->settled);
    EXPECT_LE(o->settle_round, 2 * g.n() + 2);
  }
}

TEST(DispersionUsingMap, HonestNeverBlacklistsHonestAllHonestRun) {
  // Lemma 2, directly observable: with no Byzantine robots, every
  // blacklist stays empty.
  const Graph g = make_complete(6);
  const Outcome out = run_case(g, all_honest(g, 3));
  for (const auto& o : out.honest_outs) EXPECT_EQ(o->blacklisted, 0u);
}

TEST(DispersionUsingMap, PhaseLengthExact) {
  const Graph g = make_ring(5);
  const core::Round phase =
      dispersion_phase_rounds(static_cast<std::uint32_t>(g.n()));
  const Outcome out = run_case(g, all_honest(g, 4));
  // Every robot consumes exactly the phase budget; the engine detects
  // completion at the top of the following round.
  EXPECT_GE(out.rounds, phase);
  EXPECT_LE(out.rounds, phase + 1);
}

}  // namespace
}  // namespace bdg::core
