// Graph text serialization round trips and malformed-input rejection.
#include "graph/serialize.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace bdg {
namespace {

TEST(Serialize, RoundTripsEveryFamily) {
  for (const auto& [name, g] : standard_menagerie(9, 33)) {
    SCOPED_TRACE(name);
    const Graph back = graph_from_string(graph_to_string(g));
    EXPECT_EQ(back, g);
  }
}

TEST(Serialize, FormatIsStable) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_EQ(graph_to_string(g), "bdg1 2\n0: 1 0\n1: 0 0\n");
}

TEST(Serialize, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(graph_from_string(graph_to_string(g)).n(), 0u);
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW((void)graph_from_string("nope 2\n"), std::invalid_argument);
  EXPECT_THROW((void)graph_from_string(""), std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedNodeList) {
  EXPECT_THROW((void)graph_from_string("bdg1 2\n0: 1 0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsOutOfRangeTarget) {
  EXPECT_THROW((void)graph_from_string("bdg1 2\n0: 5 0\n1: 0 0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsBrokenInvolution) {
  // 0's port 0 points at 1/0, but 1's port 0 points back at itself.
  EXPECT_THROW((void)graph_from_string("bdg1 2\n0: 1 0\n1: 1 0\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsWrongNodeLabel) {
  EXPECT_THROW((void)graph_from_string("bdg1 2\n7: 1 0\n1: 0 0\n"),
               std::invalid_argument);
}

TEST(Serialize, PreservesPortOrder) {
  Rng rng(4);
  const Graph g = shuffle_ports(make_grid(3, 3), rng);
  const Graph back = graph_from_string(graph_to_string(g));
  for (NodeId v = 0; v < g.n(); ++v)
    for (Port p = 0; p < g.degree(v); ++p)
      EXPECT_EQ(back.hop(v, p), g.hop(v, p));
}

}  // namespace
}  // namespace bdg
