// TraceRecorder / Observer tests: event capture, per-robot accounting,
// and the behavioral property "a settled robot never moves again".
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "core/dispersion_using_map.h"
#include "core/scenario.h"
#include "graph/generators.h"

namespace bdg::sim {
namespace {

Proc hop_and_talk(Ctx ctx, int hops) {
  for (int i = 0; i < hops; ++i) {
    ctx.broadcast(1, {i});
    co_await ctx.end_round(Port{0});
  }
}

TEST(Trace, CountsMovesAndMessages) {
  const Graph g = make_ring(5);
  Engine eng(g);
  TraceRecorder trace;
  eng.set_observer(&trace);
  eng.add_robot(3, Faultiness::kHonest, 0,
                [](Ctx c) { return hop_and_talk(c, 4); });
  const RunStats st = eng.run(10);
  const auto& a = trace.per_robot().at(3);
  EXPECT_EQ(a.moves, 4u);
  EXPECT_EQ(a.messages, 4u);
  EXPECT_TRUE(a.done);
  EXPECT_EQ(trace.total_moves(), st.moves);
}

TEST(Trace, EventLogOrderedAndBounded) {
  const Graph g = make_ring(5);
  Engine eng(g);
  TraceRecorder trace(/*max_events=*/3);
  eng.set_observer(&trace);
  eng.add_robot(3, Faultiness::kHonest, 0,
                [](Ctx c) { return hop_and_talk(c, 5); });
  eng.run(10);
  EXPECT_EQ(trace.events().size(), 3u);  // bounded ring
  core::Round prev = 0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.round, prev);
    prev = e.round;
  }
}

TEST(Trace, NodeVisitHistogram) {
  const Graph g = make_oriented_ring(4);  // port 0 = clockwise everywhere
  Engine eng(g);
  TraceRecorder trace;
  eng.set_observer(&trace);
  eng.add_robot(3, Faultiness::kHonest, 0,
                [](Ctx c) { return hop_and_talk(c, 4); });  // full loop
  eng.run(10);
  // Visits nodes 1, 2, 3, 0 once each.
  EXPECT_EQ(trace.node_visits().size(), 4u);
  for (const auto& [node, count] : trace.node_visits()) EXPECT_EQ(count, 1u);
}

TEST(Trace, SettledRobotsNeverMoveAgain) {
  // Behavioral property of Dispersion-Using-Map, checked via the trace:
  // after a robot's last move it stays put until it terminates, and no
  // move may happen at or after its done round minus the beacon tail.
  Rng rng(3);
  const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  core::ScenarioConfig cfg;
  cfg.algorithm = core::Algorithm::kThreeGroupGathered;
  cfg.num_byzantine = 2;
  cfg.strategy = core::ByzStrategy::kFakeSettler;
  TraceRecorder trace(0);  // stats only
  cfg.observer = &trace;
  const auto res = core::run_scenario(g, cfg);
  ASSERT_TRUE(res.verify.ok()) << res.verify.detail;
  const core::Round phase = core::dispersion_phase_rounds(8);
  for (const auto& [id, a] : trace.per_robot()) {
    if (!a.done) continue;  // Byzantine robots never finish
    // An honest robot's last move precedes the dispersion-phase tail: it
    // settles and then only beacons for the rest of the phase.
    EXPECT_LT(a.done_round - a.last_move_round, phase + 16)
        << "robot " << id;
    EXPECT_GT(a.done_round, a.last_move_round) << "robot " << id;
  }
}

TEST(Trace, DetachingObserverStopsRecording) {
  const Graph g = make_ring(4);
  Engine eng(g);
  TraceRecorder trace;
  eng.set_observer(&trace);
  eng.set_observer(nullptr);
  eng.add_robot(3, Faultiness::kHonest, 0,
                [](Ctx c) { return hop_and_talk(c, 3); });
  eng.run(10);
  EXPECT_TRUE(trace.per_robot().empty());
}

}  // namespace
}  // namespace bdg::sim
