// Conformance tier for the sweepd coordinator/worker service: a
// distributed sweep over the PR 3 512-point mixed-adversary grid must
// reproduce the single-shot SweepResult byte-identically (reports
// included), survive a worker dying mid-grid (leases reassigned and
// re-run), stay byte-identical under seeded drop/delay fault schedules,
// degrade to in-process execution with zero reachable workers, and reject
// workers that expanded a different grid.
//
// Query tier: the incrementally maintained CellAggregator must be
// bit-identical to rebuild_cell_aggregates in ANY arrival order; live
// `query` frames — mid-sweep, after completion (serve-after-finish), over
// a finished checkpoint, and under fault schedules — must answer with
// bodies byte-identical to the corresponding report JSON fragments. Plus
// merge-path regressions: restored-point re-streams count as duplicates
// (not protocol errors) and workers reject leases with unparseable ids.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "net/transport.h"
#include "run/report.h"
#include "run/service.h"
#include "run/sweep.h"
#include "util/json_mini.h"

namespace bdg::run {
namespace {

using core::Algorithm;
using core::ByzStrategy;

/// Render every report of a result into one string for byte comparison.
std::string all_reports(const SweepResult& r) {
  std::ostringstream os;
  write_points_csv(os, r);
  os << "\n--\n";
  write_cells_csv(os, r);
  os << "\n--\n";
  write_json(os, r);
  return os.str();
}

std::string cell_json(const CellAggregate& c) {
  std::ostringstream os;
  write_cell_json(os, c);
  return os.str();
}

std::string point_json(const PointResult& p) {
  std::ostringstream os;
  write_point_json(os, p);
  return os.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Truncate a checkpoint file to its first `count` lines (simulating a
/// sweep frozen mid-grid, or a coordinator restart that missed later
/// results).
void keep_first_lines(const std::string& path, std::size_t count) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), count);
  std::ofstream out(path, std::ios::trunc);
  for (std::size_t i = 0; i < count; ++i) out << lines[i] << '\n';
}

/// Field-exact CellAggregate comparison — EXPECT_EQ on the means on
/// purpose: the aggregator contract is BIT identity, not tolerance.
void expect_cells_equal(const std::vector<CellAggregate>& a,
                        const std::vector<CellAggregate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(a[i].algorithm, b[i].algorithm);
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].k, b[i].k);
    EXPECT_EQ(a[i].f, b[i].f);
    EXPECT_EQ(a[i].mix, b[i].mix);
    EXPECT_EQ(a[i].runs, b[i].runs);
    EXPECT_EQ(a[i].dispersed, b[i].dispersed);
    EXPECT_EQ(a[i].min_rounds, b[i].min_rounds);
    EXPECT_EQ(a[i].max_rounds, b[i].max_rounds);
    EXPECT_EQ(a[i].mean_rounds, b[i].mean_rounds);
    EXPECT_EQ(a[i].mean_simulated, b[i].mean_simulated);
    EXPECT_EQ(a[i].mean_moves, b[i].mean_moves);
    EXPECT_EQ(a[i].mean_messages, b[i].mean_messages);
    EXPECT_EQ(a[i].mean_seconds, b[i].mean_seconds);
  }
}

/// Query the coordinator's live cells and assert the bodies are
/// byte-identical to the expected cells' report JSON.
void expect_queried_cells(std::uint16_t port,
                          const std::vector<CellAggregate>& expected) {
  QueryClientConfig qc;
  qc.port = port;
  QueryRequest cq;
  cq.what = "cells";
  const auto cells = run_query(cq, qc);
  ASSERT_TRUE(cells.has_value());
  EXPECT_TRUE(cells->error.empty());
  ASSERT_EQ(cells->bodies.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(cells->bodies[i], cell_json(expected[i]));
  }
}

/// The same 512-point mixed-adversary, k-axis grid the resume conformance
/// tier pins (sweep_resume_test): 2 algorithms x 2 families x 1 size x
/// 4 k x 2 unclamped f x 2 mixes x 8 seeds, timing off so reports are a
/// pure function of the grid.
SweepSpec conformance_spec(unsigned threads) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered,
                     Algorithm::kTournamentGathered};
  spec.families = {"er", "complete"};
  spec.sizes = {6};
  spec.robot_counts = {4, 6, 7, 12};
  spec.byzantine_counts = {0, 1};
  spec.clamp_f_to_tolerance = false;
  spec.strategy_mixes = {{ByzStrategy::kMapLiar, ByzStrategy::kCrash},
                         {ByzStrategy::kFakeSettler,
                          ByzStrategy::kSilentSettler,
                          ByzStrategy::kSquatter}};
  spec.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.threads = threads;
  spec.measure_seconds = false;
  return spec;
}

/// A small grid (8 points) for the fault-schedule tests, where drops force
/// lease expiries and the test runs the sweep several times.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {6};
  spec.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.threads = 2;
  spec.measure_seconds = false;
  return spec;
}

void expect_identical_results(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const PointResult& pa = a.points[i];
    const PointResult& pb = b.points[i];
    EXPECT_TRUE(same_point(pa.point, pb.point));
    EXPECT_EQ(pa.derived_seed, pb.derived_seed);
    EXPECT_EQ(pa.skipped, pb.skipped);
    EXPECT_EQ(pa.skip_reason, pb.skip_reason);
    EXPECT_EQ(pa.ok, pb.ok);
    EXPECT_EQ(pa.detail, pb.detail);
    EXPECT_EQ(pa.stats.rounds, pb.stats.rounds);
    EXPECT_EQ(pa.stats.moves, pb.stats.moves);
    EXPECT_EQ(pa.stats.messages, pb.stats.messages);
    EXPECT_EQ(pa.planned_rounds, pb.planned_rounds);
    EXPECT_EQ(pa.seconds, pb.seconds);
  }
  EXPECT_EQ(all_reports(a), all_reports(b));
}

/// Run a coordinator plus `workers` in-process worker threads over `spec`,
/// returning the merged result (and each worker's exit reason). With
/// svc.serve_after_finish the coordinator outlives its workers: the
/// `while_serving` hook runs against the finished-but-serving coordinator
/// (issue queries there), after which the stop flag ends serving.
SweepResult run_distributed(
    const SweepSpec& spec, ServiceConfig svc,
    std::vector<WorkerConfig> workers,
    std::vector<WorkerExit>* exits = nullptr,
    CoordinatorStats* stats = nullptr,
    const std::function<void(std::uint16_t)>& while_serving = {}) {
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();

  std::atomic<bool> stop{false};
  SweepResult result;
  std::thread serve_thread([&] { result = coordinator.serve(&stop); });

  std::vector<WorkerExit> reasons(workers.size(), WorkerExit::kShutdown);
  std::vector<std::thread> fleet;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    workers[w].port = port;
    fleet.emplace_back([&, w] {
      reasons[w] = run_sweep_worker(spec, workers[w]);
    });
  }
  for (auto& t : fleet) t.join();
  if (while_serving) while_serving(port);
  stop.store(true);
  serve_thread.join();
  if (exits) *exits = reasons;
  if (stats) *stats = coordinator.stats();
  return result;
}

WorkerConfig worker(const std::string& name, std::uint64_t jitter_seed) {
  WorkerConfig cfg;
  cfg.name = name;
  cfg.jitter_seed = jitter_seed;
  cfg.idle_recv_ms = 50;
  cfg.hello_timeout_ms = 1000;
  // Short reconnect budget: a worker that loses a shutdown race gives up
  // quickly instead of stalling the test on a vanished coordinator.
  cfg.backoff.attempts = 6;
  cfg.backoff.base_ms = 5;
  cfg.backoff.max_ms = 50;
  return cfg;
}

// The acceptance statement: a 3-worker distributed sweep over the
// 512-point conformance grid is byte-identical to single-shot run_sweep.
TEST(Sweepd, ThreeWorkerSweepIsByteIdenticalToSingleShot) {
  const SweepSpec spec = conformance_spec(2);
  const SweepResult single = run_sweep(spec);
  ASSERT_GE(single.points.size(), 500u);

  ServiceConfig svc;
  svc.lease_points = 8;
  svc.lease_timeout_ms = 10000;
  svc.serve_after_finish = true;
  std::vector<WorkerExit> exits;
  CoordinatorStats stats;
  const SweepResult dist = run_distributed(
      spec, svc, {worker("w0", 1), worker("w1", 2), worker("w2", 3)}, &exits,
      &stats, [&](std::uint16_t port) {
        // The finished-but-serving coordinator must answer queries with
        // the exact aggregates the merged report will carry.
        expect_queried_cells(port, single.cells);
        QueryClientConfig qc;
        qc.port = port;
        QueryRequest pq;  // what defaults to "progress"
        const auto progress = run_query(pq, qc);
        ASSERT_TRUE(progress.has_value());
        EXPECT_TRUE(progress->done);
        EXPECT_EQ(progress->total, single.points.size());
        EXPECT_EQ(progress->completed, single.points.size());
        QueryRequest point;
        point.what = "point";
        point.derived_seed = single.points[0].derived_seed;
        const auto reply = run_query(point, qc);
        ASSERT_TRUE(reply.has_value());
        EXPECT_FALSE(reply->pending);
        ASSERT_EQ(reply->bodies.size(), 1u);
        EXPECT_EQ(reply->bodies[0], point_json(single.points[0]));
      });

  for (const WorkerExit e : exits) EXPECT_EQ(e, WorkerExit::kShutdown);
  EXPECT_GE(stats.workers_seen, 3u);
  EXPECT_GT(stats.leases_granted, 0u);
  EXPECT_EQ(stats.leases_reassigned, 0u);
  EXPECT_EQ(stats.duplicate_results, 0u);
  EXPECT_EQ(stats.local_fallback_points, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_GE(stats.clients_seen, 1u);
  EXPECT_GE(stats.queries_answered, 3u);
  EXPECT_FALSE(dist.aborted);
  expect_identical_results(single, dist);
}

// Robustness statement: killing a worker mid-grid (soft kill hook — the
// thread analogue of SIGKILL; the CI smoke covers the hard _Exit variant)
// reassigns its leased points and the merged result is still
// byte-identical.
TEST(Sweepd, SurvivesWorkerKilledMidGrid) {
  const SweepSpec spec = conformance_spec(2);
  const SweepResult single = run_sweep(spec);

  ServiceConfig svc;
  svc.lease_points = 8;
  svc.lease_timeout_ms = 10000;
  svc.serve_after_finish = true;
  WorkerConfig victim = worker("victim", 4);
  victim.fault.enabled = true;
  victim.fault.kill_after_points = 50;  // dies well inside the grid
  victim.fault.kill_hard = false;

  std::vector<WorkerExit> exits;
  CoordinatorStats stats;
  const SweepResult dist = run_distributed(
      spec, svc, {victim, worker("w1", 5), worker("w2", 6)}, &exits, &stats,
      [&](std::uint16_t port) {
        // Reassigned + re-run points must aggregate exactly once: the
        // live cells still match the single-shot report after the kill.
        expect_queried_cells(port, single.cells);
      });

  EXPECT_EQ(exits[0], WorkerExit::kKilled);
  EXPECT_EQ(exits[1], WorkerExit::kShutdown);
  EXPECT_EQ(exits[2], WorkerExit::kShutdown);
  EXPECT_GE(stats.leases_reassigned, 1u)
      << "the victim died mid-lease; its points must be re-queued";
  EXPECT_FALSE(dist.aborted);
  expect_identical_results(single, dist);
}

// Seeded drop/delay schedules lose results and heartbeats on purpose;
// lease expiry re-runs the points, duplicates are discarded, and the
// merged report must not change by a byte. Run twice to pin that the
// fault schedule itself is deterministic end-to-end.
TEST(Sweepd, FaultScheduleKeepsReportByteIdentical) {
  const SweepSpec spec = small_spec();
  const SweepResult single = run_sweep(spec);

  for (int attempt = 0; attempt < 2; ++attempt) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    ServiceConfig svc;
    svc.lease_points = 2;
    svc.lease_timeout_ms = 300;  // expire dropped results quickly
    WorkerConfig lossy = worker("lossy", 7);
    lossy.fault.enabled = true;
    lossy.fault.seed = 9;
    lossy.fault.drop = 0.2;
    lossy.fault.delay = 0.1;
    lossy.fault.delay_ms = 1;

    std::vector<WorkerExit> exits;
    const SweepResult dist =
        run_distributed(spec, svc, {lossy, worker("clean", 8)}, &exits);
    EXPECT_FALSE(dist.aborted);
    expect_identical_results(single, dist);
  }
}

// Zero reachable workers: after idle_grace_ms the coordinator runs the
// remaining stripe in-process through the same merge path — graceful
// degradation, not a hang.
TEST(Sweepd, ZeroWorkersFallsBackToInProcessExecution) {
  const SweepSpec spec = small_spec();
  const SweepResult single = run_sweep(spec);

  ServiceConfig svc;
  svc.idle_grace_ms = 50;
  Coordinator coordinator(spec, svc);
  const SweepResult dist = coordinator.serve();
  EXPECT_EQ(coordinator.stats().local_fallback_points, single.points.size());
  EXPECT_EQ(coordinator.stats().workers_seen, 0u);
  expect_identical_results(single, dist);
}

// A worker whose flags expand a different grid must be rejected at the
// hello handshake — leases reference grid indices, so index agreement is
// a correctness precondition, not an optimization.
TEST(Sweepd, RejectsWorkerWithMismatchedGrid) {
  const SweepSpec spec = small_spec();
  SweepSpec other = spec;
  other.seeds = {1, 2, 3};  // different grid => different fingerprint

  ServiceConfig svc;
  svc.idle_grace_ms = 300;  // finish in-process after the rejection
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();

  SweepResult dist;
  std::thread serve_thread([&] { dist = coordinator.serve(); });
  WorkerConfig cfg = worker("foreign", 9);
  cfg.port = port;
  const WorkerExit e = run_sweep_worker(other, cfg);
  serve_thread.join();

  EXPECT_EQ(e, WorkerExit::kRejected);
  EXPECT_GE(coordinator.stats().workers_rejected, 1u);
  expect_identical_results(run_sweep(spec), dist);
}

// The stop flag (sweepd wires SIGTERM to it) aborts exactly like
// run_sweep's progress-abort: unrun points become structured skips and
// the result is flagged aborted.
TEST(Sweepd, StopFlagAbortsWithStructuredSkips) {
  const SweepSpec spec = small_spec();
  ServiceConfig svc;
  Coordinator coordinator(spec, svc);
  std::atomic<bool> stop{true};
  const SweepResult dist = coordinator.serve(&stop);
  EXPECT_TRUE(dist.aborted);
  ASSERT_EQ(dist.points.size(), expand_grid(spec).size());
  for (const PointResult& p : dist.points) {
    EXPECT_TRUE(p.skipped);
    EXPECT_NE(p.skip_reason.find("aborted"), std::string::npos);
  }
}

// The fault injector's schedule is a pure function of (seed, frame
// index): same config => identical action sequences, different seed =>
// a different one, and the CLI spec round-trips through to_string.
TEST(Sweepd, FaultScheduleIsSeedDeterministic) {
  net::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.drop = 0.3;
  cfg.delay = 0.2;
  cfg.delay_ms = 3;
  net::FaultInjector a(cfg);
  net::FaultInjector b(cfg);
  net::FaultConfig reseeded = cfg;
  reseeded.seed = 43;
  net::FaultInjector c(reseeded);

  bool any_drop = false;
  bool any_delay = false;
  bool differs = false;
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.next_send();
    const auto fb = b.next_send();
    const auto fc = c.next_send();
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.delay_ms, fb.delay_ms);
    EXPECT_EQ(fa.close, fb.close);
    any_drop |= fa.drop;
    any_delay |= fa.delay_ms != 0;
    differs |= fa.drop != fc.drop || fa.delay_ms != fc.delay_ms;
  }
  EXPECT_TRUE(any_drop);
  EXPECT_TRUE(any_delay);
  EXPECT_TRUE(differs) << "different seeds should give different schedules";

  const auto parsed = net::parse_fault_config(
      "seed=7,drop=0.25,delay=0.125,delay_ms=3,close_after=20,kill_after=9,"
      "hard");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(net::to_string(*parsed),
            "seed=7,drop=0.25,delay=0.125,delay_ms=3,close_after=20,"
            "kill_after=9,hard");
  EXPECT_FALSE(net::parse_fault_config("").has_value());
  EXPECT_FALSE(net::parse_fault_config("bogus=1").has_value());
  EXPECT_FALSE(net::parse_fault_config("drop=1.5").has_value());
  EXPECT_FALSE(net::parse_fault_config("drop=x").has_value());
}

// The incremental-aggregation statement: CellAggregator is a pure
// function of the SET of (index, result) pairs, not of their arrival
// order — any permutation folds to cells bit-identical to the in-order
// rebuild_cell_aggregates pass over the 512-point conformance grid.
TEST(Sweepd, CellAggregatorIsArrivalOrderInvariant) {
  const SweepResult single = run_sweep(conformance_spec(2));
  const std::size_t n = single.points.size();

  CellAggregator in_order;
  for (std::size_t i = 0; i < n; ++i) in_order.add(i, single.points[i]);
  expect_cells_equal(single.cells, in_order.cells());

  // A stride walk coprime with the grid size visits every index exactly
  // once in a heavily scrambled order — the arrival pattern of a sweep
  // full of lease reassignments.
  const std::size_t stride = 211;
  ASSERT_EQ(std::gcd(stride, n), 1u) << "stride must generate the full walk";
  CellAggregator scrambled;
  std::size_t idx = 0;
  for (std::size_t step = 0; step < n; ++step) {
    scrambled.add(idx, single.points[idx]);
    idx = (idx + stride) % n;
  }
  expect_cells_equal(single.cells, scrambled.cells());
}

// --serve over a FINISHED checkpoint: the coordinator restores every
// point, never leases anything, and acts as a standalone query server
// whose answers are byte-identical fragments of the written report.
TEST(Sweepd, ServeModeAnswersFromFinishedCheckpoint) {
  SweepSpec spec = small_spec();
  spec.checkpoint_path = temp_path("sweepd_serve_finished.jsonl");
  std::remove(spec.checkpoint_path.c_str());
  const SweepResult full = run_sweep(spec);
  ASSERT_EQ(full.points.size(), 8u);

  ServiceConfig svc;
  svc.serve_after_finish = true;
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();
  std::atomic<bool> stop{false};
  SweepResult served;
  std::thread serve_thread([&] { served = coordinator.serve(&stop); });

  QueryClientConfig qc;
  qc.port = port;
  QueryRequest pq;  // progress
  const auto progress = run_query(pq, qc);
  ASSERT_TRUE(progress.has_value());
  EXPECT_TRUE(progress->done);
  EXPECT_EQ(progress->total, full.points.size());
  EXPECT_EQ(progress->completed, full.points.size());
  EXPECT_EQ(progress->restored, full.points.size());
  EXPECT_EQ(progress->cells, full.cells.size());

  expect_queried_cells(port, full.cells);

  // Selector query, spelled exactly as the report spells the cell. All
  // coordinates pinned => exactly that cell; a foreign f => nothing.
  ASSERT_FALSE(full.cells.empty());
  const CellAggregate& c0 = full.cells[0];
  const std::string body0 = cell_json(c0);
  QueryRequest sel;
  sel.what = "cells";
  std::string alg, fam, mix;
  ASSERT_TRUE(json::find_string(body0, "algorithm", alg));
  ASSERT_TRUE(json::find_string(body0, "family", fam));
  ASSERT_TRUE(json::find_string(body0, "mix", mix));
  sel.algorithm = alg;
  sel.family = fam;
  sel.mix = mix;
  sel.n = c0.n;
  sel.k = c0.k;
  sel.f = c0.f;
  const auto selected = run_query(sel, qc);
  ASSERT_TRUE(selected.has_value());
  ASSERT_EQ(selected->bodies.size(), 1u);
  EXPECT_EQ(selected->bodies[0], body0);
  sel.f = 99;
  const auto none = run_query(sel, qc);
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->error.empty());
  EXPECT_TRUE(none->bodies.empty());

  // Every point is addressable by derived seed, and the body is the
  // verbatim report fragment (also literally a substring of --json).
  std::ostringstream json_report;
  write_json(json_report, full);
  const std::string report = json_report.str();
  for (const PointResult& p : full.points) {
    QueryRequest point;
    point.what = "point";
    point.derived_seed = p.derived_seed;
    const auto reply = run_query(point, qc);
    ASSERT_TRUE(reply.has_value());
    EXPECT_FALSE(reply->pending);
    ASSERT_EQ(reply->bodies.size(), 1u);
    EXPECT_EQ(reply->bodies[0], point_json(p));
    EXPECT_NE(report.find(reply->bodies[0]), std::string::npos)
        << "query bodies must be verbatim report fragments";
  }

  stop.store(true);
  serve_thread.join();
  EXPECT_FALSE(served.aborted)
      << "ending --serve is not an abort: the sweep itself finished";
  expect_identical_results(full, served);
}

// Mid-sweep queries: freeze a coordinator with a half-restored
// checkpoint and no way to advance (no workers, no fallback). Its
// answers must equal rebuild_cell_aggregates over exactly the completed
// points, pending points must say so, and bad queries must be rejected
// with errors rather than dropped connections.
TEST(Sweepd, MidSweepQueriesMatchRebuildOverCompletedPoints) {
  SweepSpec spec = small_spec();
  spec.threads = 1;  // sequential => checkpoint lines in grid order
  spec.checkpoint_path = temp_path("sweepd_mid_sweep.jsonl");
  std::remove(spec.checkpoint_path.c_str());
  const SweepResult full = run_sweep(spec);
  keep_first_lines(spec.checkpoint_path, 3);

  ServiceConfig svc;
  svc.local_fallback = false;  // frozen: completion state cannot move
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();
  std::atomic<bool> stop{false};
  SweepResult served;
  std::thread serve_thread([&] { served = coordinator.serve(&stop); });

  QueryClientConfig qc;
  qc.port = port;
  QueryRequest pq;  // progress
  const auto progress = run_query(pq, qc);
  ASSERT_TRUE(progress.has_value());
  EXPECT_FALSE(progress->done);
  EXPECT_EQ(progress->total, 8u);
  EXPECT_EQ(progress->completed, 3u);
  EXPECT_EQ(progress->restored, 3u);

  // Expected mid-sweep cells: the batch rebuild over the completed
  // prefix, with the rest explicitly skipped.
  SweepResult partial = full;
  for (std::size_t i = 3; i < partial.points.size(); ++i) {
    partial.points[i] = PointResult{};
    partial.points[i].point = full.points[i].point;
    partial.points[i].skipped = true;
  }
  rebuild_cell_aggregates(partial);
  expect_queried_cells(port, partial.cells);

  QueryRequest done_point;
  done_point.what = "point";
  done_point.derived_seed = full.points[0].derived_seed;
  const auto got = run_query(done_point, qc);
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->pending);
  ASSERT_EQ(got->bodies.size(), 1u);
  EXPECT_EQ(got->bodies[0], point_json(full.points[0]));

  QueryRequest todo_point;
  todo_point.what = "point";
  todo_point.index = 7;
  const auto pending = run_query(todo_point, qc);
  ASSERT_TRUE(pending.has_value());
  EXPECT_TRUE(pending->error.empty());
  EXPECT_TRUE(pending->pending);
  EXPECT_TRUE(pending->bodies.empty());

  QueryRequest bad_what;
  bad_what.what = "bogus";
  const auto rejected = run_query(bad_what, qc);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->error.empty());

  QueryRequest bad_index;
  bad_index.what = "point";
  bad_index.index = 99;
  const auto out_of_range = run_query(bad_index, qc);
  ASSERT_TRUE(out_of_range.has_value());
  EXPECT_FALSE(out_of_range->error.empty());

  stop.store(true);
  serve_thread.join();
  EXPECT_TRUE(served.aborted) << "stopping an unfinished sweep is an abort";
}

// Queries under fire: seeded drop/delay schedules on BOTH the
// coordinator's sends and a lossy worker, with progress polled live
// while the sweep runs. Every query must eventually answer (retries, not
// wedges), completion must be monotone, and the final cells and report
// must still be byte-identical to single-shot.
TEST(Sweepd, QueriesSurviveFaultSchedulesMidSweep) {
  const SweepSpec spec = small_spec();
  const SweepResult single = run_sweep(spec);

  ServiceConfig svc;
  svc.lease_points = 2;
  svc.lease_timeout_ms = 300;
  svc.serve_after_finish = true;
  svc.fault.enabled = true;
  svc.fault.seed = 21;
  svc.fault.drop = 0.15;
  svc.fault.delay = 0.1;
  svc.fault.delay_ms = 1;
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();
  std::atomic<bool> stop{false};
  SweepResult dist;
  std::thread serve_thread([&] { dist = coordinator.serve(&stop); });

  WorkerConfig lossy = worker("lossy", 13);
  lossy.port = port;
  lossy.fault.enabled = true;
  lossy.fault.seed = 13;
  lossy.fault.drop = 0.2;
  std::atomic<bool> worker_done{false};
  WorkerExit exit_reason = WorkerExit::kLostCoordinator;
  std::thread fleet([&] {
    exit_reason = run_sweep_worker(spec, lossy);
    worker_done.store(true);
  });

  QueryClientConfig qc;
  qc.port = port;
  qc.timeout_ms = 300;
  qc.attempts = 8;
  std::uint64_t last_completed = 0;
  do {
    QueryRequest pq;  // progress
    const auto reply = run_query(pq, qc);
    ASSERT_TRUE(reply.has_value()) << "faults cost retries, never answers";
    EXPECT_LE(reply->completed, reply->total);
    EXPECT_GE(reply->completed, last_completed) << "completion is monotone";
    last_completed = reply->completed;
  } while (!worker_done.load());
  fleet.join();
  EXPECT_EQ(exit_reason, WorkerExit::kShutdown);

  expect_queried_cells(port, single.cells);
  stop.store(true);
  serve_thread.join();
  EXPECT_FALSE(dist.aborted);
  expect_identical_results(single, dist);
}

// Merge-path regression: a reconnecting worker re-streaming a point that
// was RESTORED from the checkpoint (not merged live) must be classified
// as a duplicate, not a protocol error — the coordinator indexes the
// whole grid by derived seed, not just the unfinished remainder.
TEST(Sweepd, RestreamedRestoredResultCountsAsDuplicate) {
  SweepSpec spec = small_spec();
  spec.threads = 1;
  spec.checkpoint_path = temp_path("sweepd_restream.jsonl");
  std::remove(spec.checkpoint_path.c_str());
  const SweepResult full = run_sweep(spec);
  keep_first_lines(spec.checkpoint_path, 4);

  ServiceConfig svc;
  svc.idle_grace_ms = 100;  // finish in-process once we disconnect
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();
  SweepResult merged;
  std::thread serve_thread([&] { merged = coordinator.serve(); });

  // Hand-rolled worker: a valid hello, then a verbatim re-stream of a
  // restored point's checkpoint record — a worker that died mid-flush
  // and re-sent its queue after the coordinator restarted.
  auto conn = net::dial("127.0.0.1", port);
  ASSERT_TRUE(conn != nullptr);
  std::ostringstream hello;
  hello << "{\"type\": \"hello\", \"name\": \"restreamer\", \"spec\": "
        << spec_fingerprint(spec)
        << ", \"grid\": " << grid_fingerprint(spec, expand_grid(spec)) << "}";
  ASSERT_TRUE(conn->send_frame(hello.str()));
  std::string payload, type;
  ASSERT_EQ(conn->recv_frame(payload, 2000), net::RecvStatus::kFrame);
  ASSERT_TRUE(json::find_string(payload, "type", type));
  ASSERT_EQ(type, "hello_ok");

  std::ostringstream line;
  write_checkpoint_line(line, full.points[0], spec_fingerprint(spec));
  std::string record = line.str();
  ASSERT_EQ(record.back(), '\n');
  record.pop_back();  // frames carry no trailing newline
  ASSERT_TRUE(conn->send_frame(record));

  // A progress query on the SAME connection: frames are processed in
  // order, so the reply's counter snapshot pins how the duplicate was
  // classified before any lease-expiry noise can muddy it.
  ASSERT_TRUE(conn->send_frame(
      "{\"type\": \"query\", \"id\": 1, \"what\": \"progress\"}"));
  for (;;) {  // skip the lease this "worker" was granted
    ASSERT_EQ(conn->recv_frame(payload, 2000), net::RecvStatus::kFrame);
    ASSERT_TRUE(json::find_string(payload, "type", type));
    if (type == "result") break;
  }
  std::uint64_t duplicates = 99, proto_errors = 99;
  ASSERT_TRUE(json::find_u64(payload, "duplicate_results", duplicates));
  ASSERT_TRUE(json::find_u64(payload, "protocol_errors", proto_errors));
  EXPECT_EQ(duplicates, 1u);
  EXPECT_EQ(proto_errors, 0u);
  conn.reset();  // disconnect: our lease re-queues, fallback finishes

  serve_thread.join();
  EXPECT_EQ(coordinator.stats().duplicate_results, 1u);
  EXPECT_EQ(coordinator.stats().protocol_errors, 0u);
  EXPECT_FALSE(merged.aborted);
  expect_identical_results(full, merged);
}

// Worker-side regression: leases whose id is missing or the reserved 0
// must be ignored outright. A worker that ran one anyway would stream
// its batch under lease 0 (id-0 heartbeats, extra results) — observable
// right here on the wire.
TEST(Sweepd, WorkerRejectsLeaseWithUnparseableId) {
  const SweepSpec spec = small_spec();

  net::Listener listener(0);
  WorkerConfig cfg = worker("leasee", 11);
  cfg.port = listener.port();
  cfg.idle_recv_ms = 2000;  // no idle heartbeat(0) noise mid-drain
  WorkerExit exit_reason = WorkerExit::kLostCoordinator;
  std::thread worker_thread(
      [&] { exit_reason = run_sweep_worker(spec, cfg); });

  std::unique_ptr<net::Connection> conn;
  while (!conn) {
    conn = listener.accept();
    if (!conn) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string payload, type;
  ASSERT_EQ(conn->recv_frame(payload, 2000), net::RecvStatus::kFrame);
  ASSERT_TRUE(json::find_string(payload, "type", type));
  ASSERT_EQ(type, "hello");
  ASSERT_TRUE(conn->send_frame(
      "{\"type\": \"hello_ok\", \"lease_timeout_ms\": 3000}"));

  // Two corrupted leases, then a good one for a single point.
  ASSERT_TRUE(conn->send_frame("{\"type\": \"lease\", \"points\": \"0 1\"}"));
  ASSERT_TRUE(
      conn->send_frame("{\"type\": \"lease\", \"id\": 0, \"points\": \"0 1\"}"));
  ASSERT_TRUE(
      conn->send_frame("{\"type\": \"lease\", \"id\": 5, \"points\": \"0\"}"));

  // Only lease 5 may produce traffic: one heartbeat per point, one
  // result (a frame with no "type"), then its lease_done.
  std::size_t results = 0;
  for (;;) {
    ASSERT_EQ(conn->recv_frame(payload, 5000), net::RecvStatus::kFrame);
    if (!json::find_string(payload, "type", type)) {
      ++results;
      continue;
    }
    std::uint64_t id = 0;
    EXPECT_TRUE(json::find_u64(payload, "id", id));
    EXPECT_EQ(id, 5u) << "corrupted leases must never reach the wire";
    if (type == "lease_done") break;
    EXPECT_EQ(type, "heartbeat");
  }
  EXPECT_EQ(results, 1u) << "exactly the good lease's single point";
  ASSERT_TRUE(conn->send_frame("{\"type\": \"shutdown\"}"));
  worker_thread.join();
  EXPECT_EQ(exit_reason, WorkerExit::kShutdown);
}

}  // namespace
}  // namespace bdg::run
