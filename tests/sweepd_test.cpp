// Conformance tier for the sweepd coordinator/worker service: a
// distributed sweep over the PR 3 512-point mixed-adversary grid must
// reproduce the single-shot SweepResult byte-identically (reports
// included), survive a worker dying mid-grid (leases reassigned and
// re-run), stay byte-identical under seeded drop/delay fault schedules,
// degrade to in-process execution with zero reachable workers, and reject
// workers that expanded a different grid.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "run/report.h"
#include "run/service.h"
#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;
using core::ByzStrategy;

/// Render every report of a result into one string for byte comparison.
std::string all_reports(const SweepResult& r) {
  std::ostringstream os;
  write_points_csv(os, r);
  os << "\n--\n";
  write_cells_csv(os, r);
  os << "\n--\n";
  write_json(os, r);
  return os.str();
}

/// The same 512-point mixed-adversary, k-axis grid the resume conformance
/// tier pins (sweep_resume_test): 2 algorithms x 2 families x 1 size x
/// 4 k x 2 unclamped f x 2 mixes x 8 seeds, timing off so reports are a
/// pure function of the grid.
SweepSpec conformance_spec(unsigned threads) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered,
                     Algorithm::kTournamentGathered};
  spec.families = {"er", "complete"};
  spec.sizes = {6};
  spec.robot_counts = {4, 6, 7, 12};
  spec.byzantine_counts = {0, 1};
  spec.clamp_f_to_tolerance = false;
  spec.strategy_mixes = {{ByzStrategy::kMapLiar, ByzStrategy::kCrash},
                         {ByzStrategy::kFakeSettler,
                          ByzStrategy::kSilentSettler,
                          ByzStrategy::kSquatter}};
  spec.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.threads = threads;
  spec.measure_seconds = false;
  return spec;
}

/// A small grid (8 points) for the fault-schedule tests, where drops force
/// lease expiries and the test runs the sweep several times.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {6};
  spec.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.threads = 2;
  spec.measure_seconds = false;
  return spec;
}

void expect_identical_results(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const PointResult& pa = a.points[i];
    const PointResult& pb = b.points[i];
    EXPECT_TRUE(same_point(pa.point, pb.point));
    EXPECT_EQ(pa.derived_seed, pb.derived_seed);
    EXPECT_EQ(pa.skipped, pb.skipped);
    EXPECT_EQ(pa.skip_reason, pb.skip_reason);
    EXPECT_EQ(pa.ok, pb.ok);
    EXPECT_EQ(pa.detail, pb.detail);
    EXPECT_EQ(pa.stats.rounds, pb.stats.rounds);
    EXPECT_EQ(pa.stats.moves, pb.stats.moves);
    EXPECT_EQ(pa.stats.messages, pb.stats.messages);
    EXPECT_EQ(pa.planned_rounds, pb.planned_rounds);
    EXPECT_EQ(pa.seconds, pb.seconds);
  }
  EXPECT_EQ(all_reports(a), all_reports(b));
}

/// Run a coordinator plus `workers` in-process worker threads over `spec`,
/// returning the merged result (and each worker's exit reason).
SweepResult run_distributed(const SweepSpec& spec, ServiceConfig svc,
                            std::vector<WorkerConfig> workers,
                            std::vector<WorkerExit>* exits = nullptr,
                            CoordinatorStats* stats = nullptr) {
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();

  SweepResult result;
  std::thread serve_thread(
      [&] { result = coordinator.serve(); });

  std::vector<WorkerExit> reasons(workers.size(), WorkerExit::kShutdown);
  std::vector<std::thread> fleet;
  for (std::size_t w = 0; w < workers.size(); ++w) {
    workers[w].port = port;
    fleet.emplace_back([&, w] {
      reasons[w] = run_sweep_worker(spec, workers[w]);
    });
  }
  serve_thread.join();
  for (auto& t : fleet) t.join();
  if (exits) *exits = reasons;
  if (stats) *stats = coordinator.stats();
  return result;
}

WorkerConfig worker(const std::string& name, std::uint64_t jitter_seed) {
  WorkerConfig cfg;
  cfg.name = name;
  cfg.jitter_seed = jitter_seed;
  cfg.idle_recv_ms = 50;
  cfg.hello_timeout_ms = 1000;
  // Short reconnect budget: a worker that loses a shutdown race gives up
  // quickly instead of stalling the test on a vanished coordinator.
  cfg.backoff.attempts = 6;
  cfg.backoff.base_ms = 5;
  cfg.backoff.max_ms = 50;
  return cfg;
}

// The acceptance statement: a 3-worker distributed sweep over the
// 512-point conformance grid is byte-identical to single-shot run_sweep.
TEST(Sweepd, ThreeWorkerSweepIsByteIdenticalToSingleShot) {
  const SweepSpec spec = conformance_spec(2);
  const SweepResult single = run_sweep(spec);
  ASSERT_GE(single.points.size(), 500u);

  ServiceConfig svc;
  svc.lease_points = 8;
  svc.lease_timeout_ms = 10000;
  std::vector<WorkerExit> exits;
  CoordinatorStats stats;
  const SweepResult dist = run_distributed(
      spec, svc, {worker("w0", 1), worker("w1", 2), worker("w2", 3)}, &exits,
      &stats);

  for (const WorkerExit e : exits) EXPECT_EQ(e, WorkerExit::kShutdown);
  EXPECT_GE(stats.workers_seen, 3u);
  EXPECT_GT(stats.leases_granted, 0u);
  EXPECT_EQ(stats.leases_reassigned, 0u);
  EXPECT_EQ(stats.duplicate_results, 0u);
  EXPECT_EQ(stats.local_fallback_points, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_FALSE(dist.aborted);
  expect_identical_results(single, dist);
}

// Robustness statement: killing a worker mid-grid (soft kill hook — the
// thread analogue of SIGKILL; the CI smoke covers the hard _Exit variant)
// reassigns its leased points and the merged result is still
// byte-identical.
TEST(Sweepd, SurvivesWorkerKilledMidGrid) {
  const SweepSpec spec = conformance_spec(2);
  const SweepResult single = run_sweep(spec);

  ServiceConfig svc;
  svc.lease_points = 8;
  svc.lease_timeout_ms = 10000;
  WorkerConfig victim = worker("victim", 4);
  victim.fault.enabled = true;
  victim.fault.kill_after_points = 50;  // dies well inside the grid
  victim.fault.kill_hard = false;

  std::vector<WorkerExit> exits;
  CoordinatorStats stats;
  const SweepResult dist = run_distributed(
      spec, svc, {victim, worker("w1", 5), worker("w2", 6)}, &exits, &stats);

  EXPECT_EQ(exits[0], WorkerExit::kKilled);
  EXPECT_EQ(exits[1], WorkerExit::kShutdown);
  EXPECT_EQ(exits[2], WorkerExit::kShutdown);
  EXPECT_GE(stats.leases_reassigned, 1u)
      << "the victim died mid-lease; its points must be re-queued";
  EXPECT_FALSE(dist.aborted);
  expect_identical_results(single, dist);
}

// Seeded drop/delay schedules lose results and heartbeats on purpose;
// lease expiry re-runs the points, duplicates are discarded, and the
// merged report must not change by a byte. Run twice to pin that the
// fault schedule itself is deterministic end-to-end.
TEST(Sweepd, FaultScheduleKeepsReportByteIdentical) {
  const SweepSpec spec = small_spec();
  const SweepResult single = run_sweep(spec);

  for (int attempt = 0; attempt < 2; ++attempt) {
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    ServiceConfig svc;
    svc.lease_points = 2;
    svc.lease_timeout_ms = 300;  // expire dropped results quickly
    WorkerConfig lossy = worker("lossy", 7);
    lossy.fault.enabled = true;
    lossy.fault.seed = 9;
    lossy.fault.drop = 0.2;
    lossy.fault.delay = 0.1;
    lossy.fault.delay_ms = 1;

    std::vector<WorkerExit> exits;
    const SweepResult dist =
        run_distributed(spec, svc, {lossy, worker("clean", 8)}, &exits);
    EXPECT_FALSE(dist.aborted);
    expect_identical_results(single, dist);
  }
}

// Zero reachable workers: after idle_grace_ms the coordinator runs the
// remaining stripe in-process through the same merge path — graceful
// degradation, not a hang.
TEST(Sweepd, ZeroWorkersFallsBackToInProcessExecution) {
  const SweepSpec spec = small_spec();
  const SweepResult single = run_sweep(spec);

  ServiceConfig svc;
  svc.idle_grace_ms = 50;
  Coordinator coordinator(spec, svc);
  const SweepResult dist = coordinator.serve();
  EXPECT_EQ(coordinator.stats().local_fallback_points, single.points.size());
  EXPECT_EQ(coordinator.stats().workers_seen, 0u);
  expect_identical_results(single, dist);
}

// A worker whose flags expand a different grid must be rejected at the
// hello handshake — leases reference grid indices, so index agreement is
// a correctness precondition, not an optimization.
TEST(Sweepd, RejectsWorkerWithMismatchedGrid) {
  const SweepSpec spec = small_spec();
  SweepSpec other = spec;
  other.seeds = {1, 2, 3};  // different grid => different fingerprint

  ServiceConfig svc;
  svc.idle_grace_ms = 300;  // finish in-process after the rejection
  Coordinator coordinator(spec, svc);
  const std::uint16_t port = coordinator.port();

  SweepResult dist;
  std::thread serve_thread([&] { dist = coordinator.serve(); });
  WorkerConfig cfg = worker("foreign", 9);
  cfg.port = port;
  const WorkerExit e = run_sweep_worker(other, cfg);
  serve_thread.join();

  EXPECT_EQ(e, WorkerExit::kRejected);
  EXPECT_GE(coordinator.stats().workers_rejected, 1u);
  expect_identical_results(run_sweep(spec), dist);
}

// The stop flag (sweepd wires SIGTERM to it) aborts exactly like
// run_sweep's progress-abort: unrun points become structured skips and
// the result is flagged aborted.
TEST(Sweepd, StopFlagAbortsWithStructuredSkips) {
  const SweepSpec spec = small_spec();
  ServiceConfig svc;
  Coordinator coordinator(spec, svc);
  std::atomic<bool> stop{true};
  const SweepResult dist = coordinator.serve(&stop);
  EXPECT_TRUE(dist.aborted);
  ASSERT_EQ(dist.points.size(), expand_grid(spec).size());
  for (const PointResult& p : dist.points) {
    EXPECT_TRUE(p.skipped);
    EXPECT_NE(p.skip_reason.find("aborted"), std::string::npos);
  }
}

// The fault injector's schedule is a pure function of (seed, frame
// index): same config => identical action sequences, different seed =>
// a different one, and the CLI spec round-trips through to_string.
TEST(Sweepd, FaultScheduleIsSeedDeterministic) {
  net::FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.drop = 0.3;
  cfg.delay = 0.2;
  cfg.delay_ms = 3;
  net::FaultInjector a(cfg);
  net::FaultInjector b(cfg);
  net::FaultConfig reseeded = cfg;
  reseeded.seed = 43;
  net::FaultInjector c(reseeded);

  bool any_drop = false;
  bool any_delay = false;
  bool differs = false;
  for (int i = 0; i < 500; ++i) {
    const auto fa = a.next_send();
    const auto fb = b.next_send();
    const auto fc = c.next_send();
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.delay_ms, fb.delay_ms);
    EXPECT_EQ(fa.close, fb.close);
    any_drop |= fa.drop;
    any_delay |= fa.delay_ms != 0;
    differs |= fa.drop != fc.drop || fa.delay_ms != fc.delay_ms;
  }
  EXPECT_TRUE(any_drop);
  EXPECT_TRUE(any_delay);
  EXPECT_TRUE(differs) << "different seeds should give different schedules";

  const auto parsed = net::parse_fault_config(
      "seed=7,drop=0.25,delay=0.125,delay_ms=3,close_after=20,kill_after=9,"
      "hard");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(net::to_string(*parsed),
            "seed=7,drop=0.25,delay=0.125,delay_ms=3,close_after=20,"
            "kill_after=9,hard");
  EXPECT_FALSE(net::parse_fault_config("").has_value());
  EXPECT_FALSE(net::parse_fault_config("bogus=1").has_value());
  EXPECT_FALSE(net::parse_fault_config("drop=1.5").has_value());
  EXPECT_FALSE(net::parse_fault_config("drop=x").has_value());
}

}  // namespace
}  // namespace bdg::run
