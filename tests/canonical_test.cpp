// Canonical encodings and isomorphism tests: rooted codes must be complete
// invariants of rooted port-labeled graphs.
#include "graph/canonical.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"

namespace bdg {
namespace {

TEST(Canonical, RootedCodeRoundTripsThroughDecoder) {
  Rng rng(3);
  for (const auto& [name, g] : standard_menagerie(9, 77)) {
    SCOPED_TRACE(name);
    const CanonicalCode code = rooted_code(g, 0);
    const Graph h = graph_from_code(code);
    EXPECT_TRUE(rooted_isomorphic(g, 0, h, 0));
  }
}

TEST(Canonical, NodeRelabelingPreservesRootedCode) {
  Rng rng(17);
  const Graph g = make_connected_er(10, 0.4, rng);
  std::vector<NodeId> perm(g.n());
  std::iota(perm.begin(), perm.end(), 0u);
  rng.shuffle(perm);
  const Graph h = relabel_nodes(g, perm);
  // Root must be mapped through the permutation.
  EXPECT_EQ(rooted_code(g, 3), rooted_code(h, perm[3]));
  EXPECT_TRUE(isomorphic(g, h));
}

TEST(Canonical, PortShufflingBreaksRootedCode) {
  Rng rng(9);
  const Graph g = make_grid(3, 3);
  const Graph s = shuffle_ports(g, rng);
  // Port-labeled isomorphism is sensitive to port labels: a shuffled
  // labeling is (almost surely) NOT isomorphic to the original.
  EXPECT_NE(rooted_code(g, 0), rooted_code(s, 0));
}

TEST(Canonical, DifferentGraphsDiffer) {
  EXPECT_FALSE(isomorphic(make_ring(6), make_path(6)));
  EXPECT_FALSE(isomorphic(make_ring(6), make_ring(7)));
  EXPECT_FALSE(isomorphic(make_star(5), make_path(5)));
}

TEST(Canonical, OrientedRingAllRootsEquivalent) {
  const Graph g = make_oriented_ring(8);
  const CanonicalCode c0 = rooted_code(g, 0);
  for (NodeId r = 1; r < 8; ++r) EXPECT_EQ(rooted_code(g, r), c0);
}

TEST(Canonical, UnrootedCodeIsMinimalRooted) {
  const Graph g = make_path(5);
  CanonicalCode best = rooted_code(g, 0);
  for (NodeId r = 1; r < g.n(); ++r) best = std::min(best, rooted_code(g, r));
  EXPECT_EQ(unrooted_code(g), best);
}

TEST(Canonical, CanonicalOrderStartsAtRootAndCoversAll) {
  const Graph g = make_grid(3, 4);
  const auto order = canonical_order(g, 5);
  EXPECT_EQ(order.size(), g.n());
  EXPECT_EQ(order[0], 5u);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(sorted[v], v);
}

TEST(Canonical, DecoderRejectsGarbage) {
  EXPECT_THROW((void)graph_from_code({}), std::invalid_argument);
  EXPECT_THROW((void)graph_from_code({2, 1}), std::invalid_argument);
  EXPECT_THROW((void)graph_from_code({2, 1, 5, 0, 1, 0, 0}),
               std::invalid_argument);
}

TEST(Canonical, RootedCodeDisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)rooted_code(g, 0), std::invalid_argument);
}

// Property sweep: relabeled copies are isomorphic, size-mismatched are not.
class IsoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsoSweep, RelabeledCopiesAreIsomorphic) {
  Rng rng(GetParam());
  for (const auto& [name, g] : standard_menagerie(8, GetParam())) {
    SCOPED_TRACE(name);
    std::vector<NodeId> perm(g.n());
    std::iota(perm.begin(), perm.end(), 0u);
    rng.shuffle(perm);
    EXPECT_TRUE(isomorphic(g, relabel_nodes(g, perm)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsoSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace bdg
