// Cross-product integration sweep: every algorithm x several graph
// families x adversary strategies at maximum claimed tolerance. This is
// the suite-level statement of the paper's Table 1 guarantees.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "graph/generators.h"
#include "graph/quotient.h"

namespace bdg::core {
namespace {

struct SweepCase {
  Algorithm algorithm;
  const char* graph;
  ByzStrategy strategy;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string algo = to_string(info.param.algorithm);
  for (char& c : algo)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return algo + "__" + info.param.graph + "__" +
         to_string(info.param.strategy);
}

Graph build(const char* name, std::uint64_t seed, bool need_trivial_quotient) {
  Rng rng(seed);
  if (std::string(name) == "ring") return shuffle_ports(make_ring(8), rng);
  if (std::string(name) == "grid") return make_grid(2, 4);
  if (std::string(name) == "tree") return make_random_tree(8, rng);
  if (std::string(name) == "complete") return make_complete(8);
  // "er": resample until the quotient is trivial when required (Thm 1).
  for (int i = 0; i < 128; ++i) {
    const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
    if (!need_trivial_quotient || has_trivial_quotient(g)) return g;
  }
  throw std::runtime_error("no suitable er sample");
}

class E2ESweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(E2ESweep, Table1GuaranteeHolds) {
  const SweepCase& c = GetParam();
  const bool need_trivial = c.algorithm == Algorithm::kQuotient;
  // Theorem 1 only claims graphs with G ~ Q_G; run it on the er family.
  if (need_trivial && std::string(c.graph) != "er") GTEST_SKIP();

  const Graph g = build(c.graph, 91, need_trivial);
  ScenarioConfig cfg;
  cfg.algorithm = c.algorithm;
  cfg.num_byzantine =
      max_tolerated_f(c.algorithm, static_cast<std::uint32_t>(g.n()));
  cfg.strategy = c.strategy;
  cfg.seed = 13;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  EXPECT_LE(res.stats.rounds, res.planned_rounds + 16);
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  const Algorithm algos[] = {
      Algorithm::kQuotient,          Algorithm::kTournamentGathered,
      Algorithm::kThreeGroupGathered, Algorithm::kSqrtArbitrary,
      Algorithm::kStrongGathered,    Algorithm::kCrashRealGathering,
  };
  const char* graphs[] = {"er", "ring", "grid", "tree", "complete"};
  for (const Algorithm a : algos) {
    for (const char* g : graphs) {
      // One representative weak strategy per combination plus the spoofer
      // for the strong algorithm (full strategy sweeps live in the
      // per-algorithm suites).
      if (handles_strong(a)) {
        cases.push_back({a, g, ByzStrategy::kSpoofer});
      } else if (a == Algorithm::kCrashRealGathering) {
        cases.push_back({a, g, ByzStrategy::kCrash});
      } else {
        cases.push_back({a, g, ByzStrategy::kFakeSettler});
        cases.push_back({a, g, ByzStrategy::kMapLiar});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, E2ESweep,
                         ::testing::ValuesIn(all_cases()), case_name);

// The arbitrary-start algorithms have large charged prefixes; cover them
// on two families rather than the full grid to keep the suite quick.
class E2EArbitrary : public ::testing::TestWithParam<const char*> {};

TEST_P(E2EArbitrary, Theorem2And7FromScatteredStarts) {
  const Graph g = build(GetParam(), 17, false);
  for (const Algorithm a :
       {Algorithm::kTournamentArbitrary, Algorithm::kStrongArbitrary}) {
    SCOPED_TRACE(to_string(a));
    ScenarioConfig cfg;
    cfg.algorithm = a;
    cfg.num_byzantine =
        max_tolerated_f(a, static_cast<std::uint32_t>(g.n()));
    cfg.strategy = handles_strong(a) ? ByzStrategy::kSpoofer
                                     : ByzStrategy::kFakeSettler;
    cfg.seed = 29;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, E2EArbitrary,
                         ::testing::Values("er", "grid"));

// Random-subset Byzantine assignment (not just smallest IDs).
TEST(E2ESweep, RandomByzantineSubsets) {
  Rng rng(7);
  const Graph g = shuffle_ports(make_connected_er(9, 0.45, rng), rng);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kThreeGroupGathered;
    cfg.num_byzantine = 2;
    cfg.byz_smallest_ids = false;
    cfg.strategy = ByzStrategy::kMapLiar;
    cfg.seed = seed;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << "seed " << seed << ": "
                                 << res.verify.detail;
  }
}

// Theory-cost model: charged bounds blow up the round counter but must not
// blow up wall time (fast-forwarding) nor change the outcome.
TEST(E2ESweep, TheoryCostModelStillDisperses) {
  Rng rng(19);
  const Graph g = shuffle_ports(make_connected_er(7, 0.5, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentArbitrary;
  cfg.num_byzantine = 2;
  cfg.strategy = ByzStrategy::kCrash;
  cfg.cost = gather::CostModel{/*scaled=*/false};
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  // X(n) = n^5 makes the charge astronomically larger than the scaled one.
  EXPECT_GT(res.stats.rounds, 500'000'000ULL);
  EXPECT_LT(res.stats.simulated_rounds, 2'000'000ULL);
}

}  // namespace
}  // namespace bdg::core
