// Cross-product integration sweep: every algorithm x several graph
// families x adversary strategies at maximum claimed tolerance, executed
// through the run/ scenario-sweep runner. This is the suite-level
// statement of the paper's Table 1 guarantees.
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.h"
#include "run/report.h"
#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;
using core::ByzStrategy;

void expect_all_guarantees(const SweepResult& result) {
  std::size_t ran = 0;
  for (const PointResult& p : result.points) {
    SCOPED_TRACE(core::to_string(p.point.algorithm) + " on " + p.point.family +
                 " n=" + std::to_string(p.point.n) +
                 " f=" + std::to_string(p.point.f) +
                 " seed=" + std::to_string(p.point.seed));
    if (p.skipped) {
      // The only legitimate hole in these suites: Theorem 1 on a family
      // where no all-distinct-views sample exists. Everything else —
      // including kQuotient on er — must actually run, so a sampler or
      // quotient regression cannot silently drain the coverage.
      EXPECT_TRUE(p.point.algorithm == core::Algorithm::kQuotient &&
                  p.point.family != "er")
          << "unexpected skip: " << p.skip_reason;
      continue;
    }
    ++ran;
    EXPECT_TRUE(p.ok) << p.detail;
    EXPECT_LE(p.stats.rounds, p.planned_rounds + 16);
  }
  EXPECT_GT(ran, 0u) << "sweep skipped every point";
}

// The paper's Table 1 cross-product: per-algorithm default adversaries
// (spoofer for the strong rows, crash for crash-real gathering, fake
// settler otherwise).
TEST(E2ESweep, Table1CrossProductDisperses) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kQuotient,          Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered, Algorithm::kSqrtArbitrary,
                     Algorithm::kStrongGathered,    Algorithm::kCrashRealGathering};
  spec.families = {"er", "ring", "grid", "tree", "complete"};
  spec.sizes = {8};
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 6u * 5u);
  expect_all_guarantees(result);
}

// Second weak adversary over the weak rows (the per-algorithm suites sweep
// the full strategy library; this is the cross-family statement).
TEST(E2ESweep, Table1CrossProductMapLiar) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kQuotient, Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered, Algorithm::kSqrtArbitrary};
  spec.families = {"er", "ring", "grid", "tree", "complete"};
  spec.sizes = {8};
  spec.strategy = ByzStrategy::kMapLiar;
  spec.strategy_follows_algorithm = false;
  const SweepResult result = run_sweep(spec);
  expect_all_guarantees(result);
}

// The arbitrary-start algorithms have large charged prefixes; cover them
// on two families rather than the full grid to keep the suite quick.
TEST(E2ESweep, Theorem2And7FromScatteredStarts) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kTournamentArbitrary,
                     Algorithm::kStrongArbitrary};
  spec.families = {"er", "grid"};
  spec.sizes = {8};
  const SweepResult result = run_sweep(spec);
  expect_all_guarantees(result);
}

// Random-subset Byzantine assignment (not just smallest IDs), several
// repetitions per cell via grid seeds.
TEST(E2ESweep, RandomByzantineSubsets) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {9};
  spec.byzantine_counts = {2};
  spec.seeds = {1, 2, 3, 4, 5};
  spec.byz_smallest_ids = false;
  spec.strategy = ByzStrategy::kMapLiar;
  spec.strategy_follows_algorithm = false;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 5u);
  expect_all_guarantees(result);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].runs, 5u);
  EXPECT_EQ(result.cells[0].dispersed, 5u);
}

// Theory-cost model: charged bounds blow up the round counter but must not
// blow up wall time (fast-forwarding) nor change the outcome.
TEST(E2ESweep, TheoryCostModelStillDisperses) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kTournamentArbitrary};
  spec.families = {"er"};
  spec.sizes = {7};
  spec.byzantine_counts = {2};
  spec.strategy = ByzStrategy::kCrash;
  spec.strategy_follows_algorithm = false;
  spec.cost = gather::CostModel{/*scaled=*/false};
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  const PointResult& p = result.points[0];
  ASSERT_FALSE(p.skipped);
  EXPECT_TRUE(p.ok) << p.detail;
  // X(n) = n^5 makes the charge astronomically larger than the scaled one.
  EXPECT_GT(p.stats.rounds, 500'000'000ULL);
  EXPECT_LT(p.stats.simulated_rounds, 2'000'000ULL);
}

// The ring-only baseline must run on ring families and skip elsewhere.
TEST(E2ESweep, RingBaselineSkipsNonRings) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kRingBaseline};
  spec.families = {"ring", "grid"};
  spec.sizes = {8};
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_FALSE(result.points[0].skipped);
  EXPECT_TRUE(result.points[0].ok) << result.points[0].detail;
  EXPECT_TRUE(result.points[1].skipped);
  EXPECT_EQ(result.skipped(), 1u);
}

// Report emitters produce well-formed output for downstream tooling.
TEST(E2ESweep, ReportEmitters) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered, Algorithm::kRingBaseline};
  spec.families = {"er", "ring"};
  spec.sizes = {8};
  const SweepResult result = run_sweep(spec);

  std::ostringstream csv;
  write_points_csv(csv, result);
  EXPECT_NE(csv.str().find("algorithm,family,n,k,f,seed"), std::string::npos);
  EXPECT_NE(csv.str().find(core::to_string(Algorithm::kThreeGroupGathered)),
            std::string::npos)
      << csv.str();
  // The ring baseline's name carries a literal comma ("ring-baseline[34,36]")
  // and must come out CSV-quoted, not splitting its row.
  EXPECT_NE(csv.str().find('"' + core::to_string(Algorithm::kRingBaseline) +
                           '"'),
            std::string::npos)
      << csv.str();

  std::ostringstream cells;
  write_cells_csv(cells, result);
  EXPECT_NE(cells.str().find("mean_rounds"), std::string::npos);

  std::ostringstream json;
  write_json(json, result);
  const std::string doc = json.str();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"points\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"cells\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"skipped\": true"), std::string::npos)
      << "ring baseline on er should be a skip";
  // Balanced braces/brackets (cheap well-formedness check).
  long depth = 0;
  for (const char c : doc) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// A typo'd family must fail loudly, not silently drop its coverage.
TEST(E2ESweep, UnknownFamilyThrows) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"compelte"};
  spec.sizes = {8};
  EXPECT_THROW((void)run_sweep(spec), std::invalid_argument);
  EXPECT_THROW((void)expand_grid(spec), std::invalid_argument);
}

// Per-algorithm strategy overrides beat both the global strategy and the
// follows-algorithm defaults (how the figure benches pit each algorithm
// against its own adversary inside one grid).
TEST(E2ESweep, StrategyOverridesApply) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered,
                     Algorithm::kStrongGathered};
  spec.families = {"er"};
  spec.sizes = {8};
  spec.strategy_overrides[Algorithm::kThreeGroupGathered] =
      ByzStrategy::kMapLiar;
  const std::vector<SweepPoint> grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].strategy, ByzStrategy::kMapLiar);
  // No override: follows-algorithm default (spoofer for the strong row).
  EXPECT_EQ(grid[1].strategy, ByzStrategy::kSpoofer);
}

// Seed stability: a point's derived seed depends only on its own
// coordinates, never on what else the sweep contains.
TEST(E2ESweep, PointSeedsAreCompositionStable) {
  const SweepPoint p{Algorithm::kStrongGathered, "er", 8, 8, 1, 3,
                     ByzStrategy::kSpoofer, {}};
  const std::uint64_t base = 0x9E3779B97F4A7C15ULL;
  const std::uint64_t s = point_seed(base, p);
  EXPECT_EQ(s, point_seed(base, p));
  SweepPoint q = p;
  q.seed = 4;
  EXPECT_NE(s, point_seed(base, q));
  q = p;
  q.family = "ring";
  EXPECT_NE(s, point_seed(base, q));
  EXPECT_NE(s, point_seed(base + 1, p));
}

// common_graphs mode: the graph seed ignores the algorithm and f axes (so
// comparisons across them are controlled) but still varies with family, n
// and grid seed.
TEST(E2ESweep, CommonGraphSeedIgnoresComparisonAxes) {
  SweepSpec spec;
  spec.common_graphs = true;
  const SweepPoint p{Algorithm::kStrongGathered, "er", 8, 8, 1, 3,
                     ByzStrategy::kSpoofer, {}};
  const std::uint64_t s = point_graph_seed(spec, p);
  SweepPoint q = p;
  q.algorithm = Algorithm::kThreeGroupGathered;
  q.f = 2;
  q.strategy = ByzStrategy::kMapLiar;
  EXPECT_EQ(s, point_graph_seed(spec, q));
  q = p;
  q.n = 9;
  EXPECT_NE(s, point_graph_seed(spec, q));
  q = p;
  q.seed = 4;
  EXPECT_NE(s, point_graph_seed(spec, q));
  // Off (the default): the graph seed is the full per-point seed.
  SweepSpec independent;
  EXPECT_EQ(point_graph_seed(independent, p),
            point_seed(independent.base_seed, p));
}

}  // namespace
}  // namespace bdg::run
