// Ring baseline ([34, 36]): constructive linear-time Find-Map on rings and
// Byzantine dispersion tolerating up to n-1 weak Byzantine robots.
#include "core/ring_dispersion.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.h"
#include "explore/ring_map.h"
#include "graph/canonical.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

TEST(RingMap, IsRingPredicate) {
  EXPECT_TRUE(explore::is_ring(make_ring(5)));
  EXPECT_TRUE(explore::is_ring(make_oriented_ring(7)));
  EXPECT_FALSE(explore::is_ring(make_path(5)));
  EXPECT_FALSE(explore::is_ring(make_grid(2, 3)));
  EXPECT_FALSE(explore::is_ring(make_complete(4)));
  Rng rng(1);
  EXPECT_TRUE(explore::is_ring(shuffle_ports(make_ring(9), rng)));
}

sim::Proc find_map_wrapper(sim::Ctx c, std::shared_ptr<Graph> out) {
  *out = co_await explore::run_ring_find_map(c);
}

TEST(RingMap, WalkBuildsRootedMapFromEveryStart) {
  Rng rng(7);
  for (const std::size_t n : {3u, 5u, 8u, 12u}) {
    const Graph g = shuffle_ports(make_ring(n), rng);
    for (NodeId start = 0; start < g.n(); ++start) {
      sim::Engine eng(g);
      auto out = std::make_shared<Graph>();
      eng.add_robot(1, sim::Faultiness::kHonest, start,
                    [out](sim::Ctx c) { return find_map_wrapper(c, out); });
      const sim::RunStats st = eng.run(2 * n + 4);
      EXPECT_TRUE(rooted_isomorphic(*out, 0, g, start))
          << "n=" << n << " start=" << start;
      EXPECT_EQ(st.moves, n);  // exactly one lap
      EXPECT_EQ(eng.position_of(1), start);  // back where it began
    }
  }
}

TEST(RingMap, RejectsNonRingStart) {
  const Graph g = make_star(5);  // center has degree 4
  sim::Engine eng(g);
  auto out = std::make_shared<Graph>();
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [out](sim::Ctx c) { return find_map_wrapper(c, out); });
  EXPECT_THROW(eng.run(20), std::logic_error);
}

TEST(RingBaseline, MaxByzantineToleranceOnShuffledRings) {
  Rng rng(3);
  for (const std::size_t n : {5u, 8u, 11u}) {
    const Graph g = shuffle_ports(make_ring(n), rng);
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kRingBaseline;
    cfg.num_byzantine = static_cast<std::uint32_t>(n) - 1;
    cfg.strategy = ByzStrategy::kFakeSettler;
    cfg.seed = n;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << "n=" << n << ": " << res.verify.detail;
  }
}

TEST(RingBaseline, AllWeakStrategies) {
  Rng rng(11);
  const Graph g = shuffle_ports(make_ring(8), rng);
  for (const ByzStrategy s : weak_strategies()) {
    SCOPED_TRACE(to_string(s));
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kRingBaseline;
    cfg.num_byzantine = 4;
    cfg.strategy = s;
    cfg.seed = 9;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  }
}

TEST(RingBaseline, LinearRoundCount) {
  // The headline of [34, 36]: O(n) rounds end to end.
  Rng rng(5);
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    const Graph g = shuffle_ports(make_ring(n), rng);
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kRingBaseline;
    cfg.num_byzantine = static_cast<std::uint32_t>(n) / 2;
    cfg.strategy = ByzStrategy::kSquatter;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
    EXPECT_LE(res.stats.rounds, 8 * n + 32);  // n walk + 6n+16 phase + slack
  }
}

TEST(RingBaseline, RefusesNonRings) {
  const Graph g = make_grid(2, 3);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kRingBaseline;
  cfg.num_byzantine = 0;
  EXPECT_THROW((void)run_scenario(g, cfg), std::invalid_argument);
}

TEST(RingBaseline, OrientedRingSymmetricLabeling) {
  // The oriented ring has a single-node quotient, so Theorem 1 does NOT
  // apply — but the ring baseline does not need distinct views at all.
  const Graph g = make_oriented_ring(9);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kRingBaseline;
  cfg.num_byzantine = 4;
  cfg.strategy = ByzStrategy::kFakeSettler;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

}  // namespace
}  // namespace bdg::core
