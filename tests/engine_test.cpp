// Simulator engine semantics: sub-round messaging, simultaneous movement,
// weak/strong spoofing enforcement, sleeping and fast-forwarding,
// determinism.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "sim/task.h"

namespace bdg::sim {
namespace {

constexpr std::uint32_t kPing = 1;

Proc move_once(Ctx ctx, Port p, NodeId* where, Port* arrived) {
  co_await ctx.end_round(p);
  *arrived = ctx.arrival_port();
  *where = 0;  // marker that we ran
}

TEST(Engine, MoveUpdatesPositionAndArrivalPort) {
  const Graph g = make_path(3);
  Engine eng(g);
  NodeId marker = kNoNode;
  Port arrived = kNoPort;
  eng.add_robot(1, Faultiness::kHonest, 0, [&](Ctx c) {
    return move_once(c, 0, &marker, &arrived);
  });
  const RunStats st = eng.run(10);
  EXPECT_EQ(eng.position_of(1), 1u);
  EXPECT_EQ(arrived, 0u);  // entered node 1 through its port 0
  EXPECT_EQ(st.moves, 1u);
  EXPECT_TRUE(st.all_honest_done);
}

Proc broadcaster(Ctx ctx) {
  ctx.broadcast(kPing, {42});
  co_await ctx.end_round(std::nullopt);
}

Proc listener(Ctx ctx, std::vector<Msg>* heard) {
  co_await ctx.next_subround();  // sub 1: messages from sub 0
  const auto box = ctx.inbox();
  heard->assign(box.begin(), box.end());
  co_await ctx.end_round(std::nullopt);
}

TEST(Engine, BroadcastDeliveredNextSubroundToColocated) {
  const Graph g = make_path(2);
  Engine eng(g);
  std::vector<Msg> heard;
  eng.add_robot(1, Faultiness::kHonest, 0, [](Ctx c) { return broadcaster(c); });
  eng.add_robot(2, Faultiness::kHonest, 0,
                [&](Ctx c) { return listener(c, &heard); });
  eng.run(5);
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0].claimed, 1u);
  EXPECT_EQ(heard[0].kind, kPing);
  EXPECT_EQ(heard[0].data, (std::vector<std::int64_t>{42}));
}

TEST(Engine, BroadcastNotHeardAcrossNodes) {
  const Graph g = make_path(2);
  Engine eng(g);
  std::vector<Msg> heard;
  eng.add_robot(1, Faultiness::kHonest, 0, [](Ctx c) { return broadcaster(c); });
  eng.add_robot(2, Faultiness::kHonest, 1,
                [&](Ctx c) { return listener(c, &heard); });
  eng.run(5);
  EXPECT_TRUE(heard.empty());
}

Proc weak_spoofer(Ctx ctx) {
  ctx.spoof_broadcast(99, kPing);  // must throw for weak robots
  co_await ctx.end_round(std::nullopt);
}

Proc idle_two_rounds(Ctx ctx) {
  co_await ctx.end_round(std::nullopt);
  co_await ctx.end_round(std::nullopt);
}

TEST(Engine, WeakRobotCannotSpoof) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kWeakByzantine, 0,
                [](Ctx c) { return weak_spoofer(c); });
  // An honest bystander keeps the run alive (the engine stops as soon as
  // every honest robot has finished).
  eng.add_robot(2, Faultiness::kHonest, 1,
                [](Ctx c) { return idle_two_rounds(c); });
  EXPECT_THROW(eng.run(5), std::logic_error);
}

Proc strong_spoofer(Ctx ctx) {
  ctx.spoof_broadcast(99, kPing);
  co_await ctx.end_round(std::nullopt);
}

TEST(Engine, StrongRobotSpoofsClaimedIdButNotSource) {
  const Graph g = make_path(2);
  Engine eng(g);
  std::vector<Msg> heard;
  eng.add_robot(1, Faultiness::kStrongByzantine, 0,
                [](Ctx c) { return strong_spoofer(c); });
  eng.add_robot(2, Faultiness::kHonest, 0,
                [&](Ctx c) { return listener(c, &heard); });
  eng.run(5);
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0].claimed, 99u);  // forged ID visible
  EXPECT_EQ(heard[0].source, 0u);    // but still one physical source slot
}

Proc sleeper(Ctx ctx, std::uint64_t rounds, core::Round* woke_at) {
  co_await ctx.sleep_rounds(rounds);
  *woke_at = ctx.round();
}

TEST(Engine, SleepFastForwardsIdleRounds) {
  const Graph g = make_path(2);
  Engine eng(g);
  core::Round woke_at = 0;
  eng.add_robot(1, Faultiness::kHonest, 0, [&](Ctx c) {
    return sleeper(c, 1'000'000, &woke_at);
  });
  const RunStats st = eng.run(2'000'000);
  EXPECT_EQ(woke_at, 1'000'000u);
  // The million idle rounds must not have been simulated one by one.
  EXPECT_LE(st.simulated_rounds, 4u);
}

Proc two_phase(Ctx ctx, std::vector<core::Round>* rounds_seen) {
  rounds_seen->push_back(ctx.round());
  co_await ctx.sleep_rounds(10);
  rounds_seen->push_back(ctx.round());
  co_await ctx.end_round(std::nullopt);
  rounds_seen->push_back(ctx.round());
}

TEST(Engine, RoundCounterAdvancesThroughSleepAndMoves) {
  const Graph g = make_path(2);
  Engine eng(g);
  std::vector<core::Round> seen;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return two_phase(c, &seen); });
  eng.run(100);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[1], 10u);
  EXPECT_EQ(seen[2], 11u);
}

TEST(Engine, RejectsDuplicateIdsAndBadStarts) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0, [](Ctx c) { return broadcaster(c); });
  EXPECT_THROW(eng.add_robot(1, Faultiness::kHonest, 0,
                             [](Ctx c) { return broadcaster(c); }),
               std::invalid_argument);
  EXPECT_THROW(eng.add_robot(0, Faultiness::kHonest, 0,
                             [](Ctx c) { return broadcaster(c); }),
               std::invalid_argument);
  EXPECT_THROW(eng.add_robot(2, Faultiness::kHonest, 9,
                             [](Ctx c) { return broadcaster(c); }),
               std::invalid_argument);
}

Proc bad_mover(Ctx ctx) { co_await ctx.end_round(Port{7}); }

TEST(Engine, InvalidPortThrows) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0, [](Ctx c) { return bad_mover(c); });
  EXPECT_THROW(eng.run(5), std::logic_error);
}

// Nested Task composition: a parent awaiting a child that moves.
Task<int> child_moves(Ctx ctx, Port p) {
  co_await ctx.end_round(p);
  co_return 7;
}

Proc parent(Ctx ctx, int* got) {
  const int v = co_await child_moves(ctx, 0);
  *got = v;
  co_await ctx.end_round(std::nullopt);
}

TEST(Engine, NestedTasksResumeAtLeaf) {
  const Graph g = make_path(3);
  Engine eng(g);
  int got = 0;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return parent(c, &got); });
  eng.run(10);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(eng.position_of(1), 1u);
}

Proc racer(Ctx ctx, int hops) {
  for (int i = 0; i < hops; ++i)
    co_await ctx.end_round(ctx.degree() > 1 ? Port{1} : Port{0});
}

TEST(Engine, DeterministicTrace) {
  auto run_once = [] {
    const Graph g = make_ring(6);
    Engine eng(g);
    for (RobotId id = 1; id <= 4; ++id)
      eng.add_robot(id, Faultiness::kHonest, static_cast<NodeId>(id - 1),
                    [](Ctx c) { return racer(c, 9); });
    const RunStats st = eng.run(50);
    std::vector<NodeId> pos;
    for (std::size_t i = 0; i < eng.num_robots(); ++i)
      pos.push_back(eng.robot_position(i));
    return std::make_pair(st.moves, pos);
  };
  EXPECT_EQ(run_once(), run_once());
}

Proc subround_counter(Ctx ctx, std::vector<std::uint32_t>* subs) {
  for (int i = 0; i < 3; ++i) {
    subs->push_back(ctx.subround());
    co_await ctx.next_subround();
  }
  co_await ctx.end_round(std::nullopt);
}

TEST(Engine, SubroundsIncreaseWithinRound) {
  const Graph g = make_path(2);
  Engine eng(g);
  std::vector<std::uint32_t> subs;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return subround_counter(c, &subs); });
  eng.run(5);
  EXPECT_EQ(subs, (std::vector<std::uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace bdg::sim
