// detlint's own test tier: every fixture under tests/detlint_fixtures is a
// seeded snippet the pass must flag (or pass) EXACTLY — no extra findings,
// none missing — plus a whole-tree assertion that src/ tools/ bench/ are
// lint-clean, which is the same gate the CI lint job enforces.
//
// Fixture grammar (inside each .cc file):
//   // lint-as: src/core/fake.cpp   — lint under this pseudo-path (rule 3
//                                     is directory-scoped); default is the
//                                     fixture's real path
//   ... code ...                    // FLAG: <rule>       — finding expected
//                                                           on THIS line
//   // FLAG-NEXT: <rule>            — finding expected on the NEXT line
// A fixture with no FLAG markers asserts the snippet is clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "detlint/detlint.h"

namespace {

using bdg::detlint::Finding;
using bdg::detlint::Rule;

struct Expectation {
  std::size_t line = 0;
  Rule rule = Rule::kPragma;
};

[[nodiscard]] std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read fixture " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse `lint-as:` and FLAG markers out of the raw fixture text.
void parse_fixture(const std::string& text, std::string& lint_as,
                   std::vector<Expectation>& expected) {
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string ln = text.substr(pos, eol - pos);
    if (const std::size_t at = ln.find("lint-as:"); at != std::string::npos) {
      std::string p = ln.substr(at + 8);
      p.erase(0, p.find_first_not_of(" \t"));
      p.erase(p.find_last_not_of(" \t") + 1);
      lint_as = p;
    }
    for (const auto& [marker, delta] :
         {std::pair<std::string, std::size_t>{"FLAG-NEXT:", 1},
          std::pair<std::string, std::size_t>{"FLAG:", 0}}) {
      const std::size_t m = ln.find(marker);
      if (m == std::string::npos) continue;
      std::string name = ln.substr(m + marker.size());
      name.erase(0, name.find_first_not_of(" \t"));
      name.erase(name.find_last_not_of(" \t \r") + 1);
      Rule r = Rule::kPragma;
      const bool known = bdg::detlint::rule_from_name(name, r) ||
                         name == "pragma";
      EXPECT_TRUE(known) << "bad FLAG rule '" << name << "' line " << line;
      if (name == "pragma") r = Rule::kPragma;
      expected.push_back({line + delta, r});
      break;  // FLAG-NEXT contains FLAG; first match wins
    }
    if (eol == text.size()) break;
    pos = eol + 1;
    ++line;
  }
}

[[nodiscard]] std::vector<std::filesystem::path> fixture_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(DETLINT_FIXTURE_DIR))
    if (e.path().extension() == ".cc") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Detlint, FixturesFlagExactly) {
  const std::vector<std::filesystem::path> files = fixture_files();
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    SCOPED_TRACE(f.filename().string());
    const std::string text = read_file(f);
    std::string lint_as = f.string();
    std::vector<Expectation> expected;
    parse_fixture(text, lint_as, expected);

    std::vector<Finding> actual = bdg::detlint::lint_text(text, lint_as);
    // Compare as sorted (line, rule) multisets; report any diff verbosely.
    auto key = [](std::size_t line, Rule r) {
      return std::to_string(line) + ":" + bdg::detlint::rule_name(r);
    };
    std::vector<std::string> want, got;
    for (const Expectation& e : expected) want.push_back(key(e.line, e.rule));
    for (const Finding& fd : actual) got.push_back(key(fd.line, fd.rule));
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    std::string detail;
    for (const Finding& fd : actual) detail += "  " + format(fd) + "\n";
    EXPECT_EQ(want, got) << "findings were:\n" << detail;
  }
}

// Every rule family must have at least one fixture it flags — the
// acceptance bar for the lint pass itself.
TEST(Detlint, EveryRuleFamilyHasAFlaggedFixture) {
  std::vector<bool> seen(5, false);
  for (const auto& f : fixture_files()) {
    const std::string text = read_file(f);
    std::string lint_as = f.string();
    std::vector<Expectation> expected;
    parse_fixture(text, lint_as, expected);
    for (const Expectation& e : expected)
      seen[static_cast<std::size_t>(e.rule)] = true;
  }
  for (const Rule r : {Rule::kUnorderedIter, Rule::kUnsequencedRng,
                       Rule::kNondetCall, Rule::kPointerKey, Rule::kPragma})
    EXPECT_TRUE(seen[static_cast<std::size_t>(r)])
        << "no flagged fixture for rule " << bdg::detlint::rule_name(r);
}

// The real tree is lint-clean: the merge requirement, enforced here so a
// plain `ctest` catches a regression before CI does.
TEST(Detlint, TreeIsClean) {
  const std::string root = DETLINT_SOURCE_ROOT;
  const std::vector<Finding> findings = bdg::detlint::lint_paths(
      {root + "/src", root + "/tools", root + "/bench"});
  std::string detail;
  for (const Finding& f : findings) detail += "  " + format(f) + "\n";
  EXPECT_TRUE(findings.empty()) << "tree has findings:\n" << detail;
}

// Pragmas must carry reasons, and pragma hygiene itself is never
// suppressible — spot-check the semantics directly.
TEST(Detlint, PragmaSemantics) {
  // Build the marker from pieces so detlint's own tree scan (which reads
  // this file only if tests/ were ever added to the roots) stays clean.
  const std::string allow = std::string("// detlint") + ": allow";
  const std::string code =
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  " + allow + "(unordered-iter) audited: order-insensitive fold\n"
      "  for (const auto& kv : m) (void)kv;\n"
      "}\n";
  EXPECT_TRUE(bdg::detlint::lint_text(code, "src/run/x.cpp").empty());

  const std::string no_reason =
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  " + allow + "(unordered-iter)\n"
      "  for (const auto& kv : m) (void)kv;\n"
      "}\n";
  const std::vector<Finding> fs =
      bdg::detlint::lint_text(no_reason, "src/run/x.cpp");
  ASSERT_EQ(fs.size(), 1u);  // the iteration is allowed, the pragma is not
  EXPECT_EQ(fs[0].rule, Rule::kPragma);
}

}  // namespace
