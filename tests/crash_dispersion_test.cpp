// Crash-fault extension: fully simulated pipeline (real bit-epoch
// gathering, no charged oracle rounds) + Theorem 4 phases.
#include "core/crash_dispersion.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/tournament_dispersion.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

TEST(CrashReal, DispersesWithNoFaults) {
  Rng rng(5);
  const Graph g = shuffle_ports(make_connected_er(7, 0.5, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kCrashRealGathering;
  cfg.num_byzantine = 0;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  // The gathering phase is genuinely simulated round by round (only idle
  // window tails get fast-forwarded): the bit-epoch phase alone accounts
  // for (id_bits + 1) * 2n simulated rounds.
  EXPECT_GT(res.stats.simulated_rounds, 2ULL * g.n() * 4);
}

class CrashSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(CrashSweep, DispersesWithCrashedRobots) {
  const auto [f, seed] = GetParam();
  Rng rng(seed);
  const Graph g = shuffle_ports(make_connected_er(9, 0.45, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kCrashRealGathering;
  cfg.num_byzantine = f;  // crash strategy: faulty robots are just absent
  cfg.strategy = ByzStrategy::kCrash;
  cfg.seed = seed;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Faults, CrashSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 2u),  // up to n/3-1 for n=9
                       ::testing::Values(1u, 2u, 3u)));

TEST(CrashReal, WorksOnStructuredFamilies) {
  for (const auto& [name, g] : standard_menagerie(6, 15)) {
    SCOPED_TRACE(name);
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kCrashRealGathering;
    cfg.num_byzantine = 1;
    cfg.strategy = ByzStrategy::kCrash;
    cfg.seed = 8;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  }
}

TEST(CrashReal, CheaperThanChargedTheorem2Bound) {
  // The point of the extension: with the weaker fault model, the REAL
  // end-to-end round count undercuts even the scaled Theorem 2 charge.
  Rng rng(9);
  const Graph g = shuffle_ports(make_connected_er(10, 0.4, rng), rng);
  std::vector<sim::RobotId> ids;
  for (std::size_t i = 0; i < g.n(); ++i) ids.push_back(20 + 2 * i);
  const gather::CostModel cm{true};
  const auto crash = plan_crash_real_dispersion(g, ids, cm);
  const auto thm2 = plan_tournament_dispersion(g, ids, false, 4, cm);
  EXPECT_LT(crash.total_rounds, thm2.total_rounds);
}

TEST(CrashReal, MetadataRegistered) {
  EXPECT_EQ(to_string(Algorithm::kCrashRealGathering),
            "crash-real-gathering(ext)");
  EXPECT_FALSE(starts_gathered(Algorithm::kCrashRealGathering));
  EXPECT_FALSE(handles_strong(Algorithm::kCrashRealGathering));
  EXPECT_EQ(max_tolerated_f(Algorithm::kCrashRealGathering, 9), 2u);
}

}  // namespace
}  // namespace bdg::core
