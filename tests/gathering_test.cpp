// Gathering substrate tests: cost models, oracle gathering post-condition,
// and the genuine bit-epoch rendezvous gathering (crash-fault extension).
#include "gather/gathering.h"

#include <gtest/gtest.h>

#include "explore/covering_walk.h"
#include "gather/bit_epoch.h"
#include "graph/generators.h"

namespace bdg::gather {
namespace {

TEST(CostModel, IdBits) {
  EXPECT_EQ(CostModel::id_bits(1), 1u);
  EXPECT_EQ(CostModel::id_bits(2), 2u);
  EXPECT_EQ(CostModel::id_bits(255), 8u);
  EXPECT_EQ(CostModel::id_bits(256), 9u);
  EXPECT_EQ(CostModel::id_bits(0), 1u);
}

TEST(CostModel, ScaledVsTheoryOrdering) {
  const CostModel scaled{true}, theory{false};
  for (std::uint32_t n : {8u, 16u, 32u}) {
    EXPECT_LT(scaled.explore_rounds(n), theory.explore_rounds(n));
    EXPECT_LT(scaled.rounds(GatherKind::kWeakDPP, n, n / 2 - 1, 10),
              theory.rounds(GatherKind::kWeakDPP, n, n / 2 - 1, 10));
  }
}

TEST(CostModel, WeakBoundDominatesSqrtBound) {
  const CostModel cm{true};
  for (std::uint32_t n : {16u, 32u, 64u}) {
    EXPECT_GT(cm.rounds(GatherKind::kWeakDPP, n, n / 2 - 1, 10),
              cm.rounds(GatherKind::kSqrtHirose, n, 4, 10));
  }
}

TEST(CostModel, StrongExponentialExactUntil128) {
  const CostModel cm{true};
  // 2^(n-1): one bit per unknown peer ([24] pins neither base nor
  // constant). Exact 128-bit values all the way to n = 128 — the old code
  // capped at 2^62 from n = 62 on.
  EXPECT_EQ(cm.rounds(GatherKind::kStrongExp, 10, 1, 5), 1ULL << 9);
  EXPECT_EQ(cm.rounds(GatherKind::kStrongExp, 100, 1, 5), core::Round::exp2(99));
  EXPECT_EQ(cm.rounds(GatherKind::kStrongExp, 128, 1, 5), core::Round::exp2(127));
  EXPECT_FALSE(cm.rounds(GatherKind::kStrongExp, 128, 1, 5).is_saturated());
  // Past n = 129 the charge leaves 128 bits: an explicit saturated state,
  // never a silent cap.
  EXPECT_TRUE(cm.rounds(GatherKind::kStrongExp, 130, 1, 5).is_saturated());
}

TEST(CostModel, NoneIsZero) {
  const CostModel cm{true};
  EXPECT_EQ(cm.rounds(GatherKind::kNone, 16, 3, 8), 0u);
}

sim::Proc gather_then_stop(sim::Ctx c, GatheringSpec spec) {
  co_await run_oracle_gathering(c, std::move(spec));
}

TEST(OracleGathering, RobotsEndAtRallyAfterChargedPhase) {
  Rng rng(8);
  const Graph g = make_connected_er(9, 0.4, rng);
  sim::Engine eng(g);
  const std::uint64_t budget = 5000;
  for (sim::RobotId id = 1; id <= 5; ++id) {
    const NodeId start = static_cast<NodeId>((id * 2) % g.n());
    GatheringSpec spec;
    spec.path_to_rally = g.shortest_path_ports(start, 0).value();
    spec.total_rounds = budget;
    eng.add_robot(id, sim::Faultiness::kHonest, start,
                  [spec](sim::Ctx c) { return gather_then_stop(c, spec); });
  }
  const sim::RunStats st = eng.run(budget + 4);
  for (std::size_t i = 0; i < eng.num_robots(); ++i)
    EXPECT_EQ(eng.robot_position(i), 0u);
  EXPECT_GE(st.rounds, budget);
  // Charged rounds are fast-forwarded, not simulated one by one.
  EXPECT_LT(st.simulated_rounds, 64u);
}

TEST(OracleGathering, RejectsBudgetBelowPathLength) {
  const Graph g = make_path(6);
  sim::Engine eng(g);
  GatheringSpec spec;
  spec.path_to_rally = g.shortest_path_ports(5, 0).value();
  spec.total_rounds = 2;  // path needs 5
  eng.add_robot(1, sim::Faultiness::kHonest, 5,
                [spec](sim::Ctx c) { return gather_then_stop(c, spec); });
  EXPECT_THROW(eng.run(10), std::invalid_argument);
}

// --- bit-epoch gathering ---------------------------------------------------

sim::Proc bit_epoch_robot(sim::Ctx c, BitEpochSpec spec) {
  co_await run_bit_epoch_gathering(c, std::move(spec));
}

void run_bit_epoch_case(const Graph& g, const std::vector<sim::RobotId>& ids,
                        const std::vector<NodeId>& starts,
                        const std::vector<bool>& crashed) {
  sim::Engine eng(g);
  const auto epoch =
      static_cast<std::uint32_t>(2 * g.n());  // covers every tour + 1
  std::uint32_t bits = 0;
  for (const sim::RobotId id : ids)
    bits = std::max(bits, gather::CostModel::id_bits(id));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (crashed[i]) {
      eng.add_robot(ids[i], sim::Faultiness::kWeakByzantine, starts[i],
                    [](sim::Ctx) -> sim::Proc { co_return; });
      continue;
    }
    BitEpochSpec spec;
    spec.tour = covering_walk_ports(g, starts[i]);
    spec.epoch_len = epoch;
    spec.id_bits = bits;
    eng.add_robot(ids[i], sim::Faultiness::kHonest, starts[i],
                  [spec](sim::Ctx c) { return bit_epoch_robot(c, spec); });
  }
  eng.run(static_cast<std::uint64_t>(bits + 2) * epoch + 8);
  // All live robots co-located.
  NodeId rally = kNoNode;
  for (std::size_t i = 0; i < eng.num_robots(); ++i) {
    if (eng.robot_faultiness(i) != sim::Faultiness::kHonest) continue;
    if (rally == kNoNode) rally = eng.robot_position(i);
    EXPECT_EQ(eng.robot_position(i), rally) << "robot " << eng.robot_id(i);
  }
}

TEST(BitEpochGathering, AllRobotsGatherOnVariousGraphs) {
  Rng rng(3);
  for (const auto& [name, g] : standard_menagerie(7, 44)) {
    SCOPED_TRACE(name);
    std::vector<sim::RobotId> ids{3, 5, 9, 12, 18};
    std::vector<NodeId> starts;
    std::vector<bool> crashed(ids.size(), false);
    for (std::size_t i = 0; i < ids.size(); ++i)
      starts.push_back(static_cast<NodeId>(rng.below(g.n())));
    run_bit_epoch_case(g, ids, starts, crashed);
  }
}

TEST(BitEpochGathering, SurvivesCrashedRobots) {
  const Graph g = make_grid(3, 3);
  const std::vector<sim::RobotId> ids{2, 4, 7, 11, 13};
  const std::vector<NodeId> starts{0, 2, 4, 6, 8};
  std::vector<bool> crashed{false, true, false, true, false};
  run_bit_epoch_case(g, ids, starts, crashed);
}

TEST(BitEpochGathering, TwoRobotsRendezvous) {
  const Graph g = make_ring(8);
  run_bit_epoch_case(g, {6, 9}, {1, 5}, {false, false});
}

TEST(BitEpochGathering, RejectsTooShortEpoch) {
  const Graph g = make_path(5);
  sim::Engine eng(g);
  BitEpochSpec spec;
  spec.tour = covering_walk_ports(g, 0);
  spec.epoch_len = 2;
  spec.id_bits = 3;
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [spec](sim::Ctx c) { return bit_epoch_robot(c, spec); });
  EXPECT_THROW(eng.run(100), std::invalid_argument);
}

}  // namespace
}  // namespace bdg::gather
