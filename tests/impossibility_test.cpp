// Theorem 8: feasibility predicate and the mirror-execution demonstrator.
#include "core/impossibility.h"

#include <gtest/gtest.h>

namespace bdg::core {
namespace {

TEST(Impossibility, FeasibilityPredicate) {
  // k <= n with f < k is always fine: both caps are 1.
  EXPECT_TRUE(k_dispersion_feasible(5, 5, 4));
  EXPECT_TRUE(k_dispersion_feasible(4, 5, 2));
  // k = n + 1, f = 1: ceil(k/n) = 2 > ceil((k-f)/n) = 1 -> infeasible.
  EXPECT_FALSE(k_dispersion_feasible(6, 5, 1));
  // k = 2n, f = n: 2 > 1 -> infeasible.
  EXPECT_FALSE(k_dispersion_feasible(10, 5, 5));
  // k = 2n, f = 0: caps equal -> feasible.
  EXPECT_TRUE(k_dispersion_feasible(10, 5, 0));
}

TEST(Impossibility, BoundaryArithmetic) {
  // ceil(12/5) = 3, ceil((12-2)/5) = 2: infeasible.
  EXPECT_FALSE(k_dispersion_feasible(12, 5, 2));
  // ceil(12/5) = 3, ceil((12-1)/5) = 3: feasible.
  EXPECT_TRUE(k_dispersion_feasible(12, 5, 1));
}

TEST(Impossibility, DemoShowsViolation) {
  // k = 2n robots, f = n Byzantine: the mirror execution co-settles
  // ceil(k/n) = 2 honest robots while the cap is ceil((k-f)/n) = 1.
  const auto demo = demonstrate_impossibility(/*n=*/5, /*k=*/10, /*f=*/5);
  EXPECT_TRUE(demo.baseline.ok()) << demo.baseline.detail;
  EXPECT_TRUE(demo.violated);
  EXPECT_FALSE(demo.adversarial.dispersed);
}

TEST(Impossibility, DemoNoViolationWhenFeasible) {
  // f = 0: the adversarial execution is the baseline; no violation.
  const auto demo = demonstrate_impossibility(5, 10, 0);
  EXPECT_TRUE(demo.baseline.ok());
  EXPECT_FALSE(demo.violated);
}

TEST(Impossibility, DemoParameterValidation) {
  EXPECT_THROW((void)demonstrate_impossibility(2, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)demonstrate_impossibility(5, 3, 3), std::invalid_argument);
}

TEST(Impossibility, DemoMatchesPredicateAcrossSweep) {
  for (std::uint32_t n = 3; n <= 7; ++n) {
    for (std::uint32_t k = n; k <= 3 * n; k += n / 2 + 1) {
      for (std::uint32_t f = 0; f < k && f <= k / 2; ++f) {
        const bool feasible = k_dispersion_feasible(k, n, f);
        const auto demo = demonstrate_impossibility(n, k, f);
        if (!feasible) {
          EXPECT_TRUE(demo.violated)
              << "n=" << n << " k=" << k << " f=" << f;
        } else {
          // Our concrete algorithm A is a correct generalized-dispersion
          // algorithm for f=0-style mirrors, so no violation may appear.
          EXPECT_FALSE(demo.violated)
              << "n=" << n << " k=" << k << " f=" << f;
        }
      }
    }
  }
}

}  // namespace
}  // namespace bdg::core
