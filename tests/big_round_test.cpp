// core::Round conformance tier: pins the saturating 128-bit semantics
// (add/mul/shift edge cases, exact decimal serialization) and checks the
// exponential-row bound formulas (row 2 weak-DPP gathering, row 6 strong
// exponential gathering) against an independent unsigned __int128 oracle at
// n in {32, 64, 128} — the sizes the pre-Round code silently capped.
#include <gtest/gtest.h>

#include <sstream>

#include "core/dispersion_using_map.h"
#include "core/round.h"
#include "core/scenario.h"
#include "core/strong_dispersion.h"
#include "core/tournament_dispersion.h"
#include "explore/engine_map.h"
#include "gather/gathering.h"
#include "graph/generators.h"
#include "run/report.h"

namespace bdg {
namespace {

using core::Round;
using u128 = unsigned __int128;

// ---------------------------------------------------------------------------
// Saturating arithmetic semantics
// ---------------------------------------------------------------------------

TEST(BigRound, AddSaturates) {
  // Largest exactly representable value: 2^128 - 2 (2^128 - 1 is the
  // saturation sentinel).
  const Round max_exact = (Round::exp2(127) - 1) + (Round::exp2(127) - 1);
  EXPECT_FALSE(max_exact.is_saturated());
  EXPECT_TRUE((max_exact + 1).is_saturated());
  EXPECT_TRUE((max_exact + max_exact).is_saturated());
  EXPECT_EQ(Round(0) + 0, Round(0));
  EXPECT_EQ(Round(UINT64_MAX) + 1, Round::exp2(64));
  // Sticky: once saturated, further adds stay saturated.
  EXPECT_TRUE((Round::saturated() + 0).is_saturated());
}

TEST(BigRound, MulSaturates) {
  EXPECT_EQ(Round::exp2(64) * Round::exp2(63), Round::exp2(127));
  EXPECT_TRUE((Round::exp2(64) * Round::exp2(64)).is_saturated());
  EXPECT_TRUE((Round::exp2(127) * 3).is_saturated());
  EXPECT_FALSE((Round::exp2(126) * 3).is_saturated());
  // Multiplication by zero is zero even for the sentinel (a zero-length
  // phase charges nothing however large its per-unit cost).
  EXPECT_EQ(Round::saturated() * 0, Round(0));
  EXPECT_EQ(Round(0) * Round::saturated(), Round(0));
  EXPECT_TRUE((Round::saturated() * 1).is_saturated());
}

TEST(BigRound, ShiftAndExp2) {
  EXPECT_EQ(Round::exp2(0), Round(1));
  EXPECT_EQ(Round(1) << 127, Round::exp2(127));
  EXPECT_TRUE((Round(1) << 128).is_saturated());
  EXPECT_TRUE(Round::exp2(128).is_saturated());
  EXPECT_TRUE((Round(3) << 127).is_saturated());
  EXPECT_EQ(Round(0) << 500, Round(0));
}

TEST(BigRound, MonusClampsAtZeroAndKeepsSaturation) {
  EXPECT_EQ(Round(5) - 7, Round(0));
  EXPECT_EQ(Round(7) - 5, Round(2));
  // A saturated minuend stays saturated: "at least that much remains".
  EXPECT_TRUE((Round::saturated() - 123).is_saturated());
  EXPECT_EQ(Round(5) - Round::saturated(), Round(0));
}

TEST(BigRound, Comparisons) {
  EXPECT_LT(Round(UINT64_MAX), Round::exp2(64));
  EXPECT_GT(Round::saturated(), Round::exp2(127));
  EXPECT_LE(Round(42), Round(42));
  const Round big = Round::exp2(100) + 17;
  EXPECT_EQ(big, Round::exp2(100) + 17);
  EXPECT_NE(big, Round::exp2(100) + 18);
}

// ---------------------------------------------------------------------------
// Exact decimal serialization
// ---------------------------------------------------------------------------

TEST(BigRound, DecimalRoundTrip) {
  const Round cases[] = {
      Round(0),
      Round(1),
      Round(UINT64_MAX),
      Round::exp2(64),
      Round::exp2(64) + 1,
      Round::exp2(127),
      (Round::exp2(127) - 1) + (Round::exp2(127) - 1),  // 2^128 - 2
      Round::saturated(),
  };
  for (const Round r : cases) {
    const auto back = Round::from_string(r.to_string());
    ASSERT_TRUE(back.has_value()) << r.to_string();
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(Round::exp2(64).to_string(), "18446744073709551616");
  EXPECT_EQ(Round::saturated().to_string(),
            "340282366920938463463374607431768211455");
}

TEST(BigRound, FromStringRejectsForeignText) {
  EXPECT_FALSE(Round::from_string("").has_value());
  EXPECT_FALSE(Round::from_string("-1").has_value());
  EXPECT_FALSE(Round::from_string("12x3").has_value());
  EXPECT_FALSE(Round::from_string("1.5").has_value());
  // 2^128 overflows by one: foreign data, not a saturated round.
  EXPECT_FALSE(
      Round::from_string("340282366920938463463374607431768211456").has_value());
  EXPECT_FALSE(Round::from_string(std::string(40, '9')).has_value());
}

// ---------------------------------------------------------------------------
// __int128 oracle for the exponential-row bound formulas
// ---------------------------------------------------------------------------

u128 oracle_pow(u128 base, unsigned e) {
  u128 r = 1;
  while (e-- > 0) r *= base;
  return r;
}

/// Independent reconstruction of the row 2 gathering charge
/// 4 n^4 Lambda X(n), with X(n) = 2n+2 (scaled) or n^5 (theory).
u128 oracle_weak_dpp(unsigned n, unsigned lambda, bool scaled) {
  const u128 x = scaled ? 2 * u128{n} + 2 : oracle_pow(n, 5);
  return 4 * oracle_pow(n, 4) * lambda * x;
}

TEST(BigRoundOracle, Row2WeakDppMatchesExactArithmetic) {
  for (const bool scaled : {true, false}) {
    const gather::CostModel cm{scaled};
    for (const std::uint32_t n : {32u, 64u, 128u}) {
      const std::uint32_t lambda = gather::CostModel::id_bits(
          static_cast<std::uint64_t>(n) * n);  // IDs from [1, n^2]
      const Round got =
          cm.rounds(gather::GatherKind::kWeakDPP, n, n / 2 - 1, lambda);
      ASSERT_FALSE(got.is_saturated()) << "n=" << n;
      EXPECT_EQ(got.raw(), oracle_weak_dpp(n, lambda, scaled)) << "n=" << n;
    }
  }
  // The theory-model charge at n = 128 genuinely needs more than 64 bits —
  // the point of the widening.
  const gather::CostModel theory{false};
  EXPECT_GT(theory.rounds(gather::GatherKind::kWeakDPP, 128, 63, 14),
            Round::exp2(64));
}

TEST(BigRoundOracle, Row6StrongExpMatchesExactArithmetic) {
  const gather::CostModel cm{true};
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    const Round got = cm.rounds(gather::GatherKind::kStrongExp, n, n / 4 - 1,
                                /*lambda_bits=*/14);
    ASSERT_FALSE(got.is_saturated()) << "n=" << n;
    EXPECT_EQ(got.raw(), u128{1} << (n - 1)) << "n=" << n;
  }
}

TEST(BigRoundOracle, MapWindowAndPhaseMatchExactArithmetic) {
  for (const std::uint32_t n : {32u, 64u, 128u, 2'000'000u}) {
    const u128 t2 = 8 * oracle_pow(n, 3) + 64 * u128{n} + 96;
    EXPECT_EQ(explore::default_map_window(n).raw(), t2) << "n=" << n;
    EXPECT_EQ(core::dispersion_phase_rounds(n).raw(), 6 * u128{n} + 16);
  }
}

/// Full plan-level oracle: the row 2 and row 6 plan totals on a ring with
/// known IDs must equal the independently computed closed forms.
TEST(BigRoundOracle, PlanTotalsMatchExactArithmetic) {
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    const Graph g = make_ring(n);
    std::vector<sim::RobotId> ids(n);
    for (std::uint32_t i = 0; i < n; ++i) ids[i] = i + 1;  // Lambda from n
    const std::uint32_t lambda = gather::CostModel::id_bits(n);
    const u128 t2 = 8 * oracle_pow(n, 3) + 64 * u128{n} + 96;
    const u128 phase = 6 * u128{n} + 16;

    for (const bool scaled : {true, false}) {
      const gather::CostModel cm{scaled};

      const auto row2 = core::plan_tournament_dispersion(
          g, ids, /*gathered=*/false, n / 2 - 1, cm);
      const u128 gather2 = std::max<u128>(oracle_weak_dpp(n, lambda, scaled),
                                          2 * u128{n});
      const u128 pairing = (u128{n} + (n % 2) - 1) * 2 * t2;
      ASSERT_FALSE(row2.total_rounds.is_saturated());
      EXPECT_EQ(row2.total_rounds.raw(), gather2 + pairing + phase + 8)
          << "row2 n=" << n << " scaled=" << scaled;
      EXPECT_EQ(row2.byz_wake_round.raw(), gather2);

      const auto row6 =
          core::plan_strong_arbitrary_dispersion(g, ids, n / 4 - 1, cm);
      const u128 gather6 = std::max<u128>(u128{1} << (n - 1), 2 * u128{n});
      ASSERT_FALSE(row6.total_rounds.is_saturated());
      EXPECT_EQ(row6.total_rounds.raw(), gather6 + t2 + (u128{n} + 8) + 8)
          << "row6 n=" << n << " scaled=" << scaled;
      EXPECT_EQ(row6.byz_wake_round.raw(), gather6);
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint serialization of 128-bit rounds
// ---------------------------------------------------------------------------

run::PointResult huge_point() {
  run::PointResult p;
  p.point.algorithm = core::Algorithm::kStrongArbitrary;
  p.point.family = "star";
  p.point.n = 128;
  p.point.k = 128;
  p.point.f = 0;
  p.point.seed = 1;
  p.point.strategy = core::ByzStrategy::kSpoofer;
  p.derived_seed = 0xDEADBEEFULL;
  p.ok = true;
  p.stats.rounds = Round::exp2(127) + 123456789;
  p.stats.simulated_rounds = 77654;
  p.stats.resumes = 42;
  p.stats.moves = 9;
  p.stats.messages = 11;
  p.stats.all_honest_done = true;
  p.planned_rounds = Round::exp2(127) + 123456796;
  p.seconds = 0.0625;
  return p;
}

TEST(BigRoundCheckpoint, HugeRoundsRoundTripByteIdentically) {
  const run::PointResult p = huge_point();
  std::ostringstream first;
  run::write_checkpoint_line(first, p, /*spec_fingerprint=*/321);
  const std::string line = first.str();
  ASSERT_FALSE(line.empty());

  const auto entry =
      run::parse_checkpoint_line(line.substr(0, line.size() - 1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->spec, 321u);
  EXPECT_EQ(entry->result.stats.rounds, p.stats.rounds);
  EXPECT_EQ(entry->result.planned_rounds, p.planned_rounds);
  EXPECT_FALSE(entry->result.saturated);

  std::ostringstream second;
  run::write_checkpoint_line(second, entry->result, 321);
  EXPECT_EQ(second.str(), line);  // byte-identical rewrite
}

TEST(BigRoundCheckpoint, SaturatedFlagRoundTrips) {
  run::PointResult p = huge_point();
  p.skipped = true;
  p.saturated = true;
  p.ok = false;
  p.skip_reason = "round bound saturated 128-bit accounting";
  p.stats = sim::RunStats{};
  p.planned_rounds = Round::saturated();
  std::ostringstream os;
  run::write_checkpoint_line(os, p, 7);
  const std::string line = os.str();
  const auto entry = run::parse_checkpoint_line(line.substr(0, line.size() - 1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->result.skipped);
  EXPECT_TRUE(entry->result.saturated);
  EXPECT_TRUE(entry->result.planned_rounds.is_saturated());
}

TEST(BigRoundCheckpoint, OldSixtyFourBitLinesAreRejected) {
  // A v1 line from a pre-widening checkpoint: must parse to nullopt so the
  // point re-runs instead of importing a possibly-capped round count.
  const std::string v1 =
      "{\"v\": 1, \"spec\": 321, \"algorithm\": \"strong-arbitrary(T7)\", "
      "\"family\": \"star\", \"n\": 128, \"k\": 128, \"f\": 0, \"seed\": 1, "
      "\"strategy\": \"spoofer\", \"mix\": \"-\", \"derived_seed\": 5, "
      "\"skipped\": false, \"skip_reason\": \"\", \"ok\": true, \"detail\": "
      "\"\", \"rounds\": 4611686018444173545, \"simulated_rounds\": 513, "
      "\"resumes\": 1, \"moves\": 2, \"messages\": 3, \"all_honest_done\": "
      "true, \"planned_rounds\": 4611686018444173552, \"seconds\": 0}";
  EXPECT_FALSE(run::parse_checkpoint_line(v1).has_value());
}

}  // namespace
}  // namespace bdg
