// Quotient graph tests (Yamashita-Kameda views; Theorem 1's graph class).
#include "graph/quotient.h"

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"

namespace bdg {
namespace {

TEST(Quotient, OrientedRingCollapsesToOneNode) {
  // Every node of the oriented ring has the same view: Q_G is a single
  // node with a clockwise/counter-clockwise self-loop pair.
  const auto q = quotient_graph(make_oriented_ring(9));
  EXPECT_EQ(q.num_classes, 1u);
  EXPECT_EQ(q.quotient.n(), 1u);
  EXPECT_EQ(q.quotient.degree(0), 2u);
  EXPECT_TRUE(q.quotient.is_port_consistent());
}

TEST(Quotient, HypercubeCanonicalLabelingCollapses) {
  const auto q = quotient_graph(make_hypercube(3));
  EXPECT_EQ(q.num_classes, 1u);  // bit-flip ports: all views identical
}

TEST(Quotient, SquareTorusCollapses) {
  const auto q = quotient_graph(make_torus(4, 4));
  EXPECT_EQ(q.num_classes, 1u);  // direction-consistent ports
}

TEST(Quotient, PathHasSymmetricPairs) {
  // A path with insertion-order ports: node i and node n-1-i mirror each
  // other... but ports break the mirror except for special cases; verify
  // the class count directly against view logic: the 2-node path has both
  // endpoints equivalent.
  const auto q2 = quotient_graph(make_path(2));
  EXPECT_EQ(q2.num_classes, 1u);
  // 3-node path: endpoints differ from the middle, but the two endpoints
  // have different port labelings at their shared neighbor (ports 0 and 1),
  // which shows up at depth 2.
  const auto q3 = quotient_graph(make_path(3));
  EXPECT_GE(q3.num_classes, 2u);
}

TEST(Quotient, ShuffledErUsuallyTrivial) {
  // Random port labelings on random graphs almost surely give all-distinct
  // views; use fixed seeds known to produce trivial quotients.
  Rng rng(2024);
  int trivial = 0;
  for (int i = 0; i < 10; ++i) {
    const Graph g = shuffle_ports(make_connected_er(10, 0.4, rng), rng);
    if (has_trivial_quotient(g)) ++trivial;
  }
  EXPECT_GE(trivial, 8);
}

TEST(Quotient, TrivialQuotientIsIsomorphicToG) {
  Rng rng(5);
  const Graph g = shuffle_ports(make_connected_er(9, 0.5, rng), rng);
  const auto q = quotient_graph(g);
  if (q.num_classes == g.n()) {
    EXPECT_TRUE(isomorphic(g, q.quotient));
    // And each node's class is its own quotient node (classes are a
    // bijection).
    std::vector<bool> seen(g.n(), false);
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_FALSE(seen[q.cls[v]]);
      seen[q.cls[v]] = true;
    }
  }
}

TEST(Quotient, QuotientIsIdempotent) {
  // Q(Q(G)) == Q(G): the quotient has all-distinct views of its own.
  for (const auto& [name, g] : standard_menagerie(8, 99)) {
    SCOPED_TRACE(name);
    const auto q1 = quotient_graph(g);
    const auto q2 = quotient_graph(q1.quotient);
    EXPECT_EQ(q2.num_classes, q1.quotient.n());
  }
}

TEST(Quotient, ClassesRespectDegrees) {
  for (const auto& [name, g] : standard_menagerie(10, 7)) {
    SCOPED_TRACE(name);
    const auto q = quotient_graph(g);
    for (NodeId v = 0; v < g.n(); ++v)
      EXPECT_EQ(g.degree(v), q.quotient.degree(q.cls[v]));
  }
}

TEST(Quotient, DisconnectedThrows) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW((void)quotient_graph(g), std::invalid_argument);
}

TEST(Quotient, QuotientEdgesProjectRealEdges) {
  for (const auto& [name, g] : standard_menagerie(9, 31)) {
    SCOPED_TRACE(name);
    const auto q = quotient_graph(g);
    for (NodeId v = 0; v < g.n(); ++v) {
      for (Port p = 0; p < g.degree(v); ++p) {
        const HalfEdge real = g.hop(v, p);
        const HalfEdge quot = q.quotient.hop(q.cls[v], p);
        EXPECT_EQ(quot.to, q.cls[real.to]);
        EXPECT_EQ(quot.reverse, real.reverse);
      }
    }
  }
}

}  // namespace
}  // namespace bdg
