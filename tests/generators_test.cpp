// Property tests for the graph generators: every generator must produce a
// connected, simple, port-consistent graph; randomized generators must be
// deterministic under a fixed seed.
#include "graph/generators.h"

#include <gtest/gtest.h>

#include <numeric>

namespace bdg {
namespace {

void expect_well_formed(const Graph& g, bool simple = true) {
  EXPECT_TRUE(g.is_port_consistent());
  EXPECT_TRUE(g.is_connected());
  if (simple) {
    EXPECT_TRUE(g.is_simple());
  }
}

TEST(Generators, Path) {
  for (std::size_t n : {1, 2, 5, 17}) {
    const Graph g = make_path(n);
    EXPECT_EQ(g.n(), n);
    EXPECT_EQ(g.m(), n - 1);
    expect_well_formed(g);
  }
}

TEST(Generators, RingDegreesAndSize) {
  for (std::size_t n : {3, 4, 9, 20}) {
    const Graph g = make_ring(n);
    EXPECT_EQ(g.n(), n);
    EXPECT_EQ(g.m(), n);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), 2u);
    expect_well_formed(g);
  }
}

TEST(Generators, OrientedRingPortsAreDirectionConsistent) {
  const Graph g = make_oriented_ring(7);
  expect_well_formed(g);
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(g.hop(v, 0).to, (v + 1) % 7);  // port 0 always clockwise
    EXPECT_EQ(g.hop(v, 1).to, (v + 6) % 7);
    EXPECT_EQ(g.hop(v, 0).reverse, 1u);
  }
}

TEST(Generators, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.m(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
  expect_well_formed(g);
}

TEST(Generators, StarDegrees) {
  const Graph g = make_star(9);
  EXPECT_EQ(g.degree(0), 8u);
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
  expect_well_formed(g);
}

TEST(Generators, GridSizeAndDegrees) {
  const Graph g = make_grid(3, 5);
  EXPECT_EQ(g.n(), 15u);
  EXPECT_EQ(g.m(), 3 * 4 + 5 * 2);  // horizontal + vertical edges
  EXPECT_EQ(g.max_degree(), 4u);
  expect_well_formed(g);
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.n(), 20u);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 4u);
  expect_well_formed(g);
}

TEST(Generators, HypercubePortsFlipBits) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.n(), 16u);
  for (NodeId v = 0; v < g.n(); ++v)
    for (Port b = 0; b < 4; ++b) EXPECT_EQ(g.hop(v, b).to, v ^ (1u << b));
  expect_well_formed(g);
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(10);
  EXPECT_EQ(g.m(), 9u);
  expect_well_formed(g);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(11);
  expect_well_formed(g);
  EXPECT_EQ(g.n(), 11u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(7);
  for (std::size_t n : {2, 3, 8, 25}) {
    const Graph g = make_random_tree(n, rng);
    EXPECT_EQ(g.m(), n - 1);
    expect_well_formed(g);
  }
}

TEST(Generators, ConnectedErIsConnected) {
  Rng rng(11);
  for (std::size_t n : {4, 10, 24}) {
    const Graph g = make_connected_er(n, 0.0, rng);
    EXPECT_EQ(g.n(), n);
    expect_well_formed(g);
  }
}

TEST(Generators, RandomRegularDegrees) {
  Rng rng(13);
  const Graph g = make_random_regular(12, 3, rng);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), 3u);
  expect_well_formed(g);
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(1);
  EXPECT_THROW((void)make_random_regular(5, 3, rng), std::invalid_argument);
}

TEST(Generators, DeterministicUnderSeed) {
  Rng a(42), b(42);
  EXPECT_EQ(make_connected_er(12, 0.3, a), make_connected_er(12, 0.3, b));
  Rng c(42), d(43);
  // Different seeds almost surely differ (fixed here, not flaky).
  EXPECT_NE(make_connected_er(12, 0.3, c), make_connected_er(12, 0.3, d));
}

TEST(Generators, ShufflePortsPreservesStructure) {
  Rng rng(5);
  const Graph g = make_grid(3, 3);
  const Graph s = shuffle_ports(g, rng);
  EXPECT_EQ(s.n(), g.n());
  EXPECT_EQ(s.m(), g.m());
  expect_well_formed(s);
  // Same neighbor multiset at each node.
  for (NodeId v = 0; v < g.n(); ++v) {
    std::vector<NodeId> a, b;
    for (Port p = 0; p < g.degree(v); ++p) a.push_back(g.hop(v, p).to);
    for (Port p = 0; p < s.degree(v); ++p) b.push_back(s.hop(v, p).to);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(Generators, RelabelNodesPermutesStructure) {
  const Graph g = make_path(4);
  const std::vector<NodeId> perm{3, 2, 1, 0};
  const Graph h = relabel_nodes(g, perm);
  expect_well_formed(h);
  EXPECT_EQ(h.degree(3), 1u);  // old node 0 (an endpoint) is now node 3
  EXPECT_EQ(h.degree(0), 1u);
}

TEST(Generators, MenagerieIsWellFormed) {
  for (const auto& [name, g] : standard_menagerie(8, 123)) {
    SCOPED_TRACE(name);
    EXPECT_GE(g.n(), 4u);
    expect_well_formed(g);
  }
}

// Parameterized involution sweep: the port involution must hold for every
// generator family across sizes and seeds.
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(GeneratorSweep, AllFamiliesPortConsistent) {
  const auto [n, seed] = GetParam();
  for (const auto& [name, g] : standard_menagerie(n, seed)) {
    SCOPED_TRACE(name + "/n=" + std::to_string(n));
    EXPECT_TRUE(g.is_port_consistent());
    EXPECT_TRUE(g.is_connected());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorSweep,
    ::testing::Combine(::testing::Values(4, 6, 9, 12, 16),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace bdg
