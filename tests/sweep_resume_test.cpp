// Conformance tier for resumable / sharded sweeps: an interrupted sweep
// resumed from its checkpoint, and a sharded sweep merged through a shared
// checkpoint, must reproduce the single-shot SweepResult byte-identically —
// JSON and CSV reports included — at 1 and 8 worker threads. Also the
// regression tier for grid dedupe (clamped duplicate f values must not
// double-count seeds).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/impossibility.h"
#include "core/scenario.h"
#include "run/report.h"
#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;
using core::ByzStrategy;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Render every report of a result into one string for byte comparison.
std::string all_reports(const SweepResult& r) {
  std::ostringstream os;
  write_points_csv(os, r);
  os << "\n--\n";
  write_cells_csv(os, r);
  os << "\n--\n";
  write_json(os, r);
  return os.str();
}

/// The mixed-adversary, k-axis grid the conformance statement runs on.
/// >= 500 points: 2 algorithms x 2 families x 1 size x 4 k x 2 f x 2 mixes
/// x 8 seeds = 512. f is unclamped on purpose so the grid reaches the
/// Theorem 8-infeasible region (k=7, f=1): those points must surface as
/// structured skips in the very same reports the byte-compare covers.
SweepSpec conformance_spec(unsigned threads) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered,
                     Algorithm::kTournamentGathered};
  spec.families = {"er", "complete"};
  spec.sizes = {6};
  spec.robot_counts = {4, 6, 7, 12};
  spec.byzantine_counts = {0, 1};
  spec.clamp_f_to_tolerance = false;
  spec.strategy_mixes = {{ByzStrategy::kMapLiar, ByzStrategy::kCrash},
                         {ByzStrategy::kFakeSettler,
                          ByzStrategy::kSilentSettler,
                          ByzStrategy::kSquatter}};
  spec.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.threads = threads;
  spec.measure_seconds = false;  // reports = pure function of the grid
  return spec;
}

void expect_identical_results(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    const PointResult& pa = a.points[i];
    const PointResult& pb = b.points[i];
    EXPECT_TRUE(same_point(pa.point, pb.point));
    EXPECT_EQ(pa.derived_seed, pb.derived_seed);
    EXPECT_EQ(pa.skipped, pb.skipped);
    EXPECT_EQ(pa.skip_reason, pb.skip_reason);
    EXPECT_EQ(pa.ok, pb.ok);
    EXPECT_EQ(pa.detail, pb.detail);
    EXPECT_EQ(pa.stats.rounds, pb.stats.rounds);
    EXPECT_EQ(pa.stats.simulated_rounds, pb.stats.simulated_rounds);
    EXPECT_EQ(pa.stats.resumes, pb.stats.resumes);
    EXPECT_EQ(pa.stats.moves, pb.stats.moves);
    EXPECT_EQ(pa.stats.messages, pb.stats.messages);
    EXPECT_EQ(pa.planned_rounds, pb.planned_rounds);
    EXPECT_EQ(pa.seconds, pb.seconds);
  }
  EXPECT_EQ(all_reports(a), all_reports(b));
}

// The acceptance statement: a checkpointed sweep aborted after p points,
// resumed from the checkpoint, reproduces the uninterrupted result
// byte-identically (reports included), at 1 and 8 threads.
TEST(SweepResume, AbortedThenResumedIsByteIdentical) {
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const SweepResult single = run_sweep(conformance_spec(threads));
    ASSERT_GE(single.points.size(), 500u);
    ASSERT_FALSE(single.aborted);
    // The grid deliberately crosses the Theorem 8 frontier: every
    // infeasible (k, n, f) point must be a structured skip, never a
    // failure.
    std::size_t infeasible = 0;
    for (const PointResult& p : single.points) {
      if (p.point.f < p.point.k &&
          !core::k_dispersion_feasible(p.point.k, p.point.n, p.point.f)) {
        EXPECT_TRUE(p.skipped) << p.detail;
        EXPECT_NE(p.skip_reason.find("Theorem 8"), std::string::npos);
        ++infeasible;
      }
    }
    EXPECT_GT(infeasible, 0u);

    const std::string ck =
        temp_path("resume_t" + std::to_string(threads) + ".jsonl");
    std::remove(ck.c_str());

    SweepSpec interrupted = conformance_spec(threads);
    interrupted.checkpoint_path = ck;
    std::size_t fresh = 0;
    interrupted.progress = [&fresh](const PointResult&, std::size_t,
                                    std::size_t) {
      return ++fresh < 40;  // abort mid-sweep
    };
    const SweepResult partial = run_sweep(interrupted);
    EXPECT_TRUE(partial.aborted);
    EXPECT_GT(partial.skipped(), single.skipped())
        << "abort should leave unrun points behind";

    SweepSpec resumed = conformance_spec(threads);
    resumed.checkpoint_path = ck;
    const SweepResult full = run_sweep(resumed);
    EXPECT_FALSE(full.aborted);
    EXPECT_GE(full.from_checkpoint, 40u - 1u);
    expect_identical_results(single, full);
    std::remove(ck.c_str());
  }
}

// Sharding: the union of the m stripes is exactly the unsharded grid, and
// a merged (checkpoint-fed) unsharded run is byte-identical to single-shot.
TEST(SweepResume, ShardedUnionEqualsUnshardedGrid) {
  const SweepSpec base = conformance_spec(4);
  const std::vector<SweepPoint> grid = expand_grid(base);

  std::vector<SweepPoint> reunion;
  for (unsigned shard = 0; shard < 2; ++shard) {
    SweepSpec s = base;
    s.shard_index = shard;
    s.shard_count = 2;
    for (const SweepPoint& p : expand_grid(s)) reunion.push_back(p);
  }
  ASSERT_EQ(reunion.size(), grid.size());
  // Striped expansion: shard 0 holds indices 0,2,4..., shard 1 the rest.
  std::size_t matched = 0;
  for (const SweepPoint& p : grid) {
    for (const SweepPoint& q : reunion)
      if (same_point(p, q)) {
        ++matched;
        break;
      }
  }
  EXPECT_EQ(matched, grid.size());

  const std::string ck = temp_path("shards.jsonl");
  std::remove(ck.c_str());
  const SweepResult single = run_sweep(base);
  for (unsigned shard = 0; shard < 2; ++shard) {
    SweepSpec s = base;
    s.shard_index = shard;
    s.shard_count = 2;
    s.checkpoint_path = ck;
    const SweepResult slice = run_sweep(s);
    EXPECT_FALSE(slice.aborted);
    EXPECT_EQ(slice.points.size(), (grid.size() + 1 - shard) / 2);
  }
  SweepSpec merged = base;
  merged.checkpoint_path = ck;
  const SweepResult full = run_sweep(merged);
  EXPECT_EQ(full.from_checkpoint, grid.size())
      << "merge run should re-run nothing";
  expect_identical_results(single, full);
  std::remove(ck.c_str());
}

// The checkpoint's on-disk ORDER must be irrelevant: load_checkpoint
// returns a lookup-only util::FlatMap matched against the grid by derived
// seed, so a permuted (here: fully reversed) checkpoint file must restore
// to byte-identical reports. This is the regression test behind the PR 10
// unordered-map audit — report bytes may depend on grid order only, never
// on checkpoint/container iteration order.
TEST(SweepResume, CheckpointOrderIndependence) {
  SweepSpec base = conformance_spec(1);
  base.seeds = {1, 2};  // 128 points is plenty to permute
  const std::string ck = temp_path("permuted.jsonl");
  std::remove(ck.c_str());

  SweepSpec recording = base;
  recording.checkpoint_path = ck;
  const SweepResult single = run_sweep(recording);
  ASSERT_FALSE(single.aborted);

  // Reverse the checkpoint's lines in place.
  std::vector<std::string> lines;
  {
    std::ifstream in(ck);
    ASSERT_TRUE(in);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 2u);
  {
    std::ofstream out(ck, std::ios::trunc);
    for (auto it = lines.rbegin(); it != lines.rend(); ++it)
      out << *it << "\n";
  }

  SweepSpec merged = base;
  merged.checkpoint_path = ck;
  const SweepResult full = run_sweep(merged);
  EXPECT_EQ(full.from_checkpoint, single.points.size())
      << "reversed checkpoint should restore every point";
  expect_identical_results(single, full);
  std::remove(ck.c_str());
}

// Checkpoint lines round-trip every PointResult field bit-exactly,
// including doubles, escaped strings and the mix.
TEST(SweepResume, CheckpointLinesRoundTrip) {
  PointResult p;
  p.point = {Algorithm::kRingBaseline, "ring", 8, 12, 3, 7,
             ByzStrategy::kMapLiar,
             {ByzStrategy::kCrash, ByzStrategy::kMapLiar}};
  p.derived_seed = 0xDEADBEEFCAFEF00DULL;
  p.skipped = false;
  p.ok = false;
  p.detail = "node 3 holds 2 honest robots; \"quoted\"\n\ttabbed";
  p.stats.rounds = 123456789012345ULL;
  p.stats.simulated_rounds = 42;
  p.stats.resumes = 99;
  p.stats.moves = 7;
  p.stats.messages = 8;
  p.stats.all_honest_done = true;
  p.planned_rounds = 77;
  p.seconds = 0.12345678901234567;

  const std::uint64_t fp = 0x5EEDFACE5EEDFACEULL;
  std::ostringstream os;
  write_checkpoint_line(os, p, fp);
  std::string line = os.str();
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  line.pop_back();
  const auto entry = parse_checkpoint_line(line);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->spec, fp);
  const PointResult& q = entry->result;
  EXPECT_TRUE(same_point(p.point, q.point));
  EXPECT_EQ(p.derived_seed, q.derived_seed);
  EXPECT_EQ(p.skipped, q.skipped);
  EXPECT_EQ(p.ok, q.ok);
  EXPECT_EQ(p.detail, q.detail);
  EXPECT_EQ(p.stats.rounds, q.stats.rounds);
  EXPECT_EQ(p.stats.resumes, q.stats.resumes);
  EXPECT_EQ(p.stats.all_honest_done, q.stats.all_honest_done);
  EXPECT_EQ(p.planned_rounds, q.planned_rounds);
  EXPECT_EQ(p.seconds, q.seconds);  // bit-exact double round-trip

  // A truncated tail (crashed writer) parses as nothing, not garbage.
  EXPECT_FALSE(parse_checkpoint_line(line.substr(0, line.size() / 2))
                   .has_value());
  EXPECT_FALSE(parse_checkpoint_line("").has_value());
  std::istringstream stream(os.str() + "half a line {\"v\": 1");
  const auto loaded = load_checkpoint(stream, fp);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.contains(p.derived_seed));
  // Entries from a sweep with different spec knobs are filtered out.
  std::istringstream other(os.str());
  EXPECT_TRUE(load_checkpoint(other, fp + 1).empty());
}

// A checkpoint entry whose coordinates do not match the grid point (stale
// file from another grid, or a derived-seed collision) is ignored — the
// point re-runs instead of importing foreign results.
TEST(SweepResume, MismatchedCheckpointEntriesAreIgnored) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {8};
  spec.seeds = {1};
  spec.measure_seconds = false;
  const std::vector<SweepPoint> grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 1u);

  // Forge an entry with the right derived seed but wrong coordinates.
  PointResult forged;
  forged.point = grid[0];
  forged.point.family = "ring";
  forged.derived_seed = point_seed(spec.base_seed, grid[0]);
  forged.ok = true;
  forged.stats.rounds = 1;

  const std::string ck = temp_path("stale.jsonl");
  {
    std::ofstream os(ck);
    write_checkpoint_line(os, forged, spec_fingerprint(spec));
  }
  SweepSpec with_ck = spec;
  with_ck.checkpoint_path = ck;
  const SweepResult result = run_sweep(with_ck);
  EXPECT_EQ(result.from_checkpoint, 0u) << "forged entry must not be reused";
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_FALSE(result.points[0].skipped);
  EXPECT_GT(result.points[0].stats.rounds, 1u);
  std::remove(ck.c_str());
}

// Regression: a checkpoint written under different spec-level knobs
// (common_graphs here — same coordinates, same derived seed, different
// execution) must not be imported; the fingerprint forces a re-run.
TEST(SweepResume, DifferentSpecKnobsInvalidateCheckpoint) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {8};
  spec.seeds = {1};
  spec.measure_seconds = false;
  spec.checkpoint_path = temp_path("knobs.jsonl");
  std::remove(spec.checkpoint_path.c_str());

  const SweepResult first = run_sweep(spec);
  ASSERT_EQ(first.points.size(), 1u);
  ASSERT_FALSE(first.points[0].skipped);

  SweepSpec other = spec;
  other.common_graphs = true;  // same grid, different graph sampling
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));
  const SweepResult second = run_sweep(other);
  EXPECT_EQ(second.from_checkpoint, 0u)
      << "checkpoint from different knobs must not be reused";
  ASSERT_EQ(second.points.size(), 1u);
  EXPECT_NE(first.points[0].stats.moves, second.points[0].stats.moves);

  // The matching spec still resumes from its own entries.
  const SweepResult again = run_sweep(spec);
  EXPECT_EQ(again.from_checkpoint, 1u);
  std::remove(spec.checkpoint_path.c_str());
}

// Regression (grid dedupe): byzantine_counts that clamp onto the same
// tolerance, robot_counts listing both 0 and n, and repeated unclamped f
// values must all collapse to unique points — aggregates never
// double-count a derived seed.
TEST(SweepResume, ExpandedGridNeverDuplicatesPoints) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {9};
  spec.robot_counts = {0, 9};       // both mean k = n = 9
  spec.byzantine_counts = {5, 9};   // both clamp to the tolerance (2)
  spec.seeds = {1, 2};
  spec.measure_seconds = false;
  const std::vector<SweepPoint> clamped = expand_grid(spec);
  EXPECT_EQ(clamped.size(), 2u);  // one (a, family, n, k, f) x two seeds
  for (const SweepPoint& p : clamped) {
    EXPECT_EQ(p.k, 9u);
    EXPECT_EQ(p.f, 2u);
  }

  SweepSpec unclamped = spec;
  unclamped.clamp_f_to_tolerance = false;
  unclamped.byzantine_counts = {2, 2, 2};
  const std::vector<SweepPoint> uniq = expand_grid(unclamped);
  EXPECT_EQ(uniq.size(), 2u);

  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].runs, 2u) << "duplicate seeds double-counted";
}

// Abort without a checkpoint still yields a complete, well-formed result:
// unrun points are structured skips, not absent rows.
TEST(SweepResume, AbortMarksUnrunPointsAsSkips) {
  SweepSpec spec = conformance_spec(1);
  std::size_t seen = 0;
  spec.progress = [&seen](const PointResult&, std::size_t, std::size_t) {
    return ++seen < 10;
  };
  const SweepResult result = run_sweep(spec);
  EXPECT_TRUE(result.aborted);
  ASSERT_EQ(result.points.size(), expand_grid(conformance_spec(1)).size());
  std::size_t aborted_points = 0;
  for (const PointResult& p : result.points)
    if (p.skipped && p.skip_reason.find("aborted") != std::string::npos)
      ++aborted_points;
  EXPECT_GT(aborted_points, 0u);
}

}  // namespace
}  // namespace bdg::run
