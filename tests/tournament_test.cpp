// Theorems 2 and 3 end-to-end: all-pairs tournament map finding with
// majority voting, then dispersion. Includes the pairing-schedule unit
// tests (all pairs covered, at most one pairing per robot per window).
#include "core/tournament_dispersion.h"

#include <gtest/gtest.h>

#include <set>

#include "core/algorithm_common.h"
#include "core/scenario.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

TEST(RoundRobin, CoversAllPairsExactlyOnce) {
  for (const std::size_t k : {2u, 3u, 4u, 7u, 8u, 11u}) {
    std::vector<sim::RobotId> ids;
    for (std::size_t i = 0; i < k; ++i) ids.push_back(100 + 7 * i);
    const auto windows = round_robin_schedule(ids);
    EXPECT_EQ(windows.size(), (k % 2 == 0 ? k - 1 : k));
    std::set<std::pair<sim::RobotId, sim::RobotId>> seen;
    for (const auto& win : windows) {
      std::set<sim::RobotId> in_window;
      for (const auto& [a, b] : win) {
        EXPECT_LT(a, b);
        EXPECT_TRUE(in_window.insert(a).second) << "robot paired twice";
        EXPECT_TRUE(in_window.insert(b).second);
        EXPECT_TRUE(seen.insert({a, b}).second) << "pair repeated";
      }
    }
    EXPECT_EQ(seen.size(), k * (k - 1) / 2);
  }
}

TEST(RoundRobin, EmptyAndSingleton) {
  EXPECT_TRUE(round_robin_schedule({}).empty());
  const auto w = round_robin_schedule({5});
  for (const auto& win : w) EXPECT_TRUE(win.empty());
}

TEST(MajorityCode, PicksMostFrequent) {
  const CanonicalCode a{1, 2}, b{3, 4};
  EXPECT_EQ(majority_code({a, b, a}), a);
  EXPECT_EQ(majority_code({b}), b);
  EXPECT_FALSE(majority_code({}).has_value());
}

TEST(DecodeMap, RejectsWrongSizeAndGarbage) {
  const Graph g = make_ring(5);
  const CanonicalCode code = rooted_code(g, 0);
  EXPECT_TRUE(decode_map(code, 5).has_value());
  EXPECT_FALSE(decode_map(code, 6).has_value());
  EXPECT_FALSE(decode_map({1, 0}, 5).has_value());
  EXPECT_FALSE(decode_map({99, 1, 2}, 99).has_value());
}

class TournamentGathered
    : public ::testing::TestWithParam<std::tuple<ByzStrategy, std::uint32_t>> {
};

TEST_P(TournamentGathered, Row4DispersesUnderAdversary) {
  const auto [strategy, f] = GetParam();
  Rng rng(41);
  const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = f;
  cfg.strategy = strategy;
  cfg.seed = 5;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, TournamentGathered,
    ::testing::Combine(::testing::Values(ByzStrategy::kMapLiar,
                                         ByzStrategy::kFakeSettler,
                                         ByzStrategy::kCrash,
                                         ByzStrategy::kIntentSpammer),
                       ::testing::Values(1u, 3u)),  // f up to n/2-1 = 3
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TournamentGathered, MaxToleranceOnRing) {
  const Graph g = make_ring(8);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 3;  // floor(8/2) - 1
  cfg.strategy = ByzStrategy::kMapLiar;
  cfg.seed = 9;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(TournamentArbitrary, Row2GatherThenDisperse) {
  Rng rng(43);
  const Graph g = shuffle_ports(make_connected_er(7, 0.5, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentArbitrary;
  cfg.num_byzantine = 2;  // floor(7/2) - 1
  cfg.strategy = ByzStrategy::kFakeSettler;
  cfg.seed = 21;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  // Phase 1's charged gathering bound dominates the round count (the
  // Theorem 2 shape), even in the scaled cost model.
  const gather::CostModel cm{true};
  EXPECT_GE(res.stats.rounds,
            cm.rounds(gather::GatherKind::kWeakDPP, 7, 2,
                      gather::CostModel::id_bits(49)));
}

TEST(TournamentGathered, AllHonestSmall) {
  const Graph g = make_grid(2, 3);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 0;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

}  // namespace
}  // namespace bdg::core
