// Theorems 2 and 3 end-to-end: all-pairs tournament map finding with
// majority voting, then dispersion. Includes the pairing-schedule unit
// tests (all pairs covered, at most one pairing per robot per window),
// the sentinel/slack bug-cluster regressions (RobotId 0 rejection,
// schedule-derived window counts, majority fault budget) and the
// batched-vs-unbatched pairing conformance grid.
#include "core/tournament_dispersion.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/algorithm_common.h"
#include "core/dispersion_using_map.h"
#include "core/protocol_slack.h"
#include "core/scenario.h"
#include "explore/engine_map.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

TEST(RoundRobin, CoversAllPairsExactlyOnce) {
  for (const std::size_t k : {2u, 3u, 4u, 7u, 8u, 11u}) {
    std::vector<sim::RobotId> ids;
    for (std::size_t i = 0; i < k; ++i) ids.push_back(100 + 7 * i);
    const auto windows = round_robin_schedule(ids);
    EXPECT_EQ(windows.size(), (k % 2 == 0 ? k - 1 : k));
    std::set<std::pair<sim::RobotId, sim::RobotId>> seen;
    for (const auto& win : windows) {
      std::set<sim::RobotId> in_window;
      for (const auto& [a, b] : win) {
        EXPECT_LT(a, b);
        EXPECT_TRUE(in_window.insert(a).second) << "robot paired twice";
        EXPECT_TRUE(in_window.insert(b).second);
        EXPECT_TRUE(seen.insert({a, b}).second) << "pair repeated";
      }
    }
    EXPECT_EQ(seen.size(), k * (k - 1) / 2);
  }
}

TEST(RoundRobin, EmptyAndSingleton) {
  EXPECT_TRUE(round_robin_schedule({}).empty());
  const auto w = round_robin_schedule({5});
  for (const auto& win : w) EXPECT_TRUE(win.empty());
}

// Regression: RobotId 0 is the schedule's internal dummy-bye marker and
// the window protocol's "no partner" case. It used to be accepted
// silently — a caller passing ID 0 got a robot that slept every window
// and a schedule pairing the dummy — so it must be rejected loudly at
// plan time, mirroring the engine's add_robot check.
TEST(RoundRobin, RejectsReservedRobotIdZero) {
  EXPECT_THROW((void)round_robin_schedule({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)round_robin_schedule({0}), std::invalid_argument);
  const Graph g = make_ring(4);
  const gather::CostModel cost{true};
  EXPECT_THROW((void)plan_tournament_dispersion(g, {0, 7, 9, 12},
                                                /*gathered=*/true, 0, cost),
               std::invalid_argument);
  // Nonzero IDs keep planning fine.
  EXPECT_NO_THROW((void)plan_tournament_dispersion(g, {3, 7, 9, 12},
                                                   /*gathered=*/true, 0,
                                                   cost));
}

// Regression: the planner derives the pairing-phase length from
// round_robin_schedule(ids).size() itself — never from its own padding
// arithmetic, which could drift from the coroutine's schedule and desync
// plan.total_rounds from the run. Pinned against the schedule for odd
// and even k (gathered, so the plan is schedule + dispersion + slack).
TEST(TournamentPlan, WindowCountSingleSourcedFromSchedule) {
  const Graph g = make_ring(6);
  const gather::CostModel cost{true};
  const Round t2 = explore::default_map_window(6);
  const Round phase = dispersion_phase_rounds(6);
  for (const std::size_t k : {2u, 3u, 5u, 8u, 9u}) {
    std::vector<sim::RobotId> ids;
    for (std::size_t i = 0; i < k; ++i) ids.push_back(11 + 3 * i);
    const auto plan =
        plan_tournament_dispersion(g, ids, /*gathered=*/true, 0, cost);
    const Round pairing = Round(round_robin_schedule(ids).size()) * 2 * t2;
    EXPECT_EQ(plan.total_rounds, pairing + phase + kPlanCloseSlack)
        << "k=" << k;
  }
}

TEST(MajorityCode, PicksMostFrequent) {
  const CanonicalCode a{1, 2}, b{3, 4};
  EXPECT_EQ(majority_code({a, b, a}), a);
  EXPECT_EQ(majority_code({b}), b);
  EXPECT_FALSE(majority_code({}).has_value());
}

// Regression: at the exact tolerance frontier an adversarial code tying
// the honest count used to win deterministically whenever it was the
// lexicographically smaller canonical code. With the fault budget the
// winner must STRICTLY beat the possible-faulty count, so the tie (and
// anything below the budget) becomes a loud no-map abort instead.
TEST(MajorityCode, FaultBudgetBreaksFrontierTies) {
  const CanonicalCode honest{9, 9}, evil{1, 1};  // evil is the smaller code
  // f = 2 liars coordinating on one code, tying the two honest votes.
  const std::vector<CanonicalCode> tied{honest, evil, honest, evil};
  EXPECT_EQ(majority_code(tied), evil);  // plurality: the documented hazard
  EXPECT_FALSE(majority_code(tied, 2).has_value());  // budget: loud abort
  // One honest vote above the budget restores the honest winner.
  const std::vector<CanonicalCode> clear{honest, evil, honest, evil, honest};
  EXPECT_EQ(majority_code(clear, 2), honest);
  // Everything at or below the budget is filtered, not elected.
  EXPECT_FALSE(majority_code({evil, evil}, 2).has_value());
}

TEST(DecodeMap, RejectsWrongSizeAndGarbage) {
  const Graph g = make_ring(5);
  const CanonicalCode code = rooted_code(g, 0);
  EXPECT_TRUE(decode_map(code, 5).has_value());
  EXPECT_FALSE(decode_map(code, 6).has_value());
  EXPECT_FALSE(decode_map({1, 0}, 5).has_value());
  EXPECT_FALSE(decode_map({99, 1, 2}, 99).has_value());
}

class TournamentGathered
    : public ::testing::TestWithParam<std::tuple<ByzStrategy, std::uint32_t>> {
};

TEST_P(TournamentGathered, Row4DispersesUnderAdversary) {
  const auto [strategy, f] = GetParam();
  Rng rng(41);
  const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = f;
  cfg.strategy = strategy;
  cfg.seed = 5;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, TournamentGathered,
    ::testing::Combine(::testing::Values(ByzStrategy::kMapLiar,
                                         ByzStrategy::kFakeSettler,
                                         ByzStrategy::kCrash,
                                         ByzStrategy::kIntentSpammer),
                       ::testing::Values(1u, 3u)),  // f up to n/2-1 = 3
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TournamentGathered, MaxToleranceOnRing) {
  const Graph g = make_ring(8);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 3;  // floor(8/2) - 1
  cfg.strategy = ByzStrategy::kMapLiar;
  cfg.seed = 9;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(TournamentArbitrary, Row2GatherThenDisperse) {
  Rng rng(43);
  const Graph g = shuffle_ports(make_connected_er(7, 0.5, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentArbitrary;
  cfg.num_byzantine = 2;  // floor(7/2) - 1
  cfg.strategy = ByzStrategy::kFakeSettler;
  cfg.seed = 21;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  // Phase 1's charged gathering bound dominates the round count (the
  // Theorem 2 shape), even in the scaled cost model.
  const gather::CostModel cm{true};
  EXPECT_GE(res.stats.rounds,
            cm.rounds(gather::GatherKind::kWeakDPP, 7, 2,
                      gather::CostModel::id_bits(49)));
}

TEST(TournamentGathered, AllHonestSmall) {
  const Graph g = make_grid(2, 3);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 0;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

// Conformance grid for the batched pairing windows (map-cache, verify
// walk, early window close): across a mixed-adversary grid, the batched
// and unbatched paths must produce bit-identical sweep verdicts and
// charged round totals — only the ACTIVE metrics (simulated rounds,
// moves, messages) may drop. Every scenario also exercises the runtime
// window-synchrony invariant in tournament_robot across all seeds and
// mixes: a desynced window boundary throws out of run_scenario and fails
// the test loudly.
TEST(TournamentBatched, ConformsToUnbatchedOnMixedAdversaryGrid) {
  const std::vector<std::vector<ByzStrategy>> mixes = {
      {},  // scalar kMapLiar
      {ByzStrategy::kMapLiar, ByzStrategy::kCrash},
      {ByzStrategy::kFakeSettler, ByzStrategy::kIntentSpammer,
       ByzStrategy::kMapLiar},
  };
  for (const Algorithm alg :
       {Algorithm::kTournamentGathered, Algorithm::kTournamentArbitrary}) {
    for (const std::uint32_t f : {0u, 1u, 3u}) {
      for (const std::uint64_t seed : {1ULL, 5ULL, 23ULL}) {
        for (const auto& mix : mixes) {
          Rng rng(seed);
          const Graph g =
              shuffle_ports(make_connected_er(8, 0.45, rng), rng);
          ScenarioConfig cfg;
          cfg.algorithm = alg;
          cfg.num_byzantine = f;
          cfg.strategy = ByzStrategy::kMapLiar;
          cfg.strategies = mix;
          cfg.seed = seed;
          cfg.batched_pairing = true;
          const ScenarioResult batched = run_scenario(g, cfg);
          cfg.batched_pairing = false;
          const ScenarioResult plain = run_scenario(g, cfg);
          const auto ctx = to_string(alg) + " f=" + std::to_string(f) +
                           " seed=" + std::to_string(seed) + " mix=" +
                           std::to_string(mix.size());
          EXPECT_EQ(batched.verify.ok(), plain.verify.ok()) << ctx;
          EXPECT_TRUE(batched.verify.ok()) << ctx << ": "
                                           << batched.verify.detail;
          EXPECT_EQ(batched.stats.rounds, plain.stats.rounds) << ctx;
          EXPECT_EQ(batched.planned_rounds, plain.planned_rounds) << ctx;
          EXPECT_LE(batched.stats.simulated_rounds,
                    plain.stats.simulated_rounds)
              << ctx;
        }
      }
    }
  }
}

// The batching win itself, pinned at a size small enough for a test: with
// f = 0 every robot confirms its map after the first window, so all later
// windows collapse to publish-and-sleep and the active metrics drop by an
// order of magnitude while verdict and charged rounds stay identical.
// Compiled-adversary mirror of the grid above: toggling ONLY
// ScenarioConfig::compiled_adversary must leave every observable result
// bit-identical — verdicts, rounds, planned bound, moves AND messages
// (the adversary's own traffic is part of the accounting contract) — while
// the compiled path simulates no more rounds than the coroutine one.
TEST(CompiledAdversary, ConformsToCoroutineOnMixedAdversaryGrid) {
  const std::vector<std::vector<ByzStrategy>> mixes = {
      {},  // scalar kMapLiar
      {ByzStrategy::kMapLiar, ByzStrategy::kCrash},
      {ByzStrategy::kFakeSettler, ByzStrategy::kIntentSpammer,
       ByzStrategy::kMapLiar},
  };
  for (const Algorithm alg :
       {Algorithm::kTournamentGathered, Algorithm::kTournamentArbitrary}) {
    for (const std::uint32_t f : {0u, 1u, 3u}) {
      for (const std::uint64_t seed : {1ULL, 5ULL, 23ULL}) {
        for (const auto& mix : mixes) {
          Rng rng(seed);
          const Graph g =
              shuffle_ports(make_connected_er(8, 0.45, rng), rng);
          ScenarioConfig cfg;
          cfg.algorithm = alg;
          cfg.num_byzantine = f;
          cfg.strategy = ByzStrategy::kMapLiar;
          cfg.strategies = mix;
          cfg.seed = seed;
          cfg.compiled_adversary = true;
          const ScenarioResult compiled = run_scenario(g, cfg);
          cfg.compiled_adversary = false;
          const ScenarioResult plain = run_scenario(g, cfg);
          const auto ctx = to_string(alg) + " f=" + std::to_string(f) +
                           " seed=" + std::to_string(seed) + " mix=" +
                           std::to_string(mix.size());
          EXPECT_EQ(compiled.verify.ok(), plain.verify.ok()) << ctx;
          EXPECT_TRUE(compiled.verify.ok()) << ctx << ": "
                                            << compiled.verify.detail;
          EXPECT_EQ(compiled.stats.rounds, plain.stats.rounds) << ctx;
          EXPECT_EQ(compiled.planned_rounds, plain.planned_rounds) << ctx;
          EXPECT_EQ(compiled.stats.moves, plain.stats.moves) << ctx;
          EXPECT_EQ(compiled.stats.messages, plain.stats.messages) << ctx;
          EXPECT_LE(compiled.stats.simulated_rounds,
                    plain.stats.simulated_rounds)
              << ctx;
        }
      }
    }
  }
}

// The adversarial-batching win itself: with an always-broadcasting
// squatter at f > 0, the coroutine adversary keeps the engine awake in
// every honest sleep window, while the compiled one parks and replays —
// the simulated-round count collapses with identical verdict and totals.
TEST(CompiledAdversary, CollapsesSimulatedRoundsUnderSquatter) {
  const Graph g = make_ring(12);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 2;
  cfg.strategy = ByzStrategy::kSquatter;
  cfg.seed = 3;
  cfg.compiled_adversary = true;
  const ScenarioResult compiled = run_scenario(g, cfg);
  cfg.compiled_adversary = false;
  const ScenarioResult plain = run_scenario(g, cfg);
  EXPECT_EQ(compiled.verify.ok(), plain.verify.ok());
  EXPECT_EQ(compiled.stats.rounds, plain.stats.rounds);
  EXPECT_EQ(compiled.stats.moves, plain.stats.moves);
  EXPECT_EQ(compiled.stats.messages, plain.stats.messages);
  EXPECT_LT(compiled.stats.simulated_rounds * 5,
            plain.stats.simulated_rounds);
}

TEST(TournamentBatched, CollapsesActiveRoundsWhenConfirmed) {
  const Graph g = make_ring(12);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 0;
  cfg.seed = 3;
  cfg.batched_pairing = true;
  const ScenarioResult batched = run_scenario(g, cfg);
  cfg.batched_pairing = false;
  const ScenarioResult plain = run_scenario(g, cfg);
  ASSERT_TRUE(batched.verify.ok()) << batched.verify.detail;
  ASSERT_TRUE(plain.verify.ok()) << plain.verify.detail;
  EXPECT_EQ(batched.stats.rounds, plain.stats.rounds);
  EXPECT_LT(batched.stats.simulated_rounds * 5, plain.stats.simulated_rounds);
  EXPECT_LT(batched.stats.moves, plain.stats.moves);
  EXPECT_LT(batched.stats.messages, plain.stats.messages);
}

}  // namespace
}  // namespace bdg::core
