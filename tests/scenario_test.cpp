// Scenario harness metadata + Theorem 1 (quotient algorithm) end-to-end.
#include "core/scenario.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/quotient.h"

namespace bdg::core {
namespace {

TEST(ScenarioMeta, ToleranceTable) {
  // Table 1's Byzantine-tolerance column.
  EXPECT_EQ(max_tolerated_f(Algorithm::kQuotient, 12), 11u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kTournamentArbitrary, 12), 5u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kTournamentGathered, 12), 5u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kThreeGroupGathered, 12), 3u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kStrongGathered, 12), 2u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kStrongArbitrary, 12), 2u);
  // sqrt(16) = 4, but the two-group honest-majority regime caps f at
  // ceil(8/2)-1 = 3 for n = 16 (the paper's O(sqrt n) claim is asymptotic;
  // at n >= 25 the sqrt term is the binding one).
  EXPECT_EQ(max_tolerated_f(Algorithm::kSqrtArbitrary, 16), 3u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kSqrtArbitrary, 25), 5u);
  EXPECT_EQ(max_tolerated_f(Algorithm::kSqrtArbitrary, 100), 10u);
}

TEST(ScenarioMeta, StartingConfigurations) {
  EXPECT_FALSE(starts_gathered(Algorithm::kQuotient));
  EXPECT_FALSE(starts_gathered(Algorithm::kTournamentArbitrary));
  EXPECT_FALSE(starts_gathered(Algorithm::kSqrtArbitrary));
  EXPECT_FALSE(starts_gathered(Algorithm::kStrongArbitrary));
  EXPECT_TRUE(starts_gathered(Algorithm::kTournamentGathered));
  EXPECT_TRUE(starts_gathered(Algorithm::kThreeGroupGathered));
  EXPECT_TRUE(starts_gathered(Algorithm::kStrongGathered));
}

TEST(ScenarioMeta, StrongHandling) {
  EXPECT_TRUE(handles_strong(Algorithm::kStrongGathered));
  EXPECT_TRUE(handles_strong(Algorithm::kStrongArbitrary));
  EXPECT_FALSE(handles_strong(Algorithm::kTournamentGathered));
}

Graph trivial_quotient_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Graph g = shuffle_ports(make_connected_er(n, 0.45, rng), rng);
    if (has_trivial_quotient(g)) return g;
  }
  throw std::runtime_error("no trivial-quotient graph found");
}

TEST(QuotientScenario, Row1MaxByzantineTolerance) {
  // Theorem 1: up to n-1 weak Byzantine robots on a trivial-quotient graph.
  const Graph g = trivial_quotient_graph(8, 17);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kQuotient;
  cfg.num_byzantine = static_cast<std::uint32_t>(g.n()) - 1;
  cfg.strategy = ByzStrategy::kFakeSettler;
  cfg.seed = 3;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(QuotientScenario, EveryWeakStrategyAtHalfByzantine) {
  const Graph g = trivial_quotient_graph(9, 23);
  for (const ByzStrategy s : weak_strategies()) {
    SCOPED_TRACE(to_string(s));
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kQuotient;
    cfg.num_byzantine = 4;
    cfg.strategy = s;
    cfg.seed = 11;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  }
}

TEST(QuotientScenario, RoundsDominatedByFindMapCharge) {
  const Graph g = trivial_quotient_graph(8, 29);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kQuotient;
  cfg.num_byzantine = 0;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok());
  const std::uint64_t n = g.n();
  EXPECT_GE(res.stats.rounds, n * n * n);  // Find-Map charge: n^3
  EXPECT_LE(res.stats.rounds, n * n * n + 20 * n + 64);
}

TEST(Scenario, RejectsAllByzantine) {
  const Graph g = make_ring(5);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongGathered;
  cfg.num_byzantine = 5;
  EXPECT_THROW((void)run_scenario(g, cfg), std::invalid_argument);
}

TEST(Scenario, DeterministicUnderSeed) {
  const Graph g = trivial_quotient_graph(7, 31);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kQuotient;
  cfg.num_byzantine = 3;
  cfg.strategy = ByzStrategy::kRandomWalker;
  cfg.seed = 77;
  const ScenarioResult a = run_scenario(g, cfg);
  const ScenarioResult b = run_scenario(g, cfg);
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.verify.ok(), b.verify.ok());
}

}  // namespace
}  // namespace bdg::core
