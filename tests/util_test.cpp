// Unit tests for the util module: deterministic RNG, statistics fits,
// table formatting.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace bdg {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 500 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.chance(5, 5));
    EXPECT_FALSE(rng.chance(0, 5));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child stream should not simply replay the parent's.
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(Stats, PowerFitRecoversExactLaw) {
  std::vector<double> x, y;
  for (double n : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    x.push_back(n);
    y.push_back(3.0 * n * n * n);  // 3 n^3
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
  EXPECT_NEAR(fit.constant, 3.0, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, PowerFitSkipsNonPositive) {
  const PowerFit fit =
      fit_power_law({0.0, 2.0, 4.0, 8.0}, {-1.0, 4.0, 16.0, 64.0});
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
}

TEST(Stats, PowerFitDegenerate) {
  EXPECT_EQ(fit_power_law({}, {}).exponent, 0.0);
  EXPECT_EQ(fit_power_law({1.0}, {1.0}).exponent, 0.0);
}

TEST(Stats, Summary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Table, AlignsColumnsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-3}), "-3");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace bdg
