// Unit tests for the util module: deterministic RNG, statistics fits,
// table formatting, and the flat-container layer (SmallVec, FlatMap/Set,
// pooled refcounted payloads) the engine hot paths run on.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_hash.h"
#include "util/ordered.h"
#include "util/pool.h"
#include "util/rng.h"
#include "util/smallvec.h"
#include "util/stats.h"
#include "util/table.h"

namespace bdg {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit over 500 draws
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(rng.chance(5, 5));
    EXPECT_FALSE(rng.chance(0, 5));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child stream should not simply replay the parent's.
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(Stats, PowerFitRecoversExactLaw) {
  std::vector<double> x, y;
  for (double n : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    x.push_back(n);
    y.push_back(3.0 * n * n * n);  // 3 n^3
  }
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
  EXPECT_NEAR(fit.constant, 3.0, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, PowerFitSkipsNonPositive) {
  const PowerFit fit =
      fit_power_law({0.0, 2.0, 4.0, 8.0}, {-1.0, 4.0, 16.0, 64.0});
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
}

TEST(Stats, PowerFitDegenerate) {
  EXPECT_EQ(fit_power_law({}, {}).exponent, 0.0);
  EXPECT_EQ(fit_power_law({1.0}, {1.0}).exponent, 0.0);
}

TEST(Stats, Summary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.118, 1e-3);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Table, AlignsColumnsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(std::int64_t{-3}), "-3");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

// ---- SmallVec -------------------------------------------------------------

/// Instrumented element: every construction and destruction is counted, so
/// lifetime bugs (the double-destruction class small-vector moves are
/// notorious for) show up as ctor/dtor imbalance instead of silent UB.
struct Counted {
  static int ctors;
  static int dtors;
  int v = 0;
  Counted() { ++ctors; }
  explicit Counted(int x) : v(x) { ++ctors; }
  Counted(const Counted& o) : v(o.v) { ++ctors; }
  Counted(Counted&& o) noexcept : v(o.v) { ++ctors; }
  Counted& operator=(const Counted&) = default;
  Counted& operator=(Counted&&) = default;
  ~Counted() { ++dtors; }
};
int Counted::ctors = 0;
int Counted::dtors = 0;

TEST(SmallVec, InlineThenSpill) {
  util::SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  v.push_back(4);  // fifth element forces the heap
  EXPECT_TRUE(v.spilled());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, ClearKeepsCapacitySpilledOrNot) {
  util::SmallVec<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), cap);  // hot-loop refill must not reallocate
}

TEST(SmallVec, ShrinkToInline) {
  util::SmallVec<int, 4> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  while (v.size() > 3) v.pop_back();
  ASSERT_TRUE(v.spilled());
  v.shrink_to_inline();
  EXPECT_FALSE(v.spilled());
  ASSERT_EQ(v.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, MoveOfInlineLeavesSourceEmptyNoDoubleDestroy) {
  Counted::ctors = Counted::dtors = 0;
  {
    util::SmallVec<Counted, 4> a;
    a.emplace_back(1);
    a.emplace_back(2);
    util::SmallVec<Counted, 4> b(std::move(a));
    EXPECT_EQ(a.size(), 0u);  // moved-from is a valid EMPTY vector
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0].v, 1);
    EXPECT_EQ(b[1].v, 2);
  }
  // The double-destructor regression pin: a buggy move that leaves the
  // source's size nonzero destroys the inline elements twice.
  EXPECT_EQ(Counted::ctors, Counted::dtors);
}

TEST(SmallVec, MoveOfSpilledTransfersBuffer) {
  Counted::ctors = Counted::dtors = 0;
  {
    util::SmallVec<Counted, 2> a;
    for (int i = 0; i < 8; ++i) a.emplace_back(i);
    const Counted* buf = a.data();
    util::SmallVec<Counted, 2> b;
    b = std::move(a);
    EXPECT_EQ(b.data(), buf);  // pointer steal, no element moves
    EXPECT_EQ(a.size(), 0u);
    EXPECT_FALSE(a.spilled());
    a.emplace_back(99);  // moved-from must be fully usable
    EXPECT_EQ(a[0].v, 99);
  }
  EXPECT_EQ(Counted::ctors, Counted::dtors);
}

TEST(SmallVec, SelfAssignIsANoop) {
  util::SmallVec<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back("gamma");  // spilled, heap-owning elements
  auto& self = v;
  v = self;
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[2], "gamma");
  v = std::move(self);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "beta");
}

TEST(SmallVec, SwapMixedInlineAndSpilled) {
  util::SmallVec<int, 4> inl, spl;
  inl.push_back(1);
  inl.push_back(2);
  for (int i = 0; i < 9; ++i) spl.push_back(10 + i);
  inl.swap(spl);
  ASSERT_EQ(inl.size(), 9u);
  EXPECT_EQ(inl[8], 18);
  ASSERT_EQ(spl.size(), 2u);
  EXPECT_EQ(spl[0], 1);
  EXPECT_EQ(spl[1], 2);
  EXPECT_FALSE(spl.spilled());
}

TEST(SmallVec, EraseAndInsertShiftCorrectly) {
  util::SmallVec<int, 4> v{1, 2, 3, 4, 5};
  v.erase(v.begin() + 1);
  EXPECT_EQ(v, (util::SmallVec<int, 4>{1, 3, 4, 5}));
  v.insert(v.begin() + 2, 9);
  EXPECT_EQ(v, (util::SmallVec<int, 4>{1, 3, 9, 4, 5}));
}

// ---- FlatMap / FlatSet ----------------------------------------------------

TEST(FlatHash, InsertFindEraseRoundTrip) {
  util::FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m.find(7), nullptr);
  m[7] = 70;
  m[8] = 80;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(*m.find(8), 80);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHash, TombstoneReuseKeepsTableSizeUnderChurn) {
  util::FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 6; ++k) m[k] = static_cast<int>(k);
  const std::size_t slots = m.slot_count();
  // Erase/insert churn at constant live size: tombstones must be reused,
  // not accumulated until the table doubles.
  for (std::uint64_t round = 0; round < 10'000; ++round) {
    EXPECT_TRUE(m.erase(round));
    m[round + 6] = static_cast<int>(round);
  }
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.slot_count(), slots);
}

TEST(FlatHash, RehashUnderLoadPreservesEntries) {
  util::FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 5'000; ++k) m[k * 2'654'435'761ULL] = k;
  EXPECT_EQ(m.size(), 5'000u);
  for (std::uint64_t k = 0; k < 5'000; ++k) {
    const auto* v = m.find(k * 2'654'435'761ULL);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatHash, IterationOrderIsDeterministicForEqualHistories) {
  const auto build = [] {
    util::FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 200; ++k) m[k * 977] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 200; k += 3) m.erase(k * 977);
    for (std::uint64_t k = 1'000; k < 1'100; ++k) m[k] = 1;
    return m;
  };
  std::vector<std::uint64_t> order_a, order_b;
  build().for_each([&](std::uint64_t k, int) { order_a.push_back(k); });
  build().for_each([&](std::uint64_t k, int) { order_b.push_back(k); });
  ASSERT_FALSE(order_a.empty());
  EXPECT_EQ(order_a, order_b);
}

TEST(FlatHash, VectorKeysHashByContents) {
  // CanonicalCode-style keys (vector<uint32_t>): used by the tournament
  // build-count table.
  util::FlatMap<std::vector<std::uint32_t>, int> m;
  m[std::vector<std::uint32_t>{1, 2, 3}] = 1;
  ++m[std::vector<std::uint32_t>{1, 2, 3}];
  m[std::vector<std::uint32_t>{1, 2, 4}] = 9;
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(std::vector<std::uint32_t>{1, 2, 3}), 2);
  EXPECT_TRUE(m.erase(std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_EQ(m.find(std::vector<std::uint32_t>{1, 2, 4}), nullptr);
}

TEST(FlatHash, SetInsertContainsClear) {
  util::FlatSet<std::uint64_t> s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.insert(5));
}

// ---- ordered.h snapshots (the sanctioned hash-iteration path) -------------

TEST(Ordered, SortedItemsIsKeySortedRegardlessOfHistory) {
  // Two maps with the same content built through DIFFERENT insert/erase
  // histories have different slot orders; the snapshot must erase that.
  util::FlatMap<std::uint64_t, int> a, b;
  for (std::uint64_t k = 0; k < 50; ++k) a[k * 977] = static_cast<int>(k);
  for (std::uint64_t k = 50; k-- > 0;) b[k * 977] = static_cast<int>(k);
  b[12345] = -1;
  b.erase(12345);
  const auto sa = util::sorted_items(a);
  const auto sb = util::sorted_items(b);
  ASSERT_EQ(sa.size(), 50u);
  EXPECT_EQ(sa, sb);
  for (std::size_t i = 1; i < sa.size(); ++i)
    EXPECT_LT(sa[i - 1].first, sa[i].first);
}

TEST(Ordered, OrderedKeysSortsFlatSet) {
  util::FlatSet<std::uint64_t> s;
  for (const std::uint64_t k : {9ull, 2ull, 7ull, 2ull, 1ull}) s.insert(k);
  const std::vector<std::uint64_t> keys = util::ordered_keys(s);
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 7, 9}));
}

TEST(Ordered, StdVariantsSortUnorderedContainers) {
  std::unordered_map<int, std::string> m;
  m[3] = "c";
  m[1] = "a";
  m[2] = "b";
  const auto items = util::sorted_items_std(m);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], (std::pair<int, std::string>{1, "a"}));
  EXPECT_EQ(items[2].second, "c");
  std::unordered_set<int> s{5, 3, 4};
  EXPECT_EQ(util::ordered_keys_std(s), (std::vector<int>{3, 4, 5}));
}

// ---- PayloadPool / PayloadRef ---------------------------------------------

TEST(PayloadPool, RefcountSharingAndContentEquality) {
  util::PayloadPool pool;
  const std::vector<std::int64_t> words{3, 1, 4};
  util::PayloadRef a = pool.make(words);
  EXPECT_TRUE(a.unique());
  util::PayloadRef b = a;  // refcount bump, same block
  EXPECT_FALSE(a.unique());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, words);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[1], 1);
}

TEST(PayloadPool, RecycleUniqueGoesToFreeListAndIsReused) {
  util::PayloadPool pool;
  util::PayloadRef a = pool.make(std::vector<std::int64_t>{42});
  EXPECT_EQ(pool.free_count(), 0u);
  pool.recycle(std::move(a));
  EXPECT_EQ(pool.free_count(), 1u);
  util::PayloadRef b = pool.make(std::vector<std::int64_t>{7, 8});
  EXPECT_EQ(pool.free_count(), 0u);  // the reclaimed block was handed out
  EXPECT_EQ(b, (std::vector<std::int64_t>{7, 8}));
}

TEST(PayloadPool, RecycleSharedJustDropsTheReference) {
  util::PayloadPool pool;
  util::PayloadRef a = pool.make(std::vector<std::int64_t>{1});
  util::PayloadRef keep = a;
  pool.recycle(std::move(a));  // keep still holds the block
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(keep, (std::vector<std::int64_t>{1}));
  EXPECT_TRUE(keep.unique());
}

TEST(PayloadPool, RefOutlivesPool) {
  // Blocks carry no pool backpointer: a reference copied out of an engine
  // stays valid after the engine (and its pool) is destroyed, and the
  // last release plain-deletes the block (ASan tier would catch a leak or
  // a dangling free).
  util::PayloadRef survivor;
  {
    util::PayloadPool pool;
    survivor = pool.make(std::vector<std::int64_t>{9, 9, 9});
    util::PayloadRef extra = pool.make(std::vector<std::int64_t>{1});
    pool.recycle(std::move(extra));  // leaves a block on the free list too
  }
  EXPECT_EQ(survivor, (std::vector<std::int64_t>{9, 9, 9}));
}

}  // namespace
}  // namespace bdg
