// Edge cases and adversarial corners of the in-engine map finding:
// quorum forgery with strong spoofers, Byzantine-majority agent groups,
// tight budgets, and window synchronization under every combination.
#include <gtest/gtest.h>

#include <memory>

#include "core/byzantine.h"
#include "explore/engine_map.h"
#include "graph/canonical.h"
#include "graph/generators.h"

namespace bdg::explore {
namespace {

using core::ByzStrategy;

sim::Proc agent_wrap(sim::Ctx c, MapFindConfig cfg,
                     std::shared_ptr<MapFindOutcome> out) {
  *out = co_await run_map_agent(c, cfg);
}

sim::Proc token_wrap(sim::Ctx c, MapFindConfig cfg,
                     std::shared_ptr<MapFindOutcome> out) {
  *out = co_await run_map_token(c, cfg);
}

struct GroupFixture {
  Graph g;
  MapFindConfig cfg;
  std::map<sim::RobotId, std::shared_ptr<MapFindOutcome>> outs;

  explicit GroupFixture(Graph graph, std::vector<sim::RobotId> agents,
                        std::vector<sim::RobotId> tokens,
                        std::uint32_t agent_q, std::uint32_t token_q)
      : g(std::move(graph)) {
    cfg.agents = std::move(agents);
    cfg.tokens = std::move(tokens);
    cfg.agent_quorum = agent_q;
    cfg.token_quorum = token_q;
    cfg.n = static_cast<std::uint32_t>(g.n());
    cfg.round_budget = default_map_window(cfg.n);
  }

  /// byz maps robot id -> strategy; everyone else is honest.
  void run(const std::map<sim::RobotId, ByzStrategy>& byz, bool strong) {
    sim::Engine eng(g);
    std::vector<sim::RobotId> all = cfg.agents;
    all.insert(all.end(), cfg.tokens.begin(), cfg.tokens.end());
    for (const sim::RobotId id : all) {
      const auto it = byz.find(id);
      if (it != byz.end()) {
        eng.add_robot(id,
                      strong ? sim::Faultiness::kStrongByzantine
                             : sim::Faultiness::kWeakByzantine,
                      0, core::make_byzantine_program(it->second, all, id));
        continue;
      }
      auto out = std::make_shared<MapFindOutcome>();
      outs[id] = out;
      const bool is_agent = std::find(cfg.agents.begin(), cfg.agents.end(),
                                      id) != cfg.agents.end();
      if (is_agent) {
        eng.add_robot(id, sim::Faultiness::kHonest, 0,
                      [this, out](sim::Ctx c) { return agent_wrap(c, cfg, out); });
      } else {
        eng.add_robot(id, sim::Faultiness::kHonest, 0,
                      [this, out](sim::Ctx c) { return token_wrap(c, cfg, out); });
      }
    }
    eng.run(cfg.round_budget + 8);
    // Window contract: every honest participant is back at the rally node.
    for (const auto& [id, out] : outs) EXPECT_EQ(eng.position_of(id), 0u);
  }

  void expect_correct(sim::RobotId id) {
    ASSERT_TRUE(outs.at(id)->code.has_value()) << "robot " << id;
    EXPECT_TRUE(rooted_isomorphic(graph_from_code(*outs.at(id)->code), 0, g, 0))
        << "robot " << id;
  }
};

TEST(EngineMapEdge, StrongSpooferBelowQuorumCannotForge) {
  // 4 agents (1 strong spoofer) + 4 tokens, quorum 2: the spoofer forges
  // agent IDs but is one physical source; honest agents and tokens still
  // produce the true map.
  Rng rng(6);
  GroupFixture fx(shuffle_ports(make_connected_er(7, 0.5, rng), rng),
                  {1, 2, 3, 4}, {5, 6, 7, 8}, 2, 2);
  fx.run({{4, ByzStrategy::kSpoofer}}, /*strong=*/true);
  for (const sim::RobotId id : {1u, 2u, 3u, 5u, 6u, 7u, 8u})
    fx.expect_correct(id);
}

TEST(EngineMapEdge, ByzantineMajorityAgentGroupPoisonsRun) {
  // 3 agents, 2 Byzantine liars with quorum 2: the run may produce garbage
  // or nothing — but honest participants must still be home on schedule
  // (asserted inside run()) and the honest agent must not crash.
  const Graph g = make_ring(6);
  GroupFixture fx(g, {1, 2, 3}, {4, 5, 6}, 2, 2);
  fx.run({{1, ByzStrategy::kMapLiar}, {2, ByzStrategy::kMapLiar}},
         /*strong=*/false);
  // No assertion on the code: with a lying quorum the token side may be
  // fed garbage. The contract is liveness + synchronization only.
  SUCCEED();
}

TEST(EngineMapEdge, TokensMajorityLyingStillSafeForAgent) {
  // 3 tokens, 2 liars, token quorum 2: presence lies can corrupt the map,
  // but the honest agent detects inconsistencies (degree/arrival checks)
  // or caps the node count and aborts rather than misbehaving.
  const Graph g = make_grid(2, 3);
  GroupFixture fx(g, {1, 2, 3}, {4, 5, 6}, 2, 2);
  fx.run({{4, ByzStrategy::kMapLiar}, {5, ByzStrategy::kMapLiar}},
         /*strong=*/false);
  SUCCEED();
}

TEST(EngineMapEdge, TinyBudgetAbortsButReturnsHome) {
  const Graph g = make_complete(6);
  const auto n = static_cast<std::uint32_t>(g.n());
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = n;
  cfg.round_budget = 24;  // nowhere near enough for K6
  auto aout = std::make_shared<MapFindOutcome>();
  auto tout = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return agent_wrap(c, cfg, aout); });
  eng.add_robot(2, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return token_wrap(c, cfg, tout); });
  const sim::RunStats st = eng.run(cfg.round_budget + 4);
  EXPECT_TRUE(aout->aborted);
  EXPECT_EQ(eng.position_of(1), 0u);
  EXPECT_EQ(eng.position_of(2), 0u);
  EXPECT_LE(st.rounds, cfg.round_budget + 2);
}

TEST(EngineMapEdge, WindowConsumesExactBudget) {
  const Graph g = make_ring(5);
  const auto n = static_cast<std::uint32_t>(g.n());
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = n;
  cfg.round_budget = default_map_window(n);
  auto aout = std::make_shared<MapFindOutcome>();
  auto tout = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return agent_wrap(c, cfg, aout); });
  eng.add_robot(2, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return token_wrap(c, cfg, tout); });
  const sim::RunStats st = eng.run(cfg.round_budget + 64);
  // Both robots consume the whole window, then terminate together.
  EXPECT_GE(st.rounds, cfg.round_budget);
  EXPECT_LE(st.rounds, cfg.round_budget + 1);
  EXPECT_TRUE(aout->code.has_value());
  EXPECT_TRUE(tout->code.has_value());
  EXPECT_EQ(*aout->code, *tout->code);  // token learned the identical map
}

TEST(EngineMapEdge, TokenLearnsAgentMapViaDoneBroadcast) {
  Rng rng(14);
  const Graph g = shuffle_ports(make_connected_er(6, 0.5, rng), rng);
  GroupFixture fx(g, {1, 2}, {3, 4}, 1, 1);
  fx.run({}, false);
  for (const sim::RobotId id : {1u, 2u, 3u, 4u}) fx.expect_correct(id);
  EXPECT_EQ(*fx.outs.at(1)->code, *fx.outs.at(3)->code);
}

TEST(EngineMapEdge, ActiveRoundsReportedBelowBudget) {
  const Graph g = make_grid(2, 3);
  const auto res = build_map_with_token(g, 2);
  EXPECT_GT(res.active_rounds, 0u);
  EXPECT_LT(core::Round(res.active_rounds) * 2,
            default_map_window(static_cast<std::uint32_t>(g.n())));
}

}  // namespace
}  // namespace bdg::explore
