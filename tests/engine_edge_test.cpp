// Engine edge semantics: sub-round budget exhaustion, message drops at
// round boundaries, livelock guards, and multi-call run() behavior.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sim/engine.h"

namespace bdg::sim {
namespace {

Proc late_broadcaster(Ctx ctx, std::uint32_t at_subround) {
  while (ctx.subround() < at_subround) co_await ctx.next_subround();
  ctx.broadcast(9, {1});
  co_await ctx.end_round(std::nullopt);
  co_await ctx.end_round(std::nullopt);
}

Proc every_subround_listener(Ctx ctx, std::vector<Msg>* heard,
                             std::uint32_t subs) {
  for (std::uint32_t round = 0; round < 2; ++round) {
    for (std::uint32_t s = 0; s + 1 < subs; ++s) {
      co_await ctx.next_subround();
      for (const Msg& m : ctx.inbox()) heard->push_back(m);
    }
    co_await ctx.end_round(std::nullopt);
  }
}

TEST(EngineEdge, BroadcastInFinalSubroundIsDropped) {
  // Messages sent in the last sub-round have no delivery slot: the paper's
  // sub-round device always leaves a listening slot after a speaking one,
  // and the engine documents the drop.
  const Graph g = make_path(2);
  EngineConfig cfg;
  cfg.subrounds = 4;
  Engine eng(g, cfg);
  std::vector<Msg> heard;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return late_broadcaster(c, 3); });  // last sub
  eng.add_robot(2, Faultiness::kHonest, 0,
                [&](Ctx c) { return every_subround_listener(c, &heard, 4); });
  eng.run(8);
  EXPECT_TRUE(heard.empty());
}

Proc pooled_broadcaster(Ctx ctx) {
  // Same payload through both paths across two rounds: receivers must not
  // be able to tell broadcast_pooled (arena-backed) from broadcast.
  static constexpr std::int64_t kPayload[] = {7, -3, 42};
  for (int round = 0; round < 2; ++round) {
    ctx.broadcast(11, {7, -3, 42});
    ctx.broadcast_pooled(12, kPayload);
    co_await ctx.end_round(std::nullopt);
  }
}

TEST(EngineEdge, PooledBroadcastDeliversIdenticalPayloads) {
  const Graph g = make_path(2);
  EngineConfig cfg;
  cfg.subrounds = 4;
  Engine eng(g, cfg);
  std::vector<Msg> heard;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return pooled_broadcaster(c); });
  eng.add_robot(2, Faultiness::kHonest, 0,
                [&](Ctx c) { return every_subround_listener(c, &heard, 4); });
  eng.run(8);
  ASSERT_EQ(heard.size(), 4u);  // 2 rounds x 2 kinds
  for (const Msg& m : heard) {
    EXPECT_TRUE(m.kind == 11 || m.kind == 12);
    EXPECT_EQ(m.data, (std::vector<std::int64_t>{7, -3, 42}));
  }
}

TEST(EngineEdge, BroadcastBeforeFinalSubroundIsDelivered) {
  const Graph g = make_path(2);
  EngineConfig cfg;
  cfg.subrounds = 4;
  Engine eng(g, cfg);
  std::vector<Msg> heard;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return late_broadcaster(c, 2); });
  eng.add_robot(2, Faultiness::kHonest, 0,
                [&](Ctx c) { return every_subround_listener(c, &heard, 4); });
  eng.run(8);
  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0].kind, 9u);
}

Proc subround_hog(Ctx ctx) {
  for (;;) co_await ctx.next_subround();  // never ends the round voluntarily
}

TEST(EngineEdge, SubroundBudgetForcesRoundEnd) {
  // A robot that keeps awaiting sub-rounds is carried to the next round by
  // the engine when the budget runs out — the round counter still advances.
  const Graph g = make_path(2);
  EngineConfig cfg;
  cfg.subrounds = 3;
  cfg.max_resumes = 100'000;
  Engine eng(g, cfg);
  eng.add_robot(1, Faultiness::kWeakByzantine, 0,
                [](Ctx c) { return subround_hog(c); });
  Proc (*two_rounds)(Ctx) = [](Ctx c) -> Proc {
    co_await c.end_round(std::nullopt);
    co_await c.end_round(std::nullopt);
  };
  eng.add_robot(2, Faultiness::kHonest, 1, two_rounds);
  const RunStats st = eng.run(10);
  EXPECT_TRUE(st.all_honest_done);
  EXPECT_GE(st.rounds, 2u);
}

Proc infinite_spinner(Ctx ctx) {
  for (;;) co_await ctx.end_round(std::nullopt);
}

TEST(EngineEdge, ResumeBudgetGuardsLivelock) {
  const Graph g = make_path(2);
  EngineConfig cfg;
  cfg.max_resumes = 50;
  Engine eng(g, cfg);
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return infinite_spinner(c); });
  EXPECT_THROW(eng.run(1'000'000), std::runtime_error);
}

TEST(EngineEdge, RunStopsAtMaxRounds) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return infinite_spinner(c); });
  const RunStats st = eng.run(25);
  EXPECT_EQ(st.rounds, 25u);
  EXPECT_FALSE(st.all_honest_done);
}

TEST(EngineEdge, SecondRunContinuesFromWhereItStopped) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return infinite_spinner(c); });
  (void)eng.run(10);
  const RunStats st2 = eng.run(20);
  EXPECT_EQ(st2.rounds, 20u);
  EXPECT_EQ(eng.current_round(), 20u);
}

TEST(EngineEdge, AddRobotAfterRunThrows) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return infinite_spinner(c); });
  (void)eng.run(2);
  EXPECT_THROW(eng.add_robot(2, Faultiness::kHonest, 0,
                             [](Ctx c) { return infinite_spinner(c); }),
               std::logic_error);
}

TEST(EngineEdge, EmptyGraphRejected) {
  const Graph g;
  EXPECT_THROW(Engine eng(g), std::invalid_argument);
}

TEST(EngineEdge, PositionOfUnknownIdThrows) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return infinite_spinner(c); });
  EXPECT_THROW((void)eng.position_of(99), std::invalid_argument);
}

Proc self_hearing(Ctx ctx, bool* heard_self) {
  ctx.broadcast(5);
  co_await ctx.next_subround();
  for (const Msg& m : ctx.inbox())
    if (m.claimed == ctx.self()) *heard_self = true;
  co_await ctx.end_round(std::nullopt);
}

TEST(EngineEdge, SenderHearsItsOwnBroadcast) {
  // Co-located delivery includes the sender (the paper's robots observe
  // all messages at their node, including their own status beacons).
  const Graph g = make_path(2);
  Engine eng(g);
  bool heard_self = false;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return self_hearing(c, &heard_self); });
  eng.run(5);
  EXPECT_TRUE(heard_self);
}

}  // namespace
}  // namespace bdg::sim
