// parallel_for_index: coverage, exception propagation, and determinism of
// parallel scenario sweeps (each point owns its engine).
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/scenario.h"
#include "graph/generators.h"

namespace bdg {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_index(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ZeroCountIsNoop) {
  parallel_for_index(0, [](std::size_t) { FAIL(); });
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for_index(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
                     /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for_index(64,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         },
                         4),
      std::runtime_error);
}

TEST(Parallel, ScenarioSweepMatchesSerialResults) {
  // Bit-reproducibility across threading: the same (seed, point) grid
  // computed serially and in parallel must agree move-for-move.
  Rng rng(6);
  const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  auto run_point = [&](std::size_t i) {
    core::ScenarioConfig cfg;
    cfg.algorithm = core::Algorithm::kThreeGroupGathered;
    cfg.num_byzantine = static_cast<std::uint32_t>(i % 3);
    cfg.strategy = core::ByzStrategy::kFakeSettler;
    cfg.seed = 100 + i;
    return core::run_scenario(g, cfg);
  };
  constexpr std::size_t kPoints = 6;
  std::vector<std::uint64_t> serial(kPoints), parallel(kPoints);
  std::vector<bool> serial_ok(kPoints), parallel_ok(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    const auto r = run_point(i);
    serial[i] = r.stats.moves;
    serial_ok[i] = r.verify.ok();
  }
  parallel_for_index(kPoints, [&](std::size_t i) {
    const auto r = run_point(i);
    parallel[i] = r.stats.moves;
    parallel_ok[i] = r.verify.ok();
  });
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial_ok, parallel_ok);
}

}  // namespace
}  // namespace bdg
