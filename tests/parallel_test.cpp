// parallel_for_index: coverage, exception propagation, and determinism of
// parallel scenario sweeps (each point owns its engine).
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "core/scenario.h"
#include "graph/generators.h"

namespace bdg {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for_index(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ZeroCountIsNoop) {
  parallel_for_index(0, [](std::size_t) { FAIL(); });
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for_index(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
                     /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for_index(64,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                         },
                         4),
      std::runtime_error);
}

// Cancellation-responsiveness contract (see util/parallel.h): `cancelled`
// is polled at claim time, so once a cancel is observed no further bodies
// start — at most one in-flight body per worker can still complete. This
// is what bounds the sweep runner's abort latency by a single point, not
// the remaining grid.
TEST(Parallel, CancelMidSweepStopsBeforeNextIndex) {
  constexpr unsigned kThreads = 4;
  std::atomic<bool> cancel{false};
  std::atomic<int> started{0};
  parallel_for_index(
      100000,
      [&](std::size_t) {
        ++started;
        cancel.store(true);  // the very first body cancels the sweep
      },
      kThreads, [&] { return cancel.load(); });
  EXPECT_GE(started.load(), 1);
  EXPECT_LE(started.load(), static_cast<int>(kThreads))
      << "bodies claimed after the cancel was observable";
}

// All spawned threads are joined before parallel_for_index returns on the
// cancellation path: captured state is safe to touch immediately after.
TEST(Parallel, CancelJoinsAllThreadsBeforeReturning) {
  std::atomic<bool> cancel{false};
  std::atomic<int> in_flight{0};
  parallel_for_index(
      10000,
      [&](std::size_t) {
        ++in_flight;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        cancel.store(true);
        --in_flight;
      },
      4, [&] { return cancel.load(); });
  EXPECT_EQ(in_flight.load(), 0)
      << "a body was still running after parallel_for_index returned";
}

// ... and on the exception path: the first exception is rethrown only
// after every worker joined, so no body outlives the call.
TEST(Parallel, ExceptionJoinsAllThreadsBeforeRethrow) {
  std::atomic<int> in_flight{0};
  bool threw = false;
  try {
    parallel_for_index(
        256,
        [&](std::size_t i) {
          ++in_flight;
          if (i == 0) {
            --in_flight;
            throw std::runtime_error("boom");
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          --in_flight;
        },
        8);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(in_flight.load(), 0)
      << "a body was still running when the exception surfaced";
}

TEST(Parallel, ScenarioSweepMatchesSerialResults) {
  // Bit-reproducibility across threading: the same (seed, point) grid
  // computed serially and in parallel must agree move-for-move.
  Rng rng(6);
  const Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  auto run_point = [&](std::size_t i) {
    core::ScenarioConfig cfg;
    cfg.algorithm = core::Algorithm::kThreeGroupGathered;
    cfg.num_byzantine = static_cast<std::uint32_t>(i % 3);
    cfg.strategy = core::ByzStrategy::kFakeSettler;
    cfg.seed = 100 + i;
    return core::run_scenario(g, cfg);
  };
  constexpr std::size_t kPoints = 6;
  std::vector<std::uint64_t> serial(kPoints), parallel(kPoints);
  std::vector<bool> serial_ok(kPoints), parallel_ok(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    const auto r = run_point(i);
    serial[i] = r.stats.moves;
    serial_ok[i] = r.verify.ok();
  }
  parallel_for_index(kPoints, [&](std::size_t i) {
    const auto r = run_point(i);
    parallel[i] = r.stats.moves;
    parallel_ok[i] = r.verify.ok();
  });
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial_ok, parallel_ok);
}

}  // namespace
}  // namespace bdg
