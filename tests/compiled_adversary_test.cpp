// Sweep-level conformance tier for adversary compilation: toggling ONLY
// SweepSpec::compiled_adversary across a grid of every strategy x
// {tournament, group, crash-real} x {single-wave k = n, multi-wave k > n}
// must leave every per-point result bit-identical — verdict, rounds,
// planned_rounds, derived_seed, moves, messages — because the compiled
// interpreter replays the exact per-round semantics of the strategy
// coroutines as range effects. Runs under the tsan preset job in CI, so
// the ambient-parking engine paths the compiled adversary exercises are
// also raced against the parallel sweep runner.
#include <gtest/gtest.h>

#include <string>

#include "core/byzantine.h"
#include "core/scenario.h"
#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;
using core::ByzStrategy;

/// Run `spec` with the compiled adversary on and off and require every
/// point to match on all observable fields (seconds excluded: the specs
/// run with measure_seconds off, so reports are pure functions of the
/// spec and any drift is a conformance failure, not noise).
void expect_compiled_conformance(SweepSpec spec) {
  spec.measure_seconds = false;
  spec.compiled_adversary = true;
  const SweepResult compiled = run_sweep(spec);
  spec.compiled_adversary = false;
  const SweepResult plain = run_sweep(spec);
  ASSERT_EQ(compiled.points.size(), plain.points.size());
  std::size_t ran = 0;
  for (std::size_t i = 0; i < compiled.points.size(); ++i) {
    const PointResult& c = compiled.points[i];
    const PointResult& p = plain.points[i];
    SCOPED_TRACE(core::to_string(c.point.algorithm) + " on " +
                 c.point.family + " n=" + std::to_string(c.point.n) +
                 " k=" + std::to_string(c.point.k) +
                 " f=" + std::to_string(c.point.f) + " strategy=" +
                 core::to_string(c.point.strategy));
    EXPECT_EQ(c.derived_seed, p.derived_seed);
    EXPECT_EQ(c.skipped, p.skipped);
    if (c.skipped || p.skipped) continue;
    ++ran;
    EXPECT_EQ(c.ok, p.ok) << c.detail << " vs " << p.detail;
    EXPECT_EQ(c.stats.rounds, p.stats.rounds);
    EXPECT_EQ(c.planned_rounds, p.planned_rounds);
    EXPECT_EQ(c.stats.moves, p.stats.moves);
    EXPECT_EQ(c.stats.messages, p.stats.messages);
    EXPECT_LE(c.stats.simulated_rounds, p.stats.simulated_rounds);
  }
  EXPECT_GT(ran, 0u) << "sweep skipped every point";
}

// Every weak strategy against the tournament and group algorithms at
// their claimed tolerance (one strategy axis per sweep via the scalar
// strategy knob), single wave.
TEST(CompiledAdversarySweep, WeakStrategiesSingleWave) {
  for (const ByzStrategy s : core::weak_strategies()) {
    SweepSpec spec;
    spec.algorithms = {Algorithm::kTournamentGathered,
                       Algorithm::kThreeGroupGathered};
    spec.families = {"er"};
    spec.sizes = {8};
    spec.strategy = s;
    spec.strategy_follows_algorithm = false;
    SCOPED_TRACE("strategy=" + core::to_string(s));
    expect_compiled_conformance(spec);
  }
}

// The strong spoofer against its algorithm, and crash faults against the
// REAL (fully simulated) gathering extension — the two per-algorithm
// default adversaries the scalar sweeps above don't reach.
TEST(CompiledAdversarySweep, SpooferAndCrashDefaults) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kStrongGathered,
                     Algorithm::kCrashRealGathering};
  spec.families = {"er", "ring"};
  spec.sizes = {8};
  expect_compiled_conformance(spec);
}

// Multi-wave k > n points: the Byzantine schedule gains charged windows
// from every later wave, so the compiled interpreter's ChargeGate jumps
// and bulk replays are exercised against the coroutine's sleep pattern.
TEST(CompiledAdversarySweep, MultiWaveChargedWindows) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {6};
  spec.robot_counts = {6, 13};  // single wave and ceil(13/6) = 3 waves
  spec.strategy = ByzStrategy::kSquatter;
  spec.strategy_follows_algorithm = false;
  expect_compiled_conformance(spec);
}

// Heterogeneous mixes (including crash members, which fall back to the
// coroutine program inside an otherwise compiled scenario).
TEST(CompiledAdversarySweep, MixedAdversaries) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kTournamentGathered};
  spec.families = {"er", "grid"};
  spec.sizes = {8};
  spec.strategy_mixes = {
      {ByzStrategy::kSquatter, ByzStrategy::kCrash},
      {ByzStrategy::kMapLiar, ByzStrategy::kIntentSpammer,
       ByzStrategy::kFakeSettler},
  };
  spec.strategy_follows_algorithm = false;
  expect_compiled_conformance(spec);
}

// The compiled_adversary knob is part of the checkpoint contract: results
// recorded under one execution path must not be silently imported by a
// sweep using the other (even though the results are bit-identical, the
// provenance matters for perf forensics).
TEST(CompiledAdversarySweep, FlagFoldsIntoSpecFingerprint) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kTournamentGathered};
  spec.families = {"er"};
  spec.sizes = {8};
  const std::uint64_t on = spec_fingerprint(spec);
  spec.compiled_adversary = false;
  EXPECT_NE(on, spec_fingerprint(spec));
}

}  // namespace
}  // namespace bdg::run
