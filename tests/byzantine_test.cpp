// Adversary library mechanics: each strategy produces the messages and
// movement it promises, the spoofer requires a strong robot, wake rounds
// delay activity, and behaviors are deterministic per seed.
#include "core/byzantine.h"

#include <gtest/gtest.h>

#include "core/protocol_msgs.h"
#include "explore/engine_map.h"
#include "graph/generators.h"
#include "sim/trace.h"

namespace bdg::core {
namespace {

/// Honest listener that records everything it hears for `rounds` rounds.
sim::Proc listen_robot(sim::Ctx ctx, std::uint64_t rounds,
                       std::vector<sim::Msg>* heard) {
  for (std::uint64_t r = 0; r < rounds; ++r) {
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox()) heard->push_back(m);
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox()) heard->push_back(m);
    co_await ctx.end_round(std::nullopt);
  }
}

struct Heard {
  std::vector<sim::Msg> msgs;
  sim::RunStats stats;
  NodeId byz_end = kNoNode;
};

Heard observe(ByzStrategy strategy, sim::Faultiness fault,
              std::uint64_t rounds = 12, std::uint64_t wake = 0) {
  const Graph g = make_complete(4);  // byz random walks stay observable
  sim::Engine eng(g);
  Heard h;
  eng.add_robot(5, fault, 0,
                make_byzantine_program(strategy, {5, 9}, 42, wake));
  eng.add_robot(9, sim::Faultiness::kHonest, 0,
                [&](sim::Ctx c) { return listen_robot(c, rounds, &h.msgs); });
  h.stats = eng.run(rounds + 4);
  h.byz_end = eng.position_of(5);
  return h;
}

std::size_t count_kind(const Heard& h, std::uint32_t kind) {
  std::size_t c = 0;
  for (const auto& m : h.msgs) c += (m.kind == kind);
  return c;
}

TEST(Byzantine, CrashIsSilent) {
  const Heard h = observe(ByzStrategy::kCrash, sim::Faultiness::kWeakByzantine);
  std::size_t from_byz = 0;
  for (const auto& m : h.msgs) from_byz += (m.claimed == 5);
  EXPECT_EQ(from_byz, 0u);
  EXPECT_EQ(h.byz_end, 0u);
}

TEST(Byzantine, SquatterClaimsSettledAndStays) {
  const Heard h =
      observe(ByzStrategy::kSquatter, sim::Faultiness::kWeakByzantine);
  EXPECT_GT(count_kind(h, kMsgStatus), 5u);
  EXPECT_EQ(h.byz_end, 0u);
}

TEST(Byzantine, SilentSettlerStopsTransmitting) {
  const Heard h =
      observe(ByzStrategy::kSilentSettler, sim::Faultiness::kWeakByzantine);
  // Exactly 3 settled beacons, then silence.
  EXPECT_EQ(count_kind(h, kMsgStatus), 3u);
}

TEST(Byzantine, IntentSpammerAnnouncesEverything) {
  const Heard h =
      observe(ByzStrategy::kIntentSpammer, sim::Faultiness::kWeakByzantine);
  EXPECT_GT(count_kind(h, kMsgIntent), 0u);
  EXPECT_GT(count_kind(h, kMsgSettled), 0u);
}

TEST(Byzantine, MapLiarFloodsMapChannels) {
  const Heard h =
      observe(ByzStrategy::kMapLiar, sim::Faultiness::kWeakByzantine);
  EXPECT_GT(count_kind(h, explore::kMsgTokenHere), 0u);
  EXPECT_GT(count_kind(h, explore::kMsgInstr), 0u);
  EXPECT_GT(count_kind(h, explore::kMsgMapCode), 0u);
}

TEST(Byzantine, SpooferForgesPeerIds) {
  const Heard h =
      observe(ByzStrategy::kSpoofer, sim::Faultiness::kStrongByzantine);
  bool forged = false;
  for (const auto& m : h.msgs)
    if (m.claimed == 9 && m.source == 0) forged = true;  // robot 5 is idx 0
  EXPECT_TRUE(forged);
}

TEST(Byzantine, SpooferRequiresStrongRobot) {
  // A weak robot running the spoofer program hits the engine's transport
  // enforcement and the run aborts.
  EXPECT_THROW(observe(ByzStrategy::kSpoofer, sim::Faultiness::kWeakByzantine),
               std::logic_error);
}

TEST(Byzantine, WakeRoundDelaysActivity) {
  const Heard active = observe(ByzStrategy::kSquatter,
                               sim::Faultiness::kWeakByzantine, 12, 0);
  const Heard delayed = observe(ByzStrategy::kSquatter,
                                sim::Faultiness::kWeakByzantine, 12, 8);
  EXPECT_GT(count_kind(active, kMsgStatus), count_kind(delayed, kMsgStatus));
  EXPECT_GT(count_kind(delayed, kMsgStatus), 0u);  // wakes before the end
}

TEST(Byzantine, DeterministicPerSeed) {
  auto run = [] {
    const Graph g = make_complete(4);
    sim::Engine eng(g);
    eng.add_robot(5, sim::Faultiness::kWeakByzantine, 0,
                  make_byzantine_program(ByzStrategy::kRandomWalker, {5}, 7));
    std::vector<sim::Msg> heard;
    eng.add_robot(9, sim::Faultiness::kHonest, 0,
                  [&](sim::Ctx c) { return listen_robot(c, 10, &heard); });
    eng.run(14);
    return eng.position_of(5);
  };
  EXPECT_EQ(run(), run());
}

TEST(Byzantine, StrategyNamesAreUniqueAndComplete) {
  std::set<std::string> names;
  for (const auto s : weak_strategies()) names.insert(to_string(s));
  EXPECT_EQ(names.size(), weak_strategies().size());
  EXPECT_EQ(to_string(ByzStrategy::kSpoofer), "spoofer");
  // The spoofer is deliberately NOT in the weak list.
  for (const auto s : weak_strategies()) EXPECT_NE(s, ByzStrategy::kSpoofer);
}

}  // namespace
}  // namespace bdg::core
