// Adversary library mechanics: each strategy produces the messages and
// movement it promises, the spoofer requires a strong robot, wake rounds
// delay activity, and behaviors are deterministic per seed.
#include "core/byzantine.h"

#include <gtest/gtest.h>

#include "core/protocol_msgs.h"
#include "explore/engine_map.h"
#include "graph/generators.h"
#include "sim/trace.h"

namespace bdg::core {
namespace {

/// Honest listener that records everything it hears for `rounds` rounds.
sim::Proc listen_robot(sim::Ctx ctx, std::uint64_t rounds,
                       std::vector<sim::Msg>* heard) {
  for (std::uint64_t r = 0; r < rounds; ++r) {
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox()) heard->push_back(m);
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox()) heard->push_back(m);
    co_await ctx.end_round(std::nullopt);
  }
}

struct Heard {
  std::vector<sim::Msg> msgs;
  sim::RunStats stats;
  NodeId byz_end = kNoNode;
};

Heard observe(ByzStrategy strategy, sim::Faultiness fault,
              std::uint64_t rounds = 12, std::uint64_t wake = 0) {
  const Graph g = make_complete(4);  // byz random walks stay observable
  sim::Engine eng(g);
  Heard h;
  eng.add_robot(5, fault, 0,
                make_byzantine_program(strategy, {5, 9}, 42, wake));
  eng.add_robot(9, sim::Faultiness::kHonest, 0,
                [&](sim::Ctx c) { return listen_robot(c, rounds, &h.msgs); });
  h.stats = eng.run(rounds + 4);
  h.byz_end = eng.position_of(5);
  return h;
}

std::size_t count_kind(const Heard& h, std::uint32_t kind) {
  std::size_t c = 0;
  for (const auto& m : h.msgs) c += (m.kind == kind);
  return c;
}

TEST(Byzantine, CrashIsSilent) {
  const Heard h = observe(ByzStrategy::kCrash, sim::Faultiness::kWeakByzantine);
  std::size_t from_byz = 0;
  for (const auto& m : h.msgs) from_byz += (m.claimed == 5);
  EXPECT_EQ(from_byz, 0u);
  EXPECT_EQ(h.byz_end, 0u);
}

TEST(Byzantine, SquatterClaimsSettledAndStays) {
  const Heard h =
      observe(ByzStrategy::kSquatter, sim::Faultiness::kWeakByzantine);
  EXPECT_GT(count_kind(h, kMsgStatus), 5u);
  EXPECT_EQ(h.byz_end, 0u);
}

TEST(Byzantine, SilentSettlerStopsTransmitting) {
  const Heard h =
      observe(ByzStrategy::kSilentSettler, sim::Faultiness::kWeakByzantine);
  // Exactly 3 settled beacons, then silence.
  EXPECT_EQ(count_kind(h, kMsgStatus), 3u);
}

TEST(Byzantine, IntentSpammerAnnouncesEverything) {
  const Heard h =
      observe(ByzStrategy::kIntentSpammer, sim::Faultiness::kWeakByzantine);
  EXPECT_GT(count_kind(h, kMsgIntent), 0u);
  EXPECT_GT(count_kind(h, kMsgSettled), 0u);
}

TEST(Byzantine, MapLiarFloodsMapChannels) {
  const Heard h =
      observe(ByzStrategy::kMapLiar, sim::Faultiness::kWeakByzantine);
  EXPECT_GT(count_kind(h, explore::kMsgTokenHere), 0u);
  EXPECT_GT(count_kind(h, explore::kMsgInstr), 0u);
  EXPECT_GT(count_kind(h, explore::kMsgMapCode), 0u);
}

TEST(Byzantine, SpooferForgesPeerIds) {
  const Heard h =
      observe(ByzStrategy::kSpoofer, sim::Faultiness::kStrongByzantine);
  bool forged = false;
  for (const auto& m : h.msgs)
    if (m.claimed == 9 && m.source == 0) forged = true;  // robot 5 is idx 0
  EXPECT_TRUE(forged);
}

TEST(Byzantine, SpooferRequiresStrongRobot) {
  // A weak robot running the spoofer program hits the engine's transport
  // enforcement and the run aborts.
  EXPECT_THROW(observe(ByzStrategy::kSpoofer, sim::Faultiness::kWeakByzantine),
               std::logic_error);
}

TEST(Byzantine, WakeRoundDelaysActivity) {
  const Heard active = observe(ByzStrategy::kSquatter,
                               sim::Faultiness::kWeakByzantine, 12, 0);
  const Heard delayed = observe(ByzStrategy::kSquatter,
                                sim::Faultiness::kWeakByzantine, 12, 8);
  EXPECT_GT(count_kind(active, kMsgStatus), count_kind(delayed, kMsgStatus));
  EXPECT_GT(count_kind(delayed, kMsgStatus), 0u);  // wakes before the end
}

TEST(Byzantine, DeterministicPerSeed) {
  auto run = [] {
    const Graph g = make_complete(4);
    sim::Engine eng(g);
    eng.add_robot(5, sim::Faultiness::kWeakByzantine, 0,
                  make_byzantine_program(ByzStrategy::kRandomWalker, {5}, 7));
    std::vector<sim::Msg> heard;
    eng.add_robot(9, sim::Faultiness::kHonest, 0,
                  [&](sim::Ctx c) { return listen_robot(c, 10, &heard); });
    eng.run(14);
    return eng.position_of(5);
  };
  EXPECT_EQ(run(), run());
}

TEST(Byzantine, StrategyNamesRoundTripExhaustively) {
  std::vector<ByzStrategy> all = weak_strategies();
  all.push_back(ByzStrategy::kSpoofer);
  for (const auto s : all) {
    const auto back = strategy_from_string(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s);
  }
}

TEST(Byzantine, ToStringThrowsOnCorruptEnumValue) {
  // A checkpoint record holding a corrupted/future strategy value must fail
  // loudly at serialization time, not round-trip through "unknown".
  EXPECT_THROW(to_string(static_cast<ByzStrategy>(255)), std::invalid_argument);
  EXPECT_THROW(to_string(static_cast<ByzStrategy>(-1)), std::invalid_argument);
}

TEST(Byzantine, SpooferOnWeakRobotThrowsBeforeWake) {
  // Regression: the faultiness check used to sit after sleep_rounds(wake),
  // so a weak robot handed the spoofer with a huge charged prefix ran
  // silently for the whole experiment instead of aborting at round 0.
  const Graph g = make_complete(4);
  sim::Engine eng(g);
  eng.add_robot(5, sim::Faultiness::kWeakByzantine, 0,
                make_byzantine_program(ByzStrategy::kSpoofer, {5, 9}, 42,
                                       std::uint64_t{1} << 40));
  std::vector<sim::Msg> heard;
  eng.add_robot(9, sim::Faultiness::kHonest, 0,
                [&](sim::Ctx c) { return listen_robot(c, 4, &heard); });
  EXPECT_THROW(eng.run(8), std::logic_error);
}

TEST(Byzantine, CompiledSpooferOnWeakRobotThrowsBeforeWake) {
  const Graph g = make_complete(4);
  sim::Engine eng(g);
  ByzSchedule sched{std::uint64_t{1} << 40};
  eng.add_robot(5, sim::Faultiness::kWeakByzantine, 0,
                make_compiled_byzantine_program(ByzStrategy::kSpoofer, {5, 9},
                                                42, std::move(sched)));
  std::vector<sim::Msg> heard;
  eng.add_robot(9, sim::Faultiness::kHonest, 0,
                [&](sim::Ctx c) { return listen_robot(c, 4, &heard); });
  EXPECT_THROW(eng.run(8), std::logic_error);
}

TEST(Byzantine, EmptyChargedWindowIsRejected) {
  // ChargeGate only skips an [a, a) window by accident of its >= compare;
  // schedule validation pins the invariant at construction instead.
  ByzSchedule sched{2};
  sched.charged = {{5, 5}};
  EXPECT_THROW(
      make_byzantine_program(ByzStrategy::kSquatter, {5}, 1, sched),
      std::invalid_argument);
  EXPECT_THROW(
      make_compiled_byzantine_program(ByzStrategy::kSquatter, {5}, 1, sched),
      std::invalid_argument);
  // Unsorted / overlapping / pre-wake windows are rejected too.
  ByzSchedule bad{4};
  bad.charged = {{2, 6}};  // starts before wake
  EXPECT_THROW(make_byzantine_program(ByzStrategy::kSquatter, {5}, 1, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Compiled-vs-coroutine conformance: same messages (kind, claimed, source,
// payload, order), same final position, same move/message/round totals —
// live (listener awake every round) and across engine fast-forwards
// (listener asleep, forcing the compiled program to replay the gap).
// ---------------------------------------------------------------------------

sim::Proc listen_after(sim::Ctx ctx, std::uint64_t sleep_first,
                       std::uint64_t rounds, std::vector<sim::Msg>* heard) {
  if (sleep_first != 0) co_await ctx.sleep_rounds(sleep_first);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox()) heard->push_back(m);
    co_await ctx.next_subround();
    for (const sim::Msg& m : ctx.inbox()) heard->push_back(m);
    co_await ctx.end_round(std::nullopt);
  }
}

Heard observe_program(ByzStrategy strategy, sim::Faultiness fault,
                      bool compiled, std::uint64_t sleep_first,
                      std::uint64_t rounds, const ByzSchedule& sched) {
  const Graph g = make_complete(4);
  sim::Engine eng(g);
  Heard h;
  eng.add_robot(
      5, fault, 0,
      compiled
          ? make_compiled_byzantine_program(strategy, {5, 9}, 42, sched)
          : make_byzantine_program(strategy, {5, 9}, 42, sched));
  eng.add_robot(9, sim::Faultiness::kHonest, 0, [&](sim::Ctx c) {
    return listen_after(c, sleep_first, rounds, &h.msgs);
  });
  h.stats = eng.run(sleep_first + rounds + 4);
  h.byz_end = eng.position_of(5);
  return h;
}

void expect_identical_observation(const Heard& coroutine, const Heard& compiled,
                                  const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(coroutine.msgs.size(), compiled.msgs.size());
  for (std::size_t i = 0; i < coroutine.msgs.size(); ++i) {
    EXPECT_EQ(coroutine.msgs[i].claimed, compiled.msgs[i].claimed) << i;
    EXPECT_EQ(coroutine.msgs[i].source, compiled.msgs[i].source) << i;
    EXPECT_EQ(coroutine.msgs[i].kind, compiled.msgs[i].kind) << i;
    EXPECT_EQ(coroutine.msgs[i].data, compiled.msgs[i].data) << i;
  }
  EXPECT_EQ(coroutine.byz_end, compiled.byz_end);
  EXPECT_EQ(coroutine.stats.rounds, compiled.stats.rounds);
  EXPECT_EQ(coroutine.stats.moves, compiled.stats.moves);
  EXPECT_EQ(coroutine.stats.messages, compiled.stats.messages);
  EXPECT_LE(compiled.stats.simulated_rounds, coroutine.stats.simulated_rounds);
}

std::vector<std::pair<ByzStrategy, sim::Faultiness>> conformance_cases() {
  std::vector<std::pair<ByzStrategy, sim::Faultiness>> cases;
  for (const auto s : weak_strategies())
    cases.emplace_back(s, sim::Faultiness::kWeakByzantine);
  cases.emplace_back(ByzStrategy::kSpoofer,
                     sim::Faultiness::kStrongByzantine);
  return cases;
}

TEST(CompiledStrategy, MatchesCoroutineLive) {
  for (const auto& [s, fault] : conformance_cases()) {
    const Heard a = observe_program(s, fault, false, 0, 14, ByzSchedule{0});
    const Heard b = observe_program(s, fault, true, 0, 14, ByzSchedule{0});
    expect_identical_observation(a, b, to_string(s) + " live");
  }
}

TEST(CompiledStrategy, MatchesCoroutineAcrossFastForward) {
  // Listener sleeps 9 rounds first: the compiled adversary is the only
  // ambient robot, the engine fast-forwards the gap, and the interpreter
  // must replay it (draws, suppressed messages, immediate hops) so the
  // listener wakes to a bit-identical world.
  for (const auto& [s, fault] : conformance_cases()) {
    const Heard a = observe_program(s, fault, false, 9, 10, ByzSchedule{0});
    const Heard b = observe_program(s, fault, true, 9, 10, ByzSchedule{0});
    expect_identical_observation(a, b, to_string(s) + " fast-forward");
  }
}

TEST(CompiledStrategy, MatchesCoroutineWithChargedWindows) {
  ByzSchedule sched{3};
  sched.charged = {{5, 8}, {11, 13}};
  for (const auto& [s, fault] : conformance_cases()) {
    const Heard a = observe_program(s, fault, false, 7, 12, sched);
    const Heard b = observe_program(s, fault, true, 7, 12, sched);
    expect_identical_observation(a, b, to_string(s) + " charged");
  }
}

TEST(Byzantine, StrategyNamesAreUniqueAndComplete) {
  std::set<std::string> names;
  for (const auto s : weak_strategies()) names.insert(to_string(s));
  EXPECT_EQ(names.size(), weak_strategies().size());
  EXPECT_EQ(to_string(ByzStrategy::kSpoofer), "spoofer");
  // The spoofer is deliberately NOT in the weak list.
  for (const auto s : weak_strategies()) EXPECT_NE(s, ByzStrategy::kSpoofer);
}

}  // namespace
}  // namespace bdg::core
