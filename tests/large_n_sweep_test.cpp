// Large-n conformance tier (the n >= 128 sweeps the Round widening
// unlocks):
//  * row 2 + row 6 at n = 128 complete with exact, non-saturated round
//    counts matching an unsigned __int128 oracle reconstruction of the
//    plan bounds (the pre-Round code capped these at 2^62);
//  * the resulting report and checkpoint round-trip byte-identically
//    through run/report (a full-resume re-run reproduces the same bytes);
//  * multi-wave (k > n) points fast-forward their charged oracle prefixes
//    again — the PR 3 known limit — because Byzantine robots sleep
//    through every later wave's charged window;
//  * a plan whose bound saturates 128-bit accounting becomes a loud
//    verification failure in core and a structured skip in run/.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/round.h"
#include "core/scenario.h"
#include "gather/gathering.h"
#include "run/report.h"
#include "run/sweep.h"

namespace bdg {
namespace {

using core::Algorithm;
using core::Round;
using u128 = unsigned __int128;

u128 oracle_pow(u128 base, unsigned e) {
  u128 r = 1;
  while (e-- > 0) r *= base;
  return r;
}

/// Closed-form plan totals for the two exponential rows (theory cost
/// model), reconstructed independently of core's Round arithmetic.
struct Oracle {
  u128 gather = 0;
  u128 total = 0;
};

Oracle oracle_row(Algorithm a, std::uint32_t n, std::uint32_t lambda) {
  const u128 t2 = 8 * oracle_pow(n, 3) + 64 * u128{n} + 96;
  const u128 phase = 6 * u128{n} + 16;
  Oracle o;
  if (a == Algorithm::kTournamentArbitrary) {
    o.gather = std::max<u128>(
        4 * oracle_pow(n, 4) * lambda * oracle_pow(n, 5), 2 * u128{n});
    const u128 pairing = (u128{n} + (n % 2) - 1) * 2 * t2;
    o.total = o.gather + pairing + phase + 8;
  } else {
    o.gather = std::max<u128>(u128{1} << (n - 1), 2 * u128{n});
    o.total = o.gather + t2 + (u128{n} + 8) + 8;
  }
  return o;
}

// ---------------------------------------------------------------------------
// Acceptance: exact big-round accounting end-to-end at n = 128
// ---------------------------------------------------------------------------

TEST(LargeN, Row2AndRow6At128MatchInt128Oracle) {
  const std::uint32_t n = 128;
  const auto g = run::build_family_graph("star", n, /*seed=*/99);
  ASSERT_TRUE(g.has_value());

  for (const Algorithm a :
       {Algorithm::kTournamentArbitrary, Algorithm::kStrongArbitrary}) {
    core::ScenarioConfig cfg;
    cfg.algorithm = a;
    cfg.num_byzantine = 0;  // the charged bounds don't depend on f; f = 0
                            // keeps the active phases tractable at n = 128
    cfg.seed = 4242;
    cfg.cost = gather::CostModel{/*scaled=*/false};  // theory: > 2^64 rounds

    // The plan's Lambda comes from the drawn IDs; reproduce the draw.
    const auto ids = core::draw_robot_ids(n, n, cfg.seed);
    const std::uint32_t lambda = gather::CostModel::id_bits(ids.back());
    const Oracle oracle = oracle_row(a, n, lambda);

    const core::ScenarioResult res = core::run_scenario(*g, cfg);
    EXPECT_TRUE(res.verify.ok()) << core::to_string(a) << ": "
                                 << res.verify.detail;
    EXPECT_FALSE(res.saturated);
    ASSERT_FALSE(res.planned_rounds.is_saturated());
    ASSERT_FALSE(res.stats.rounds.is_saturated());
    // Exact bound accounting: the plan equals the closed form, and the
    // run terminates inside it without ever simulating the charge.
    EXPECT_EQ(res.planned_rounds.raw(), oracle.total) << core::to_string(a);
    EXPECT_GE(res.stats.rounds.raw(), oracle.gather);
    EXPECT_LE(res.stats.rounds, res.planned_rounds + 16);
    EXPECT_GT(res.stats.rounds, Round::exp2(64)) << core::to_string(a);
    EXPECT_LT(res.stats.simulated_rounds, 1'000'000u);
  }
}

TEST(LargeN, Row2AndRow6SweepCheckpointRoundTripsByteIdentically) {
  const std::string ck =
      ::testing::TempDir() + "large_n_round_trip.ck.jsonl";
  std::remove(ck.c_str());

  run::SweepSpec spec;
  spec.algorithms = {Algorithm::kTournamentArbitrary,
                     Algorithm::kStrongArbitrary};
  spec.families = {"star"};
  spec.sizes = {128};
  spec.byzantine_counts = {0};
  spec.cost = gather::CostModel{/*scaled=*/false};
  spec.measure_seconds = false;  // reports become pure functions of the grid
  spec.checkpoint_path = ck;

  const run::SweepResult first = run::run_sweep(spec);
  ASSERT_EQ(first.points.size(), 2u);
  EXPECT_EQ(first.from_checkpoint, 0u);
  for (const auto& p : first.points) {
    ASSERT_FALSE(p.skipped) << p.skip_reason;
    EXPECT_TRUE(p.ok) << p.detail;
    EXPECT_GT(p.stats.rounds, Round::exp2(64));
  }

  // Second run: every point restored from the checkpoint, and every
  // report writer reproduces the first run byte for byte — the 128-bit
  // decimals survive the full write -> parse -> write cycle.
  const run::SweepResult second = run::run_sweep(spec);
  EXPECT_EQ(second.from_checkpoint, 2u);
  const auto render = [](const run::SweepResult& r) {
    std::ostringstream points, cells, json;
    run::write_points_csv(points, r);
    run::write_cells_csv(cells, r);
    run::write_json(json, r);
    return points.str() + "\x1f" + cells.str() + "\x1f" + json.str();
  };
  EXPECT_EQ(render(first), render(second));
  std::remove(ck.c_str());
}

// ---------------------------------------------------------------------------
// Batched pairing windows at larger n (the PR 4 headroom note)
// ---------------------------------------------------------------------------

TEST(LargeN, BatchedPairingMatchesUnbatchedVerdictAndRoundsAt64) {
  // Row 2 at n = 64 (theory cost): the batched pairing windows must leave
  // the verdict and the exact > 2^64 charged round count bit-identical to
  // the original rebuild-every-window path, while the active metrics
  // collapse (every robot confirms after its first window at f = 0, so
  // the other 62 windows publish-and-sleep / fast-forward whole).
  const std::uint32_t n = 64;
  const auto g = run::build_family_graph("star", n, /*seed=*/99);
  ASSERT_TRUE(g.has_value());
  core::ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentArbitrary;
  cfg.num_byzantine = 0;
  cfg.seed = 4242;
  cfg.cost = gather::CostModel{/*scaled=*/false};
  cfg.batched_pairing = true;
  const core::ScenarioResult batched = core::run_scenario(*g, cfg);
  cfg.batched_pairing = false;
  const core::ScenarioResult plain = core::run_scenario(*g, cfg);
  ASSERT_TRUE(batched.verify.ok()) << batched.verify.detail;
  ASSERT_TRUE(plain.verify.ok()) << plain.verify.detail;
  EXPECT_EQ(batched.stats.rounds, plain.stats.rounds);
  EXPECT_EQ(batched.planned_rounds, plain.planned_rounds);
  EXPECT_GT(batched.stats.rounds, Round::exp2(59));
  // The batching win, pinned as an order-of-magnitude bound so the gate
  // survives protocol tweaks: >= 10x fewer simulated rounds.
  EXPECT_LT(batched.stats.simulated_rounds * 10, plain.stats.simulated_rounds);
}

// ---------------------------------------------------------------------------
// Multi-wave charged-prefix fast-forwarding (the PR 3 known limit)
// ---------------------------------------------------------------------------

TEST(LargeN, MultiWaveChargedPrefixesFastForward) {
  // k = 12 robots on n = 8 nodes: two waves, and with byz_smallest_ids the
  // two Byzantine robots land in DIFFERENT waves (rank striping). The
  // wave-0 adversary used to stay awake through wave 1's multi-million
  // round charged gathering prefix, forcing the engine to simulate it
  // round by round; with the charged-window schedule it sleeps, so the
  // prefix fast-forwards and simulated_rounds collapses to the active
  // phases.
  const auto g = run::build_family_graph("er", 8, /*seed=*/7);
  ASSERT_TRUE(g.has_value());
  core::ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentArbitrary;
  cfg.num_robots = 12;
  cfg.num_byzantine = 2;
  cfg.strategy = core::ByzStrategy::kFakeSettler;
  cfg.seed = 11;

  const core::ScenarioResult res = core::run_scenario(*g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  // Both waves' charged prefixes dominate the round count...
  EXPECT_GT(res.stats.rounds, 4'000'000u);
  // ...and neither is simulated round by round, despite awake cross-wave
  // Byzantine robots before the fix.
  EXPECT_LT(res.stats.simulated_rounds, 400'000u);
}

// ---------------------------------------------------------------------------
// Saturation: loud failure in core, structured skip in run/
// ---------------------------------------------------------------------------

TEST(LargeN, SaturatedBoundFailsVerificationLoudly) {
  // Scaled strong-exponential charge at n = 200 is 2^199: past 128 bits.
  const auto g = run::build_family_graph("star", 200, /*seed=*/3);
  ASSERT_TRUE(g.has_value());
  core::ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongArbitrary;
  cfg.num_byzantine = 0;
  const core::ScenarioResult res = core::run_scenario(*g, cfg);
  EXPECT_TRUE(res.saturated);
  EXPECT_FALSE(res.verify.ok());
  EXPECT_TRUE(res.planned_rounds.is_saturated());
  EXPECT_NE(res.verify.detail.find("saturated"), std::string::npos)
      << res.verify.detail;
  EXPECT_EQ(res.stats.simulated_rounds, 0u);  // the engine never ran
}

TEST(LargeN, SaturatedPointIsAStructuredSweepSkip) {
  run::SweepSpec spec;
  spec.algorithms = {Algorithm::kStrongArbitrary};
  spec.families = {"star"};
  spec.sizes = {200};
  spec.byzantine_counts = {0};
  spec.measure_seconds = false;
  const run::SweepResult result = run::run_sweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  const run::PointResult& p = result.points[0];
  EXPECT_TRUE(p.skipped);
  EXPECT_TRUE(p.saturated);
  EXPECT_NE(p.skip_reason.find("strong-arbitrary(T7)"), std::string::npos)
      << p.skip_reason;
  EXPECT_NE(p.skip_reason.find("n=200"), std::string::npos);
  EXPECT_NE(p.skip_reason.find("f=0"), std::string::npos);
  // A structured skip, not a failure: the sweep itself is healthy and the
  // cells never aggregate a fictitious round count.
  EXPECT_TRUE(result.all_dispersed());
  EXPECT_TRUE(result.cells.empty());
}

}  // namespace
}  // namespace bdg
