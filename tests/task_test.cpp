// Coroutine plumbing semantics: nested Task composition, value and
// exception propagation through arbitrary depths, and engine interaction
// with deeply nested protocol phases.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace bdg::sim {
namespace {

Task<int> leaf_value(Ctx ctx, int v) {
  co_await ctx.end_round(std::nullopt);
  co_return v;
}

Task<int> middle_sum(Ctx ctx, int a, int b) {
  const int x = co_await leaf_value(ctx, a);
  const int y = co_await leaf_value(ctx, b);
  co_return x + y;
}

Proc sum_robot(Ctx ctx, int* out) {
  *out = co_await middle_sum(ctx, 3, 4);
}

TEST(Task, NestedValuePropagation) {
  const Graph g = make_path(2);
  Engine eng(g);
  int out = 0;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return sum_robot(c, &out); });
  const RunStats st = eng.run(10);
  EXPECT_EQ(out, 7);
  // Two child suspensions = two rounds, plus the round in which the engine
  // detects completion.
  EXPECT_EQ(st.rounds, 3u);
}

Task<void> thrower(Ctx ctx) {
  co_await ctx.end_round(std::nullopt);
  throw std::runtime_error("child failed");
}

Task<void> pass_through(Ctx ctx) { co_await thrower(ctx); }

Proc failing_robot(Ctx ctx) { co_await pass_through(ctx); }

TEST(Task, ExceptionPropagatesThroughNesting) {
  const Graph g = make_path(2);
  Engine eng(g);
  eng.add_robot(1, Faultiness::kHonest, 0,
                [](Ctx c) { return failing_robot(c); });
  EXPECT_THROW(eng.run(10), std::runtime_error);
}

Proc catching_robot(Ctx ctx, bool* caught) {
  try {
    co_await pass_through(ctx);
  } catch (const std::runtime_error&) {
    *caught = true;
  }
  co_await ctx.end_round(std::nullopt);
}

TEST(Task, ProtocolCanCatchChildExceptions) {
  const Graph g = make_path(2);
  Engine eng(g);
  bool caught = false;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return catching_robot(c, &caught); });
  const RunStats st = eng.run(10);
  EXPECT_TRUE(caught);
  EXPECT_TRUE(st.all_honest_done);
}

Task<int> immediate(int v) { co_return v; }

Proc no_suspend_robot(Ctx ctx, int* out) {
  // A child that finishes without ever touching the engine.
  *out = co_await immediate(5);
  co_await ctx.end_round(std::nullopt);
}

TEST(Task, ChildWithoutSuspensionCompletesInline) {
  const Graph g = make_path(2);
  Engine eng(g);
  int out = 0;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return no_suspend_robot(c, &out); });
  eng.run(10);
  EXPECT_EQ(out, 5);
}

Task<std::vector<int>> build_vector(Ctx ctx, int len) {
  std::vector<int> v;
  for (int i = 0; i < len; ++i) {
    v.push_back(i);
    co_await ctx.end_round(std::nullopt);
  }
  co_return v;
}

Proc vector_robot(Ctx ctx, std::vector<int>* out) {
  *out = co_await build_vector(ctx, 4);
}

TEST(Task, MoveOnlyResultsTransferCleanly) {
  const Graph g = make_path(2);
  Engine eng(g);
  std::vector<int> out;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return vector_robot(c, &out); });
  eng.run(10);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

// Two robots with interleaved nested tasks must not interfere.
Proc interleaved(Ctx ctx, int* out, int a, int b) {
  *out = co_await middle_sum(ctx, a, b);
}

TEST(Task, TwoRobotsNestedTasksIndependent) {
  const Graph g = make_path(2);
  Engine eng(g);
  int out1 = 0, out2 = 0;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return interleaved(c, &out1, 1, 2); });
  eng.add_robot(2, Faultiness::kHonest, 1,
                [&](Ctx c) { return interleaved(c, &out2, 10, 20); });
  eng.run(10);
  EXPECT_EQ(out1, 3);
  EXPECT_EQ(out2, 30);
}

Proc deep_robot(Ctx ctx, int* out, int depth);

Task<int> deep_task(Ctx ctx, int depth) {
  if (depth == 0) {
    co_await ctx.end_round(std::nullopt);
    co_return 1;
  }
  const int below = co_await deep_task(ctx, depth - 1);
  co_return below + 1;
}

Proc deep_robot(Ctx ctx, int* out, int depth) {
  *out = co_await deep_task(ctx, depth);
}

TEST(Task, DeepRecursionOfTasks) {
  const Graph g = make_path(2);
  Engine eng(g);
  int out = 0;
  eng.add_robot(1, Faultiness::kHonest, 0,
                [&](Ctx c) { return deep_robot(c, &out, 50); });
  eng.run(10);
  EXPECT_EQ(out, 51);
}

}  // namespace
}  // namespace bdg::sim
