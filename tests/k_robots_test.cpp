// Fewer robots than nodes (k < n): Definition 1 only caps per-node honest
// load, so every algorithmic core must keep working when robots are
// scarce. Complements the Theorem 8 suite (which covers k > n).
#include <gtest/gtest.h>

#include <memory>

#include "core/byzantine.h"
#include "core/dispersion_using_map.h"
#include "core/verifier.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

sim::Proc disperse_robot(sim::Ctx c, DispersionParams params,
                         std::shared_ptr<DispersionOutcome> out) {
  *out = co_await run_dispersion_using_map(c, std::move(params));
}

struct KOutcome {
  VerifyResult verify;
  std::vector<std::shared_ptr<DispersionOutcome>> outs;
};

KOutcome run_k(const Graph& g, std::size_t k, std::size_t f,
               ByzStrategy strategy, std::uint64_t seed) {
  Rng rng(seed);
  sim::Engine eng(g);
  const core::Round phase =
      dispersion_phase_rounds(static_cast<std::uint32_t>(g.n()));
  KOutcome out;
  std::vector<sim::RobotId> ids;
  for (std::size_t i = 0; i < k; ++i) ids.push_back(5 + 3 * i);
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId start = static_cast<NodeId>(rng.below(g.n()));
    if (i < f) {
      eng.add_robot(ids[i], sim::Faultiness::kWeakByzantine, start,
                    make_byzantine_program(strategy, ids, seed + i));
      continue;
    }
    DispersionParams params;
    params.map = g;
    params.map_root = start;
    params.phase_rounds = phase;
    auto slot = std::make_shared<DispersionOutcome>();
    out.outs.push_back(slot);
    eng.add_robot(ids[i], sim::Faultiness::kHonest, start,
                  [params, slot](sim::Ctx c) {
                    return disperse_robot(c, params, slot);
                  });
  }
  eng.run(phase + 8);
  out.verify = verify_dispersion(eng);
  return out;
}

TEST(KRobots, FewRobotsManyNodes) {
  const Graph g = make_grid(3, 4);  // 12 nodes
  for (const std::size_t k : {1u, 2u, 5u, 9u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const KOutcome out = run_k(g, k, 0, ByzStrategy::kCrash, 3);
    EXPECT_TRUE(out.verify.ok()) << out.verify.detail;
    for (const auto& o : out.outs) EXPECT_TRUE(o->settled);
  }
}

TEST(KRobots, FewRobotsWithByzantineInterference) {
  const Graph g = make_ring(10);
  for (const ByzStrategy s :
       {ByzStrategy::kSquatter, ByzStrategy::kFakeSettler,
        ByzStrategy::kIntentSpammer}) {
    SCOPED_TRACE(to_string(s));
    const KOutcome out = run_k(g, 6, 3, s, 11);
    EXPECT_TRUE(out.verify.ok()) << out.verify.detail;
  }
}

TEST(KRobots, SettlesFasterWithFewerRobots) {
  // With fewer contenders, skip counts drop: a lone cluster of 2 robots
  // needs at most a couple of skips; 8 gathered robots need up to 7.
  const Graph g = make_path(8);
  const KOutcome small = run_k(g, 2, 0, ByzStrategy::kCrash, 5);
  const KOutcome large = run_k(g, 8, 0, ByzStrategy::kCrash, 5);
  std::uint32_t small_skips = 0, large_skips = 0;
  for (const auto& o : small.outs) small_skips += o->nodes_skipped;
  for (const auto& o : large.outs) large_skips += o->nodes_skipped;
  EXPECT_TRUE(small.verify.ok());
  EXPECT_TRUE(large.verify.ok());
  EXPECT_LE(small_skips, large_skips);
}

TEST(KRobots, SingleHonestAmongByzantineHorde) {
  // k = n robots, n-1 Byzantine squatters, one honest: Theorem 1's extreme
  // point at the Dispersion-Using-Map level.
  const Graph g = make_complete(7);
  const KOutcome out = run_k(g, 7, 6, ByzStrategy::kSquatter, 21);
  EXPECT_TRUE(out.verify.ok()) << out.verify.detail;
  ASSERT_EQ(out.outs.size(), 1u);
  EXPECT_TRUE(out.outs[0]->settled);
}

}  // namespace
}  // namespace bdg::core
