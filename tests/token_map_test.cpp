// Map construction with a movable token: the reference honest run must
// produce a rooted map isomorphic to the real graph from every start node,
// and the Byzantine-facing engine version must stay safe under lying
// partners (abort, return home, stay synchronized).
#include "explore/engine_map.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/byzantine.h"
#include "explore/covering_walk.h"
#include "explore/token_map.h"
#include "graph/generators.h"
#include "graph/quotient.h"

namespace bdg {
namespace {

using explore::MapFindConfig;
using explore::MapFindOutcome;

TEST(PartialMap, ConnectAndRoute) {
  PartialMap pm(2);
  const NodeId a = pm.add_node(2);
  pm.connect(0, 0, a, 1);
  EXPECT_TRUE(pm.explored(0, 0));
  EXPECT_FALSE(pm.explored(0, 1));
  EXPECT_EQ(pm.route(0, a), (std::vector<Port>{0}));
  EXPECT_EQ(pm.route(a, 0), (std::vector<Port>{1}));
  EXPECT_FALSE(pm.complete());
  EXPECT_THROW(pm.connect(0, 0, a, 0), std::logic_error);
}

TEST(PartialMap, CandidatesFilterDegreeAndSlot) {
  PartialMap pm(2);
  const NodeId a = pm.add_node(2);
  const NodeId b = pm.add_node(3);
  pm.connect(0, 0, a, 1);
  // Degree-2 nodes with port 0 unexplored: node `a` only (0's port 0 used).
  EXPECT_EQ(pm.candidates(2, 0), (std::vector<NodeId>{a}));
  EXPECT_EQ(pm.candidates(3, 2), (std::vector<NodeId>{b}));
  EXPECT_TRUE(pm.candidates(5, 0).empty());
}

TEST(PartialMap, IntoVariantsReuseBuffersAndMatch) {
  PartialMap pm(2);
  const NodeId a = pm.add_node(2);
  const NodeId b = pm.add_node(2);
  pm.connect(0, 0, a, 1);
  pm.connect(a, 0, b, 1);
  std::vector<Port> route;
  std::vector<NodeId> cands;
  pm.route_into(0, b, route);
  EXPECT_EQ(route, pm.route(0, b));
  pm.route_into(b, 0, route);  // reused buffer is cleared first
  EXPECT_EQ(route, pm.route(b, 0));
  pm.route_into(a, a, route);
  EXPECT_TRUE(route.empty());
  pm.candidates_into(2, 0, cands);
  EXPECT_EQ(cands, pm.candidates(2, 0));
  pm.candidates_into(7, 0, cands);
  EXPECT_TRUE(cands.empty());
}

TEST(PartialMap, FirstUnexploredCursorIsMonotone) {
  // The cursor-backed scan must return exactly the lexicographically first
  // unexplored slot at every step of an incremental build, including after
  // completion and after adding fresh (all-unexplored) nodes.
  PartialMap pm(1);
  ASSERT_EQ(pm.first_unexplored(), std::make_pair(NodeId{0}, Port{0}));
  const NodeId a = pm.add_node(2);
  pm.connect(0, 0, a, 0);
  ASSERT_EQ(pm.first_unexplored(), std::make_pair(a, Port{1}));
  const NodeId b = pm.add_node(1);
  pm.connect(a, 1, b, 0);
  EXPECT_FALSE(pm.first_unexplored().has_value());
  EXPECT_TRUE(pm.complete());
  const NodeId c = pm.add_node(1);
  ASSERT_EQ(pm.first_unexplored(), std::make_pair(c, Port{0}));
  EXPECT_FALSE(pm.complete());
}

TEST(CoveringWalk, ToursVisitAllAndReturn) {
  for (const auto& [name, g] : standard_menagerie(9, 5)) {
    SCOPED_TRACE(name);
    for (NodeId s = 0; s < g.n(); s += 3) {
      const auto ports = covering_walk_ports(g, s);
      EXPECT_EQ(ports.size(), 2 * (g.n() - 1));
      std::vector<bool> seen(g.n(), false);
      NodeId v = s;
      seen[v] = true;
      for (const Port p : ports) {
        v = g.hop(v, p).to;
        seen[v] = true;
      }
      EXPECT_EQ(v, s);  // Euler tour returns to the start
      for (NodeId u = 0; u < g.n(); ++u) EXPECT_TRUE(seen[u]);
    }
  }
}

TEST(ReferenceMap, HonestPairBuildsIsomorphicMap) {
  for (const auto& [name, g] : standard_menagerie(8, 21)) {
    SCOPED_TRACE(name);
    const auto res = explore::build_map_with_token(g, 0);
    EXPECT_EQ(res.map.n(), g.n());
    EXPECT_TRUE(rooted_isomorphic(res.map, 0, g, 0));
  }
}

TEST(ReferenceMap, WorksFromEveryStartNode) {
  Rng rng(4);
  const Graph g = shuffle_ports(make_connected_er(8, 0.4, rng), rng);
  for (NodeId s = 0; s < g.n(); ++s) {
    const auto res = explore::build_map_with_token(g, s);
    EXPECT_TRUE(rooted_isomorphic(res.map, 0, g, s)) << "start " << s;
  }
}

TEST(ReferenceMap, HandlesHighlySymmetricGraphs) {
  // Identity resolution must work even when every node looks alike.
  const auto res = explore::build_map_with_token(make_oriented_ring(7), 2);
  EXPECT_TRUE(rooted_isomorphic(res.map, 0, make_oriented_ring(7), 2));
  const auto res2 = explore::build_map_with_token(make_hypercube(3), 0);
  EXPECT_EQ(res2.map.n(), 8u);
  EXPECT_TRUE(isomorphic(res2.map, make_hypercube(3)));
}

TEST(ReferenceMap, SingleNodeGraphDegenerate) {
  const auto res = explore::build_map_with_token(make_path(1), 0);
  EXPECT_EQ(res.map.n(), 1u);
}

TEST(ReferenceMap, ActiveRoundsWithinWindow) {
  const Graph g = make_grid(3, 3);
  const auto res = explore::build_map_with_token(g, 0);
  EXPECT_LT(res.active_rounds,
            explore::default_map_window(static_cast<std::uint32_t>(g.n())));
}

// --- Byzantine-facing behavior -------------------------------------------

struct EngineMapFixture {
  Graph g;
  sim::Engine eng;
  std::shared_ptr<MapFindOutcome> honest_out =
      std::make_shared<MapFindOutcome>();

  explicit EngineMapFixture(Graph graph) : g(std::move(graph)), eng(g) {}
};

sim::Proc agent_wrapper(sim::Ctx c, MapFindConfig cfg,
                        std::shared_ptr<MapFindOutcome> out) {
  *out = co_await explore::run_map_agent(c, cfg);
}

sim::Proc token_wrapper(sim::Ctx c, MapFindConfig cfg,
                        std::shared_ptr<MapFindOutcome> out) {
  *out = co_await explore::run_map_token(c, cfg);
}

TEST(EngineMap, HonestAgentWithByzantineTokenReturnsHomeAndAborts) {
  const Graph g = make_grid(3, 3);
  const auto n = static_cast<std::uint32_t>(g.n());
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = n;
  cfg.round_budget = explore::default_map_window(n);
  auto out = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return agent_wrapper(c, cfg, out); });
  eng.add_robot(2, sim::Faultiness::kWeakByzantine, 0,
                core::make_byzantine_program(core::ByzStrategy::kMapLiar, {1, 2},
                                             99));
  eng.run(cfg.round_budget + 8);
  // The lying token makes the map inconsistent; the honest agent must
  // abort or produce *something*, and must be physically back at node 0.
  EXPECT_EQ(eng.position_of(1), 0u);
}

TEST(EngineMap, HonestTokenWithByzantineAgentReturnsHome) {
  const Graph g = make_ring(6);
  const auto n = static_cast<std::uint32_t>(g.n());
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = n;
  cfg.round_budget = explore::default_map_window(n);
  auto out = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kWeakByzantine, 0,
                core::make_byzantine_program(core::ByzStrategy::kMapLiar, {1, 2},
                                             7));
  eng.add_robot(2, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return token_wrapper(c, cfg, out); });
  eng.run(cfg.round_budget + 8);
  EXPECT_EQ(eng.position_of(2), 0u);  // dragged around, but walked home
}

TEST(EngineMap, AbsentTokenAborts) {
  const Graph g = make_ring(5);
  const auto n = static_cast<std::uint32_t>(g.n());
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = n;
  cfg.round_budget = explore::default_map_window(n);
  auto out = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [=](sim::Ctx c) { return agent_wrapper(c, cfg, out); });
  // Robot 2 exists but crashes elsewhere: never answers queries.
  eng.add_robot(2, sim::Faultiness::kWeakByzantine, 3,
                core::make_byzantine_program(core::ByzStrategy::kCrash, {}, 1));
  eng.run(cfg.round_budget + 8);
  EXPECT_TRUE(out->aborted);
  EXPECT_FALSE(out->code.has_value());
  EXPECT_EQ(eng.position_of(1), 0u);
}

sim::Proc cached_agent_wrapper(sim::Ctx ctx, MapFindConfig cfg, Graph cached,
                               CanonicalCode code,
                               std::shared_ptr<MapFindOutcome> out) {
  *out = co_await explore::run_map_agent_cached(ctx, cfg, cached,
                                                std::move(code));
}

sim::Proc plain_token_wrapper(sim::Ctx ctx, MapFindConfig cfg,
                              std::shared_ptr<MapFindOutcome> out) {
  *out = co_await explore::run_map_token(ctx, cfg);
}

/// Drive one cached-agent window against an honest token on `real`, with
/// `cached` as the map the agent trusts.
MapFindOutcome run_cached_window(const Graph& real, const Graph& cached,
                                 bool token_early_close) {
  const auto n = static_cast<std::uint32_t>(real.n());
  sim::Engine eng(real);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = n;
  cfg.round_budget = explore::default_map_window(n);
  MapFindConfig tcfg = cfg;
  tcfg.early_close = token_early_close;
  const CanonicalCode code = rooted_code(cached, 0);
  auto aout = std::make_shared<MapFindOutcome>();
  auto tout = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, 0, [=](sim::Ctx c) {
    return cached_agent_wrapper(c, cfg, cached, code, aout);
  });
  eng.add_robot(2, sim::Faultiness::kHonest, 0, [=](sim::Ctx c) {
    return plain_token_wrapper(c, tcfg, tout);
  });
  eng.run(cfg.round_budget + 8);
  return *aout;
}

TEST(EngineMap, CachedAgentVerifiesTrueMapWithoutRebuilding) {
  const Graph g = make_ring(6);
  const auto ref = explore::build_map_with_token(g, 0);
  const MapFindOutcome out = run_cached_window(g, ref.map, true);
  EXPECT_TRUE(out.verified_cache);
  ASSERT_TRUE(out.code.has_value());
  EXPECT_TRUE(rooted_isomorphic(graph_from_code(*out.code), 0, g, 0));
  // The verify-only walk is ~2|E| rounds, far below a full build.
  EXPECT_LE(out.active_rounds, 2u * 6u + 4u);
}

TEST(EngineMap, CachedAgentMismatchFallsBackToFullRebuild) {
  // A poisoned cache (the map of a DIFFERENT graph with the same root
  // degree) must fail the physical walk, and — with the token partner
  // still listening — the same window recovers the true map via a full
  // rebuild. verified_cache stays false: the caller knows this vote came
  // from a fresh build, not the cache.
  const Graph real = make_ring(6);
  const Graph wrong =
      explore::build_map_with_token(make_grid(2, 3), 0).map;
  ASSERT_EQ(wrong.degree(0), real.degree(0));  // root check alone won't catch
  const MapFindOutcome out = run_cached_window(real, wrong, false);
  EXPECT_FALSE(out.verified_cache);
  ASSERT_TRUE(out.code.has_value());
  EXPECT_TRUE(rooted_isomorphic(graph_from_code(*out.code), 0, real, 0));
}

TEST(EngineMap, CachedAgentMismatchWithClosedTokenBurnsWindowSafely) {
  // Same poisoned cache, but the token runs the batched early-close: it
  // leaves after the silent verify walk begins, so the in-window rebuild
  // has no token service and must abort — a burned window (no vote), never
  // an unverified map handed to the caller.
  const Graph real = make_ring(6);
  const Graph wrong =
      explore::build_map_with_token(make_grid(2, 3), 0).map;
  const MapFindOutcome out = run_cached_window(real, wrong, true);
  EXPECT_FALSE(out.verified_cache);
  EXPECT_FALSE(out.code.has_value());
  EXPECT_TRUE(out.aborted);
}

TEST(EngineMap, GroupRunWithQuorumsBuildsMap) {
  // 3 agents + 3 tokens, quorum 2/2, one Byzantine member on each side:
  // honest majorities keep the run correct.
  Rng rng(12);
  const Graph g = shuffle_ports(make_connected_er(7, 0.5, rng), rng);
  const auto n = static_cast<std::uint32_t>(g.n());
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1, 2, 3};
  cfg.tokens = {4, 5, 6};
  cfg.agent_quorum = 2;
  cfg.token_quorum = 2;
  cfg.n = n;
  cfg.round_budget = explore::default_map_window(n);
  std::vector<std::shared_ptr<MapFindOutcome>> outs;
  for (sim::RobotId id = 1; id <= 6; ++id) {
    auto out = std::make_shared<MapFindOutcome>();
    outs.push_back(out);
    if (id == 3 || id == 6) {
      eng.add_robot(id, sim::Faultiness::kWeakByzantine, 0,
                    core::make_byzantine_program(core::ByzStrategy::kMapLiar,
                                                 {1, 2, 3, 4, 5, 6}, id));
    } else if (id <= 3) {
      eng.add_robot(id, sim::Faultiness::kHonest, 0,
                    [=](sim::Ctx c) { return agent_wrapper(c, cfg, out); });
    } else {
      eng.add_robot(id, sim::Faultiness::kHonest, 0,
                    [=](sim::Ctx c) { return token_wrapper(c, cfg, out); });
    }
  }
  eng.run(cfg.round_budget + 8);
  // Honest agents 1,2 and honest tokens 4,5 all end with the true map.
  for (const std::size_t i : {0u, 1u, 3u, 4u}) {
    ASSERT_TRUE(outs[i]->code.has_value()) << "robot " << i + 1;
    const Graph m = graph_from_code(*outs[i]->code);
    EXPECT_TRUE(rooted_isomorphic(m, 0, g, 0));
  }
}

}  // namespace
}  // namespace bdg
