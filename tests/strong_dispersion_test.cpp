// Theorems 6 and 7: strong Byzantine robots (ID forgery) against the
// two-group quorum map finding and the silent assignment phase.
#include "core/strong_dispersion.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

class StrongGathered
    : public ::testing::TestWithParam<std::tuple<ByzStrategy, std::uint32_t>> {
};

TEST_P(StrongGathered, Row7DispersesUnderAdversary) {
  const auto [strategy, f] = GetParam();
  Rng rng(2);
  const Graph g = shuffle_ports(make_connected_er(12, 0.35, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongGathered;
  cfg.num_byzantine = f;  // tolerance floor(12/4)-1 = 2
  cfg.strategy = strategy;
  cfg.seed = 6;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, StrongGathered,
    ::testing::Combine(::testing::Values(ByzStrategy::kSpoofer,
                                         ByzStrategy::kMapLiar,
                                         ByzStrategy::kCrash),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

TEST(StrongGathered, SpooferCannotForgeQuorum) {
  // f = floor(n/4)-1 strong spoofers forging agent-group IDs: the physical
  // vote count stays below the floor(n/4) quorum, so honest robots still
  // obtain the true map (the Msg::source model; paper Section 4).
  const Graph g = make_torus(4, 4);  // n = 16, quorum 4, f = 3
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongGathered;
  cfg.num_byzantine = 3;
  cfg.strategy = ByzStrategy::kSpoofer;
  cfg.seed = 14;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(StrongGathered, RoundsAreCubicShaped) {
  // Theorem 6: O(n^3) — the window budget (our T2 = Theta(n^3)) dominates.
  const Graph g = make_ring(8);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongGathered;
  cfg.num_byzantine = 1;
  cfg.strategy = ByzStrategy::kSpoofer;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  const std::uint64_t n = g.n();
  EXPECT_GE(res.stats.rounds, 8 * n * n * n);
  EXPECT_LE(res.stats.rounds, 8 * n * n * n + 200 * n);
}

TEST(StrongArbitrary, Row6ExponentialGatherThenDisperse) {
  const Graph g = make_ring(8);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongArbitrary;
  cfg.num_byzantine = 1;  // floor(8/4)-1
  cfg.strategy = ByzStrategy::kSpoofer;
  cfg.seed = 44;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  // The charged exponential gathering dominates: >= 2^(n-1) rounds.
  EXPECT_GE(res.stats.rounds, 1ULL << 7);
  // ...but the engine never simulates them one by one.
  EXPECT_LT(res.stats.simulated_rounds, res.stats.rounds);
}

TEST(StrongArbitrary, WorksOnLargerNWithoutWallClockBlowup) {
  // 2^23 charged rounds, fast-forwarded.
  const Graph g = make_grid(4, 6);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongArbitrary;
  cfg.num_byzantine = 2;
  cfg.strategy = ByzStrategy::kCrash;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  EXPECT_GE(res.stats.rounds, 1ULL << 23);
}

}  // namespace
}  // namespace bdg::core
