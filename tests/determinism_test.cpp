// Engine + sweep-runner determinism regression suite: the same seed and
// scenario must produce bit-identical RunStats and identical trace.h event
// streams across repeated runs, and a sweep's results must not depend on
// how many worker threads execute it.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "graph/generators.h"
#include "run/sweep.h"
#include "sim/trace.h"

namespace bdg {
namespace {

using core::Algorithm;
using core::ByzStrategy;

void expect_same_stats(const sim::RunStats& a, const sim::RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.simulated_rounds, b.simulated_rounds);
  EXPECT_EQ(a.resumes, b.resumes);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.all_honest_done, b.all_honest_done);
}

void expect_same_events(const sim::TraceRecorder& a,
                        const sim::TraceRecorder& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const sim::TraceRecorder::Event& ea = a.events()[i];
    const sim::TraceRecorder::Event& eb = b.events()[i];
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind));
    EXPECT_EQ(ea.round, eb.round);
    EXPECT_EQ(ea.robot, eb.robot);
    EXPECT_EQ(ea.node, eb.node);
    EXPECT_EQ(ea.detail, eb.detail);
  }
}

struct TracedRun {
  core::ScenarioResult result;
  sim::TraceRecorder trace{1 << 16};
};

TracedRun traced_scenario(Algorithm a, ByzStrategy s, std::uint64_t seed) {
  Rng rng(4242);
  const Graph g = shuffle_ports(make_connected_er(9, 0.45, rng), rng);
  TracedRun run;
  core::ScenarioConfig cfg;
  cfg.algorithm = a;
  cfg.num_byzantine = core::max_tolerated_f(a, 9);
  cfg.strategy = s;
  cfg.seed = seed;
  cfg.observer = &run.trace;
  run.result = core::run_scenario(g, cfg);
  return run;
}

// Same seed + same scenario => identical RunStats and identical event
// streams, for a representative algorithm per substrate.
TEST(Determinism, ScenarioRunsAreBitReproducible) {
  const struct {
    Algorithm algorithm;
    ByzStrategy strategy;
  } cases[] = {
      {Algorithm::kThreeGroupGathered, ByzStrategy::kMapLiar},
      {Algorithm::kTournamentGathered, ByzStrategy::kFakeSettler},
      {Algorithm::kStrongGathered, ByzStrategy::kSpoofer},
      {Algorithm::kCrashRealGathering, ByzStrategy::kCrash},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(core::to_string(c.algorithm));
    const TracedRun first = traced_scenario(c.algorithm, c.strategy, 77);
    const TracedRun second = traced_scenario(c.algorithm, c.strategy, 77);
    ASSERT_TRUE(first.result.verify.ok()) << first.result.verify.detail;
    expect_same_stats(first.result.stats, second.result.stats);
    EXPECT_EQ(first.result.planned_rounds, second.result.planned_rounds);
    expect_same_events(first.trace, second.trace);
    ASSERT_FALSE(first.trace.events().empty());

    // A different seed must actually change the execution (guards against
    // the scenario ignoring its seed, which would make the test vacuous).
    const TracedRun other = traced_scenario(c.algorithm, c.strategy, 78);
    const bool same_stream =
        other.trace.events().size() == first.trace.events().size();
    bool identical = same_stream;
    if (same_stream) {
      for (std::size_t i = 0; i < first.trace.events().size(); ++i) {
        const auto& ea = first.trace.events()[i];
        const auto& eb = other.trace.events()[i];
        if (ea.round != eb.round || ea.robot != eb.robot ||
            ea.node != eb.node || ea.detail != eb.detail ||
            ea.kind != eb.kind) {
          identical = false;
          break;
        }
      }
    }
    EXPECT_FALSE(identical) << "seed change did not affect the trace";
  }
}

void expect_same_points(const run::SweepResult& a, const run::SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const run::PointResult& pa = a.points[i];
    const run::PointResult& pb = b.points[i];
    SCOPED_TRACE("point " + std::to_string(i) + ": " +
                 core::to_string(pa.point.algorithm) + " on " +
                 pa.point.family);
    EXPECT_EQ(pa.point.n, pb.point.n);
    EXPECT_EQ(pa.point.f, pb.point.f);
    EXPECT_EQ(pa.point.seed, pb.point.seed);
    EXPECT_EQ(pa.derived_seed, pb.derived_seed);
    EXPECT_EQ(pa.skipped, pb.skipped);
    EXPECT_EQ(pa.ok, pb.ok);
    EXPECT_EQ(pa.planned_rounds, pb.planned_rounds);
    expect_same_stats(pa.stats, pb.stats);
  }
}

run::SweepSpec small_sweep(unsigned threads) {
  run::SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered,
                     Algorithm::kStrongGathered, Algorithm::kQuotient};
  spec.families = {"er", "ring", "complete"};
  spec.sizes = {8};
  spec.seeds = {1, 2};
  spec.threads = threads;
  return spec;
}

// Sweep results are a function of the spec only, not of the thread count
// that happened to execute them (1, 2, 4, 8 and hardware default) — the
// event-driven engine scheduler must stay oblivious to its host thread.
TEST(Determinism, SweepIsThreadCountInvariant) {
  const run::SweepResult serial = run::run_sweep(small_sweep(1));
  for (const unsigned threads : {2u, 4u, 8u, 0u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const run::SweepResult parallel = run::run_sweep(small_sweep(threads));
    expect_same_points(serial, parallel);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(serial.cells[i].runs, parallel.cells[i].runs);
      EXPECT_EQ(serial.cells[i].dispersed, parallel.cells[i].dispersed);
      EXPECT_EQ(serial.cells[i].min_rounds, parallel.cells[i].min_rounds);
      EXPECT_EQ(serial.cells[i].max_rounds, parallel.cells[i].max_rounds);
      EXPECT_DOUBLE_EQ(serial.cells[i].mean_rounds,
                       parallel.cells[i].mean_rounds);
    }
  }
}

// run_point is a pure function of (spec, point).
TEST(Determinism, RunPointIsPure) {
  const run::SweepSpec spec = small_sweep(1);
  const std::vector<run::SweepPoint> grid = run::expand_grid(spec);
  ASSERT_FALSE(grid.empty());
  for (const run::SweepPoint& p : {grid.front(), grid.back()}) {
    const run::PointResult a = run::run_point(spec, p);
    const run::PointResult b = run::run_point(spec, p);
    EXPECT_EQ(a.derived_seed, b.derived_seed);
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.ok, b.ok);
    expect_same_stats(a.stats, b.stats);
  }
}

// Mixed-adversary grids are bit-reproducible across thread counts, and a
// mix hashes into the derived seed reorder-invariantly (a mix is a
// multiset: permuting it changes neither seeds nor executions, while
// changing its contents — including duplicating an element — does).
TEST(Determinism, MixedAdversarySweepIsThreadCountInvariant) {
  const auto mixed_sweep = [](unsigned threads) {
    run::SweepSpec spec = small_sweep(threads);
    spec.strategy_mixes = {
        {ByzStrategy::kMapLiar, ByzStrategy::kCrash},
        {ByzStrategy::kFakeSettler, ByzStrategy::kSilentSettler,
         ByzStrategy::kSquatter}};
    spec.robot_counts = {5, 8, 12};  // the k axis joins the grid too
    return spec;
  };
  const run::SweepResult serial = run::run_sweep(mixed_sweep(1));
  ASSERT_FALSE(serial.points.empty());
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const run::SweepResult parallel = run::run_sweep(mixed_sweep(threads));
    expect_same_points(serial, parallel);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(serial.cells[i].mix, parallel.cells[i].mix);
      EXPECT_EQ(serial.cells[i].runs, parallel.cells[i].runs);
      EXPECT_EQ(serial.cells[i].dispersed, parallel.cells[i].dispersed);
    }
  }
}

TEST(Determinism, MixHashesReorderInvariantlyIntoDerivedSeeds) {
  run::SweepPoint p{Algorithm::kThreeGroupGathered, "er", 8, 8, 2, 1,
                    ByzStrategy::kFakeSettler,
                    {ByzStrategy::kMapLiar, ByzStrategy::kCrash,
                     ByzStrategy::kSquatter}};
  const std::uint64_t base = 0x9E3779B97F4A7C15ULL;
  const std::uint64_t s = run::point_seed(base, p);
  // Any permutation hashes identically — point_seed itself is commutative
  // over the mix, independent of expand_grid's canonicalization.
  run::SweepPoint q = p;
  q.mix = {ByzStrategy::kSquatter, ByzStrategy::kCrash, ByzStrategy::kMapLiar};
  EXPECT_EQ(s, run::point_seed(base, q));
  q.mix = {ByzStrategy::kCrash, ByzStrategy::kSquatter, ByzStrategy::kMapLiar};
  EXPECT_EQ(s, run::point_seed(base, q));
  // Different multiset => different seed: drop, swap, or duplicate.
  q.mix = {ByzStrategy::kMapLiar, ByzStrategy::kCrash};
  EXPECT_NE(s, run::point_seed(base, q));
  q.mix = {ByzStrategy::kMapLiar, ByzStrategy::kCrash, ByzStrategy::kCrash};
  EXPECT_NE(s, run::point_seed(base, q));
  q.mix = {ByzStrategy::kMapLiar, ByzStrategy::kCrash,
           ByzStrategy::kIntentSpammer};
  EXPECT_NE(s, run::point_seed(base, q));
  // No mix at all is the legacy grid: its seed is mix-tag free.
  q.mix.clear();
  EXPECT_NE(s, run::point_seed(base, q));
  // And the k axis folds in only off the Table 1 setting (k = n).
  run::SweepPoint r = p;
  r.mix.clear();
  const std::uint64_t legacy = run::point_seed(base, r);
  r.k = 0;
  EXPECT_EQ(legacy, run::point_seed(base, r));
  r.k = 12;
  EXPECT_NE(legacy, run::point_seed(base, r));
}

// Graph construction is deterministic per (family, n, seed) across every
// registered family.
TEST(Determinism, FamilyGraphsAreSeedDeterministic) {
  for (const std::string& family : run::known_families()) {
    const std::uint32_t n = family == "hypercube" ? 16 : 9;
    if (!run::family_supports(family, n)) continue;
    SCOPED_TRACE(family);
    const auto a = run::build_family_graph(family, n, 123);
    const auto b = run::build_family_graph(family, n, 123);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a->n(), b->n());
    for (NodeId v = 0; v < a->n(); ++v) {
      ASSERT_EQ(a->degree(v), b->degree(v));
      for (Port p = 0; p < a->degree(v); ++p)
        ASSERT_TRUE(a->hop(v, p) == b->hop(v, p));
    }
  }
}

}  // namespace
}  // namespace bdg
