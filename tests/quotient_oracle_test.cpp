// Property test pinning the hash-based worklist refinement in
// graph/quotient.cpp to a brute-force view-equivalence oracle computed
// straight from the definition: two nodes are view-equivalent iff their
// truncated views agree to depth n-1 (Norris' theorem), where view
// equality at depth d is degree equality plus, port by port, matching
// reverse ports and depth-(d-1) equivalence of the neighbors. The oracle
// shares no code with the refinement (no hashing, no palettes, no
// worklists), so any grouping bug in the fast path diverges here.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/quotient.h"
#include "run/sweep.h"

namespace bdg {
namespace {

/// Dynamic program over (u, v) pairs: eq[u][v] at depth d, iterated from
/// depth 0 (degree equality) to depth n-1. O(n^3 * max_degree) — brute
/// force, fine at test sizes.
std::vector<std::vector<bool>> view_equivalence(const Graph& g) {
  const NodeId n = static_cast<NodeId>(g.n());
  std::vector<std::vector<bool>> eq(n, std::vector<bool>(n, false));
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v) eq[u][v] = g.degree(u) == g.degree(v);
  for (NodeId depth = 1; depth < n; ++depth) {
    std::vector<std::vector<bool>> next(n, std::vector<bool>(n, false));
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        if (!eq[u][v]) continue;
        bool same = true;
        for (Port p = 0; p < g.degree(u) && same; ++p) {
          const HalfEdge a = g.hop(u, p);
          const HalfEdge b = g.hop(v, p);
          same = a.reverse == b.reverse && eq[a.to][b.to];
        }
        next[u][v] = same;
      }
    }
    eq = std::move(next);
  }
  return eq;
}

/// One graph of every registered family near n=9 (n adjusted where the
/// family demands it), over several seeds — random graphs from every
/// generator family, as the refinement must be right on all of them.
TEST(QuotientOracle, MatchesBruteForceViewEquivalenceOnEveryFamily) {
  for (const std::string& family : run::known_families()) {
    std::uint32_t n = 9;
    while (n < 20 && !run::family_supports(family, n)) ++n;
    if (family == "hypercube") n = 8;
    ASSERT_TRUE(run::family_supports(family, n)) << family;
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      SCOPED_TRACE(family + " n=" + std::to_string(n) + " seed=" +
                   std::to_string(seed));
      const auto g = run::build_family_graph(family, n, seed);
      ASSERT_TRUE(g.has_value());
      const QuotientResult q = quotient_graph(*g);
      const auto oracle = view_equivalence(*g);
      for (NodeId u = 0; u < g->n(); ++u) {
        for (NodeId v = 0; v < g->n(); ++v) {
          EXPECT_EQ(q.cls[u] == q.cls[v], oracle[u][v])
              << "nodes " << u << ", " << v;
        }
      }
    }
  }
}

/// Larger adversarial shapes for the worklist: the path/ring "defect"
/// propagates one hop per refinement round, exercising hundreds of
/// worklist iterations with small frontiers.
TEST(QuotientOracle, SlowConvergenceShapesMatchOracle) {
  const std::vector<std::pair<const char*, Graph>> shapes = {
      {"path", make_path(24)}, {"ring", make_ring(25)}};
  for (const auto& [name, g] : shapes) {
    SCOPED_TRACE(name);
    const QuotientResult q = quotient_graph(g);
    const auto oracle = view_equivalence(g);
    for (NodeId u = 0; u < g.n(); ++u)
      for (NodeId v = 0; v < g.n(); ++v)
        EXPECT_EQ(q.cls[u] == q.cls[v], oracle[u][v])
            << "nodes " << u << ", " << v;
  }
}

/// Class ids are first-appearance-ordered over nodes 0..n-1 (downstream
/// consumers — representative choice, quotient node numbering — rely on
/// this exact numbering, and it pins the rewrite to the legacy palette).
TEST(QuotientOracle, ClassIdsAreFirstAppearanceOrdered) {
  for (const std::uint64_t seed : {5ULL, 6ULL}) {
    const auto g = run::build_family_graph("er", 12, seed);
    ASSERT_TRUE(g.has_value());
    const QuotientResult q = quotient_graph(*g);
    std::uint32_t seen = 0;
    for (NodeId v = 0; v < g->n(); ++v) {
      EXPECT_LE(q.cls[v], seen);
      if (q.cls[v] == seen) ++seen;
    }
    EXPECT_EQ(seen, q.num_classes);
  }
}

}  // namespace
}  // namespace bdg
