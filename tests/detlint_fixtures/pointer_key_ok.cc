// Rule 4 negative cases: stable-id keys, pointer VALUES (not keys), and
// sorts over pointers that compare a stable field. Must come back clean.
#include <algorithm>
#include <map>
#include <vector>

struct Node {
  int id = 0;
};

int stable_orders() {
  std::map<int, Node*> by_id;  // pointer as VALUE is fine
  std::vector<Node*> order;
  std::sort(order.begin(), order.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
  std::vector<int> ids;
  std::sort(ids.begin(), ids.end());
  return static_cast<int>(by_id.size() + order.size() + ids.size());
}
