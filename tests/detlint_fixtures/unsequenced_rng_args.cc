// Rule 2a seed: two RNG draws in one call argument list — C++ does not
// sequence argument evaluation, so the draw order (and thus every
// downstream baseline byte) is compiler-dependent.
#include <cstdint>

#include "util/rng.h"

std::uint64_t combine(std::uint64_t a, std::uint64_t b);
std::uint64_t mutate(bdg::util::Rng& rng);

std::uint64_t draws(bdg::util::Rng& rng) {
  std::uint64_t x = combine(rng.next(), rng.below(4));  // FLAG: unsequenced-rng
  x += combine(mutate(rng), rng.next());  // FLAG: unsequenced-rng
  return x;
}
