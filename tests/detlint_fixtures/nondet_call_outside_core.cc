// Rule 3 negative case: the SAME ambient calls are fine outside the
// deterministic core — run/bench layers own timing and environment.
// lint-as: src/run/fixture_timing.cpp
#include <chrono>
#include <cstdlib>

double wall_seconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const char* tag = std::getenv("BDG_RUN_TAG");
  (void)tag;
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
