// Rule 1 seed: range-for over hash containers leaks slot order.
#include <unordered_map>
#include <unordered_set>

#include "util/flat_hash.h"

int sum_values() {
  std::unordered_map<int, int> counts;
  counts[3] = 4;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;  // FLAG: unordered-iter
  std::unordered_set<int> ids;
  for (const int id : ids) total += id;  // FLAG: unordered-iter
  bdg::util::FlatMap<int, int> fm;
  for (const auto& kv : fm) total += kv.second;  // FLAG: unordered-iter
  return total;
}
