// Pragma hygiene seed: an allow pragma naming a rule that does not exist
// is flagged AND suppresses nothing.
#include <unordered_map>

int fold() {
  std::unordered_map<int, int> counts;
  int total = 0;
  // FLAG-NEXT: pragma
  // detlint: allow(unordered-iteration) typo'd rule name
  for (const auto& [k, v] : counts) total += v;  // FLAG: unordered-iter
  return total;
}
