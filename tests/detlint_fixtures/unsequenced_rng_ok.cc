// Rule 2 negative cases: hoisted draws, one draw per argument list, and a
// draw in the conditional's CONDITION (sequenced before either arm) are
// all legal. Must come back clean.
#include <cstdint>

#include "util/rng.h"

std::uint64_t combine(std::uint64_t a, std::uint64_t b);

std::uint64_t draws(bdg::util::Rng& rng, bool fast, std::uint64_t bound) {
  const std::uint64_t a = rng.next();
  const std::uint64_t b = rng.below(4);
  std::uint64_t x = combine(a, b);
  x += combine(x, rng.next());
  if (rng.chance(1, 2)) x += 1;
  const std::uint64_t arm = rng.chance(1, 2) ? x : bound;
  std::uint64_t jitter = 0;
  if (!fast && bound != 0) jitter = rng.below(bound);
  return x + arm + jitter;
}
