// Rule 1 pragma cases: an audited allow pragma (with a reason) silences
// the finding on its own line or the next; this fixture must come back
// clean.
#include <unordered_map>

#include "util/flat_hash.h"

int fold() {
  std::unordered_map<int, int> counts;
  int total = 0;
  // detlint: allow(unordered-iter) order-insensitive sum, audited here
  for (const auto& [k, v] : counts) total += v;
  bdg::util::FlatSet<int> members;
  members.for_each([&](int id) { total += id; });  // detlint: allow(unordered-iter) contains-only consumer
  return total;
}
