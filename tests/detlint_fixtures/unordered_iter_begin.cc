// Rule 1 seed: explicit iterator walks and for_each are iteration too.
#include <unordered_map>

#include "util/flat_hash.h"

int walk() {
  std::unordered_map<int, int> table;
  int total = 0;
  for (auto it = table.begin(); it != table.end(); ++it)  // FLAG: unordered-iter
    total += it->second;
  bdg::util::FlatSet<int> members;
  members.for_each([&](int id) { total += id; });  // FLAG: unordered-iter
  return total;
}
