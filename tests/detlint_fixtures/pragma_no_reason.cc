// Pragma hygiene seed: an allow pragma with no written reason is itself a
// finding (the reason IS the audit trail) — while still suppressing the
// site it covers, so exactly one finding comes back.
#include <unordered_map>

int fold() {
  std::unordered_map<int, int> counts;
  int total = 0;
  // FLAG-NEXT: pragma
  // detlint: allow(unordered-iter)
  for (const auto& [k, v] : counts) total += v;
  return total;
}
