// Rule 4 seed: pointer-valued keys order by address, which differs run to
// run (ASLR, allocation order) — the PR 8 merge-path cluster.
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

struct Node {
  int id = 0;
};

int pointer_orders() {
  std::map<Node*, int> rank;             // FLAG: pointer-key
  std::set<const Node*> seen;            // FLAG: pointer-key
  std::unordered_map<Node*, int> slots;  // FLAG: pointer-key
  std::vector<Node*> order;
  std::sort(order.begin(), order.end());  // FLAG: pointer-key
  std::vector<Node*> by_addr;
  std::sort(by_addr.begin(), by_addr.end(),  // FLAG: pointer-key
            [](const Node* a, const Node* b) { return a < b; });
  return static_cast<int>(rank.size() + seen.size() + slots.size());
}
