// Rule 1 pragma case: a file-scope allow covers every finding of that rule
// in the file. Must come back clean.
// detlint: allow-file(unordered-iter) fixture exercising file-scope allows
#include <unordered_map>

int sum_twice() {
  std::unordered_map<int, int> a;
  std::unordered_map<int, int> b;
  int total = 0;
  for (const auto& [k, v] : a) total += v;
  for (const auto& [k, v] : b) total += v;
  return total;
}
