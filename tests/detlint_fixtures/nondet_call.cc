// Rule 3 seed: wall-clock / environment / ambient-entropy calls inside the
// deterministic core. Linted under a src/core pseudo-path.
// lint-as: src/core/fixture_nondet.cpp
#include <chrono>
#include <cstdlib>
#include <random>

unsigned ambient() {
  std::random_device rd;  // FLAG: nondet-call
  unsigned x = rd();
  const auto now = std::chrono::system_clock::now();  // FLAG: nondet-call
  (void)now;
  const char* home = std::getenv("HOME");  // FLAG: nondet-call
  if (home != nullptr) ++x;
  x += static_cast<unsigned>(time(nullptr));  // FLAG: nondet-call
  return x;
}
