// Negative sweep: the lookup idioms the tree actually uses must never be
// flagged — find/contains/erase/operator[] on hash containers, std::for_each
// over a vector, draws split across statements. Must come back clean.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/flat_hash.h"
#include "util/rng.h"

int lookups(bdg::util::Rng& rng) {
  std::unordered_map<int, int> counts;
  counts[3] = 4;
  counts.erase(2);
  const auto it = counts.find(3);
  int total = it != counts.end() ? it->second : 0;

  bdg::util::FlatMap<int, std::vector<int>> buckets;
  auto& bucket = buckets[7];
  bucket.push_back(1);
  const std::vector<int>* hit = buckets.find(7);
  if (hit != nullptr) total += static_cast<int>(hit->size());

  std::vector<int> order;
  std::for_each(order.begin(), order.end(), [&](int v) { total += v; });
  for (const int v : order) total += v;
  std::sort(order.begin(), order.end());

  total += static_cast<int>(rng.below(4));
  return total;
}
