// Rule 2b seed: an RNG draw inside a conditional-expression operand — the
// exact PR 6 shape, where GCC 12 evaluated both arms of the conditional
// inside a co_await argument and the draw sequence diverged by compiler.
#include <cstdint>

#include "util/rng.h"

std::uint64_t jitter(bdg::util::Rng& rng, bool fast, std::uint64_t bound) {
  std::uint64_t base = 7;
  base += fast ? 0 : rng.below(bound);  // FLAG: unsequenced-rng
  std::uint64_t pick = bound != 0 ? rng.next() : 0;  // FLAG: unsequenced-rng
  return base + pick;
}
