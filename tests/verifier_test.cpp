// Verifier unit tests: Definition 1's per-node cap, termination checking,
// and the Theorem 8 generalized cap.
#include "core/verifier.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace bdg::core {
namespace {

sim::Proc settle_at(sim::Ctx ctx, std::vector<Port> walk) {
  for (const Port p : walk) co_await ctx.end_round(p);
}

sim::Proc never_finish(sim::Ctx ctx) {
  for (;;) co_await ctx.end_round(std::nullopt);
}

TEST(Verifier, AcceptsProperDispersion) {
  const Graph g = make_path(3);
  sim::Engine eng(g);
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.add_robot(2, sim::Faultiness::kHonest, 1,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.run(5);
  const VerifyResult res = verify_dispersion(eng);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.honest_count, 2u);
  EXPECT_EQ(res.worst_node_load, 1u);
  EXPECT_TRUE(res.detail.empty());
}

TEST(Verifier, RejectsCollision) {
  const Graph g = make_path(3);
  sim::Engine eng(g);
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.add_robot(2, sim::Faultiness::kHonest, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.run(5);
  const VerifyResult res = verify_dispersion(eng);
  EXPECT_FALSE(res.ok());
  EXPECT_FALSE(res.dispersed);
  EXPECT_EQ(res.worst_node_load, 2u);
  EXPECT_NE(res.detail.find("node 0"), std::string::npos);
}

TEST(Verifier, ByzantineRobotsDoNotCount) {
  const Graph g = make_path(3);
  sim::Engine eng(g);
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.add_robot(2, sim::Faultiness::kWeakByzantine, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.add_robot(3, sim::Faultiness::kStrongByzantine, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.run(5);
  const VerifyResult res = verify_dispersion(eng);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.honest_count, 1u);
}

TEST(Verifier, FlagsUnterminatedHonestRobot) {
  const Graph g = make_path(3);
  sim::Engine eng(g);
  eng.add_robot(1, sim::Faultiness::kHonest, 0,
                [](sim::Ctx c) { return settle_at(c, {}); });
  eng.add_robot(2, sim::Faultiness::kHonest, 1,
                [](sim::Ctx c) { return never_finish(c); });
  eng.run(5);
  const VerifyResult res = verify_dispersion(eng);
  EXPECT_TRUE(res.dispersed);
  EXPECT_FALSE(res.all_honest_done);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.detail.find("did not terminate"), std::string::npos);
}

TEST(Verifier, KDispersionUsesGeneralizedCap) {
  // 4 honest robots on 2 nodes: cap ceil((k-f)/n) = ceil(4/2) = 2 passes.
  const Graph g = make_path(2);
  sim::Engine eng(g);
  for (sim::RobotId id = 1; id <= 4; ++id)
    eng.add_robot(id, sim::Faultiness::kHonest, id <= 2 ? 0 : 1,
                  [](sim::Ctx c) { return settle_at(c, {}); });
  eng.run(5);
  EXPECT_TRUE(verify_k_dispersion(eng, 4, 0).ok());
  // With f = 2 the cap drops to 1: same layout now fails.
  EXPECT_FALSE(verify_k_dispersion(eng, 4, 2).ok());
}

}  // namespace
}  // namespace bdg::core
