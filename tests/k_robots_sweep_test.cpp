// Conformance tier for the k-robots sweep axis (Theorem 8): sweeping the
// (k, n, f) frontier across families must agree point-for-point with
// core::k_dispersion_feasible — every feasible point runs and verifies the
// generalized Definition 1 cap ceil((k-f)/n), every infeasible point is a
// structured skip naming Theorem 8, and nothing crashes the sweep.
#include <gtest/gtest.h>

#include "core/impossibility.h"
#include "core/scenario.h"
#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;

bool is_theorem8_skip(const PointResult& p) {
  return p.skipped && p.skip_reason.find("Theorem 8") != std::string::npos;
}

bool is_unsupported_k_skip(const PointResult& p) {
  return p.skipped &&
         p.skip_reason.find("does not support the k=") != std::string::npos;
}

// The frontier: k below, at, and above n, including every infeasible
// (k, n, f) combination (no clamping — the sweep must skip them itself).
TEST(KRobotsSweep, FrontierAgreesWithTheorem8Predicate) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kQuotient, Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered};
  spec.families = {"er", "ring", "grid", "tree", "complete"};
  spec.sizes = {6};
  spec.robot_counts = {3, 5, 6, 9, 12, 13};
  spec.byzantine_counts = {0, 1, 2, 4};
  spec.clamp_f_to_tolerance = false;  // probe the infeasible region on purpose
  spec.measure_seconds = false;

  const SweepResult result = run_sweep(spec);
  ASSERT_FALSE(result.points.empty());
  std::size_t feasible_ran = 0, infeasible_skipped = 0;
  for (const PointResult& p : result.points) {
    const std::uint32_t k = p.point.k;
    SCOPED_TRACE(core::to_string(p.point.algorithm) + " on " + p.point.family +
                 " n=" + std::to_string(p.point.n) + " k=" + std::to_string(k) +
                 " f=" + std::to_string(p.point.f));
    if (p.point.f >= k) {
      // Degenerate coordinates (no honest robot): skipped before the
      // Theorem 8 gate even gets asked.
      EXPECT_TRUE(p.skipped);
      continue;
    }
    const bool feasible =
        core::k_dispersion_feasible(k, p.point.n, p.point.f);
    if (!feasible) {
      // Infeasible points are structured skips naming Theorem 8 — never
      // executed, never failures.
      EXPECT_TRUE(is_theorem8_skip(p)) << "skip_reason: " << p.skip_reason;
      ++infeasible_skipped;
      continue;
    }
    EXPECT_FALSE(is_theorem8_skip(p))
        << "feasible point skipped as infeasible: " << p.skip_reason;
    if (p.skipped) {
      // The only legitimate feasible skips on this grid: an algorithm that
      // does not take the k axis at this (k, n) — consistent with the
      // published predicate — or Theorem 1 lacking a trivial-quotient
      // sample off the er family.
      if (is_unsupported_k_skip(p)) {
        EXPECT_FALSE(algorithm_supports_k(p.point.algorithm, k, p.point.n));
      } else {
        EXPECT_TRUE(p.point.algorithm == Algorithm::kQuotient &&
                    p.point.family != "er")
            << "unexpected skip: " << p.skip_reason;
      }
      continue;
    }
    EXPECT_TRUE(algorithm_supports_k(p.point.algorithm, k, p.point.n));
    // Feasible and supported: the point must have run (Theorem 8 says
    // dispersion is possible, so the sweep may not rule it out), and
    // within the algorithm's claimed tolerance it must verify the
    // generalized Definition 1 (at most ceil((k-f)/n) honest robots per
    // node, all honest robots terminated). Past the claim the outcome is
    // the algorithm's business — the unclamped grid probes there on
    // purpose, and a failure is a recorded result, not a crash.
    if (p.point.f <=
        core::max_tolerated_f_k(p.point.algorithm, p.point.n, k)) {
      EXPECT_TRUE(p.ok) << p.detail;
    }
    ++feasible_ran;
  }
  EXPECT_GT(feasible_ran, 0u) << "frontier sweep never ran a feasible point";
  EXPECT_GT(infeasible_skipped, 0u)
      << "frontier sweep never reached the infeasible region";
}

// k < n: every k-capable algorithm disperses undersubscribed instances at
// its clamped tolerance, across families.
TEST(KRobotsSweep, UndersubscribedInstancesDisperse) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kQuotient, Algorithm::kTournamentArbitrary,
                     Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered,
                     Algorithm::kCrashRealGathering};
  spec.families = {"er", "complete"};
  spec.sizes = {8};
  spec.robot_counts = {3, 5, 7};
  spec.seeds = {1, 2};
  spec.measure_seconds = false;
  const SweepResult result = run_sweep(spec);
  std::size_t ran = 0;
  for (const PointResult& p : result.points) {
    SCOPED_TRACE(core::to_string(p.point.algorithm) +
                 " k=" + std::to_string(p.point.k) +
                 " f=" + std::to_string(p.point.f) + " on " + p.point.family);
    ASSERT_FALSE(p.skipped) << p.skip_reason;
    EXPECT_TRUE(p.ok) << p.detail;
    ++ran;
  }
  EXPECT_EQ(ran, result.points.size());
  EXPECT_GT(ran, 0u);
}

// k > n: wave scheduling meets the generalized cap at the clamped
// tolerance (feasible by construction), with Byzantine interference.
TEST(KRobotsSweep, OversubscribedWavesDisperse) {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kQuotient, Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered};
  spec.families = {"er", "ring"};
  spec.sizes = {6};
  spec.robot_counts = {9, 12};
  spec.seeds = {1, 2};
  spec.measure_seconds = false;
  const SweepResult result = run_sweep(spec);
  std::size_t ran = 0;
  for (const PointResult& p : result.points) {
    SCOPED_TRACE(core::to_string(p.point.algorithm) +
                 " k=" + std::to_string(p.point.k) +
                 " f=" + std::to_string(p.point.f) + " on " + p.point.family);
    if (p.skipped) {
      // Theorem 1 may lack a trivial-quotient sample off er; everything
      // else must run.
      EXPECT_TRUE(p.point.algorithm == Algorithm::kQuotient &&
                  p.point.family != "er")
          << "unexpected skip: " << p.skip_reason;
      continue;
    }
    EXPECT_TRUE(p.ok) << p.detail;
    ++ran;
  }
  EXPECT_GT(ran, 0u);
}

// The k axis defaults (robot_counts empty, or explicit 0 / n entries)
// collapse onto the Table 1 grid: same derived seeds, same results.
TEST(KRobotsSweep, DefaultKMatchesLegacyGrid) {
  SweepSpec legacy;
  legacy.algorithms = {Algorithm::kThreeGroupGathered};
  legacy.families = {"er"};
  legacy.sizes = {8};
  legacy.seeds = {1, 2};
  legacy.measure_seconds = false;
  SweepSpec explicit_k = legacy;
  explicit_k.robot_counts = {0, 8};  // both spellings of "k = n"
  const SweepResult a = run_sweep(legacy);
  const SweepResult b = run_sweep(explicit_k);
  ASSERT_EQ(a.points.size(), b.points.size());  // 0 and 8 dedupe to one
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].derived_seed, b.points[i].derived_seed);
    EXPECT_EQ(a.points[i].ok, b.points[i].ok);
    EXPECT_EQ(a.points[i].stats.rounds, b.points[i].stats.rounds);
    EXPECT_EQ(a.points[i].stats.moves, b.points[i].stats.moves);
    EXPECT_EQ(b.points[i].point.k, 8u);
  }
}

// run_scenario's own k plumbing: the generalized verifier is used, and an
// infeasible configuration run directly (the sweep would have skipped it)
// reports a violated cap instead of crashing.
TEST(KRobotsSweep, ScenarioLevelKRuns) {
  const auto g = build_family_graph("er", 6, 99);
  ASSERT_TRUE(g.has_value());
  core::ScenarioConfig cfg;
  cfg.algorithm = core::Algorithm::kTournamentGathered;
  cfg.num_robots = 9;  // waves = 2, cap = ceil(9/6) = 2
  cfg.num_byzantine = 0;
  cfg.seed = 5;
  const core::ScenarioResult res = core::run_scenario(*g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  EXPECT_EQ(res.verify.honest_count, 9u);
  EXPECT_LE(res.verify.worst_node_load, 2u);
}

// max_tolerated_f_k: reduces to the Table 1 tolerance at k = n, respects
// the robot count below n, and never exceeds the Theorem 8 feasibility
// residue above n.
TEST(KRobotsSweep, GeneralizedToleranceBounds) {
  for (const Algorithm a :
       {Algorithm::kQuotient, Algorithm::kTournamentGathered,
        Algorithm::kThreeGroupGathered, Algorithm::kStrongGathered}) {
    SCOPED_TRACE(core::to_string(a));
    EXPECT_EQ(core::max_tolerated_f_k(a, 8, 8), core::max_tolerated_f(a, 8));
    EXPECT_EQ(core::max_tolerated_f_k(a, 8, 0), core::max_tolerated_f(a, 8));
    // k < n: bounded by the robot population, not the graph.
    EXPECT_LE(core::max_tolerated_f_k(a, 12, 4), 3u);
    // k > n: the clamped f always stays Theorem 8-feasible.
    for (const std::uint32_t k : {9u, 12u, 16u, 17u}) {
      const std::uint32_t f = core::max_tolerated_f_k(a, 8, k);
      if (f < k) {
        EXPECT_TRUE(core::k_dispersion_feasible(k, 8, f))
            << "k=" << k << " f=" << f;
      }
    }
  }
}

}  // namespace
}  // namespace bdg::run
