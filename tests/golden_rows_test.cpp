// Golden conformance tier: the seven Table 1 theorem rows, asserted on
// small n through the run/ sweep runner. Each row must (a) disperse at its
// maximum claimed Byzantine tolerance against the row bench's adversary,
// (b) stay within a fixed multiple of the claimed asymptotic bound, and
// (c) stay within the plan's own termination bound. The margins are
// calibrated against the deterministic sweep seeding (SweepSpec::base_seed
// default); they are goldens — a change that moves a row past its margin
// is a behavioral regression (or an intentional reseeding, which should
// update this file).
#include <gtest/gtest.h>

#include <cmath>

#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;
using core::ByzStrategy;

struct GoldenRow {
  const char* name;
  Algorithm algorithm;
  ByzStrategy strategy;
  std::uint32_t n;
  double (*bound)(std::uint32_t n);  ///< claimed asymptotic bound
  double margin;  ///< measured/bound headroom at this n (golden)
};

double n3(std::uint32_t n) { return static_cast<double>(n) * n * n; }
double n4(std::uint32_t n) { return static_cast<double>(n) * n * n * n; }
double gather_n4(std::uint32_t n) {
  const double lambda = std::ceil(std::log2(static_cast<double>(n) * n));
  return 4.0 * std::pow(n, 4) * lambda * (2.0 * n + 2.0);
}
double sqrt_8n3(std::uint32_t n) { return 8.0 * std::pow(n, 3); }
double exp2n(std::uint32_t n) { return std::pow(2.0, n); }

class GoldenRows : public ::testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenRows, RoundBoundHolds) {
  const GoldenRow& row = GetParam();

  SweepSpec spec;
  spec.algorithms = {row.algorithm};
  spec.families = {"er"};
  spec.require_trivial_quotient = true;  // all rows on the same family
  spec.er_edge_probability = 0.0;        // sparse regime, as the benches run
  spec.sizes = {row.n};
  spec.strategy = row.strategy;
  spec.strategy_follows_algorithm = false;

  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 1u);
  const PointResult& p = result.points[0];
  ASSERT_FALSE(p.skipped) << p.skip_reason;

  EXPECT_EQ(p.point.f, core::max_tolerated_f(row.algorithm, row.n));
  EXPECT_TRUE(p.ok) << p.detail;
  EXPECT_LE(p.stats.rounds, p.planned_rounds + 16);
  const double limit = row.margin * row.bound(row.n);
  EXPECT_LE(p.stats.rounds.to_double(), limit)
      << "measured " << p.stats.rounds << " rounds vs bound "
      << row.bound(row.n) << " * margin " << row.margin;
  // The margin must stay meaningful: if measurements drift far below it,
  // tighten the golden rather than letting it rot.
  EXPECT_GE(p.stats.rounds.to_double() * 16.0, limit)
      << "measured " << p.stats.rounds
      << " rounds; margin is > 16x too loose, tighten it";
}

std::string row_name(const ::testing::TestParamInfo<GoldenRow>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, GoldenRows,
    ::testing::Values(
        // Margins calibrated 2026-07 against the default sweep seeding:
        // measured/bound was 1.13, 1.04, 1.16, 16.1, 26.9, 19.4, 9.2.
        GoldenRow{"row1_quotient", Algorithm::kQuotient,
                  ByzStrategy::kFakeSettler, 8, n3, 1.5},
        GoldenRow{"row2_half_arbitrary", Algorithm::kTournamentArbitrary,
                  ByzStrategy::kFakeSettler, 8, gather_n4, 1.5},
        GoldenRow{"row3_sqrt_arbitrary", Algorithm::kSqrtArbitrary,
                  ByzStrategy::kFakeSettler, 9, sqrt_8n3, 1.5},
        GoldenRow{"row4_half_gathered", Algorithm::kTournamentGathered,
                  ByzStrategy::kMapLiar, 8, n4, 24.0},
        GoldenRow{"row5_third_gathered", Algorithm::kThreeGroupGathered,
                  ByzStrategy::kMapLiar, 9, n3, 40.0},
        GoldenRow{"row6_strong_arbitrary", Algorithm::kStrongArbitrary,
                  ByzStrategy::kSpoofer, 8, exp2n, 30.0},
        GoldenRow{"row7_strong_gathered", Algorithm::kStrongGathered,
                  ByzStrategy::kSpoofer, 8, n3, 14.0}),
    row_name);

}  // namespace
}  // namespace bdg::run
