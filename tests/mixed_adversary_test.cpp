// Heterogeneous adversaries: different Byzantine robots running different
// strategies in one execution, across the algorithms' tolerance budgets —
// and the sweep-level strategy_mixes axis that drives them grid-wide.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "graph/generators.h"
#include "run/sweep.h"

namespace bdg::core {
namespace {

TEST(MixedAdversary, ThreeGroupWithThreeDifferentLiars) {
  Rng rng(2);
  const Graph g = shuffle_ports(make_connected_er(12, 0.35, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kThreeGroupGathered;
  cfg.num_byzantine = 3;  // floor(12/3)-1
  cfg.strategies = {ByzStrategy::kMapLiar, ByzStrategy::kFakeSettler,
                    ByzStrategy::kSilentSettler};
  cfg.seed = 77;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(MixedAdversary, TournamentWithAlternatingStrategies) {
  const Graph g = make_grid(2, 4);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 3;
  cfg.strategies = {ByzStrategy::kMapLiar, ByzStrategy::kIntentSpammer};
  cfg.seed = 5;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(MixedAdversary, StrongMixOfSpooferAndLiar) {
  const Graph g = make_torus(4, 4);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongGathered;
  cfg.num_byzantine = 3;  // floor(16/4)-1
  cfg.strategies = {ByzStrategy::kSpoofer, ByzStrategy::kMapLiar,
                    ByzStrategy::kSpoofer};
  cfg.seed = 9;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(MixedAdversary, SingletonListEquivalentToScalar) {
  Rng rng(4);
  const Graph g = shuffle_ports(make_connected_er(9, 0.45, rng), rng);
  ScenarioConfig scalar;
  scalar.algorithm = Algorithm::kThreeGroupGathered;
  scalar.num_byzantine = 2;
  scalar.strategy = ByzStrategy::kFakeSettler;
  scalar.seed = 31;
  ScenarioConfig list = scalar;
  list.strategies = {ByzStrategy::kFakeSettler};
  const ScenarioResult a = run_scenario(g, scalar);
  const ScenarioResult b = run_scenario(g, list);
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.verify.ok(), b.verify.ok());
}

TEST(MixedAdversary, QuotientAgainstTheFullZoo) {
  // Theorem 1 at f = n-1: every honest-robot slot sees a different lie.
  Rng rng(8);
  Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kQuotient;
  cfg.num_byzantine = 7;
  cfg.strategies = weak_strategies();  // all seven, round-robin
  cfg.seed = 15;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

// SweepSpec::strategy_mixes: one grid pits every algorithm against several
// heterogeneous adversary mixes at once; every point must still disperse.
TEST(MixedAdversary, SweepMixAxisDisperses) {
  run::SweepSpec spec;
  spec.algorithms = {Algorithm::kQuotient, Algorithm::kTournamentGathered,
                     Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {9};
  spec.strategy_mixes = {
      {ByzStrategy::kMapLiar, ByzStrategy::kFakeSettler},
      {ByzStrategy::kSquatter, ByzStrategy::kSilentSettler,
       ByzStrategy::kIntentSpammer},
      {}};  // an empty mix = the scalar strategy, as a control
  spec.seeds = {1, 2};
  spec.measure_seconds = false;
  const run::SweepResult result = run::run_sweep(spec);
  ASSERT_EQ(result.points.size(), 3u * 3u * 2u);
  std::size_t ran = 0;
  for (const run::PointResult& p : result.points) {
    SCOPED_TRACE(to_string(p.point.algorithm) + " mix size " +
                 std::to_string(p.point.mix.size()) + " on " + p.point.family);
    ASSERT_FALSE(p.skipped) << p.skip_reason;
    EXPECT_TRUE(p.ok) << p.detail;
    ++ran;
  }
  EXPECT_EQ(ran, result.points.size());
  // The mix axis splits aggregates: one cell per (algorithm, mix).
  ASSERT_EQ(result.cells.size(), 3u * 3u);
}

// The mix rides the per-point derived seed and the scenario config: the
// same mix in a different order is the same multiset — identical seeds,
// identical executions (expand_grid canonicalizes, point_seed hashes
// commutatively).
TEST(MixedAdversary, MixIsReorderInvariant) {
  run::SweepSpec forward;
  forward.algorithms = {Algorithm::kThreeGroupGathered};
  forward.families = {"er"};
  forward.sizes = {9};
  forward.strategy_mixes = {{ByzStrategy::kMapLiar, ByzStrategy::kCrash,
                             ByzStrategy::kFakeSettler}};
  forward.measure_seconds = false;
  run::SweepSpec reversed = forward;
  reversed.strategy_mixes = {{ByzStrategy::kFakeSettler, ByzStrategy::kCrash,
                              ByzStrategy::kMapLiar}};
  const run::SweepResult a = run::run_sweep(forward);
  const run::SweepResult b = run::run_sweep(reversed);
  ASSERT_EQ(a.points.size(), 1u);
  ASSERT_EQ(b.points.size(), 1u);
  EXPECT_EQ(a.points[0].derived_seed, b.points[0].derived_seed);
  EXPECT_EQ(a.points[0].point.mix, b.points[0].point.mix);
  EXPECT_EQ(a.points[0].stats.moves, b.points[0].stats.moves);
  EXPECT_EQ(a.points[0].stats.messages, b.points[0].stats.messages);
  EXPECT_EQ(a.points[0].ok, b.points[0].ok);
}

}  // namespace
}  // namespace bdg::core
