// Heterogeneous adversaries: different Byzantine robots running different
// strategies in one execution, across the algorithms' tolerance budgets.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

TEST(MixedAdversary, ThreeGroupWithThreeDifferentLiars) {
  Rng rng(2);
  const Graph g = shuffle_ports(make_connected_er(12, 0.35, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kThreeGroupGathered;
  cfg.num_byzantine = 3;  // floor(12/3)-1
  cfg.strategies = {ByzStrategy::kMapLiar, ByzStrategy::kFakeSettler,
                    ByzStrategy::kSilentSettler};
  cfg.seed = 77;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(MixedAdversary, TournamentWithAlternatingStrategies) {
  const Graph g = make_grid(2, 4);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kTournamentGathered;
  cfg.num_byzantine = 3;
  cfg.strategies = {ByzStrategy::kMapLiar, ByzStrategy::kIntentSpammer};
  cfg.seed = 5;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(MixedAdversary, StrongMixOfSpooferAndLiar) {
  const Graph g = make_torus(4, 4);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kStrongGathered;
  cfg.num_byzantine = 3;  // floor(16/4)-1
  cfg.strategies = {ByzStrategy::kSpoofer, ByzStrategy::kMapLiar,
                    ByzStrategy::kSpoofer};
  cfg.seed = 9;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(MixedAdversary, SingletonListEquivalentToScalar) {
  Rng rng(4);
  const Graph g = shuffle_ports(make_connected_er(9, 0.45, rng), rng);
  ScenarioConfig scalar;
  scalar.algorithm = Algorithm::kThreeGroupGathered;
  scalar.num_byzantine = 2;
  scalar.strategy = ByzStrategy::kFakeSettler;
  scalar.seed = 31;
  ScenarioConfig list = scalar;
  list.strategies = {ByzStrategy::kFakeSettler};
  const ScenarioResult a = run_scenario(g, scalar);
  const ScenarioResult b = run_scenario(g, list);
  EXPECT_EQ(a.stats.moves, b.stats.moves);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.verify.ok(), b.verify.ok());
}

TEST(MixedAdversary, QuotientAgainstTheFullZoo) {
  // Theorem 1 at f = n-1: every honest-robot slot sees a different lie.
  Rng rng(8);
  Graph g = shuffle_ports(make_connected_er(8, 0.45, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kQuotient;
  cfg.num_byzantine = 7;
  cfg.strategies = weak_strategies();  // all seven, round-robin
  cfg.seed = 15;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

}  // namespace
}  // namespace bdg::core
