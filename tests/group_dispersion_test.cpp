// Theorem 4 (three groups, floor(n/3)-1) and Theorem 5 (O(sqrt n),
// arbitrary start) end-to-end.
#include "core/group_dispersion.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/tournament_dispersion.h"
#include "graph/generators.h"

namespace bdg::core {
namespace {

class ThreeGroup
    : public ::testing::TestWithParam<std::tuple<ByzStrategy, std::uint32_t>> {
};

TEST_P(ThreeGroup, Row5DispersesUnderAdversary) {
  const auto [strategy, f] = GetParam();
  Rng rng(7);
  const Graph g = shuffle_ports(make_connected_er(9, 0.4, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kThreeGroupGathered;
  cfg.num_byzantine = f;  // tolerance floor(9/3)-1 = 2
  cfg.strategy = strategy;
  cfg.seed = 31;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, ThreeGroup,
    ::testing::Combine(::testing::Values(ByzStrategy::kMapLiar,
                                         ByzStrategy::kFakeSettler,
                                         ByzStrategy::kSilentSettler),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_f" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ThreeGroup, ByzantineCanCorruptOneGroupOnly) {
  // All Byzantine robots take the smallest IDs (the whole of group A):
  // the A-run may be garbage, but runs 2 and 3 still produce the correct
  // map, so the 2-of-3 majority fixes everything (the paper's argument).
  const Graph g = make_ring(9);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kThreeGroupGathered;
  cfg.num_byzantine = 2;
  cfg.byz_smallest_ids = true;
  cfg.strategy = ByzStrategy::kMapLiar;
  cfg.seed = 12;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(ThreeGroup, FasterThanTournament) {
  // The design point of Theorem 4: O(1) group runs instead of O(n)
  // pairings. Compare planned round budgets directly.
  Rng rng(3);
  const Graph g = shuffle_ports(make_connected_er(9, 0.4, rng), rng);
  std::vector<sim::RobotId> ids;
  for (std::size_t i = 0; i < g.n(); ++i) ids.push_back(10 + i);
  const gather::CostModel cm{true};
  const auto three = plan_three_group_dispersion(g, ids, cm);
  const auto tour = plan_tournament_dispersion(g, ids, true, 2, cm);
  EXPECT_LT(three.total_rounds, tour.total_rounds);
}

TEST(SqrtArbitrary, Row3GatherThenOneRun) {
  // n = 25 sits inside the paper's asymptotic regime: f = sqrt(25) = 5
  // leaves honest majorities in both halves even when all Byzantine IDs
  // land in one group.
  Rng rng(8);
  const Graph g = shuffle_ports(make_connected_er(25, 0.0, rng), rng);
  ScenarioConfig cfg;
  cfg.algorithm = Algorithm::kSqrtArbitrary;
  cfg.num_byzantine = max_tolerated_f(Algorithm::kSqrtArbitrary, 25);
  EXPECT_EQ(cfg.num_byzantine, 5u);
  cfg.strategy = ByzStrategy::kFakeSettler;
  cfg.seed = 19;
  const ScenarioResult res = run_scenario(g, cfg);
  EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
}

TEST(SqrtArbitrary, AllWeakStrategies) {
  const Graph g = make_grid(3, 3);
  const std::uint32_t f = max_tolerated_f(Algorithm::kSqrtArbitrary, 9);
  EXPECT_EQ(f, 1u);  // small-n regime: group-majority is the binding bound
  for (const ByzStrategy s : weak_strategies()) {
    SCOPED_TRACE(to_string(s));
    ScenarioConfig cfg;
    cfg.algorithm = Algorithm::kSqrtArbitrary;
    cfg.num_byzantine = f;
    cfg.strategy = s;
    cfg.seed = 4;
    const ScenarioResult res = run_scenario(g, cfg);
    EXPECT_TRUE(res.verify.ok()) << res.verify.detail;
  }
}

TEST(SqrtArbitrary, CheaperGatheringThanTheorem2) {
  const gather::CostModel cm{true};
  // The point of Theorem 5: [27]'s gathering charge beats [24]'s.
  EXPECT_LT(cm.rounds(gather::GatherKind::kSqrtHirose, 16, 4, 8),
            cm.rounds(gather::GatherKind::kWeakDPP, 16, 7, 8));
}

}  // namespace
}  // namespace bdg::core
