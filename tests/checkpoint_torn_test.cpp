// Crash-consistency tier for the JSON-lines checkpoint: a checkpoint
// truncated at EVERY byte offset of its final record (what a crash or full
// disk mid-append leaves behind) must load all preceding records, skip the
// torn tail loudly (counted, surfaced in the report), and never fabricate
// a result from a prefix. Plus the append-side guarantee: a failed write
// (full disk, closed descriptor) throws an error naming the path instead
// of silently losing the point.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "run/report.h"
#include "run/sweep.h"

namespace bdg::run {
namespace {

using core::Algorithm;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.algorithms = {Algorithm::kThreeGroupGathered};
  spec.families = {"er"};
  spec.sizes = {6};
  spec.seeds = {1, 2, 3};
  spec.threads = 1;
  spec.measure_seconds = false;
  return spec;
}

// Truncate a real 3-record checkpoint at every byte offset of its last
// record: every cut must yield exactly the two intact records — except
// cutting only the final newline, which leaves a complete record — and
// the torn line must be counted in stats.malformed, never parsed.
TEST(CheckpointTorn, EveryTruncationOffsetOfLastRecordIsSkippedLoudly) {
  SweepSpec spec = small_spec();
  spec.checkpoint_path = temp_path("torn_full.jsonl");
  std::remove(spec.checkpoint_path.c_str());
  const SweepResult full = run_sweep(spec);
  ASSERT_EQ(full.points.size(), 3u);
  const std::uint64_t fp = spec_fingerprint(spec);

  const std::string content = slurp(spec.checkpoint_path);
  ASSERT_FALSE(content.empty());
  ASSERT_EQ(content.back(), '\n');
  // Start of the last record: byte after the second-to-last newline.
  const std::size_t last_start = content.rfind('\n', content.size() - 2) + 1;
  ASSERT_GT(last_start, 0u);
  ASSERT_LT(last_start, content.size() - 1);

  for (std::size_t cut = last_start; cut < content.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    std::istringstream truncated(content.substr(0, cut));
    CheckpointLoadStats stats;
    const auto loaded = load_checkpoint(truncated, fp, &stats);
    EXPECT_EQ(stats.foreign, 0u);
    if (cut == last_start) {
      // Clean cut right after the previous newline: two whole records, no
      // torn line at all.
      EXPECT_EQ(stats.loaded, 2u);
      EXPECT_EQ(stats.malformed, 0u);
    } else if (cut == content.size() - 1) {
      // Only the trailing newline is missing: the record is complete and
      // must load (a writer killed between write and newline loses
      // nothing).
      EXPECT_EQ(stats.loaded, 3u);
      EXPECT_EQ(stats.malformed, 0u);
    } else {
      // A genuinely torn tail: skipped AND counted.
      EXPECT_EQ(stats.loaded, 2u);
      EXPECT_EQ(stats.malformed, 1u);
    }
    // Whatever loaded must bit-match a real completed point — a prefix
    // must never resurface as a (wrong) result.
    EXPECT_EQ(loaded.size(), stats.loaded);
    loaded.for_each([&](const std::uint64_t seed, const PointResult& result) {
      bool matches = false;
      for (const PointResult& p : full.points)
        if (p.derived_seed == seed && p.stats.moves == result.stats.moves &&
            p.detail == result.detail && same_point(p.point, result.point))
          matches = true;
      EXPECT_TRUE(matches) << "derived seed " << seed;
    });
  }
  std::remove(spec.checkpoint_path.c_str());
}

// End-to-end: resuming from a checkpoint with a torn tail re-runs the torn
// point, surfaces the count in SweepResult and the JSON report, and the
// final reports match the untruncated sweep.
TEST(CheckpointTorn, ResumeFromTornTailReRunsAndSurfacesCount) {
  SweepSpec spec = small_spec();
  spec.checkpoint_path = temp_path("torn_resume.jsonl");
  std::remove(spec.checkpoint_path.c_str());
  const SweepResult full = run_sweep(spec);
  ASSERT_EQ(full.torn_checkpoint_lines, 0u);

  const std::string content = slurp(spec.checkpoint_path);
  const std::size_t last_start = content.rfind('\n', content.size() - 2) + 1;
  const std::size_t cut = last_start + (content.size() - 1 - last_start) / 2;
  {
    std::ofstream os(spec.checkpoint_path,
                     std::ios::binary | std::ios::trunc);
    os << content.substr(0, cut);
  }

  const SweepResult resumed = run_sweep(spec);
  EXPECT_EQ(resumed.torn_checkpoint_lines, 1u);
  EXPECT_EQ(resumed.from_checkpoint, 2u);

  std::ostringstream a, b;
  write_points_csv(a, full);
  write_points_csv(b, resumed);
  EXPECT_EQ(a.str(), b.str());
  std::ostringstream json;
  write_json(json, resumed);
  EXPECT_NE(json.str().find("\"torn_checkpoint_lines\": 1"),
            std::string::npos)
      << "the loss must be loud in the report";
  std::remove(spec.checkpoint_path.c_str());
}

// Crash-consistent appends: when the stream goes bad (closed descriptor
// here, full disk below) append_checkpoint_line throws an error naming
// the checkpoint path — a lost point is never silent.
TEST(CheckpointTorn, AppendToDeadStreamThrowsNamingThePath) {
  PointResult p;
  p.point.family = "er";
  std::ofstream never_opened;  // first write fails => stream goes bad
  try {
    append_checkpoint_line(never_opened, "/somewhere/ck.jsonl", p, 1);
    FAIL() << "expected append_checkpoint_line to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/somewhere/ck.jsonl"),
              std::string::npos)
        << e.what();
  }
}

TEST(CheckpointTorn, AppendToFullDiskThrowsNamingThePath) {
  std::ofstream full_disk("/dev/full");
  if (!full_disk.is_open()) GTEST_SKIP() << "/dev/full not available";
  PointResult p;
  p.point.family = "er";
  try {
    // One record is smaller than the stream buffer, so the write itself
    // succeeds; the flush inside append must surface ENOSPC.
    append_checkpoint_line(full_disk, "/dev/full", p, 1);
    FAIL() << "expected append_checkpoint_line to throw on ENOSPC";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace bdg::run
