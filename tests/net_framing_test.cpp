// net/ layer unit tier: length-prefixed framing across arbitrary chunk
// boundaries, the oversize guard, loopback transport round-trips, and the
// backoff dialer's give-up path.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "net/framing.h"
#include "net/transport.h"
#include "util/rng.h"

namespace bdg::net {
namespace {

TEST(Framing, EncodesBigEndianLengthPrefix) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(Framing, ReassemblesAcrossEveryChunkBoundary) {
  const std::string a = encode_frame("first frame");
  const std::string b = encode_frame("");  // empty payloads are legal
  const std::string c = encode_frame(std::string(3000, 'x'));
  const std::string stream = a + b + c;

  // Feed the concatenated stream split at every possible boundary: the
  // reader must produce the same three payloads regardless of chunking.
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameReader reader;
    reader.feed(stream.data(), cut);
    std::vector<std::string> got;
    while (auto f = reader.next()) got.push_back(std::move(*f));
    reader.feed(stream.data() + cut, stream.size() - cut);
    while (auto f = reader.next()) got.push_back(std::move(*f));
    ASSERT_EQ(got.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(got[0], "first frame");
    EXPECT_EQ(got[1], "");
    EXPECT_EQ(got[2], std::string(3000, 'x'));
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(Framing, ByteAtATimeFeedStillDecodes) {
  const std::string frame = encode_frame("slow drip");
  FrameReader reader;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(frame.data() + i, 1);
    EXPECT_FALSE(reader.next().has_value());
  }
  reader.feed(frame.data() + frame.size() - 1, 1);
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "slow drip");
}

TEST(Framing, OversizedLengthPrefixThrowsInsteadOfAllocating) {
  FrameReader reader;
  const char huge[4] = {'\x7f', '\x7f', '\x7f', '\x7f'};
  reader.feed(huge, 4);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST(Transport, LoopbackFrameRoundTrip) {
  Listener listener(0);
  ASSERT_GT(listener.port(), 0);
  auto client = dial("127.0.0.1", listener.port());
  ASSERT_NE(client, nullptr);
  std::unique_ptr<Connection> server;
  for (int i = 0; i < 100 && !server; ++i) {
    server = listener.accept();
    if (!server) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_NE(server, nullptr);

  ASSERT_TRUE(client->send_frame("ping"));
  std::string payload;
  ASSERT_EQ(server->recv_frame(payload, 2000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "ping");
  ASSERT_TRUE(server->send_frame("pong"));
  ASSERT_EQ(client->recv_frame(payload, 2000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "pong");

  // Peer close: frames sent before the close are still handed out, then
  // the reader reports kClosed.
  ASSERT_TRUE(client->send_frame("last words"));
  client->shutdown();
  ASSERT_EQ(server->recv_frame(payload, 2000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "last words");
  EXPECT_EQ(server->recv_frame(payload, 2000), RecvStatus::kClosed);
}

TEST(Transport, RecvTimesOutWithoutTraffic) {
  Listener listener(0);
  auto client = dial("127.0.0.1", listener.port());
  ASSERT_NE(client, nullptr);
  std::string payload;
  EXPECT_EQ(client->recv_frame(payload, 30), RecvStatus::kTimeout);
}

TEST(Transport, ClosedListenerRefusesDials) {
  Listener listener(0);
  const std::uint16_t port = listener.port();
  listener.close();
  EXPECT_EQ(dial("127.0.0.1", port), nullptr);
}

TEST(Transport, BackoffDialerGivesUpAgainstDeadPort) {
  Listener listener(0);
  const std::uint16_t dead_port = listener.port();
  listener.close();  // nothing listens here now

  BackoffConfig cfg;
  cfg.attempts = 4;
  cfg.base_ms = 1;
  cfg.max_ms = 4;
  Rng jitter(1);
  EXPECT_EQ(dial_with_backoff("127.0.0.1", dead_port, cfg, jitter), nullptr);

  // Cancellation is polled before every attempt.
  int polls = 0;
  EXPECT_EQ(dial_with_backoff("127.0.0.1", dead_port, cfg, jitter,
                              [&polls] {
                                ++polls;
                                return true;
                              }),
            nullptr);
  EXPECT_EQ(polls, 1);
}

}  // namespace
}  // namespace bdg::net
