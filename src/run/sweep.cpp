#include "run/sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/quotient.h"
#include "util/parallel.h"

namespace bdg::run {
namespace {

// splitmix64 step — the same finalizer Rng seeds with, reused here so a
// point's seed is a platform-stable function of its coordinates only.
std::uint64_t mix(std::uint64_t state, std::uint64_t value) {
  std::uint64_t z = state + 0x9E3779B97F4A7C15ULL + value;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Largest divisor of n that is <= sqrt(n) (>= 1).
std::uint32_t balanced_rows(std::uint32_t n) {
  std::uint32_t best = 1;
  for (std::uint32_t r = 1; r * r <= n; ++r)
    if (n % r == 0) best = r;
  return best;
}

/// Divisor r of n with 3 <= r and 3 <= n/r, closest to sqrt(n); 0 if none.
std::uint32_t torus_rows(std::uint32_t n) {
  std::uint32_t best = 0;
  for (std::uint32_t r = 3; r * r <= n; ++r)
    if (n % r == 0 && n / r >= 3) best = r;
  return best;
}

bool is_power_of_two(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// One sample of the family (no quotient requirement yet).
Graph sample(const std::string& family, std::uint32_t n, Rng& rng,
             double er_p) {
  if (family == "er")
    return shuffle_ports(make_connected_er(n, er_p, rng), rng);
  if (family == "ring") return shuffle_ports(make_ring(n), rng);
  if (family == "oriented_ring") return make_oriented_ring(n);
  if (family == "grid") {
    const std::uint32_t r = balanced_rows(n);
    return make_grid(r, n / r);
  }
  if (family == "tree") return make_random_tree(n, rng);
  if (family == "complete") return make_complete(n);
  if (family == "star") return make_star(n);
  if (family == "lollipop") return make_lollipop(n);
  if (family == "torus") {
    const std::uint32_t r = torus_rows(n);
    return make_torus(r, n / r);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 0;
    while ((1U << dim) < n) ++dim;
    return make_hypercube(dim);
  }
  if (family == "regular") return shuffle_ports(make_random_regular(n, 3, rng), rng);
  throw std::invalid_argument("unknown graph family: " + family);
}

core::ByzStrategy strategy_for(const SweepSpec& spec, core::Algorithm a) {
  const auto it = spec.strategy_overrides.find(a);
  if (it != spec.strategy_overrides.end()) return it->second;
  if (!spec.strategy_follows_algorithm) return spec.strategy;
  if (core::handles_strong(a)) return core::ByzStrategy::kSpoofer;
  if (a == core::Algorithm::kCrashRealGathering) return core::ByzStrategy::kCrash;
  return spec.strategy;
}

}  // namespace

const std::vector<std::string>& known_families() {
  static const std::vector<std::string> kFamilies = {
      "er",   "ring",     "oriented_ring", "grid",  "tree",    "complete",
      "star", "lollipop", "torus",         "hypercube", "regular"};
  return kFamilies;
}

bool family_supports(const std::string& family, std::uint32_t n) {
  if (family == "er") return n >= 2;  // make_connected_er rejects n < 2
  if (family == "tree" || family == "grid") return n >= 1;
  if (family == "ring" || family == "oriented_ring") return n >= 3;
  if (family == "complete" || family == "star") return n >= 2;
  if (family == "lollipop") return n >= 4;
  if (family == "torus") return torus_rows(n) != 0;
  if (family == "hypercube") return n >= 2 && is_power_of_two(n);
  if (family == "regular") return n >= 4 && n % 2 == 0;
  return false;
}

std::optional<Graph> build_family_graph(const std::string& family,
                                        std::uint32_t n, std::uint64_t seed,
                                        bool need_trivial_quotient,
                                        double er_edge_probability) {
  if (!family_supports(family, n)) return std::nullopt;
  Rng rng(seed);
  if (!need_trivial_quotient) return sample(family, n, rng, er_edge_probability);
  // Theorem 1 needs all views distinct; resample until the quotient is
  // trivial. Families with random structure re-roll on their own; the
  // deterministic ones get fresh port shuffles instead — except
  // oriented_ring, whose port orientation IS the family (and whose
  // quotient is a single node by construction, so it can never satisfy
  // the request).
  const bool reshuffle = family == "grid" || family == "complete" ||
                         family == "star" || family == "lollipop" ||
                         family == "torus" || family == "hypercube";
  if (family == "oriented_ring") return std::nullopt;
  for (int attempt = 0; attempt < 128; ++attempt) {
    Graph g = sample(family, n, rng, er_edge_probability);
    if (reshuffle) g = shuffle_ports(g, rng);
    if (has_trivial_quotient(g)) return g;
  }
  return std::nullopt;
}

std::vector<SweepPoint> expand_grid(const SweepSpec& spec) {
  const std::vector<std::string>& known = known_families();
  for (const std::string& family : spec.families) {
    if (std::find(known.begin(), known.end(), family) == known.end())
      throw std::invalid_argument("unknown graph family: " + family);
  }
  std::vector<SweepPoint> points;
  for (const core::Algorithm a : spec.algorithms) {
    for (const std::string& family : spec.families) {
      for (const std::uint32_t n : spec.sizes) {
        const std::uint32_t max_f = core::max_tolerated_f(a, n);
        std::vector<std::uint32_t> fs;
        if (spec.byzantine_counts.empty()) {
          fs.push_back(max_f);
        } else if (spec.clamp_f_to_tolerance) {
          for (const std::uint32_t f : spec.byzantine_counts)
            fs.push_back(std::min(f, max_f));
          std::sort(fs.begin(), fs.end());
          fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
        } else {
          fs = spec.byzantine_counts;
        }
        for (const std::uint32_t f : fs) {
          for (const std::uint64_t seed : spec.seeds) {
            points.push_back(
                {a, family, n, f, seed, strategy_for(spec, a)});
          }
        }
      }
    }
  }
  return points;
}

std::uint64_t point_seed(std::uint64_t base_seed, const SweepPoint& p) {
  std::uint64_t s = mix(base_seed, static_cast<std::uint64_t>(p.algorithm));
  s = mix(s, fnv1a(p.family));
  s = mix(s, p.n);
  s = mix(s, p.f);
  s = mix(s, p.seed);
  return s;
}

std::uint64_t point_graph_seed(const SweepSpec& spec, const SweepPoint& p) {
  if (!spec.common_graphs) return point_seed(spec.base_seed, p);
  std::uint64_t s = mix(spec.base_seed, fnv1a(p.family));
  s = mix(s, p.n);
  s = mix(s, p.seed);
  return s;
}

PointResult run_point(const SweepSpec& spec, const SweepPoint& p) {
  PointResult r;
  r.point = p;
  r.derived_seed = point_seed(spec.base_seed, p);

  if (p.algorithm == core::Algorithm::kRingBaseline && p.family != "ring" &&
      p.family != "oriented_ring") {
    r.skipped = true;
    r.skip_reason = "ring baseline requires a ring family";
    return r;
  }
  if (p.f >= p.n) {
    r.skipped = true;
    r.skip_reason = "f must be < n";
    return r;
  }
  // With common_graphs, a sweep containing kQuotient must hold the
  // trivial-quotient requirement for every point, or the quotient points
  // would silently resample onto a different graph than their cell mates.
  const bool need_trivial =
      spec.require_trivial_quotient ||
      p.algorithm == core::Algorithm::kQuotient ||
      (spec.common_graphs &&
       std::find(spec.algorithms.begin(), spec.algorithms.end(),
                 core::Algorithm::kQuotient) != spec.algorithms.end());
  const std::optional<Graph> g =
      build_family_graph(p.family, p.n, point_graph_seed(spec, p),
                         need_trivial, spec.er_edge_probability);
  if (!g) {
    r.skipped = true;
    r.skip_reason = family_supports(p.family, p.n)
                        ? "no trivial-quotient sample"
                        : "family does not support this n";
    return r;
  }

  core::ScenarioConfig cfg;
  cfg.algorithm = p.algorithm;
  cfg.num_byzantine = p.f;
  cfg.strategy = p.strategy;
  cfg.byz_smallest_ids = spec.byz_smallest_ids;
  cfg.strong_byzantine = core::handles_strong(p.algorithm);
  cfg.seed = mix(r.derived_seed, 0x5CE42AE05C0F5AB1ULL);
  cfg.cost = spec.cost;

  const auto t0 = std::chrono::steady_clock::now();
  const core::ScenarioResult res = core::run_scenario(*g, cfg);
  const auto t1 = std::chrono::steady_clock::now();

  r.ok = res.verify.ok();
  r.detail = res.verify.detail;
  r.stats = res.stats;
  r.planned_rounds = res.planned_rounds;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

bool SweepResult::all_dispersed() const {
  for (const PointResult& p : points)
    if (!p.skipped && !p.ok) return false;
  return true;
}

std::size_t SweepResult::skipped() const {
  std::size_t count = 0;
  for (const PointResult& p : points)
    if (p.skipped) ++count;
  return count;
}

SweepResult run_sweep(const SweepSpec& spec) {
  SweepResult result;
  const std::vector<SweepPoint> grid = expand_grid(spec);
  result.points.resize(grid.size());

  const auto t0 = std::chrono::steady_clock::now();
  // Each point owns its Engine and Rng; results land at their grid index,
  // so the output is byte-identical for every thread count.
  parallel_for_index(
      grid.size(),
      [&](std::size_t i) { result.points[i] = run_point(spec, grid[i]); },
      spec.threads);
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  // Grid order keeps each (algorithm, family, n, f) cell contiguous in the
  // common case, but don't rely on it (unclamped duplicate f values can
  // repeat coordinates): match against every existing cell.
  for (const PointResult& p : result.points) {
    if (p.skipped) continue;
    CellAggregate* cell = nullptr;
    for (CellAggregate& c : result.cells) {
      if (c.algorithm == p.point.algorithm && c.family == p.point.family &&
          c.n == p.point.n && c.f == p.point.f) {
        cell = &c;
        break;
      }
    }
    if (cell == nullptr) {
      result.cells.push_back({});
      cell = &result.cells.back();
      cell->algorithm = p.point.algorithm;
      cell->family = p.point.family;
      cell->n = p.point.n;
      cell->f = p.point.f;
      cell->min_rounds = p.stats.rounds;
      cell->max_rounds = p.stats.rounds;
    }
    const double k = static_cast<double>(cell->runs);
    ++cell->runs;
    if (p.ok) ++cell->dispersed;
    cell->min_rounds = std::min(cell->min_rounds, p.stats.rounds);
    cell->max_rounds = std::max(cell->max_rounds, p.stats.rounds);
    const double w = 1.0 / static_cast<double>(cell->runs);
    cell->mean_rounds =
        (cell->mean_rounds * k + static_cast<double>(p.stats.rounds)) * w;
    cell->mean_simulated =
        (cell->mean_simulated * k + static_cast<double>(p.stats.simulated_rounds)) * w;
    cell->mean_moves =
        (cell->mean_moves * k + static_cast<double>(p.stats.moves)) * w;
    cell->mean_messages =
        (cell->mean_messages * k + static_cast<double>(p.stats.messages)) * w;
    cell->mean_seconds = (cell->mean_seconds * k + p.seconds) * w;
  }
  return result;
}

}  // namespace bdg::run
