#include "run/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "core/impossibility.h"
#include "graph/generators.h"
#include "graph/quotient.h"
#include "run/report.h"
#include "util/parallel.h"

namespace bdg::run {
namespace {

// splitmix64 step — the same finalizer Rng seeds with, reused here so a
// point's seed is a platform-stable function of its coordinates only.
std::uint64_t mix(std::uint64_t state, std::uint64_t value) {
  std::uint64_t z = state + 0x9E3779B97F4A7C15ULL + value;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Domain tags so the optional axes can never alias a coordinate of the
// legacy (algorithm, family, n, f, seed) hash chain.
constexpr std::uint64_t kTagRobots = 0x6B2DAD0B075A11EDULL;
constexpr std::uint64_t kTagMix = 0xAD5E125A12B0C0DEULL;

/// Largest divisor of n that is <= sqrt(n) (>= 1).
std::uint32_t balanced_rows(std::uint32_t n) {
  std::uint32_t best = 1;
  for (std::uint32_t r = 1; r * r <= n; ++r)
    if (n % r == 0) best = r;
  return best;
}

/// Divisor r of n with 3 <= r and 3 <= n/r, closest to sqrt(n); 0 if none.
std::uint32_t torus_rows(std::uint32_t n) {
  std::uint32_t best = 0;
  for (std::uint32_t r = 3; r * r <= n; ++r)
    if (n % r == 0 && n / r >= 3) best = r;
  return best;
}

bool is_power_of_two(std::uint32_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// One sample of the family (no quotient requirement yet).
Graph sample(const std::string& family, std::uint32_t n, Rng& rng,
             double er_p) {
  if (family == "er")
    return shuffle_ports(make_connected_er(n, er_p, rng), rng);
  if (family == "ring") return shuffle_ports(make_ring(n), rng);
  if (family == "oriented_ring") return make_oriented_ring(n);
  if (family == "grid") {
    const std::uint32_t r = balanced_rows(n);
    return make_grid(r, n / r);
  }
  if (family == "tree") return make_random_tree(n, rng);
  if (family == "complete") return make_complete(n);
  if (family == "star") return make_star(n);
  if (family == "lollipop") return make_lollipop(n);
  if (family == "torus") {
    const std::uint32_t r = torus_rows(n);
    return make_torus(r, n / r);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 0;
    while ((1U << dim) < n) ++dim;
    return make_hypercube(dim);
  }
  if (family == "regular") return shuffle_ports(make_random_regular(n, 3, rng), rng);
  throw std::invalid_argument("unknown graph family: " + family);
}

core::ByzStrategy strategy_for(const SweepSpec& spec, core::Algorithm a) {
  const auto it = spec.strategy_overrides.find(a);
  if (it != spec.strategy_overrides.end()) return it->second;
  if (!spec.strategy_follows_algorithm) return spec.strategy;
  if (core::handles_strong(a)) return core::ByzStrategy::kSpoofer;
  if (a == core::Algorithm::kCrashRealGathering) return core::ByzStrategy::kCrash;
  return spec.strategy;
}

}  // namespace

const std::vector<std::string>& known_families() {
  static const std::vector<std::string> kFamilies = {
      "er",   "ring",     "oriented_ring", "grid",  "tree",    "complete",
      "star", "lollipop", "torus",         "hypercube", "regular"};
  return kFamilies;
}

bool family_supports(const std::string& family, std::uint32_t n) {
  if (family == "er") return n >= 2;  // make_connected_er rejects n < 2
  if (family == "tree" || family == "grid") return n >= 1;
  if (family == "ring" || family == "oriented_ring") return n >= 3;
  if (family == "complete" || family == "star") return n >= 2;
  if (family == "lollipop") return n >= 4;
  if (family == "torus") return torus_rows(n) != 0;
  if (family == "hypercube") return n >= 2 && is_power_of_two(n);
  if (family == "regular") return n >= 4 && n % 2 == 0;
  return false;
}

std::optional<Graph> build_family_graph(const std::string& family,
                                        std::uint32_t n, std::uint64_t seed,
                                        bool need_trivial_quotient,
                                        double er_edge_probability) {
  if (!family_supports(family, n)) return std::nullopt;
  Rng rng(seed);
  if (!need_trivial_quotient) return sample(family, n, rng, er_edge_probability);
  // Theorem 1 needs all views distinct; resample until the quotient is
  // trivial. Families with random structure re-roll on their own; the
  // deterministic ones get fresh port shuffles instead — except
  // oriented_ring, whose port orientation IS the family (and whose
  // quotient is a single node by construction, so it can never satisfy
  // the request).
  const bool reshuffle = family == "grid" || family == "complete" ||
                         family == "star" || family == "lollipop" ||
                         family == "torus" || family == "hypercube";
  if (family == "oriented_ring") return std::nullopt;
  for (int attempt = 0; attempt < 128; ++attempt) {
    Graph g = sample(family, n, rng, er_edge_probability);
    if (reshuffle) g = shuffle_ports(g, rng);
    if (has_trivial_quotient(g)) return g;
  }
  return std::nullopt;
}

bool same_point(const SweepPoint& a, const SweepPoint& b) {
  return a.algorithm == b.algorithm && a.family == b.family && a.n == b.n &&
         a.k == b.k && a.f == b.f && a.seed == b.seed &&
         a.strategy == b.strategy && a.mix == b.mix;
}

bool algorithm_supports_k(core::Algorithm a, std::uint32_t k,
                          std::uint32_t n) {
  if (k == 0 || k == n) return true;  // the Table 1 setting
  switch (a) {
    // Map-based pipelines: Find-Map is per-robot (quotient) or a
    // tournament/vote among the actual participants, and
    // Dispersion-Using-Map settles any number of robots <= n per wave.
    case core::Algorithm::kQuotient:
    case core::Algorithm::kTournamentArbitrary:
    case core::Algorithm::kTournamentGathered:
      return true;
    // The three-group rotation needs at least one robot per role; with
    // k < 3 the A/B thirds are empty and the map vote degenerates.
    case core::Algorithm::kThreeGroupGathered:
    case core::Algorithm::kCrashRealGathering:
      return k >= 3;
    // The two-group split needs both halves to hold honest majorities of
    // the *robot* population; undersubscribed halves below 2 robots
    // degenerate. Supported for k >= 4.
    case core::Algorithm::kSqrtArbitrary:
      return k >= 4;
    // The strong algorithms' floor(n/4)-quorum argument assumes all k
    // robots share one instance: with k < n the agent half can be smaller
    // than one quorum, and across k > n waves the spoofers of one wave can
    // impersonate another wave's participants and forge its quorums. Only
    // the paper's k = n setting is sound.
    case core::Algorithm::kStrongArbitrary:
    case core::Algorithm::kStrongGathered:
      return false;
    // The ring baseline's O(n) schedule assumes one robot per ring node.
    case core::Algorithm::kRingBaseline:
      return false;
  }
  return false;
}

std::vector<SweepPoint> expand_grid(const SweepSpec& spec) {
  const std::vector<std::string>& known = known_families();
  for (const std::string& family : spec.families) {
    if (std::find(known.begin(), known.end(), family) == known.end())
      throw std::invalid_argument("unknown graph family: " + family);
  }
  if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count)
    throw std::invalid_argument("expand_grid: shard_index must be < shard_count");

  // Canonicalize mixes once: a mix is a multiset, so sorting makes both
  // execution and hashing reorder-invariant. No mixes = one scalar point.
  std::vector<std::vector<core::ByzStrategy>> mixes = spec.strategy_mixes;
  if (mixes.empty()) mixes.push_back({});
  for (auto& m : mixes) std::sort(m.begin(), m.end());

  std::vector<SweepPoint> points;
  for (const core::Algorithm a : spec.algorithms) {
    for (const std::string& family : spec.families) {
      for (const std::uint32_t n : spec.sizes) {
        std::vector<std::uint32_t> ks = spec.robot_counts;
        if (ks.empty()) ks.push_back(n);
        for (std::uint32_t k : ks) {
          if (k == 0) k = n;  // 0 = the Table 1 setting
          const std::uint32_t max_f = core::max_tolerated_f_k(a, n, k);
          std::vector<std::uint32_t> fs;
          if (spec.byzantine_counts.empty()) {
            fs.push_back(max_f);
          } else if (spec.clamp_f_to_tolerance) {
            for (const std::uint32_t f : spec.byzantine_counts)
              fs.push_back(std::min(f, max_f));
            std::sort(fs.begin(), fs.end());
            fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
          } else {
            fs = spec.byzantine_counts;
          }
          for (const std::uint32_t f : fs) {
            for (const auto& mix_set : mixes) {
              for (const std::uint64_t seed : spec.seeds) {
                points.push_back(
                    {a, family, n, k, f, seed, strategy_for(spec, a),
                     mix_set});
              }
            }
          }
        }
      }
    }
  }

  // Exact-duplicate points (clamping collisions the per-(a,n,k) unique
  // above cannot see, unclamped duplicate f inputs, robot_counts listing
  // both 0 and n, repeated seeds/mixes) would double-count their derived
  // seed in every aggregate and collide in the checkpoint; drop all but
  // the first occurrence, preserving grid order.
  std::vector<SweepPoint> unique_points;
  unique_points.reserve(points.size());
  // FlatMap: dedup is lookup-only (bucket probe + exact match), so the
  // container's lack of iterators is a structural no-order-leak guarantee.
  util::FlatMap<std::uint64_t, std::vector<std::size_t>> seen;
  for (SweepPoint& p : points) {
    // Bucket by the coordinate hash (strategy folded in, since same_point
    // compares it), verify exactly within the bucket.
    const std::uint64_t key =
        mix(point_seed(0, p), static_cast<std::uint64_t>(p.strategy));
    auto& bucket = seen[key];
    bool dup = false;
    for (const std::size_t idx : bucket) {
      if (same_point(p, unique_points[idx])) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    bucket.push_back(unique_points.size());
    unique_points.push_back(std::move(p));
  }

  if (spec.shard_count <= 1) return unique_points;
  std::vector<SweepPoint> shard;
  for (std::size_t i = spec.shard_index; i < unique_points.size();
       i += spec.shard_count)
    shard.push_back(std::move(unique_points[i]));
  return shard;
}

std::uint64_t spec_fingerprint(const SweepSpec& spec) {
  const bool quotient_in_sweep =
      std::find(spec.algorithms.begin(), spec.algorithms.end(),
                core::Algorithm::kQuotient) != spec.algorithms.end();
  std::uint64_t h = mix(0x5FEC0FF5EEDC0DE5ULL, spec.base_seed);
  h = mix(h, spec.common_graphs ? 1 : 0);
  h = mix(h, spec.require_trivial_quotient ? 1 : 0);
  h = mix(h, quotient_in_sweep && spec.common_graphs ? 1 : 0);
  std::uint64_t er_bits = 0;
  static_assert(sizeof er_bits == sizeof spec.er_edge_probability);
  std::memcpy(&er_bits, &spec.er_edge_probability, sizeof er_bits);
  h = mix(h, er_bits);
  h = mix(h, spec.cost.scaled ? 1 : 0);
  h = mix(h, spec.byz_smallest_ids ? 1 : 0);
  h = mix(h, spec.measure_seconds ? 1 : 0);
  h = mix(h, spec.compiled_adversary ? 1 : 0);
  return h;
}

std::uint64_t grid_fingerprint(const SweepSpec& spec,
                               const std::vector<SweepPoint>& grid) {
  std::uint64_t h = mix(spec_fingerprint(spec), 0x9D1DF1A6E57A11EDULL);
  h = mix(h, grid.size());
  for (const SweepPoint& p : grid) {
    h = mix(h, point_seed(spec.base_seed, p));
    h = mix(h, static_cast<std::uint64_t>(p.strategy));
  }
  return h;
}

std::uint64_t point_seed(std::uint64_t base_seed, const SweepPoint& p) {
  std::uint64_t s = mix(base_seed, static_cast<std::uint64_t>(p.algorithm));
  s = mix(s, fnv1a(p.family));
  s = mix(s, p.n);
  s = mix(s, p.f);
  s = mix(s, p.seed);
  // Optional axes fold in only when they deviate from the legacy grid, so
  // pre-k-axis derived seeds (committed baselines, golden rows) survive.
  if (p.k != 0 && p.k != p.n) s = mix(mix(s, kTagRobots), p.k);
  if (!p.mix.empty()) {
    // Commutative accumulation: the mix is a multiset, permutations hash
    // identically (duplicates still count).
    std::uint64_t h = 0;
    for (const core::ByzStrategy strat : p.mix)
      h += mix(kTagMix, static_cast<std::uint64_t>(strat));
    s = mix(mix(s, kTagMix), h);
  }
  return s;
}

std::uint64_t point_graph_seed(const SweepSpec& spec, const SweepPoint& p) {
  if (!spec.common_graphs) return point_seed(spec.base_seed, p);
  std::uint64_t s = mix(spec.base_seed, fnv1a(p.family));
  s = mix(s, p.n);
  s = mix(s, p.seed);
  return s;
}

PointResult run_point(const SweepSpec& spec, const SweepPoint& p) {
  PointResult r;
  r.point = p;
  r.derived_seed = point_seed(spec.base_seed, p);
  const std::uint32_t k = p.k == 0 ? p.n : p.k;

  if (p.algorithm == core::Algorithm::kRingBaseline && p.family != "ring" &&
      p.family != "oriented_ring") {
    r.skipped = true;
    r.skip_reason = "ring baseline requires a ring family";
    return r;
  }
  if (p.n == 0 || k == 0) {
    // Guard the Theorem 8 arithmetic (ceil divisions by n) below.
    r.skipped = true;
    r.skip_reason = "family does not support this n";
    return r;
  }
  if (p.f >= k) {
    r.skipped = true;
    r.skip_reason = k == p.n ? "f must be < n" : "f must be < k";
    return r;
  }
  // Theorem 8: with ceil(k/n) > ceil((k-f)/n) no deterministic algorithm
  // can solve generalized dispersion — a structured skip, never a failure.
  if (!core::k_dispersion_feasible(k, p.n, p.f)) {
    r.skipped = true;
    r.skip_reason =
        "infeasible per Theorem 8: ceil(k/n) > ceil((k-f)/n) for k=" +
        std::to_string(k) + " n=" + std::to_string(p.n) +
        " f=" + std::to_string(p.f);
    return r;
  }
  if (!algorithm_supports_k(p.algorithm, k, p.n)) {
    r.skipped = true;
    r.skip_reason = "algorithm does not support the k=" + std::to_string(k) +
                    " robots setting on n=" + std::to_string(p.n);
    return r;
  }
  // With common_graphs, a sweep containing kQuotient must hold the
  // trivial-quotient requirement for every point, or the quotient points
  // would silently resample onto a different graph than their cell mates.
  const bool need_trivial =
      spec.require_trivial_quotient ||
      p.algorithm == core::Algorithm::kQuotient ||
      (spec.common_graphs &&
       std::find(spec.algorithms.begin(), spec.algorithms.end(),
                 core::Algorithm::kQuotient) != spec.algorithms.end());
  const std::optional<Graph> g =
      build_family_graph(p.family, p.n, point_graph_seed(spec, p),
                         need_trivial, spec.er_edge_probability);
  if (!g) {
    r.skipped = true;
    r.skip_reason = family_supports(p.family, p.n)
                        ? "no trivial-quotient sample"
                        : "family does not support this n";
    return r;
  }

  core::ScenarioConfig cfg;
  cfg.algorithm = p.algorithm;
  cfg.num_robots = k == p.n ? 0 : k;
  cfg.num_byzantine = p.f;
  cfg.strategy = p.strategy;
  cfg.strategies = p.mix;
  cfg.byz_smallest_ids = spec.byz_smallest_ids;
  cfg.strong_byzantine = core::handles_strong(p.algorithm);
  cfg.seed = mix(r.derived_seed, 0x5CE42AE05C0F5AB1ULL);
  cfg.cost = spec.cost;
  cfg.compiled_adversary = spec.compiled_adversary;

  const auto t0 = std::chrono::steady_clock::now();
  try {
    const core::ScenarioResult res = core::run_scenario(*g, cfg);
    if (res.saturated) {
      // The plan's bound overflowed 128-bit round accounting: a structured
      // skip naming the offending coordinates (mirroring the Theorem 8
      // machinery), never a fictitious capped round count.
      r.skipped = true;
      r.saturated = true;
      r.planned_rounds = res.planned_rounds;
      r.skip_reason = "round bound saturated 128-bit accounting for (" +
                      core::to_string(p.algorithm) +
                      ", n=" + std::to_string(p.n) +
                      ", f=" + std::to_string(p.f) + ")";
      return r;
    }
    r.ok = res.verify.ok();
    r.detail = res.verify.detail;
    r.stats = res.stats;
    r.planned_rounds = res.planned_rounds;
  } catch (const std::bad_alloc&) {
    throw;  // OOM is an infrastructure failure, never a per-point result
  } catch (const std::exception& e) {
    // A protocol blow-up is a *failed* point, not a crashed sweep: record
    // it (detail names the exception) so million-point production sweeps
    // keep going and the row stays diagnosable in the reports.
    r.ok = false;
    r.detail = std::string("exception: ") + e.what();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (spec.measure_seconds)
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

bool SweepResult::all_dispersed() const {
  for (const PointResult& p : points)
    if (!p.skipped && !p.ok) return false;
  return true;
}

std::size_t SweepResult::skipped() const {
  std::size_t count = 0;
  for (const PointResult& p : points)
    if (p.skipped) ++count;
  return count;
}

RestoredCheckpoint restore_checkpoint(const SweepSpec& spec,
                                      const std::vector<SweepPoint>& grid,
                                      std::vector<PointResult>& out) {
  // Checkpoint reuse: completed points (matched by spec fingerprint,
  // derived seed AND full coordinates) are restored instead of re-run, so
  // interrupted sweeps resume where they stopped and shard stripes merge
  // through one file — while a checkpoint written under different spec
  // knobs (common_graphs, cost model, ...) is ignored, not imported.
  RestoredCheckpoint r;
  r.todo.reserve(grid.size());
  out.resize(grid.size());
  util::FlatMap<std::uint64_t, PointResult> cache;
  if (!spec.checkpoint_path.empty()) {
    std::ifstream in(spec.checkpoint_path);
    CheckpointLoadStats stats;
    if (in) cache = load_checkpoint(in, spec_fingerprint(spec), &stats);
    r.torn = stats.malformed;
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::uint64_t ds = point_seed(spec.base_seed, grid[i]);
    const PointResult* hit = cache.find(ds);
    if (hit != nullptr && same_point(hit->point, grid[i])) {
      out[i] = *hit;
      ++r.restored;
    } else {
      r.todo.push_back(i);
    }
  }
  return r;
}

SweepResult run_sweep(const SweepSpec& spec) {
  SweepResult result;
  const std::vector<SweepPoint> grid = expand_grid(spec);

  const auto t0 = std::chrono::steady_clock::now();

  const std::uint64_t fingerprint = spec_fingerprint(spec);
  const RestoredCheckpoint restored =
      restore_checkpoint(spec, grid, result.points);
  result.from_checkpoint = restored.restored;
  result.torn_checkpoint_lines = restored.torn;
  const std::vector<std::size_t>& todo = restored.todo;
  std::vector<char> have(grid.size(), 0);
  for (std::size_t i = 0; i < grid.size(); ++i) have[i] = 1;
  for (const std::size_t i : todo) have[i] = 0;

  std::ofstream ck;
  if (!spec.checkpoint_path.empty() && !todo.empty()) {
    ck.open(spec.checkpoint_path, std::ios::app);
    if (!ck)
      throw std::runtime_error("run_sweep: cannot open checkpoint " +
                               spec.checkpoint_path);
  }

  // Each point owns its Engine and Rng; results land at their grid index,
  // so the output is byte-identical for every thread count.
  std::mutex mu;
  std::atomic<bool> aborted{false};
  std::size_t completed = result.from_checkpoint;
  parallel_for_index(
      todo.size(),
      [&](std::size_t j) {
        const std::size_t i = todo[j];
        PointResult r = run_point(spec, grid[i]);
        std::lock_guard<std::mutex> lock(mu);
        result.points[i] = std::move(r);
        have[i] = 1;
        ++completed;
        if (ck.is_open())
          append_checkpoint_line(ck, spec.checkpoint_path, result.points[i],
                                 fingerprint);
        if (spec.progress &&
            !spec.progress(result.points[i], completed, grid.size()))
          aborted.store(true);
      },
      spec.threads, [&] { return aborted.load(); });
  result.aborted = aborted.load();

  // Unrun remainder of an aborted sweep: structured skips, never silently
  // absent rows — and never checkpointed, so a resume re-runs them.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (have[i]) continue;
    PointResult& r = result.points[i];
    r.point = grid[i];
    r.derived_seed = point_seed(spec.base_seed, grid[i]);
    r.skipped = true;
    r.skip_reason = "aborted before running (resume from checkpoint)";
  }

  const auto t1 = std::chrono::steady_clock::now();
  if (spec.measure_seconds)
    result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();

  rebuild_cell_aggregates(result);
  return result;
}

void CellAggregator::fold(CellAggregate& cell, const Member& m) {
  if (cell.runs == 0) {
    cell.min_rounds = m.rounds;
    cell.max_rounds = m.rounds;
  }
  const double kprev = static_cast<double>(cell.runs);
  ++cell.runs;
  if (m.ok) ++cell.dispersed;
  cell.min_rounds = std::min(cell.min_rounds, m.rounds);
  cell.max_rounds = std::max(cell.max_rounds, m.rounds);
  const double w = 1.0 / static_cast<double>(cell.runs);
  cell.mean_rounds = (cell.mean_rounds * kprev + m.rounds.to_double()) * w;
  cell.mean_simulated =
      (cell.mean_simulated * kprev + static_cast<double>(m.simulated)) * w;
  cell.mean_moves = (cell.mean_moves * kprev + static_cast<double>(m.moves)) * w;
  cell.mean_messages =
      (cell.mean_messages * kprev + static_cast<double>(m.messages)) * w;
  cell.mean_seconds = (cell.mean_seconds * kprev + m.seconds) * w;
}

void CellAggregator::replay(State& st) {
  // An out-of-order arrival changes the running-mean evaluation order, so
  // re-fold this one cell's members in grid-index order — the exact
  // sequence the batch rebuild applies, hence bit-identical means.
  CellAggregate fresh;
  fresh.algorithm = st.agg.algorithm;
  fresh.family = st.agg.family;
  fresh.n = st.agg.n;
  fresh.k = st.agg.k;
  fresh.f = st.agg.f;
  fresh.mix = st.agg.mix;
  st.agg = std::move(fresh);
  for (const Member& m : st.members) fold(st.agg, m);
}

void CellAggregator::add(std::size_t grid_index, const PointResult& p) {
  if (p.skipped) return;
  // Cells are located through a hash of the cell coordinates, with an
  // exact-match walk inside each bucket (hash collisions must not merge
  // cells).
  SweepPoint coords = p.point;
  coords.seed = 0;  // cells aggregate over seeds
  const std::uint64_t key =
      mix(point_seed(0, coords), static_cast<std::uint64_t>(p.point.strategy));
  auto& bucket = index_[key];
  State* st = nullptr;
  for (const std::size_t idx : bucket) {
    const CellAggregate& c = states_[idx].agg;
    if (c.algorithm == p.point.algorithm && c.family == p.point.family &&
        c.n == p.point.n && c.k == p.point.k && c.f == p.point.f &&
        c.mix == p.point.mix) {
      st = &states_[idx];
      break;
    }
  }
  if (st == nullptr) {
    bucket.push_back(states_.size());
    states_.emplace_back();
    st = &states_.back();
    st->agg.algorithm = p.point.algorithm;
    st->agg.family = p.point.family;
    st->agg.n = p.point.n;
    st->agg.k = p.point.k;
    st->agg.f = p.point.f;
    st->agg.mix = p.point.mix;
  }
  Member m;
  m.index = grid_index;
  m.ok = p.ok;
  m.rounds = p.stats.rounds;
  m.simulated = p.stats.simulated_rounds;
  m.moves = p.stats.moves;
  m.messages = p.stats.messages;
  m.seconds = p.seconds;
  if (st->members.empty() || st->members.back().index < grid_index) {
    st->members.push_back(m);
    fold(st->agg, m);  // in-order: the O(1) incremental recurrence
    return;
  }
  const auto pos = std::lower_bound(
      st->members.begin(), st->members.end(), grid_index,
      [](const Member& a, std::size_t idx) { return a.index < idx; });
  st->members.insert(pos, m);
  replay(*st);
}

std::vector<CellAggregate> CellAggregator::cells() const {
  // First-appearance (grid) order = ascending first member index. Members
  // are sorted, so members.front() is each cell's first grid appearance.
  std::vector<std::size_t> order(states_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return states_[a].members.front().index < states_[b].members.front().index;
  });
  std::vector<CellAggregate> out;
  out.reserve(states_.size());
  for (const std::size_t i : order) out.push_back(states_[i].agg);
  return out;
}

void rebuild_cell_aggregates(SweepResult& result) {
  CellAggregator agg;
  for (std::size_t i = 0; i < result.points.size(); ++i)
    agg.add(i, result.points[i]);
  result.cells = agg.cells();
}

}  // namespace bdg::run
