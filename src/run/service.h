#pragma once
// sweepd: a fault-tolerant coordinator/worker sweep service.
//
// The coordinator owns the expanded grid and leases batches of point
// indices to workers over localhost TCP (net/: length-prefixed frames whose
// payloads are flat JSON — result frames are verbatim run/report.h
// checkpoint records, so the wire format IS the on-disk resume format).
// Workers run their leased points through the exact run_point the
// single-process runner uses and stream the results back; the coordinator
// merges them at their grid index and appends each to the spec's checkpoint
// through append_checkpoint_line, so crash-recovery and byte-identical
// resume carry over from the PR 3 machinery for free.
//
// Robustness model:
//  * Leases carry deadlines. Any frame from the lease holder (results,
//    heartbeats) extends the deadline; a missed deadline presumes the
//    worker dead — its connection is dropped and the un-resulted indices
//    return to the front of the queue for reassignment.
//  * Workers dial with capped exponential backoff and jitter
//    (net::dial_with_backoff) and reconnect after any transport failure;
//    results are idempotent (deterministic per derived seed), so re-runs
//    and duplicate deliveries never change the merged report.
//  * A hello handshake proves coordinator and worker expanded the SAME
//    grid (run::grid_fingerprint) before any lease is honored.
//  * Zero reachable workers degrades gracefully: after idle_grace_ms with
//    no live worker, the coordinator runs the remaining stripe in-process
//    (same run_point, same merge path) instead of hanging.
//  * A stop flag (sweepd wires SIGTERM to it) aborts cleanly: finished
//    points are already flushed to the checkpoint, the remainder is marked
//    as aborted skips exactly like run_sweep's abort path, and workers are
//    told to shut down.
//  * The deterministic fault shim (net/fault.h) can be mounted on either
//    side to drop/delay/close frames on a seeded schedule — the
//    conformance tier pins that the merged report stays byte-identical
//    under kills, drops and delays. Each shimmed connection runs schedule
//    seed (config seed + connection index): still fully deterministic,
//    but a schedule that eats the handshake frame cannot livelock
//    reconnects by eating it identically on every redial.
//  * Live aggregate queries: clients dial the SAME listener and send
//    framed-JSON `query` frames — cell aggregates for an (algorithm,
//    family, n, k, f, mix) selector, point lookups by derived seed or grid
//    index, and sweep progress — answered from incrementally maintained
//    CellAggregator state (run/sweep.h), never from a full report rebuild.
//    Responses are one flat header frame plus N body frames that are
//    byte-identical to the report's per-cell/per-point JSON objects. With
//    serve_after_finish the coordinator keeps answering queries after the
//    grid completes (workers are sent shutdown the moment it does), which
//    also turns a finished checkpoint into a standalone query server.
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/transport.h"
#include "run/sweep.h"

namespace bdg::run {

struct ServiceConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< coordinator listen port (0 = ephemeral)
  /// Max points per lease. Small leases reassign cheaply after a worker
  /// death; large leases amortize framing. Grid order is preserved within
  /// the queue, so lease size never affects the merged report.
  std::uint32_t lease_points = 8;
  /// Deadline granted per lease and extended by every frame from its
  /// holder. Must exceed the longest single-point runtime plus a
  /// heartbeat interval, or healthy workers get their leases revoked.
  std::uint32_t lease_timeout_ms = 3000;
  /// Coordinator: no live worker for this long => run the remaining
  /// stripe in-process instead of hanging (0 = fall back immediately).
  std::uint32_t idle_grace_ms = 2000;
  bool local_fallback = true;
  /// Keep serving queries after every grid point has a result: workers get
  /// their shutdown as soon as the grid completes, clients keep getting
  /// answers until the stop flag is raised (which then leaves `aborted`
  /// false — the sweep DID finish). With a checkpoint that restores the
  /// whole grid this is a standalone query server over finished results.
  bool serve_after_finish = false;
  net::FaultConfig fault;  ///< shim mounted on this side's sends
};

struct CoordinatorStats {
  std::size_t workers_seen = 0;       ///< connections accepted
  std::size_t workers_rejected = 0;   ///< hellos with a foreign grid
  std::size_t leases_granted = 0;
  /// Leases revoked and re-queued: deadline missed, worker connection
  /// died, or a lease_done arrived with results still missing (dropped in
  /// transit). The conformance tier asserts this is > 0 when a worker is
  /// killed mid-grid.
  std::size_t leases_reassigned = 0;
  std::size_t duplicate_results = 0;  ///< re-delivered/re-run, ignored
  std::size_t local_fallback_points = 0;
  std::size_t protocol_errors = 0;    ///< malformed/mismatched frames
  std::size_t clients_seen = 0;       ///< connections that sent a query
  std::size_t queries_answered = 0;   ///< complete responses sent
};

/// The sweepd coordinator. Construction binds the listener (throws when
/// the port is taken) so callers can read port() before spawning workers;
/// serve() runs the event loop to completion and returns the merged
/// result, byte-identical to run_sweep(spec) on the same grid.
class Coordinator {
 public:
  Coordinator(SweepSpec spec, ServiceConfig svc);
  ~Coordinator();

  [[nodiscard]] std::uint16_t port() const;

  /// Serve until every grid point has a result (or the sweep aborts via
  /// spec.progress / `stop`). Not reentrant; call once.
  [[nodiscard]] SweepResult serve(const std::atomic<bool>* stop = nullptr);

  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  CoordinatorStats stats_;
};

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "worker";
  net::BackoffConfig backoff;
  std::uint32_t idle_recv_ms = 500;
  std::uint32_t hello_timeout_ms = 5000;
  std::uint64_t jitter_seed = 1;  ///< backoff jitter stream
  net::FaultConfig fault;  ///< worker-side shim + kill-after-N-points hook
};

enum class WorkerExit {
  kShutdown,         ///< coordinator said shutdown: the grid is done
  kLostCoordinator,  ///< reconnect attempts exhausted
  kRejected,         ///< grid fingerprint mismatch (or protocol error)
  kKilled,           ///< fault shim kill hook fired (soft mode)
};

[[nodiscard]] std::string to_string(WorkerExit e);

/// Run one worker against the coordinator at cfg.host:cfg.port. The spec
/// must be flag-identical to the coordinator's (the hello handshake
/// enforces it via grid_fingerprint). Blocks until shutdown or failure.
/// With cfg.fault.kill_after_points set and kill_hard, this calls
/// std::_Exit(137) — simulating SIGKILL for the CI process smoke — and
/// never returns.
[[nodiscard]] WorkerExit run_sweep_worker(const SweepSpec& spec,
                                          const WorkerConfig& cfg);

// ---------------------------------------------------------------------------
// Query protocol. A client dials the coordinator's listener and sends a
// flat-JSON `query` frame; the coordinator replies with one flat `result`
// header frame (echoing the query id) followed by `count` body frames,
// each a verbatim report-JSON cell/point object (run/report.h's
// write_cell_json / write_point_json). Unlike leases, queries need no
// hello: the first query frame marks the connection as a client.
// ---------------------------------------------------------------------------

/// One query. `what` selects the answer shape:
///  * "progress": no bodies; the header carries grid totals, completion
///    and the coordinator's live ServiceStats counters.
///  * "cells": every live cell aggregate matching the set selectors
///    (unset = wildcard). Strings match the report's spelling —
///    core::to_string names, mix_to_string mixes ("-" = no mix); k
///    matches the resolved robot count (k == n points match their n).
///  * "point": exactly one of derived_seed / index must be set; answers
///    the completed point's report JSON, or pending=true when the point
///    exists but has no result yet.
struct QueryRequest {
  std::string what = "progress";
  std::optional<std::string> algorithm;
  std::optional<std::string> family;
  std::optional<std::string> mix;
  std::optional<std::uint32_t> n;
  std::optional<std::uint32_t> k;
  std::optional<std::uint32_t> f;
  std::optional<std::uint64_t> derived_seed;
  std::optional<std::uint64_t> index;
};

/// A parsed response: header fields plus the verbatim body frames.
struct QueryReply {
  std::string what;
  std::string error;     ///< coordinator-side rejection ("" = answered)
  bool pending = false;  ///< point exists but has not completed yet
  std::vector<std::string> bodies;  ///< verbatim report JSON objects
  // Progress fields (what == "progress"):
  std::uint64_t total = 0;      ///< grid points
  std::uint64_t completed = 0;  ///< restored + merged so far
  std::uint64_t restored = 0;   ///< placed from the checkpoint
  std::uint64_t cells = 0;      ///< distinct live cells
  bool done = false;            ///< every grid point has a result
  CoordinatorStats stats;       ///< live counters snapshot
};

struct QueryClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint32_t timeout_ms = 2000;  ///< per-frame receive deadline
  /// Full-query retries. Each failed attempt redials on a fresh
  /// connection (fresh fault-shim schedule), so a seeded drop schedule
  /// can eat a response without wedging the client.
  std::uint32_t attempts = 5;
  net::BackoffConfig backoff;
  std::uint64_t jitter_seed = 1;
  net::FaultConfig fault;  ///< client-side shim (conformance tests)
};

/// Issue one query, retrying per cfg. nullopt = the coordinator could not
/// be reached (or kept dropping the response) within cfg.attempts; a
/// reply with a non-empty `error` means it answered and rejected the
/// query (unknown `what`, bad selector).
[[nodiscard]] std::optional<QueryReply> run_query(const QueryRequest& req,
                                                  const QueryClientConfig& cfg);

}  // namespace bdg::run
