#include "run/cli_flags.h"

#include <cstring>
#include <sstream>

#include "run/report.h"

namespace bdg::run {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep))
    if (!item.empty()) out.push_back(item);
  return out;
}

constexpr struct {
  const char* name;
  core::ByzStrategy strategy;
} kStrategies[] = {
    {"crash", core::ByzStrategy::kCrash},
    {"random_walker", core::ByzStrategy::kRandomWalker},
    {"squatter", core::ByzStrategy::kSquatter},
    {"fake_settler", core::ByzStrategy::kFakeSettler},
    {"silent_settler", core::ByzStrategy::kSilentSettler},
    {"intent_spammer", core::ByzStrategy::kIntentSpammer},
    {"map_liar", core::ByzStrategy::kMapLiar},
    {"spoofer", core::ByzStrategy::kSpoofer},
};

std::optional<std::string> value_of(const char* arg, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) == 0 && arg[len] == '=')
    return std::string(arg + len + 1);
  return std::nullopt;
}

}  // namespace

SweepSpec default_cli_spec() {
  SweepSpec spec;
  spec.families = {"er"};
  spec.sizes = {8, 12, 16};
  return spec;
}

const std::vector<CliAlgorithm>& cli_algorithms() {
  static const std::vector<CliAlgorithm> kList = {
      {"quotient", core::Algorithm::kQuotient},
      {"tournament-arbitrary", core::Algorithm::kTournamentArbitrary},
      {"sqrt-arbitrary", core::Algorithm::kSqrtArbitrary},
      {"tournament-gathered", core::Algorithm::kTournamentGathered},
      {"three-group", core::Algorithm::kThreeGroupGathered},
      {"strong-arbitrary", core::Algorithm::kStrongArbitrary},
      {"strong-gathered", core::Algorithm::kStrongGathered},
      {"crash-real-gathering", core::Algorithm::kCrashRealGathering},
      {"ring-baseline", core::Algorithm::kRingBaseline},
  };
  return kList;
}

std::optional<core::Algorithm> algorithm_from_cli(const std::string& name) {
  for (const auto& a : cli_algorithms())
    if (name == a.name) return a.algorithm;
  return std::nullopt;
}

GridFlagsResult parse_grid_flags(int argc, char** argv, SweepSpec& spec) {
  GridFlagsResult res;
  const auto fail = [&res](std::string message) {
    res.ok = false;
    res.error = std::move(message);
    return res;
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (auto v = value_of(argv[i], "--algorithms")) {
        for (const std::string& name : split(*v, ',')) {
          if (name == "all") {
            for (const auto& a : cli_algorithms())
              spec.algorithms.push_back(a.algorithm);
            continue;
          }
          const auto a = algorithm_from_cli(name);
          if (!a) return fail("unknown algorithm '" + name + "'");
          spec.algorithms.push_back(*a);
        }
      } else if (auto v = value_of(argv[i], "--families")) {
        spec.families.clear();
        for (const std::string& name : split(*v, ',')) {
          if (name == "all") {
            const auto& known = known_families();
            spec.families.insert(spec.families.end(), known.begin(),
                                 known.end());
          } else {
            spec.families.push_back(name);  // expand_grid validates
          }
        }
      } else if (auto v = value_of(argv[i], "--sizes")) {
        spec.sizes.clear();
        for (const std::string& n : split(*v, ','))
          spec.sizes.push_back(static_cast<std::uint32_t>(std::stoul(n)));
      } else if (auto v = value_of(argv[i], "--k")) {
        for (const std::string& k : split(*v, ','))
          spec.robot_counts.push_back(
              static_cast<std::uint32_t>(std::stoul(k)));
      } else if (auto v = value_of(argv[i], "--byz")) {
        for (const std::string& f : split(*v, ','))
          spec.byzantine_counts.push_back(
              static_cast<std::uint32_t>(std::stoul(f)));
      } else if (auto v = value_of(argv[i], "--seeds")) {
        spec.seeds.clear();
        for (const std::string& s : split(*v, ','))
          spec.seeds.push_back(std::stoull(s));
      } else if (auto v = value_of(argv[i], "--strategy")) {
        const auto s = core::strategy_from_string(*v);
        if (!s) return fail("unknown strategy '" + *v + "'");
        spec.strategy = *s;
        spec.strategy_follows_algorithm = false;
      } else if (auto v = value_of(argv[i], "--mix")) {
        for (const std::string& text : split(*v, ',')) {
          const auto mix = mix_from_string(text);
          if (!mix) return fail("unknown strategy in mix '" + text + "'");
          spec.strategy_mixes.push_back(*mix);
        }
      } else if (auto v = value_of(argv[i], "--shard")) {
        const std::size_t slash = v->find('/');
        if (slash == std::string::npos)
          return fail("--shard wants i/m, got '" + *v + "'");
        spec.shard_index =
            static_cast<unsigned>(std::stoul(v->substr(0, slash)));
        spec.shard_count =
            static_cast<unsigned>(std::stoul(v->substr(slash + 1)));
        if (spec.shard_count == 0 || spec.shard_index >= spec.shard_count)
          return fail("--shard needs i < m, got '" + *v + "'");
      } else if (auto v = value_of(argv[i], "--resume")) {
        spec.checkpoint_path = *v;
      } else if (arg == "--no-timing") {
        spec.measure_seconds = false;
      } else if (arg == "--no-clamp") {
        spec.clamp_f_to_tolerance = false;
      } else if (arg == "--require-trivial-quotient") {
        spec.require_trivial_quotient = true;
      } else if (arg == "--common-graphs") {
        spec.common_graphs = true;
      } else if (auto v = value_of(argv[i], "--er-p")) {
        spec.er_edge_probability = std::stod(*v);
      } else if (auto v = value_of(argv[i], "--base-seed")) {
        spec.base_seed = std::stoull(*v);
      } else if (auto v = value_of(argv[i], "--threads")) {
        spec.threads = static_cast<unsigned>(std::stoul(*v));
      } else {
        res.leftover.push_back(arg);
      }
    }
  } catch (const std::exception& e) {
    // std::stoul and friends throw on malformed numbers: a usage error.
    return fail(std::string("bad flag value (") + e.what() + ")");
  }
  return res;
}

void apply_default_algorithms(SweepSpec& spec) {
  if (!spec.algorithms.empty()) return;
  // General-graph default: every algorithm except the ring-only baseline.
  for (const auto& a : cli_algorithms())
    if (a.algorithm != core::Algorithm::kRingBaseline)
      spec.algorithms.push_back(a.algorithm);
}

void print_grid_flag_help(std::FILE* to) {
  std::fputs(
      "grid:\n"
      "  --algorithms=a,b,...   algorithms to sweep, or 'all' (default: all\n"
      "                         general-graph algorithms, no ring-baseline)\n"
      "  --families=f,g,...     graph families, or 'all' (default: er)\n"
      "  --sizes=n1,n2,...      node counts (default: 8,12,16)\n"
      "  --k=k1,k2,...          robot counts (Theorem 8 axis; default: k=n;\n"
      "                         0 means k=n; infeasible (k,n,f) points are\n"
      "                         recorded as structured skips)\n"
      "  --byz=f1,f2,...        Byzantine counts (default: per-algorithm\n"
      "                         maximum claimed tolerance)\n"
      "  --seeds=s1,s2,...      grid seeds, one repetition each (default: 1)\n"
      "scenario:\n"
      "  --strategy=name        fixed adversary for all algorithms (default:\n"
      "                         per-algorithm as the e2e suite chooses)\n"
      "  --mix=a+b,c+d,...      heterogeneous adversary mixes ('+'-joined\n"
      "                         strategy names; each mix adds a grid axis).\n"
      "                         A mix is a multiset: it is canonicalized\n"
      "                         (sorted), then Byzantine robot i runs\n"
      "                         mix[i %% len] of the canonical order\n"
      "  --no-clamp             keep f values beyond an algorithm's tolerance\n"
      "  --require-trivial-quotient  restrict graphs to all-distinct views\n"
      "  --common-graphs        share the graph across algorithms and f per\n"
      "                         (family, n, seed) cell\n"
      "  --er-p=P               ER edge probability (<=0: connectivity\n"
      "                         threshold; default 0.45)\n"
      "  --base-seed=S          reseed the whole sweep\n"
      "execution:\n"
      "  --threads=N            worker threads (default: hardware)\n"
      "  --shard=i/m            run only stripe i of m of the grid (union\n"
      "                         of all stripes = the full grid)\n"
      "  --resume=PATH          JSON-lines checkpoint: completed points are\n"
      "                         loaded instead of re-run, new ones appended\n"
      "  --no-timing            zero all seconds fields: reports become a\n"
      "                         pure function of the grid (resume/shard and\n"
      "                         distributed conformance diffs run in this\n"
      "                         mode)\n",
      to);
}

void print_grid_name_lists(std::FILE* to) {
  std::fputs("algorithm names:\n", to);
  for (const auto& a : cli_algorithms()) std::fprintf(to, "  %s\n", a.name);
  std::fputs("strategy names:\n", to);
  for (const auto& s : kStrategies) std::fprintf(to, "  %s\n", s.name);
}

bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  std::string host_part = "127.0.0.1";
  std::string port_part = text;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    host_part = text.substr(0, colon);
    port_part = text.substr(colon + 1);
    if (host_part.empty()) return false;
  }
  if (port_part.empty() ||
      port_part.find_first_not_of("0123456789") != std::string::npos)
    return false;
  unsigned long value = 0;
  try {
    value = std::stoul(port_part);
  } catch (const std::exception&) {
    return false;
  }
  if (value == 0 || value > 65535) return false;
  host = host_part;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace bdg::run
