#pragma once
// Shared command-line grid parsing for the sweep front-ends (sweep_cli,
// sweepd, sweep_worker). The coordinator and its workers must expand the
// SAME grid from the same flags — grid_fingerprint rejects drift at the
// hello handshake, but sharing the parser removes the temptation to drift
// in the first place. sweep_cli delegates here too, so one flag vocabulary
// drives single-shot, distributed and worker processes alike.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "run/sweep.h"

namespace bdg::run {

/// A SweepSpec with the CLI defaults (families {"er"}, sizes {8,12,16})
/// rather than the library defaults — the starting point every sweep
/// front-end parses flags into.
[[nodiscard]] SweepSpec default_cli_spec();

/// CLI algorithm names in registry order (also the help-text order).
struct CliAlgorithm {
  const char* name;
  core::Algorithm algorithm;
};
[[nodiscard]] const std::vector<CliAlgorithm>& cli_algorithms();
[[nodiscard]] std::optional<core::Algorithm> algorithm_from_cli(
    const std::string& name);

/// Outcome of parse_grid_flags: either ok (with any unrecognized argv
/// entries — including --help — in `leftover`, in order, for the caller's
/// own flags), or !ok with a printable error (no program-name prefix).
struct GridFlagsResult {
  bool ok = true;
  std::string error;
  std::vector<std::string> leftover;
};

/// Parse the shared grid/scenario/execution flags (--algorithms,
/// --families, --sizes, --k, --byz, --seeds, --strategy, --mix,
/// --no-clamp, --require-trivial-quotient, --common-graphs, --er-p,
/// --base-seed, --threads, --shard, --resume, --no-timing) into `spec`.
/// Malformed values (unknown names, bad numbers, i >= m shards) fail the
/// parse; unknown flags are returned, not rejected, so each front-end can
/// layer its own flags on top.
[[nodiscard]] GridFlagsResult parse_grid_flags(int argc, char** argv,
                                               SweepSpec& spec);

/// Fill spec.algorithms with the general-graph default (every algorithm
/// except the ring-only baseline) when no --algorithms flag was given.
void apply_default_algorithms(SweepSpec& spec);

/// Print the shared flags' help sections (grid, scenario, shared
/// execution flags). Name lists are separate so front-ends can append
/// their own sections in between.
void print_grid_flag_help(std::FILE* to);

/// Print the accepted algorithm and strategy name lists.
void print_grid_name_lists(std::FILE* to);

/// Parse a "HOST:PORT" (or bare "PORT", meaning 127.0.0.1) connection
/// flag value into host/port. false on a malformed or zero port — shared
/// by sweep_worker's and sweep_query's --connect so the two front-ends
/// cannot drift in address spelling.
[[nodiscard]] bool parse_host_port(const std::string& text, std::string& host,
                                   std::uint16_t& port);

}  // namespace bdg::run
