#include "run/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json_mini.h"

namespace bdg::run {
namespace {

// The flat-object writer/scanner pair lives in util/json_mini.h now, shared
// with the sweep-service wire protocol; these aliases keep the checkpoint
// code reading as before.
inline std::string json_escape(const std::string& s) { return json::escape(s); }
using json::find_bool;
using json::find_double;
using json::find_raw;
using json::find_string;
using json::find_u32;
using json::find_u64;

/// Doubles that must survive a write -> parse -> write cycle bit-exactly
/// (checkpoint seconds) print with max_digits10 significant digits.
std::string exact_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

/// Round counts are exact decimal magnitudes up to 2^128-1; a malformed or
/// overflowing token fails the whole line (foreign data must re-run).
bool find_round(const std::string& line, const char* key, core::Round& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  const auto parsed = core::Round::from_string(raw);
  if (!parsed) return false;
  out = *parsed;
  return true;
}

}  // namespace

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string mix_to_string(const std::vector<core::ByzStrategy>& mix) {
  if (mix.empty()) return "-";
  std::string out;
  for (const core::ByzStrategy s : mix) {
    if (!out.empty()) out += '+';
    out += core::to_string(s);
  }
  return out;
}

std::optional<std::vector<core::ByzStrategy>> mix_from_string(
    const std::string& text) {
  std::vector<core::ByzStrategy> mix;
  if (text == "-" || text.empty()) return mix;
  std::stringstream ss(text);
  std::string name;
  while (std::getline(ss, name, '+')) {
    const auto s = core::strategy_from_string(name);
    if (!s) return std::nullopt;
    mix.push_back(*s);
  }
  return mix;
}

void write_points_csv(std::ostream& os, const SweepResult& result) {
  os << kPointsCsvHeader << '\n';
  for (const PointResult& p : result.points) {
    if (p.skipped) continue;
    os << csv_field(core::to_string(p.point.algorithm)) << ','
       << csv_field(p.point.family) << ',' << p.point.n << ','
       << (p.point.k == 0 ? p.point.n : p.point.k) << ',' << p.point.f
       << ',' << p.point.seed << ','
       << csv_field(core::to_string(p.point.strategy)) << ','
       << csv_field(mix_to_string(p.point.mix)) << ',' << p.derived_seed
       << ',' << (p.ok ? 1 : 0) << ',' << p.stats.rounds << ','
       << p.stats.simulated_rounds << ',' << p.stats.moves << ','
       << p.stats.messages << ',' << p.planned_rounds << ',' << p.seconds
       << '\n';
  }
}

void write_cells_csv(std::ostream& os, const SweepResult& result) {
  os << kCellsCsvHeader << '\n';
  for (const CellAggregate& c : result.cells) {
    os << csv_field(core::to_string(c.algorithm)) << ',' << csv_field(c.family)
       << ',' << c.n << ',' << (c.k == 0 ? c.n : c.k) << ',' << c.f << ','
       << csv_field(mix_to_string(c.mix)) << ',' << c.runs << ','
       << c.dispersed << ',' << c.min_rounds << ',' << c.max_rounds << ','
       << c.mean_rounds << ',' << c.mean_simulated << ',' << c.mean_moves
       << ',' << c.mean_messages << ',' << c.mean_seconds << '\n';
  }
}

void write_point_json(std::ostream& os, const PointResult& p) {
  os << "{\"algorithm\": \""
     << json_escape(core::to_string(p.point.algorithm)) << "\", \"family\": \""
     << json_escape(p.point.family) << "\", \"n\": " << p.point.n
     << ", \"k\": " << (p.point.k == 0 ? p.point.n : p.point.k)
     << ", \"f\": " << p.point.f << ", \"seed\": " << p.point.seed
     << ", \"strategy\": \""
     << json_escape(core::to_string(p.point.strategy)) << "\", \"mix\": \""
     << json_escape(mix_to_string(p.point.mix)) << "\", \"derived_seed\": "
     << p.derived_seed;
  if (p.skipped) {
    os << ", \"skipped\": true, \"skip_reason\": \""
       << json_escape(p.skip_reason) << "\"";
    if (p.saturated) os << ", \"saturated\": true";
    os << '}';
  } else {
    os << ", \"ok\": " << (p.ok ? "true" : "false")
       << ", \"rounds\": " << p.stats.rounds
       << ", \"simulated_rounds\": " << p.stats.simulated_rounds
       << ", \"moves\": " << p.stats.moves
       << ", \"messages\": " << p.stats.messages
       << ", \"planned_rounds\": " << p.planned_rounds
       << ", \"seconds\": " << p.seconds;
    if (!p.ok) os << ", \"detail\": \"" << json_escape(p.detail) << "\"";
    os << '}';
  }
}

void write_cell_json(std::ostream& os, const CellAggregate& c) {
  os << "{\"algorithm\": \""
     << json_escape(core::to_string(c.algorithm)) << "\", \"family\": \""
     << json_escape(c.family) << "\", \"n\": " << c.n << ", \"k\": "
     << (c.k == 0 ? c.n : c.k) << ", \"f\": " << c.f << ", \"mix\": \""
     << json_escape(mix_to_string(c.mix)) << "\""
     << ", \"runs\": " << c.runs << ", \"dispersed\": " << c.dispersed
     << ", \"min_rounds\": " << c.min_rounds
     << ", \"max_rounds\": " << c.max_rounds
     << ", \"mean_rounds\": " << c.mean_rounds
     << ", \"mean_simulated\": " << c.mean_simulated
     << ", \"mean_moves\": " << c.mean_moves
     << ", \"mean_messages\": " << c.mean_messages
     << ", \"mean_seconds\": " << c.mean_seconds << '}';
}

void write_json(std::ostream& os, const SweepResult& result) {
  os << "{\n  \"wall_seconds\": " << result.wall_seconds
     << ",\n  \"torn_checkpoint_lines\": " << result.torn_checkpoint_lines
     << ",\n  \"points\": [";
  bool first = true;
  for (const PointResult& p : result.points) {
    os << (first ? "\n" : ",\n") << "    ";
    write_point_json(os, p);
    first = false;
  }
  os << "\n  ],\n  \"cells\": [";
  first = true;
  for (const CellAggregate& c : result.cells) {
    os << (first ? "\n" : ",\n") << "    ";
    write_cell_json(os, c);
    first = false;
  }
  os << "\n  ]\n}\n";
}

void write_checkpoint_line(std::ostream& os, const PointResult& p,
                           std::uint64_t spec_fingerprint) {
  // v2: `rounds`/`planned_rounds` are exact 128-bit decimals and the
  // `saturated` flag is recorded. v1 lines (64-bit rounds) parse to
  // nullopt on load, so checkpoints written before the Round widening
  // re-run instead of silently importing possibly-capped counts.
  os << "{\"v\": 2, \"spec\": " << spec_fingerprint << ", \"algorithm\": \""
     << json_escape(core::to_string(p.point.algorithm)) << "\", \"family\": \""
     << json_escape(p.point.family) << "\", \"n\": " << p.point.n
     << ", \"k\": " << p.point.k << ", \"f\": " << p.point.f
     << ", \"seed\": " << p.point.seed << ", \"strategy\": \""
     << json_escape(core::to_string(p.point.strategy)) << "\", \"mix\": \""
     << json_escape(mix_to_string(p.point.mix))
     << "\", \"derived_seed\": " << p.derived_seed
     << ", \"skipped\": " << (p.skipped ? "true" : "false")
     << ", \"skip_reason\": \"" << json_escape(p.skip_reason)
     << "\", \"saturated\": " << (p.saturated ? "true" : "false")
     << ", \"ok\": " << (p.ok ? "true" : "false") << ", \"detail\": \""
     << json_escape(p.detail) << "\", \"rounds\": " << p.stats.rounds
     << ", \"simulated_rounds\": " << p.stats.simulated_rounds
     << ", \"resumes\": " << p.stats.resumes
     << ", \"moves\": " << p.stats.moves
     << ", \"messages\": " << p.stats.messages << ", \"all_honest_done\": "
     << (p.stats.all_honest_done ? "true" : "false")
     << ", \"planned_rounds\": " << p.planned_rounds << ", \"seconds\": "
     << exact_double(p.seconds) << "}\n";
}

void append_checkpoint_line(std::ostream& os, const std::string& path,
                            const PointResult& p,
                            std::uint64_t spec_fingerprint) {
  write_checkpoint_line(os, p, spec_fingerprint);
  os.flush();
  if (!os.good())
    throw std::runtime_error(
        "checkpoint append failed (disk full or descriptor closed?): " +
        path);
}

std::optional<CheckpointEntry> parse_checkpoint_line(const std::string& line) {
  // A complete record is one whole object: it must both open with '{' and
  // end with '}' (modulo trailing whitespace). A torn tail from a crash
  // mid-write fails here even when the truncated prefix happens to contain
  // every key and a '}' inside an escaped string — prefix parses must never
  // resurface as results.
  std::size_t end = line.size();
  while (end > 0 && (line[end - 1] == ' ' || line[end - 1] == '\r')) --end;
  if (end == 0 || line.front() != '{' || line[end - 1] != '}')
    return std::nullopt;
  std::uint64_t version = 0;
  if (!find_u64(line, "v", version) || version != 2) return std::nullopt;

  CheckpointEntry entry;
  PointResult& p = entry.result;
  std::string algorithm, strategy, mix_text;
  if (!find_u64(line, "spec", entry.spec) ||
      !find_string(line, "algorithm", algorithm) ||
      !find_string(line, "family", p.point.family) ||
      !find_u32(line, "n", p.point.n) || !find_u32(line, "k", p.point.k) ||
      !find_u32(line, "f", p.point.f) ||
      !find_u64(line, "seed", p.point.seed) ||
      !find_string(line, "strategy", strategy) ||
      !find_string(line, "mix", mix_text) ||
      !find_u64(line, "derived_seed", p.derived_seed) ||
      !find_bool(line, "skipped", p.skipped) ||
      !find_string(line, "skip_reason", p.skip_reason) ||
      !find_bool(line, "saturated", p.saturated) ||
      !find_bool(line, "ok", p.ok) || !find_string(line, "detail", p.detail) ||
      !find_round(line, "rounds", p.stats.rounds) ||
      !find_u64(line, "simulated_rounds", p.stats.simulated_rounds) ||
      !find_u64(line, "resumes", p.stats.resumes) ||
      !find_u64(line, "moves", p.stats.moves) ||
      !find_u64(line, "messages", p.stats.messages) ||
      !find_bool(line, "all_honest_done", p.stats.all_honest_done) ||
      !find_round(line, "planned_rounds", p.planned_rounds) ||
      !find_double(line, "seconds", p.seconds))
    return std::nullopt;

  const auto a = core::algorithm_from_string(algorithm);
  const auto s = core::strategy_from_string(strategy);
  const auto mix = mix_from_string(mix_text);
  if (!a || !s || !mix) return std::nullopt;
  p.point.algorithm = *a;
  p.point.strategy = *s;
  p.point.mix = *mix;
  return entry;
}

util::FlatMap<std::uint64_t, PointResult> load_checkpoint(
    std::istream& is, std::uint64_t spec_fingerprint,
    CheckpointLoadStats* stats) {
  util::FlatMap<std::uint64_t, PointResult> out;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // blank separators are not torn records
    auto entry = parse_checkpoint_line(line);
    if (!entry) {
      // A torn tail (crash mid-write_checkpoint_line) or garbage: the point
      // re-runs, and the caller surfaces the count — silent nullopt must
      // not be the only witness of a truncated record.
      if (stats != nullptr) ++stats->malformed;
      continue;
    }
    if (entry->spec != spec_fingerprint) {
      if (stats != nullptr) ++stats->foreign;
      continue;  // other sweep knobs: must re-run, not resurface
    }
    if (stats != nullptr) ++stats->loaded;
    out[entry->result.derived_seed] = std::move(entry->result);
  }
  return out;
}

}  // namespace bdg::run
