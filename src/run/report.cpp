#include "run/report.h"

#include <cstdio>
#include <ostream>

namespace bdg::run {
namespace {

/// Family names and strategy names are identifier-like, but escape anyway
/// so free-form verifier details stay valid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Quote a field when it contains CSV metacharacters (the ring-baseline
/// algorithm name carries a literal comma in its citation brackets).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_points_csv(std::ostream& os, const SweepResult& result) {
  os << "algorithm,family,n,f,seed,strategy,derived_seed,ok,rounds,"
        "simulated_rounds,moves,messages,planned_rounds,seconds\n";
  for (const PointResult& p : result.points) {
    if (p.skipped) continue;
    os << csv_field(core::to_string(p.point.algorithm)) << ','
       << csv_field(p.point.family) << ',' << p.point.n << ',' << p.point.f
       << ',' << p.point.seed << ','
       << csv_field(core::to_string(p.point.strategy)) << ','
       << p.derived_seed << ',' << (p.ok ? 1 : 0) << ',' << p.stats.rounds
       << ',' << p.stats.simulated_rounds << ',' << p.stats.moves << ','
       << p.stats.messages << ',' << p.planned_rounds << ',' << p.seconds
       << '\n';
  }
}

void write_cells_csv(std::ostream& os, const SweepResult& result) {
  os << "algorithm,family,n,f,runs,dispersed,min_rounds,max_rounds,"
        "mean_rounds,mean_simulated,mean_moves,mean_messages,mean_seconds\n";
  for (const CellAggregate& c : result.cells) {
    os << csv_field(core::to_string(c.algorithm)) << ',' << csv_field(c.family)
       << ',' << c.n << ',' << c.f << ',' << c.runs << ',' << c.dispersed
       << ',' << c.min_rounds << ',' << c.max_rounds << ',' << c.mean_rounds
       << ',' << c.mean_simulated << ',' << c.mean_moves << ','
       << c.mean_messages << ',' << c.mean_seconds << '\n';
  }
}

void write_json(std::ostream& os, const SweepResult& result) {
  os << "{\n  \"wall_seconds\": " << result.wall_seconds
     << ",\n  \"points\": [";
  bool first = true;
  for (const PointResult& p : result.points) {
    os << (first ? "\n" : ",\n") << "    {\"algorithm\": \""
       << json_escape(core::to_string(p.point.algorithm)) << "\", \"family\": \""
       << json_escape(p.point.family) << "\", \"n\": " << p.point.n
       << ", \"f\": " << p.point.f << ", \"seed\": " << p.point.seed
       << ", \"strategy\": \""
       << json_escape(core::to_string(p.point.strategy)) << "\", \"derived_seed\": "
       << p.derived_seed;
    if (p.skipped) {
      os << ", \"skipped\": true, \"skip_reason\": \""
         << json_escape(p.skip_reason) << "\"}";
    } else {
      os << ", \"ok\": " << (p.ok ? "true" : "false")
         << ", \"rounds\": " << p.stats.rounds
         << ", \"simulated_rounds\": " << p.stats.simulated_rounds
         << ", \"moves\": " << p.stats.moves
         << ", \"messages\": " << p.stats.messages
         << ", \"planned_rounds\": " << p.planned_rounds
         << ", \"seconds\": " << p.seconds;
      if (!p.ok) os << ", \"detail\": \"" << json_escape(p.detail) << "\"";
      os << '}';
    }
    first = false;
  }
  os << "\n  ],\n  \"cells\": [";
  first = true;
  for (const CellAggregate& c : result.cells) {
    os << (first ? "\n" : ",\n") << "    {\"algorithm\": \""
       << json_escape(core::to_string(c.algorithm)) << "\", \"family\": \""
       << json_escape(c.family) << "\", \"n\": " << c.n << ", \"f\": " << c.f
       << ", \"runs\": " << c.runs << ", \"dispersed\": " << c.dispersed
       << ", \"min_rounds\": " << c.min_rounds
       << ", \"max_rounds\": " << c.max_rounds
       << ", \"mean_rounds\": " << c.mean_rounds
       << ", \"mean_simulated\": " << c.mean_simulated
       << ", \"mean_moves\": " << c.mean_moves
       << ", \"mean_messages\": " << c.mean_messages
       << ", \"mean_seconds\": " << c.mean_seconds << '}';
    first = false;
  }
  os << "\n  ]\n}\n";
}

}  // namespace bdg::run
