#include "run/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace bdg::run {
namespace {

/// Family names and strategy names are identifier-like, but escape anyway
/// so free-form verifier details stay valid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Inverse of json_escape for the escapes it emits (checkpoint lines only
/// ever contain writer-produced strings).
std::string json_unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 < s.size()) {
          const std::string hex = s.substr(i + 1, 4);
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          i += 4;
        }
        break;
      }
      default: out += e;
    }
  }
  return out;
}

/// Quote a field when it contains CSV metacharacters (the ring-baseline
/// algorithm name carries a literal comma in its citation brackets).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Doubles that must survive a write -> parse -> write cycle bit-exactly
/// (checkpoint seconds) print with max_digits10 significant digits.
std::string exact_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

// --- checkpoint line scanning ---------------------------------------------
// The parser only has to read what write_checkpoint_line produces: a flat
// JSON object, string values escaped by json_escape, no nested objects.

/// Find `"key":` at top level and return the raw value token after it.
bool find_raw(const std::string& line, const char* key, std::string& out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    // String: scan to the closing unescaped quote.
    std::size_t j = i + 1;
    while (j < line.size()) {
      if (line[j] == '\\') {
        j += 2;
        continue;
      }
      if (line[j] == '"') break;
      ++j;
    }
    if (j >= line.size()) return false;
    out = line.substr(i + 1, j - i - 1);
    return true;
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  out = line.substr(i, j - i);
  return true;
}

bool find_string(const std::string& line, const char* key, std::string& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  out = json_unescape(raw);
  return true;
}

bool find_u64(const std::string& line, const char* key, std::uint64_t& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  char* end = nullptr;
  out = std::strtoull(raw.c_str(), &end, 10);
  return end != raw.c_str();
}

bool find_u32(const std::string& line, const char* key, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!find_u64(line, key, v)) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

/// Round counts are exact decimal magnitudes up to 2^128-1; a malformed or
/// overflowing token fails the whole line (foreign data must re-run).
bool find_round(const std::string& line, const char* key, core::Round& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  const auto parsed = core::Round::from_string(raw);
  if (!parsed) return false;
  out = *parsed;
  return true;
}

bool find_bool(const std::string& line, const char* key, bool& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  if (raw == "true") {
    out = true;
    return true;
  }
  if (raw == "false") {
    out = false;
    return true;
  }
  return false;
}

bool find_double(const std::string& line, const char* key, double& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str();
}

}  // namespace

std::string mix_to_string(const std::vector<core::ByzStrategy>& mix) {
  if (mix.empty()) return "-";
  std::string out;
  for (const core::ByzStrategy s : mix) {
    if (!out.empty()) out += '+';
    out += core::to_string(s);
  }
  return out;
}

std::optional<std::vector<core::ByzStrategy>> mix_from_string(
    const std::string& text) {
  std::vector<core::ByzStrategy> mix;
  if (text == "-" || text.empty()) return mix;
  std::stringstream ss(text);
  std::string name;
  while (std::getline(ss, name, '+')) {
    const auto s = core::strategy_from_string(name);
    if (!s) return std::nullopt;
    mix.push_back(*s);
  }
  return mix;
}

void write_points_csv(std::ostream& os, const SweepResult& result) {
  os << "algorithm,family,n,k,f,seed,strategy,mix,derived_seed,ok,rounds,"
        "simulated_rounds,moves,messages,planned_rounds,seconds\n";
  for (const PointResult& p : result.points) {
    if (p.skipped) continue;
    os << csv_field(core::to_string(p.point.algorithm)) << ','
       << csv_field(p.point.family) << ',' << p.point.n << ','
       << (p.point.k == 0 ? p.point.n : p.point.k) << ',' << p.point.f
       << ',' << p.point.seed << ','
       << csv_field(core::to_string(p.point.strategy)) << ','
       << csv_field(mix_to_string(p.point.mix)) << ',' << p.derived_seed
       << ',' << (p.ok ? 1 : 0) << ',' << p.stats.rounds << ','
       << p.stats.simulated_rounds << ',' << p.stats.moves << ','
       << p.stats.messages << ',' << p.planned_rounds << ',' << p.seconds
       << '\n';
  }
}

void write_cells_csv(std::ostream& os, const SweepResult& result) {
  os << "algorithm,family,n,k,f,mix,runs,dispersed,min_rounds,max_rounds,"
        "mean_rounds,mean_simulated,mean_moves,mean_messages,mean_seconds\n";
  for (const CellAggregate& c : result.cells) {
    os << csv_field(core::to_string(c.algorithm)) << ',' << csv_field(c.family)
       << ',' << c.n << ',' << (c.k == 0 ? c.n : c.k) << ',' << c.f << ','
       << csv_field(mix_to_string(c.mix)) << ',' << c.runs << ','
       << c.dispersed << ',' << c.min_rounds << ',' << c.max_rounds << ','
       << c.mean_rounds << ',' << c.mean_simulated << ',' << c.mean_moves
       << ',' << c.mean_messages << ',' << c.mean_seconds << '\n';
  }
}

void write_json(std::ostream& os, const SweepResult& result) {
  os << "{\n  \"wall_seconds\": " << result.wall_seconds
     << ",\n  \"points\": [";
  bool first = true;
  for (const PointResult& p : result.points) {
    os << (first ? "\n" : ",\n") << "    {\"algorithm\": \""
       << json_escape(core::to_string(p.point.algorithm)) << "\", \"family\": \""
       << json_escape(p.point.family) << "\", \"n\": " << p.point.n
       << ", \"k\": " << (p.point.k == 0 ? p.point.n : p.point.k)
       << ", \"f\": " << p.point.f << ", \"seed\": " << p.point.seed
       << ", \"strategy\": \""
       << json_escape(core::to_string(p.point.strategy)) << "\", \"mix\": \""
       << json_escape(mix_to_string(p.point.mix)) << "\", \"derived_seed\": "
       << p.derived_seed;
    if (p.skipped) {
      os << ", \"skipped\": true, \"skip_reason\": \""
         << json_escape(p.skip_reason) << "\"";
      if (p.saturated) os << ", \"saturated\": true";
      os << '}';
    } else {
      os << ", \"ok\": " << (p.ok ? "true" : "false")
         << ", \"rounds\": " << p.stats.rounds
         << ", \"simulated_rounds\": " << p.stats.simulated_rounds
         << ", \"moves\": " << p.stats.moves
         << ", \"messages\": " << p.stats.messages
         << ", \"planned_rounds\": " << p.planned_rounds
         << ", \"seconds\": " << p.seconds;
      if (!p.ok) os << ", \"detail\": \"" << json_escape(p.detail) << "\"";
      os << '}';
    }
    first = false;
  }
  os << "\n  ],\n  \"cells\": [";
  first = true;
  for (const CellAggregate& c : result.cells) {
    os << (first ? "\n" : ",\n") << "    {\"algorithm\": \""
       << json_escape(core::to_string(c.algorithm)) << "\", \"family\": \""
       << json_escape(c.family) << "\", \"n\": " << c.n << ", \"k\": "
       << (c.k == 0 ? c.n : c.k) << ", \"f\": " << c.f << ", \"mix\": \""
       << json_escape(mix_to_string(c.mix)) << "\""
       << ", \"runs\": " << c.runs << ", \"dispersed\": " << c.dispersed
       << ", \"min_rounds\": " << c.min_rounds
       << ", \"max_rounds\": " << c.max_rounds
       << ", \"mean_rounds\": " << c.mean_rounds
       << ", \"mean_simulated\": " << c.mean_simulated
       << ", \"mean_moves\": " << c.mean_moves
       << ", \"mean_messages\": " << c.mean_messages
       << ", \"mean_seconds\": " << c.mean_seconds << '}';
    first = false;
  }
  os << "\n  ]\n}\n";
}

void write_checkpoint_line(std::ostream& os, const PointResult& p,
                           std::uint64_t spec_fingerprint) {
  // v2: `rounds`/`planned_rounds` are exact 128-bit decimals and the
  // `saturated` flag is recorded. v1 lines (64-bit rounds) parse to
  // nullopt on load, so checkpoints written before the Round widening
  // re-run instead of silently importing possibly-capped counts.
  os << "{\"v\": 2, \"spec\": " << spec_fingerprint << ", \"algorithm\": \""
     << json_escape(core::to_string(p.point.algorithm)) << "\", \"family\": \""
     << json_escape(p.point.family) << "\", \"n\": " << p.point.n
     << ", \"k\": " << p.point.k << ", \"f\": " << p.point.f
     << ", \"seed\": " << p.point.seed << ", \"strategy\": \""
     << json_escape(core::to_string(p.point.strategy)) << "\", \"mix\": \""
     << json_escape(mix_to_string(p.point.mix))
     << "\", \"derived_seed\": " << p.derived_seed
     << ", \"skipped\": " << (p.skipped ? "true" : "false")
     << ", \"skip_reason\": \"" << json_escape(p.skip_reason)
     << "\", \"saturated\": " << (p.saturated ? "true" : "false")
     << ", \"ok\": " << (p.ok ? "true" : "false") << ", \"detail\": \""
     << json_escape(p.detail) << "\", \"rounds\": " << p.stats.rounds
     << ", \"simulated_rounds\": " << p.stats.simulated_rounds
     << ", \"resumes\": " << p.stats.resumes
     << ", \"moves\": " << p.stats.moves
     << ", \"messages\": " << p.stats.messages << ", \"all_honest_done\": "
     << (p.stats.all_honest_done ? "true" : "false")
     << ", \"planned_rounds\": " << p.planned_rounds << ", \"seconds\": "
     << exact_double(p.seconds) << "}\n";
}

std::optional<CheckpointEntry> parse_checkpoint_line(const std::string& line) {
  if (line.empty() || line.front() != '{' ||
      line.find_last_of('}') == std::string::npos)
    return std::nullopt;
  std::uint64_t version = 0;
  if (!find_u64(line, "v", version) || version != 2) return std::nullopt;

  CheckpointEntry entry;
  PointResult& p = entry.result;
  std::string algorithm, strategy, mix_text;
  if (!find_u64(line, "spec", entry.spec) ||
      !find_string(line, "algorithm", algorithm) ||
      !find_string(line, "family", p.point.family) ||
      !find_u32(line, "n", p.point.n) || !find_u32(line, "k", p.point.k) ||
      !find_u32(line, "f", p.point.f) ||
      !find_u64(line, "seed", p.point.seed) ||
      !find_string(line, "strategy", strategy) ||
      !find_string(line, "mix", mix_text) ||
      !find_u64(line, "derived_seed", p.derived_seed) ||
      !find_bool(line, "skipped", p.skipped) ||
      !find_string(line, "skip_reason", p.skip_reason) ||
      !find_bool(line, "saturated", p.saturated) ||
      !find_bool(line, "ok", p.ok) || !find_string(line, "detail", p.detail) ||
      !find_round(line, "rounds", p.stats.rounds) ||
      !find_u64(line, "simulated_rounds", p.stats.simulated_rounds) ||
      !find_u64(line, "resumes", p.stats.resumes) ||
      !find_u64(line, "moves", p.stats.moves) ||
      !find_u64(line, "messages", p.stats.messages) ||
      !find_bool(line, "all_honest_done", p.stats.all_honest_done) ||
      !find_round(line, "planned_rounds", p.planned_rounds) ||
      !find_double(line, "seconds", p.seconds))
    return std::nullopt;

  const auto a = core::algorithm_from_string(algorithm);
  const auto s = core::strategy_from_string(strategy);
  const auto mix = mix_from_string(mix_text);
  if (!a || !s || !mix) return std::nullopt;
  p.point.algorithm = *a;
  p.point.strategy = *s;
  p.point.mix = *mix;
  return entry;
}

std::unordered_map<std::uint64_t, PointResult> load_checkpoint(
    std::istream& is, std::uint64_t spec_fingerprint) {
  std::unordered_map<std::uint64_t, PointResult> out;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto entry = parse_checkpoint_line(line);
    if (!entry) continue;  // truncated tail / foreign line: skip, don't fail
    if (entry->spec != spec_fingerprint) continue;  // other sweep knobs
    out[entry->result.derived_seed] = std::move(entry->result);
  }
  return out;
}

}  // namespace bdg::run
