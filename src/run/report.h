#pragma once
// Render SweepResult as machine-readable CSV / JSON (per-point and
// per-cell), for EXPERIMENTS.md tables, plotting scripts and CI artifacts —
// plus the JSON-lines checkpoint format resumable sweeps persist per-point
// results through.
#include <iosfwd>
#include <optional>
#include <string>

#include "run/sweep.h"
#include "util/flat_hash.h"

namespace bdg::run {

/// Adversary mix as a stable string: strategy names joined by '+'
/// ("map_liar+crash"); empty mix = "-". Round-trips via mix_from_string.
[[nodiscard]] std::string mix_to_string(
    const std::vector<core::ByzStrategy>& mix);

/// Inverse of mix_to_string; nullopt if any component name is unknown.
[[nodiscard]] std::optional<std::vector<core::ByzStrategy>> mix_from_string(
    const std::string& text);

/// CSV header rows (no trailing newline), shared with the sweep_query
/// client so its CSV output diffs clean against report CSVs.
inline constexpr const char kPointsCsvHeader[] =
    "algorithm,family,n,k,f,seed,strategy,mix,derived_seed,ok,rounds,"
    "simulated_rounds,moves,messages,planned_rounds,seconds";
inline constexpr const char kCellsCsvHeader[] =
    "algorithm,family,n,k,f,mix,runs,dispersed,min_rounds,max_rounds,"
    "mean_rounds,mean_simulated,mean_moves,mean_messages,mean_seconds";

/// Quote a field when it contains CSV metacharacters (the ring-baseline
/// algorithm name carries a literal comma in its citation brackets).
[[nodiscard]] std::string csv_field(const std::string& s);

/// One CSV row per non-skipped point:
/// algorithm,family,n,k,f,seed,strategy,mix,derived_seed,ok,rounds,
/// simulated_rounds,moves,messages,planned_rounds,seconds
void write_points_csv(std::ostream& os, const SweepResult& result);

/// One CSV row per (algorithm, family, n, k, f, mix) cell aggregate.
void write_cells_csv(std::ostream& os, const SweepResult& result);

/// One point as a flat JSON object (no surrounding whitespace) — the
/// exact per-point object write_json emits, shared with the sweepd query
/// wire so query responses are byte-identical to report fragments.
void write_point_json(std::ostream& os, const PointResult& p);

/// One cell aggregate as a flat JSON object — same sharing contract.
void write_cell_json(std::ostream& os, const CellAggregate& c);

/// Full result (points incl. skips, cells, wall time) as a JSON document.
void write_json(std::ostream& os, const SweepResult& result);

// ---------------------------------------------------------------------------
// Resumable-sweep checkpoints (JSON lines, one self-contained object per
// completed point). The writer and parser are a matched pair: the parser
// accepts exactly what the writer emits (plus whitespace tolerance), so no
// external JSON dependency is needed, and every field of PointResult —
// including RunStats and wall seconds — round-trips bit-exactly.
// ---------------------------------------------------------------------------

/// One parsed checkpoint line: the point's result plus the
/// run::spec_fingerprint of the sweep that produced it.
struct CheckpointEntry {
  PointResult result;
  std::uint64_t spec = 0;
};

/// Append one checkpoint line for a completed (or structurally skipped)
/// point, stamped with the producing spec's fingerprint.
/// Newline-terminated; the caller flushes.
void write_checkpoint_line(std::ostream& os, const PointResult& p,
                           std::uint64_t spec_fingerprint);

/// Parse one checkpoint line; nullopt on malformed/foreign lines (a
/// truncated tail line from a crashed run is ignored, not fatal).
[[nodiscard]] std::optional<CheckpointEntry> parse_checkpoint_line(
    const std::string& line);

/// Tally of what load_checkpoint saw, so callers can surface torn tails
/// loudly instead of relying on parse_checkpoint_line's silent nullopt.
struct CheckpointLoadStats {
  std::size_t loaded = 0;     ///< usable entries returned
  std::size_t malformed = 0;  ///< torn/truncated/garbage lines skipped
  std::size_t foreign = 0;    ///< well-formed, but different spec fingerprint
};

/// Read a whole checkpoint stream into derived_seed -> PointResult,
/// keeping only entries whose spec fingerprint matches — results recorded
/// under different sweep knobs must re-run, not resurface. Later
/// duplicates win (append-only files may re-record a point). A truncated
/// final line (crash mid-append) is skipped and counted in
/// `stats->malformed`; run_sweep surfaces that count in the report.
/// Returns a util::FlatMap — lookup-only by design: restore matches grid
/// points against it by derived seed; nothing may iterate a checkpoint
/// load (grid order is the only order).
[[nodiscard]] util::FlatMap<std::uint64_t, PointResult> load_checkpoint(
    std::istream& is, std::uint64_t spec_fingerprint,
    CheckpointLoadStats* stats = nullptr);

/// Append one checkpoint line and flush, then verify the stream is still
/// good: a full disk or closed descriptor becomes a thrown error naming
/// `path`, never a silently lost point. Shared by run_sweep and the sweepd
/// coordinator's merge path.
void append_checkpoint_line(std::ostream& os, const std::string& path,
                            const PointResult& p,
                            std::uint64_t spec_fingerprint);

}  // namespace bdg::run
