#pragma once
// Render SweepResult as machine-readable CSV / JSON (per-point and
// per-cell), for EXPERIMENTS.md tables, plotting scripts and CI artifacts.
#include <iosfwd>

#include "run/sweep.h"

namespace bdg::run {

/// One CSV row per non-skipped point:
/// algorithm,family,n,f,seed,strategy,derived_seed,ok,rounds,
/// simulated_rounds,moves,messages,planned_rounds,seconds
void write_points_csv(std::ostream& os, const SweepResult& result);

/// One CSV row per (algorithm, family, n, f) cell aggregate.
void write_cells_csv(std::ostream& os, const SweepResult& result);

/// Full result (points incl. skips, cells, wall time) as a JSON document.
void write_json(std::ostream& os, const SweepResult& result);

}  // namespace bdg::run
