#include "run/service.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "run/report.h"
#include "util/json_mini.h"
#include "util/parallel.h"

namespace bdg::run {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
      .count();
}

// ---------------------------------------------------------------------------
// Control messages. Flat JSON like the checkpoint records; a frame whose
// "type" field is absent is a result (a verbatim checkpoint line).
// ---------------------------------------------------------------------------

std::string msg_hello(const std::string& name, std::uint64_t spec_fp,
                      std::uint64_t grid_fp) {
  std::ostringstream os;
  os << "{\"type\": \"hello\", \"name\": \"" << json::escape(name)
     << "\", \"spec\": " << spec_fp << ", \"grid\": " << grid_fp << "}";
  return os.str();
}

std::string msg_hello_ok(std::uint32_t lease_timeout_ms) {
  std::ostringstream os;
  os << "{\"type\": \"hello_ok\", \"lease_timeout_ms\": " << lease_timeout_ms
     << "}";
  return os.str();
}

std::string msg_reject(const std::string& reason) {
  std::ostringstream os;
  os << "{\"type\": \"reject\", \"reason\": \"" << json::escape(reason)
     << "\"}";
  return os.str();
}

std::string msg_lease(std::uint64_t id,
                      const std::vector<std::size_t>& indices) {
  std::ostringstream os;
  os << "{\"type\": \"lease\", \"id\": " << id << ", \"points\": \"";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i != 0) os << ' ';
    os << indices[i];
  }
  os << "\"}";
  return os.str();
}

std::string msg_heartbeat(std::uint64_t lease_id) {
  std::ostringstream os;
  os << "{\"type\": \"heartbeat\", \"id\": " << lease_id << "}";
  return os.str();
}

std::string msg_lease_done(std::uint64_t lease_id) {
  std::ostringstream os;
  os << "{\"type\": \"lease_done\", \"id\": " << lease_id << "}";
  return os.str();
}

std::string msg_shutdown() { return "{\"type\": \"shutdown\"}"; }

// Each shimmed connection uses schedule seed (base seed + connection
// index): still a pure function of the config, but a schedule that eats
// the handshake frame cannot livelock reconnects by eating it identically
// on every redial.
net::FaultConfig offset_fault(net::FaultConfig cfg, std::uint64_t index) {
  cfg.seed += index;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

struct Coordinator::Impl {
  SweepSpec spec;
  ServiceConfig svc;
  net::Listener listener;

  Impl(SweepSpec s, ServiceConfig c)
      : spec(std::move(s)), svc(std::move(c)), listener(svc.port) {}
};

Coordinator::Coordinator(SweepSpec spec, ServiceConfig svc)
    : impl_(std::make_unique<Impl>(std::move(spec), std::move(svc))) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

SweepResult Coordinator::serve(const std::atomic<bool>* stop) {
  const SweepSpec& spec = impl_->spec;
  const ServiceConfig& svc = impl_->svc;

  SweepResult result;
  const std::vector<SweepPoint> grid = expand_grid(spec);
  const std::uint64_t fp = spec_fingerprint(spec);
  const std::uint64_t gfp = grid_fingerprint(spec, grid);
  const auto t0 = Clock::now();

  const RestoredCheckpoint restored =
      restore_checkpoint(spec, grid, result.points);
  result.from_checkpoint = restored.restored;
  result.torn_checkpoint_lines = restored.torn;

  std::vector<char> have(grid.size(), 1);
  for (const std::size_t i : restored.todo) have[i] = 0;

  // Results are keyed by derived seed on the wire (they ARE checkpoint
  // records); map them back to their grid index to merge in place. The
  // WHOLE grid is indexed, not just the todo stripe: a worker surviving a
  // coordinator restart + --resume may re-stream results the checkpoint
  // already holds, and those must count as duplicates, not protocol
  // errors. Point queries by derived seed resolve through the same map.
  // util::FlatMap: lookup-only, and structurally un-iterable — merge order
  // is delivery order, grid order is the only report order.
  util::FlatMap<std::uint64_t, std::size_t> seed_to_index;
  seed_to_index.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    seed_to_index[point_seed(spec.base_seed, grid[i])] = i;

  // Live cell aggregates: every restored/merged point folds in as it
  // lands (restored ones here, in grid order), so queries are answered
  // from state that is bit-identical to a full rebuild at any instant.
  CellAggregator agg;
  for (std::size_t i = 0; i < grid.size(); ++i)
    if (have[i]) agg.add(i, result.points[i]);

  // Per-grid-index merge bookkeeping: the lease currently owning each
  // index (0 = none). With it, retiring a merged result is O(lease size)
  // instead of a scan over every lease and the whole pending deque;
  // pending membership is implicit (not owned, no result yet) and stale
  // entries are skipped lazily at grant/fallback time.
  std::vector<std::uint64_t> owner(grid.size(), 0);

  std::ofstream ck;
  if (!spec.checkpoint_path.empty() && !restored.todo.empty()) {
    ck.open(spec.checkpoint_path, std::ios::app);
    if (!ck)
      throw std::runtime_error("sweepd: cannot open checkpoint " +
                               spec.checkpoint_path);
  }

  std::deque<std::size_t> pending(restored.todo.begin(), restored.todo.end());
  const std::size_t need = restored.todo.size();
  std::size_t merged = 0;
  bool aborted = false;

  struct WorkerSlot {
    std::unique_ptr<net::Channel> ch;
    std::string name;
    bool greeted = false;
    bool is_client = false;  ///< sent a query: never leased, never reaped
    std::uint64_t lease_id = 0;  ///< 0 = idle
    Clock::time_point connected_at;
  };
  struct LeaseState {
    std::vector<std::size_t> remaining;  ///< indices without a result yet
    int slot = -1;
    Clock::time_point deadline;
  };
  std::map<int, WorkerSlot> slots;
  std::map<std::uint64_t, LeaseState> leases;
  int next_slot = 0;
  std::uint64_t next_lease = 1;
  Clock::time_point last_live = Clock::now();

  // `mu` serializes merges: the event loop is single-threaded, but the
  // zero-worker local fallback runs points through parallel_for_index and
  // merges from its worker threads (exactly as run_sweep does).
  std::mutex mu;

  // Revoke a worker's lease (re-queueing what it still owed at the FRONT,
  // preserving near-grid-order dispatch) and drop its connection.
  const auto drop_worker = [&](int sid) {
    const auto it = slots.find(sid);
    if (it == slots.end()) return;
    if (it->second.lease_id != 0) {
      const auto lit = leases.find(it->second.lease_id);
      if (lit != leases.end()) {
        if (!lit->second.remaining.empty()) {
          ++stats_.leases_reassigned;
          for (auto r = lit->second.remaining.rbegin();
               r != lit->second.remaining.rend(); ++r) {
            owner[*r] = 0;
            pending.push_front(*r);
          }
        }
        leases.erase(lit);
      }
    }
    it->second.ch->shutdown();
    slots.erase(it);
  };

  // Merge one completed PointResult: place it at its grid index, append it
  // to the checkpoint, retire it from whichever lease/queue still lists it.
  // Duplicates (a re-run after reassignment racing the original delivery)
  // are ignored — results are deterministic per derived seed, so whichever
  // copy lands first is THE result.
  const auto merge_result = [&](PointResult&& pr) {
    const std::size_t* found = seed_to_index.find(pr.derived_seed);
    if (found == nullptr || !same_point(pr.point, grid[*found])) {
      ++stats_.protocol_errors;
      return;
    }
    const std::size_t idx = *found;
    if (have[idx]) {
      ++stats_.duplicate_results;
      return;
    }
    result.points[idx] = std::move(pr);
    have[idx] = 1;
    ++merged;
    agg.add(idx, result.points[idx]);
    // O(1) retirement via the owner map: only the owning lease (if any)
    // is touched; a pending entry for this index (duplicate racing a
    // reassignment) is skipped lazily when the queue is next drained.
    if (owner[idx] != 0) {
      const auto lit = leases.find(owner[idx]);
      if (lit != leases.end()) {
        auto& rem = lit->second.remaining;
        const auto rit = std::find(rem.begin(), rem.end(), idx);
        if (rit != rem.end()) rem.erase(rit);
      }
      owner[idx] = 0;
    }
    if (ck.is_open())
      append_checkpoint_line(ck, spec.checkpoint_path, result.points[idx], fp);
    if (spec.progress &&
        !spec.progress(result.points[idx], result.from_checkpoint + merged,
                       grid.size()))
      aborted = true;
  };

  // Answer one query frame: a flat `result` header echoing the query id,
  // then `count` body frames that are byte-identical to the report's
  // per-cell / per-point JSON objects. Snapshots under `mu` because the
  // local fallback merges (and folds the aggregator) from worker threads.
  // false = client connection broken; drop it.
  const auto answer_query = [&](WorkerSlot& w,
                                const std::string& payload) -> bool {
    std::uint64_t qid = 0;
    json::find_u64(payload, "id", qid);
    std::string what;
    json::find_string(payload, "what", what);

    std::string error;
    bool pending_point = false;
    std::vector<std::string> bodies;
    std::uint64_t live_cells = 0;
    std::uint64_t completed = 0;
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      live_cells = agg.cell_count();
      completed = result.from_checkpoint + merged;
      done = merged >= need;
      if (what == "cells") {
        std::optional<std::string> algorithm, family, mix;
        std::string s;
        if (json::find_string(payload, "algorithm", s)) algorithm = s;
        if (json::find_string(payload, "family", s)) family = s;
        if (json::find_string(payload, "mix", s)) mix = s;
        std::uint32_t u = 0;
        std::optional<std::uint32_t> n, k, f;
        if (json::find_u32(payload, "n", u)) n = u;
        if (json::find_u32(payload, "k", u)) k = u;
        if (json::find_u32(payload, "f", u)) f = u;
        for (const CellAggregate& c : agg.cells()) {
          if (algorithm && *algorithm != core::to_string(c.algorithm)) continue;
          if (family && *family != c.family) continue;
          if (mix && *mix != mix_to_string(c.mix)) continue;
          if (n && *n != c.n) continue;
          if (k && *k != (c.k == 0 ? c.n : c.k)) continue;
          if (f && *f != c.f) continue;
          std::ostringstream os;
          write_cell_json(os, c);
          bodies.push_back(os.str());
        }
      } else if (what == "point") {
        std::uint64_t seed = 0;
        std::uint64_t index = 0;
        std::size_t idx = grid.size();
        if (json::find_u64(payload, "index", index)) {
          if (index < grid.size())
            idx = static_cast<std::size_t>(index);
          else
            error = "index out of range";
        } else if (json::find_u64(payload, "derived_seed", seed)) {
          const std::size_t* found = seed_to_index.find(seed);
          if (found != nullptr)
            idx = *found;
          else
            error = "unknown derived seed";
        } else {
          error = "point query needs derived_seed or index";
        }
        if (idx < grid.size()) {
          if (have[idx]) {
            std::ostringstream os;
            write_point_json(os, result.points[idx]);
            bodies.push_back(os.str());
          } else {
            pending_point = true;  // known point, no result yet
          }
        }
      } else if (what != "progress") {
        error = "unknown query what";
      }
    }

    std::ostringstream h;
    h << "{\"type\": \"result\", \"id\": " << qid << ", \"what\": \""
      << json::escape(what) << "\", \"count\": " << bodies.size();
    if (!error.empty()) h << ", \"error\": \"" << json::escape(error) << "\"";
    if (pending_point) h << ", \"pending\": true";
    if (what == "progress")
      h << ", \"total\": " << grid.size() << ", \"completed\": " << completed
        << ", \"restored\": " << result.from_checkpoint
        << ", \"cells\": " << live_cells
        << ", \"done\": " << (done ? "true" : "false")
        << ", \"workers_seen\": " << stats_.workers_seen
        << ", \"workers_rejected\": " << stats_.workers_rejected
        << ", \"leases_granted\": " << stats_.leases_granted
        << ", \"leases_reassigned\": " << stats_.leases_reassigned
        << ", \"duplicate_results\": " << stats_.duplicate_results
        << ", \"local_fallback_points\": " << stats_.local_fallback_points
        << ", \"protocol_errors\": " << stats_.protocol_errors
        << ", \"clients_seen\": " << stats_.clients_seen
        << ", \"queries_answered\": " << stats_.queries_answered;
    h << "}";
    if (!w.ch->send_frame(h.str())) return false;
    for (const std::string& body : bodies)
      if (!w.ch->send_frame(body)) return false;
    ++stats_.queries_answered;
    return true;
  };

  // Handle one frame from slot `sid`; false = drop the connection.
  const auto handle_frame = [&](int sid, const std::string& payload) -> bool {
    WorkerSlot& w = slots.at(sid);
    std::string type;
    if (json::find_string(payload, "type", type)) {
      if (type == "query") {
        if (!w.is_client) {
          w.is_client = true;
          ++stats_.clients_seen;
        }
        return answer_query(w, payload);
      }
      if (type == "hello") {
        if (merged >= need) {
          // The grid finished while we kept serving queries: a worker
          // (re)dialing in gets its shutdown at the handshake and exits
          // cleanly instead of waiting for leases that will never come.
          w.ch->send_frame(msg_shutdown());
          return false;
        }
        std::uint64_t wspec = 0;
        std::uint64_t wgrid = 0;
        std::string name;
        json::find_string(payload, "name", name);
        if (json::find_u64(payload, "spec", wspec) &&
            json::find_u64(payload, "grid", wgrid) && wspec == fp &&
            wgrid == gfp) {
          w.greeted = true;
          w.name = name.empty() ? "worker#" + std::to_string(sid) : name;
          return w.ch->send_frame(msg_hello_ok(svc.lease_timeout_ms));
        }
        ++stats_.workers_rejected;
        w.ch->send_frame(msg_reject("grid/spec fingerprint mismatch"));
        return false;
      }
      if (type == "heartbeat") {
        // Only a heartbeat carrying the slot's LIVE lease id extends its
        // deadline. The idle ping (id 0) a leaseless worker emits every
        // idle_recv_ms must not: after a lease_done is lost in transit,
        // the stale lease would otherwise be re-extended forever by idle
        // pings — a livelock where the worker waits for a lease and the
        // coordinator waits for a deadline that never comes.
        std::uint64_t id = 0;
        if (json::find_u64(payload, "id", id) && id != 0 &&
            id == w.lease_id) {
          const auto lit = leases.find(id);
          if (lit != leases.end())
            lit->second.deadline =
                Clock::now() + std::chrono::milliseconds(svc.lease_timeout_ms);
        }
        return true;
      }
      if (type == "lease_done") {
        std::uint64_t id = 0;
        if (json::find_u64(payload, "id", id) && id != 0 &&
            id == w.lease_id) {
          const auto lit = leases.find(id);
          if (lit != leases.end()) {
            if (!lit->second.remaining.empty()) {
              // Results lost in transit: the worker claims it ran them, but
              // they never arrived. Re-run them — idempotence makes that
              // safe, and the checkpoint never saw them.
              ++stats_.leases_reassigned;
              for (auto r = lit->second.remaining.rbegin();
                   r != lit->second.remaining.rend(); ++r)
                pending.push_front(*r);
            }
            leases.erase(lit);
          }
          w.lease_id = 0;
        }
        return true;
      }
      ++stats_.protocol_errors;
      return true;
    }
    // No "type": a result — a verbatim checkpoint record.
    auto entry = parse_checkpoint_line(payload);
    if (!entry || entry->spec != fp) {
      ++stats_.protocol_errors;
      return true;
    }
    if (w.lease_id != 0) {
      const auto lit = leases.find(w.lease_id);
      if (lit != leases.end())
        lit->second.deadline =
            Clock::now() + std::chrono::milliseconds(svc.lease_timeout_ms);
    }
    std::lock_guard<std::mutex> lock(mu);
    merge_result(std::move(entry->result));
    return true;
  };

  // serve_after_finish keeps the loop answering queries once the grid is
  // done; the stop flag then ends serving WITHOUT marking the sweep
  // aborted (it did finish). Workers are dismissed the moment the grid
  // completes so only client connections outlive it.
  bool serving = svc.serve_after_finish;
  bool workers_dismissed = false;
  while (true) {
    if (stop && stop->load()) {
      if (merged < need) aborted = true;
      serving = false;
    }
    if (aborted) break;
    if (merged >= need && !serving) break;

    // Accept every pending connection (shimmed when fault injection is on).
    while (auto conn = impl_->listener.accept()) {
      ++stats_.workers_seen;
      WorkerSlot w;
      w.ch = net::maybe_shim(std::move(conn),
                             offset_fault(svc.fault, stats_.workers_seen - 1));
      w.connected_at = Clock::now();
      slots.emplace(next_slot++, std::move(w));
    }

    // Drain buffered frames from every worker.
    std::vector<int> dead;
    for (auto& [sid, w] : slots) {
      for (;;) {
        std::string payload;
        net::RecvStatus st;
        try {
          st = w.ch->recv_frame(payload, 0);
        } catch (const std::exception&) {
          ++stats_.protocol_errors;  // oversized frame: not one of ours
          dead.push_back(sid);
          break;
        }
        if (st == net::RecvStatus::kFrame) {
          if (!handle_frame(sid, payload)) {
            dead.push_back(sid);
            break;
          }
          if (aborted) break;
          continue;
        }
        if (st != net::RecvStatus::kTimeout) dead.push_back(sid);
        break;
      }
      if (aborted) break;
    }
    for (const int sid : dead) drop_worker(sid);
    dead.clear();  // grant-phase failures below must not re-drop these
    if (aborted) break;
    if (merged >= need && !serving) break;

    const auto now = Clock::now();

    // Expire leases whose holder went silent past the deadline, and reap
    // connections that never completed the hello (their hello or our
    // hello_ok may have been dropped; the worker will redial). Clients
    // never greet: they are exempt.
    std::vector<int> expired;
    for (const auto& [id, ls] : leases)
      if (now >= ls.deadline) expired.push_back(ls.slot);
    for (const auto& [sid, w] : slots)
      if (!w.greeted && !w.is_client &&
          ms_between(w.connected_at, now) >
              static_cast<std::int64_t>(svc.lease_timeout_ms))
        expired.push_back(sid);
    for (const int sid : expired) drop_worker(sid);

    if (merged >= need) {
      // Grid complete, still serving queries: dismiss the workers once —
      // they exit kShutdown instead of idling against a finished sweep —
      // and keep polling for clients until the stop flag ends serving.
      if (!workers_dismissed) {
        std::vector<int> goodbye;
        for (const auto& [sid, w] : slots)
          if (!w.is_client) goodbye.push_back(sid);
        for (const int sid : goodbye) {
          slots.at(sid).ch->send_frame(msg_shutdown());
          drop_worker(sid);
        }
        workers_dismissed = true;
      }
    } else {
      // Grant leases to idle greeted workers, front of the queue first.
      // Entries merged while queued (duplicate deliveries racing a
      // reassignment) were deleted lazily: skip them here.
      for (auto& [sid, w] : slots) {
        if (!w.greeted || w.lease_id != 0 || pending.empty()) continue;
        std::vector<std::size_t> batch;
        while (!pending.empty() && batch.size() < svc.lease_points) {
          const std::size_t idx = pending.front();
          pending.pop_front();
          if (have[idx]) continue;  // lazily deleted: already merged
          batch.push_back(idx);
        }
        if (batch.empty()) continue;
        const std::uint64_t id = next_lease++;
        if (!w.ch->send_frame(msg_lease(id, batch))) {
          for (auto r = batch.rbegin(); r != batch.rend(); ++r)
            pending.push_front(*r);
          dead.push_back(sid);  // reuse: drained below
          continue;
        }
        for (const std::size_t idx : batch) owner[idx] = id;
        leases.emplace(id, LeaseState{std::move(batch), sid,
                                      now + std::chrono::milliseconds(
                                                svc.lease_timeout_ms)});
        w.lease_id = id;
        ++stats_.leases_granted;
      }
      for (const int sid : dead) drop_worker(sid);
      dead.clear();

      // Graceful degradation: no WORKER reachable for idle_grace_ms with
      // work still pending => run the remainder in-process through the
      // exact run_point + merge path, instead of hanging on an empty
      // fleet. Clients don't run points, so a connected query client must
      // not keep a workerless sweep waiting.
      bool worker_live = false;
      for (const auto& [sid, w] : slots)
        if (!w.is_client) {
          worker_live = true;
          break;
        }
      if (worker_live) {
        last_live = now;
      } else if (svc.local_fallback && !pending.empty() && leases.empty() &&
                 ms_between(last_live, now) >=
                     static_cast<std::int64_t>(svc.idle_grace_ms)) {
        std::vector<std::size_t> batch;
        batch.reserve(pending.size());
        for (const std::size_t idx : pending)
          if (!have[idx]) batch.push_back(idx);  // skip lazily-deleted
        pending.clear();
        std::atomic<bool> cancel{false};
        parallel_for_index(
            batch.size(),
            [&](std::size_t j) {
              PointResult r = run_point(spec, grid[batch[j]]);
              std::lock_guard<std::mutex> lock(mu);
              ++stats_.local_fallback_points;
              merge_result(std::move(r));
              if (aborted || (stop && stop->load())) cancel.store(true);
            },
            spec.threads,
            [&] { return cancel.load() || (stop && stop->load()); });
        continue;  // re-evaluate: a late worker may have connected meanwhile
      }
    }

    // Wait for traffic (or a new connection) with a bounded nap so stop
    // flags and lease deadlines are honored promptly.
    std::vector<pollfd> fds;
    fds.reserve(slots.size() + 1);
    if (impl_->listener.fd() >= 0)
      fds.push_back({impl_->listener.fd(), POLLIN, 0});
    for (const auto& [sid, w] : slots)
      if (w.ch->fd() >= 0) fds.push_back({w.ch->fd(), POLLIN, 0});
    ::poll(fds.empty() ? nullptr : fds.data(),
           static_cast<nfds_t>(fds.size()), 20);
  }

  result.aborted = aborted;

  // Unrun remainder of an aborted sweep: structured skips, exactly like
  // run_sweep's abort path — and never checkpointed, so a resume re-runs.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (have[i]) continue;
    PointResult& r = result.points[i];
    r.point = grid[i];
    r.derived_seed = point_seed(spec.base_seed, grid[i]);
    r.skipped = true;
    r.skip_reason = "aborted before running (resume from checkpoint)";
  }

  // Orderly goodbye: workers still connected exit kShutdown instead of
  // burning their reconnect budget against a vanished coordinator — and
  // the listener closes so a worker redialing a finished sweep is refused
  // instead of queued in a backlog nobody will accept.
  for (auto& [sid, w] : slots) {
    w.ch->send_frame(msg_shutdown());
    w.ch->shutdown();
  }
  impl_->listener.close();

  if (spec.measure_seconds)
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

  rebuild_cell_aggregates(result);
  return result;
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

std::string to_string(WorkerExit e) {
  switch (e) {
    case WorkerExit::kShutdown: return "shutdown";
    case WorkerExit::kLostCoordinator: return "lost_coordinator";
    case WorkerExit::kRejected: return "rejected";
    case WorkerExit::kKilled: return "killed";
  }
  return "unknown";
}

WorkerExit run_sweep_worker(const SweepSpec& spec, const WorkerConfig& cfg) {
  const std::vector<SweepPoint> grid = expand_grid(spec);
  const std::uint64_t fp = spec_fingerprint(spec);
  const std::uint64_t gfp = grid_fingerprint(spec, grid);
  Rng jitter(cfg.jitter_seed);

  // The kill hook counts EXECUTED points across reconnects: die after the
  // N-th run_point, before its result leaves, so that point is provably
  // lost with us and the coordinator must reassign it.
  std::uint64_t points_run = 0;
  const auto kill_due = [&] {
    return cfg.fault.enabled && cfg.fault.kill_after_points != 0 &&
           points_run >= cfg.fault.kill_after_points;
  };

  std::uint64_t conn_index = 0;
  for (;;) {  // reconnect loop
    auto conn = net::dial_with_backoff(cfg.host, cfg.port, cfg.backoff, jitter);
    if (!conn) return WorkerExit::kLostCoordinator;
    std::unique_ptr<net::Channel> ch =
        net::maybe_shim(std::move(conn), offset_fault(cfg.fault, conn_index++));

    if (!ch->send_frame(msg_hello(cfg.name, fp, gfp))) continue;
    std::string payload;
    if (ch->recv_frame(payload, static_cast<int>(cfg.hello_timeout_ms)) !=
        net::RecvStatus::kFrame)
      continue;  // hello or hello_ok lost in transit: redial
    std::string type;
    if (!json::find_string(payload, "type", type)) continue;
    if (type == "reject") return WorkerExit::kRejected;
    if (type == "shutdown") return WorkerExit::kShutdown;  // sweep finished
    if (type != "hello_ok") continue;

    for (;;) {  // session loop
      const net::RecvStatus st =
          ch->recv_frame(payload, static_cast<int>(cfg.idle_recv_ms));
      if (st == net::RecvStatus::kTimeout) {
        // Idle: ping so a long gap between leases never reads as death.
        if (!ch->send_frame(msg_heartbeat(0))) break;
        continue;
      }
      if (st != net::RecvStatus::kFrame) break;  // reconnect
      if (!json::find_string(payload, "type", type)) continue;
      if (type == "shutdown") return WorkerExit::kShutdown;
      if (type != "lease") continue;

      std::uint64_t lease_id = 0;
      std::string points;
      // A lease whose id does not parse (or is the reserved 0) must be
      // rejected outright: running it would stream the batch under lease
      // 0, whose lease_done the coordinator discards — the real lease
      // would then expire spuriously and re-run everything. Ignoring the
      // frame lets the coordinator's deadline reassign the batch cleanly.
      if (!json::find_u64(payload, "id", lease_id) || lease_id == 0 ||
          !json::find_string(payload, "points", points))
        continue;
      std::stringstream ss(points);
      std::size_t idx = 0;
      bool conn_lost = false;
      while (ss >> idx) {
        if (idx >= grid.size()) return WorkerExit::kRejected;
        // Heartbeat before each point: extends the lease deadline so it
        // only needs to outlast ONE point's runtime, not the whole batch.
        if (!ch->send_frame(msg_heartbeat(lease_id))) {
          conn_lost = true;
          break;
        }
        PointResult r = run_point(spec, grid[idx]);
        ++points_run;
        if (kill_due()) {
          if (cfg.fault.kill_hard) std::_Exit(137);  // simulated SIGKILL
          ch->shutdown();
          return WorkerExit::kKilled;
        }
        std::ostringstream line;
        write_checkpoint_line(line, r, fp);
        std::string record = line.str();
        if (!record.empty() && record.back() == '\n') record.pop_back();
        if (!ch->send_frame(record)) {
          conn_lost = true;
          break;
        }
      }
      if (conn_lost) break;
      if (!ch->send_frame(msg_lease_done(lease_id))) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Query client
// ---------------------------------------------------------------------------

std::optional<QueryReply> run_query(const QueryRequest& req,
                                    const QueryClientConfig& cfg) {
  Rng jitter(cfg.jitter_seed);
  std::uint64_t conn_index = 0;
  std::uint64_t qid = 0;
  for (std::uint32_t attempt = 0; attempt < cfg.attempts; ++attempt) {
    // Every attempt runs on a FRESH connection: a shim schedule that ate
    // part of the response gets a new (offset) schedule on redial, and no
    // stale frame from a timed-out attempt can alias the new response.
    auto conn = net::dial_with_backoff(cfg.host, cfg.port, cfg.backoff, jitter);
    if (!conn) continue;
    std::unique_ptr<net::Channel> ch =
        net::maybe_shim(std::move(conn), offset_fault(cfg.fault, conn_index++));

    const std::uint64_t id = ++qid;
    std::ostringstream os;
    os << "{\"type\": \"query\", \"id\": " << id << ", \"what\": \""
       << json::escape(req.what) << "\"";
    if (req.algorithm)
      os << ", \"algorithm\": \"" << json::escape(*req.algorithm) << "\"";
    if (req.family)
      os << ", \"family\": \"" << json::escape(*req.family) << "\"";
    if (req.mix) os << ", \"mix\": \"" << json::escape(*req.mix) << "\"";
    if (req.n) os << ", \"n\": " << *req.n;
    if (req.k) os << ", \"k\": " << *req.k;
    if (req.f) os << ", \"f\": " << *req.f;
    if (req.derived_seed) os << ", \"derived_seed\": " << *req.derived_seed;
    if (req.index) os << ", \"index\": " << *req.index;
    os << "}";
    if (!ch->send_frame(os.str())) continue;

    std::string payload;
    net::RecvStatus st;
    try {
      st = ch->recv_frame(payload, static_cast<int>(cfg.timeout_ms));
    } catch (const std::exception&) {
      continue;
    }
    if (st != net::RecvStatus::kFrame) continue;
    std::string type;
    std::uint64_t rid = 0;
    if (!json::find_string(payload, "type", type) || type != "result" ||
        !json::find_u64(payload, "id", rid) || rid != id)
      continue;  // not our header (e.g. a shutdown frame): retry afresh

    QueryReply reply;
    json::find_string(payload, "what", reply.what);
    json::find_string(payload, "error", reply.error);
    json::find_bool(payload, "pending", reply.pending);
    std::uint64_t count = 0;
    json::find_u64(payload, "count", count);
    json::find_u64(payload, "total", reply.total);
    json::find_u64(payload, "completed", reply.completed);
    json::find_u64(payload, "restored", reply.restored);
    json::find_u64(payload, "cells", reply.cells);
    json::find_bool(payload, "done", reply.done);
    std::uint64_t v = 0;
    if (json::find_u64(payload, "workers_seen", v)) reply.stats.workers_seen = v;
    if (json::find_u64(payload, "workers_rejected", v))
      reply.stats.workers_rejected = v;
    if (json::find_u64(payload, "leases_granted", v))
      reply.stats.leases_granted = v;
    if (json::find_u64(payload, "leases_reassigned", v))
      reply.stats.leases_reassigned = v;
    if (json::find_u64(payload, "duplicate_results", v))
      reply.stats.duplicate_results = v;
    if (json::find_u64(payload, "local_fallback_points", v))
      reply.stats.local_fallback_points = v;
    if (json::find_u64(payload, "protocol_errors", v))
      reply.stats.protocol_errors = v;
    if (json::find_u64(payload, "clients_seen", v)) reply.stats.clients_seen = v;
    if (json::find_u64(payload, "queries_answered", v))
      reply.stats.queries_answered = v;

    bool lost_body = false;
    reply.bodies.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string body;
      try {
        if (ch->recv_frame(body, static_cast<int>(cfg.timeout_ms)) !=
            net::RecvStatus::kFrame) {
          lost_body = true;
          break;
        }
      } catch (const std::exception&) {
        lost_body = true;
        break;
      }
      reply.bodies.push_back(std::move(body));
    }
    if (lost_body) continue;  // a dropped body frame: retry the whole query
    return reply;
  }
  return std::nullopt;
}

}  // namespace bdg::run
