#include "run/service.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "run/report.h"
#include "util/json_mini.h"
#include "util/parallel.h"

namespace bdg::run {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
      .count();
}

// ---------------------------------------------------------------------------
// Control messages. Flat JSON like the checkpoint records; a frame whose
// "type" field is absent is a result (a verbatim checkpoint line).
// ---------------------------------------------------------------------------

std::string msg_hello(const std::string& name, std::uint64_t spec_fp,
                      std::uint64_t grid_fp) {
  std::ostringstream os;
  os << "{\"type\": \"hello\", \"name\": \"" << json::escape(name)
     << "\", \"spec\": " << spec_fp << ", \"grid\": " << grid_fp << "}";
  return os.str();
}

std::string msg_hello_ok(std::uint32_t lease_timeout_ms) {
  std::ostringstream os;
  os << "{\"type\": \"hello_ok\", \"lease_timeout_ms\": " << lease_timeout_ms
     << "}";
  return os.str();
}

std::string msg_reject(const std::string& reason) {
  std::ostringstream os;
  os << "{\"type\": \"reject\", \"reason\": \"" << json::escape(reason)
     << "\"}";
  return os.str();
}

std::string msg_lease(std::uint64_t id,
                      const std::vector<std::size_t>& indices) {
  std::ostringstream os;
  os << "{\"type\": \"lease\", \"id\": " << id << ", \"points\": \"";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i != 0) os << ' ';
    os << indices[i];
  }
  os << "\"}";
  return os.str();
}

std::string msg_heartbeat(std::uint64_t lease_id) {
  std::ostringstream os;
  os << "{\"type\": \"heartbeat\", \"id\": " << lease_id << "}";
  return os.str();
}

std::string msg_lease_done(std::uint64_t lease_id) {
  std::ostringstream os;
  os << "{\"type\": \"lease_done\", \"id\": " << lease_id << "}";
  return os.str();
}

std::string msg_shutdown() { return "{\"type\": \"shutdown\"}"; }

// Each shimmed connection uses schedule seed (base seed + connection
// index): still a pure function of the config, but a schedule that eats
// the handshake frame cannot livelock reconnects by eating it identically
// on every redial.
net::FaultConfig offset_fault(net::FaultConfig cfg, std::uint64_t index) {
  cfg.seed += index;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

struct Coordinator::Impl {
  SweepSpec spec;
  ServiceConfig svc;
  net::Listener listener;

  Impl(SweepSpec s, ServiceConfig c)
      : spec(std::move(s)), svc(std::move(c)), listener(svc.port) {}
};

Coordinator::Coordinator(SweepSpec spec, ServiceConfig svc)
    : impl_(std::make_unique<Impl>(std::move(spec), std::move(svc))) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

SweepResult Coordinator::serve(const std::atomic<bool>* stop) {
  const SweepSpec& spec = impl_->spec;
  const ServiceConfig& svc = impl_->svc;

  SweepResult result;
  const std::vector<SweepPoint> grid = expand_grid(spec);
  const std::uint64_t fp = spec_fingerprint(spec);
  const std::uint64_t gfp = grid_fingerprint(spec, grid);
  const auto t0 = Clock::now();

  const RestoredCheckpoint restored =
      restore_checkpoint(spec, grid, result.points);
  result.from_checkpoint = restored.restored;
  result.torn_checkpoint_lines = restored.torn;

  std::vector<char> have(grid.size(), 1);
  for (const std::size_t i : restored.todo) have[i] = 0;

  // Results are keyed by derived seed on the wire (they ARE checkpoint
  // records); map them back to their grid index to merge in place.
  std::unordered_map<std::uint64_t, std::size_t> seed_to_index;
  seed_to_index.reserve(restored.todo.size());
  for (const std::size_t i : restored.todo)
    seed_to_index[point_seed(spec.base_seed, grid[i])] = i;

  std::ofstream ck;
  if (!spec.checkpoint_path.empty() && !restored.todo.empty()) {
    ck.open(spec.checkpoint_path, std::ios::app);
    if (!ck)
      throw std::runtime_error("sweepd: cannot open checkpoint " +
                               spec.checkpoint_path);
  }

  std::deque<std::size_t> pending(restored.todo.begin(), restored.todo.end());
  const std::size_t need = restored.todo.size();
  std::size_t merged = 0;
  bool aborted = false;

  struct WorkerSlot {
    std::unique_ptr<net::Channel> ch;
    std::string name;
    bool greeted = false;
    std::uint64_t lease_id = 0;  ///< 0 = idle
    Clock::time_point connected_at;
  };
  struct LeaseState {
    std::vector<std::size_t> remaining;  ///< indices without a result yet
    int slot = -1;
    Clock::time_point deadline;
  };
  std::map<int, WorkerSlot> slots;
  std::map<std::uint64_t, LeaseState> leases;
  int next_slot = 0;
  std::uint64_t next_lease = 1;
  Clock::time_point last_live = Clock::now();

  // `mu` serializes merges: the event loop is single-threaded, but the
  // zero-worker local fallback runs points through parallel_for_index and
  // merges from its worker threads (exactly as run_sweep does).
  std::mutex mu;

  // Revoke a worker's lease (re-queueing what it still owed at the FRONT,
  // preserving near-grid-order dispatch) and drop its connection.
  const auto drop_worker = [&](int sid) {
    const auto it = slots.find(sid);
    if (it == slots.end()) return;
    if (it->second.lease_id != 0) {
      const auto lit = leases.find(it->second.lease_id);
      if (lit != leases.end()) {
        if (!lit->second.remaining.empty()) {
          ++stats_.leases_reassigned;
          for (auto r = lit->second.remaining.rbegin();
               r != lit->second.remaining.rend(); ++r)
            pending.push_front(*r);
        }
        leases.erase(lit);
      }
    }
    it->second.ch->shutdown();
    slots.erase(it);
  };

  // Merge one completed PointResult: place it at its grid index, append it
  // to the checkpoint, retire it from whichever lease/queue still lists it.
  // Duplicates (a re-run after reassignment racing the original delivery)
  // are ignored — results are deterministic per derived seed, so whichever
  // copy lands first is THE result.
  const auto merge_result = [&](PointResult&& pr) {
    const auto it = seed_to_index.find(pr.derived_seed);
    if (it == seed_to_index.end() || !same_point(pr.point, grid[it->second])) {
      ++stats_.protocol_errors;
      return;
    }
    const std::size_t idx = it->second;
    if (have[idx]) {
      ++stats_.duplicate_results;
      return;
    }
    result.points[idx] = std::move(pr);
    have[idx] = 1;
    ++merged;
    for (auto& [id, ls] : leases) {
      const auto rit = std::find(ls.remaining.begin(), ls.remaining.end(), idx);
      if (rit != ls.remaining.end()) {
        ls.remaining.erase(rit);
        break;
      }
    }
    const auto pit = std::find(pending.begin(), pending.end(), idx);
    if (pit != pending.end()) pending.erase(pit);
    if (ck.is_open())
      append_checkpoint_line(ck, spec.checkpoint_path, result.points[idx], fp);
    if (spec.progress &&
        !spec.progress(result.points[idx], result.from_checkpoint + merged,
                       grid.size()))
      aborted = true;
  };

  // Handle one frame from slot `sid`; false = drop the connection.
  const auto handle_frame = [&](int sid, const std::string& payload) -> bool {
    WorkerSlot& w = slots.at(sid);
    std::string type;
    if (json::find_string(payload, "type", type)) {
      if (type == "hello") {
        std::uint64_t wspec = 0;
        std::uint64_t wgrid = 0;
        std::string name;
        json::find_string(payload, "name", name);
        if (json::find_u64(payload, "spec", wspec) &&
            json::find_u64(payload, "grid", wgrid) && wspec == fp &&
            wgrid == gfp) {
          w.greeted = true;
          w.name = name.empty() ? "worker#" + std::to_string(sid) : name;
          return w.ch->send_frame(msg_hello_ok(svc.lease_timeout_ms));
        }
        ++stats_.workers_rejected;
        w.ch->send_frame(msg_reject("grid/spec fingerprint mismatch"));
        return false;
      }
      if (type == "heartbeat") {
        if (w.lease_id != 0) {
          const auto lit = leases.find(w.lease_id);
          if (lit != leases.end())
            lit->second.deadline =
                Clock::now() + std::chrono::milliseconds(svc.lease_timeout_ms);
        }
        return true;
      }
      if (type == "lease_done") {
        std::uint64_t id = 0;
        if (json::find_u64(payload, "id", id) && id != 0 &&
            id == w.lease_id) {
          const auto lit = leases.find(id);
          if (lit != leases.end()) {
            if (!lit->second.remaining.empty()) {
              // Results lost in transit: the worker claims it ran them, but
              // they never arrived. Re-run them — idempotence makes that
              // safe, and the checkpoint never saw them.
              ++stats_.leases_reassigned;
              for (auto r = lit->second.remaining.rbegin();
                   r != lit->second.remaining.rend(); ++r)
                pending.push_front(*r);
            }
            leases.erase(lit);
          }
          w.lease_id = 0;
        }
        return true;
      }
      ++stats_.protocol_errors;
      return true;
    }
    // No "type": a result — a verbatim checkpoint record.
    auto entry = parse_checkpoint_line(payload);
    if (!entry || entry->spec != fp) {
      ++stats_.protocol_errors;
      return true;
    }
    if (w.lease_id != 0) {
      const auto lit = leases.find(w.lease_id);
      if (lit != leases.end())
        lit->second.deadline =
            Clock::now() + std::chrono::milliseconds(svc.lease_timeout_ms);
    }
    std::lock_guard<std::mutex> lock(mu);
    merge_result(std::move(entry->result));
    return true;
  };

  while (merged < need) {
    if (stop && stop->load()) aborted = true;
    if (aborted) break;

    // Accept every pending connection (shimmed when fault injection is on).
    while (auto conn = impl_->listener.accept()) {
      ++stats_.workers_seen;
      WorkerSlot w;
      w.ch = net::maybe_shim(std::move(conn),
                             offset_fault(svc.fault, stats_.workers_seen - 1));
      w.connected_at = Clock::now();
      slots.emplace(next_slot++, std::move(w));
    }

    // Drain buffered frames from every worker.
    std::vector<int> dead;
    for (auto& [sid, w] : slots) {
      for (;;) {
        std::string payload;
        net::RecvStatus st;
        try {
          st = w.ch->recv_frame(payload, 0);
        } catch (const std::exception&) {
          ++stats_.protocol_errors;  // oversized frame: not one of ours
          dead.push_back(sid);
          break;
        }
        if (st == net::RecvStatus::kFrame) {
          if (!handle_frame(sid, payload)) {
            dead.push_back(sid);
            break;
          }
          if (aborted) break;
          continue;
        }
        if (st != net::RecvStatus::kTimeout) dead.push_back(sid);
        break;
      }
      if (aborted) break;
    }
    for (const int sid : dead) drop_worker(sid);
    if (aborted || merged >= need) break;

    const auto now = Clock::now();

    // Expire leases whose holder went silent past the deadline, and reap
    // connections that never completed the hello (their hello or our
    // hello_ok may have been dropped; the worker will redial).
    std::vector<int> expired;
    for (const auto& [id, ls] : leases)
      if (now >= ls.deadline) expired.push_back(ls.slot);
    for (const auto& [sid, w] : slots)
      if (!w.greeted &&
          ms_between(w.connected_at, now) >
              static_cast<std::int64_t>(svc.lease_timeout_ms))
        expired.push_back(sid);
    for (const int sid : expired) drop_worker(sid);

    // Grant leases to idle greeted workers, front of the queue first.
    for (auto& [sid, w] : slots) {
      if (!w.greeted || w.lease_id != 0 || pending.empty()) continue;
      std::vector<std::size_t> batch;
      while (!pending.empty() && batch.size() < svc.lease_points) {
        batch.push_back(pending.front());
        pending.pop_front();
      }
      const std::uint64_t id = next_lease++;
      if (!w.ch->send_frame(msg_lease(id, batch))) {
        for (auto r = batch.rbegin(); r != batch.rend(); ++r)
          pending.push_front(*r);
        dead.push_back(sid);  // reuse: drained below
        continue;
      }
      leases.emplace(id, LeaseState{std::move(batch), sid,
                                    now + std::chrono::milliseconds(
                                              svc.lease_timeout_ms)});
      w.lease_id = id;
      ++stats_.leases_granted;
    }
    for (const int sid : dead) drop_worker(sid);

    // Graceful degradation: nobody reachable for idle_grace_ms with work
    // still pending => run the remainder in-process through the exact
    // run_point + merge path, instead of hanging on an empty fleet.
    if (!slots.empty()) {
      last_live = now;
    } else if (svc.local_fallback && !pending.empty() && leases.empty() &&
               ms_between(last_live, now) >=
                   static_cast<std::int64_t>(svc.idle_grace_ms)) {
      const std::vector<std::size_t> batch(pending.begin(), pending.end());
      pending.clear();
      std::atomic<bool> cancel{false};
      parallel_for_index(
          batch.size(),
          [&](std::size_t j) {
            PointResult r = run_point(spec, grid[batch[j]]);
            std::lock_guard<std::mutex> lock(mu);
            ++stats_.local_fallback_points;
            merge_result(std::move(r));
            if (aborted || (stop && stop->load())) cancel.store(true);
          },
          spec.threads,
          [&] { return cancel.load() || (stop && stop->load()); });
      continue;  // re-evaluate: a late worker may have connected meanwhile
    }

    // Wait for traffic (or a new connection) with a bounded nap so stop
    // flags and lease deadlines are honored promptly.
    std::vector<pollfd> fds;
    fds.reserve(slots.size() + 1);
    if (impl_->listener.fd() >= 0)
      fds.push_back({impl_->listener.fd(), POLLIN, 0});
    for (const auto& [sid, w] : slots)
      if (w.ch->fd() >= 0) fds.push_back({w.ch->fd(), POLLIN, 0});
    ::poll(fds.empty() ? nullptr : fds.data(),
           static_cast<nfds_t>(fds.size()), 20);
  }

  result.aborted = aborted;

  // Unrun remainder of an aborted sweep: structured skips, exactly like
  // run_sweep's abort path — and never checkpointed, so a resume re-runs.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (have[i]) continue;
    PointResult& r = result.points[i];
    r.point = grid[i];
    r.derived_seed = point_seed(spec.base_seed, grid[i]);
    r.skipped = true;
    r.skip_reason = "aborted before running (resume from checkpoint)";
  }

  // Orderly goodbye: workers still connected exit kShutdown instead of
  // burning their reconnect budget against a vanished coordinator — and
  // the listener closes so a worker redialing a finished sweep is refused
  // instead of queued in a backlog nobody will accept.
  for (auto& [sid, w] : slots) {
    w.ch->send_frame(msg_shutdown());
    w.ch->shutdown();
  }
  impl_->listener.close();

  if (spec.measure_seconds)
    result.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

  rebuild_cell_aggregates(result);
  return result;
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

std::string to_string(WorkerExit e) {
  switch (e) {
    case WorkerExit::kShutdown: return "shutdown";
    case WorkerExit::kLostCoordinator: return "lost_coordinator";
    case WorkerExit::kRejected: return "rejected";
    case WorkerExit::kKilled: return "killed";
  }
  return "unknown";
}

WorkerExit run_sweep_worker(const SweepSpec& spec, const WorkerConfig& cfg) {
  const std::vector<SweepPoint> grid = expand_grid(spec);
  const std::uint64_t fp = spec_fingerprint(spec);
  const std::uint64_t gfp = grid_fingerprint(spec, grid);
  Rng jitter(cfg.jitter_seed);

  // The kill hook counts EXECUTED points across reconnects: die after the
  // N-th run_point, before its result leaves, so that point is provably
  // lost with us and the coordinator must reassign it.
  std::uint64_t points_run = 0;
  const auto kill_due = [&] {
    return cfg.fault.enabled && cfg.fault.kill_after_points != 0 &&
           points_run >= cfg.fault.kill_after_points;
  };

  std::uint64_t conn_index = 0;
  for (;;) {  // reconnect loop
    auto conn = net::dial_with_backoff(cfg.host, cfg.port, cfg.backoff, jitter);
    if (!conn) return WorkerExit::kLostCoordinator;
    std::unique_ptr<net::Channel> ch =
        net::maybe_shim(std::move(conn), offset_fault(cfg.fault, conn_index++));

    if (!ch->send_frame(msg_hello(cfg.name, fp, gfp))) continue;
    std::string payload;
    if (ch->recv_frame(payload, static_cast<int>(cfg.hello_timeout_ms)) !=
        net::RecvStatus::kFrame)
      continue;  // hello or hello_ok lost in transit: redial
    std::string type;
    if (!json::find_string(payload, "type", type)) continue;
    if (type == "reject") return WorkerExit::kRejected;
    if (type != "hello_ok") continue;

    for (;;) {  // session loop
      const net::RecvStatus st =
          ch->recv_frame(payload, static_cast<int>(cfg.idle_recv_ms));
      if (st == net::RecvStatus::kTimeout) {
        // Idle: ping so a long gap between leases never reads as death.
        if (!ch->send_frame(msg_heartbeat(0))) break;
        continue;
      }
      if (st != net::RecvStatus::kFrame) break;  // reconnect
      if (!json::find_string(payload, "type", type)) continue;
      if (type == "shutdown") return WorkerExit::kShutdown;
      if (type != "lease") continue;

      std::uint64_t lease_id = 0;
      std::string points;
      json::find_u64(payload, "id", lease_id);
      json::find_string(payload, "points", points);
      std::stringstream ss(points);
      std::size_t idx = 0;
      bool conn_lost = false;
      while (ss >> idx) {
        if (idx >= grid.size()) return WorkerExit::kRejected;
        // Heartbeat before each point: extends the lease deadline so it
        // only needs to outlast ONE point's runtime, not the whole batch.
        if (!ch->send_frame(msg_heartbeat(lease_id))) {
          conn_lost = true;
          break;
        }
        PointResult r = run_point(spec, grid[idx]);
        ++points_run;
        if (kill_due()) {
          if (cfg.fault.kill_hard) std::_Exit(137);  // simulated SIGKILL
          ch->shutdown();
          return WorkerExit::kKilled;
        }
        std::ostringstream line;
        write_checkpoint_line(line, r, fp);
        std::string record = line.str();
        if (!record.empty() && record.back() == '\n') record.pop_back();
        if (!ch->send_frame(record)) {
          conn_lost = true;
          break;
        }
      }
      if (conn_lost) break;
      if (!ch->send_frame(msg_lease_done(lease_id))) break;
    }
  }
}

}  // namespace bdg::run
