#pragma once
// Deterministic parallel scenario-sweep runner.
//
// A sweep expands an (algorithm x graph-family x n x f x seed) grid into
// points, runs every point in its own Engine + Rng (bit-reproducible: the
// per-point seed is derived by hashing the point's coordinates into the
// spec's base seed, never by position in a shared generator — the
// deterministic per-point seeding idiom of the exposed-memory model
// literature), and aggregates RunStats per (algorithm, family, n, f) cell.
// Points run across hardware threads via util/parallel.h; results land in
// grid order, so output is identical for every thread count, including 1.
//
// This is the one harness behind the Table 1 row benches, the figure
// sweeps and the e2e conformance tests; report.h renders results as
// JSON/CSV for downstream tooling.
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace bdg::run {

// ---------------------------------------------------------------------------
// Graph-family registry
// ---------------------------------------------------------------------------

/// Names accepted by SweepSpec::families, in registry order:
/// "er", "ring", "oriented_ring", "grid", "tree", "complete", "star",
/// "lollipop", "torus", "hypercube", "regular".
[[nodiscard]] const std::vector<std::string>& known_families();

/// Whether `family` can produce a graph on exactly n nodes (e.g. "torus"
/// needs a rows x cols factorization with both sides >= 3, "hypercube"
/// needs n to be a power of two).
[[nodiscard]] bool family_supports(const std::string& family, std::uint32_t n);

/// Build a graph of `family` on n nodes from `seed` (deterministic). When
/// `need_trivial_quotient` is set (Theorem 1), resamples until all views
/// are distinct; returns nullopt if the family cannot satisfy the request
/// (unsupported n, or no trivial-quotient sample found).
[[nodiscard]] std::optional<Graph> build_family_graph(
    const std::string& family, std::uint32_t n, std::uint64_t seed,
    bool need_trivial_quotient = false, double er_edge_probability = 0.45);

// ---------------------------------------------------------------------------
// Sweep specification and results
// ---------------------------------------------------------------------------

struct SweepSpec {
  std::vector<core::Algorithm> algorithms;
  std::vector<std::string> families;
  std::vector<std::uint32_t> sizes;  ///< n values
  /// Byzantine counts to sweep. Empty = one point per (algorithm, n) at the
  /// algorithm's maximum claimed tolerance (Table 1). Values exceeding the
  /// tolerance for some algorithm are clamped to it unless
  /// `clamp_f_to_tolerance` is off (tolerance-frontier sweeps probe past
  /// the claim on purpose).
  std::vector<std::uint32_t> byzantine_counts;
  bool clamp_f_to_tolerance = true;
  /// Require every graph to have all views distinct (G ~ Q_G), not just the
  /// Theorem 1 points — the Table 1 row benches share one family across all
  /// algorithms so that every theorem applies to the same graphs.
  bool require_trivial_quotient = false;
  /// Edge probability for the "er" family (<= 0 = near the connectivity
  /// threshold, the sparse regime the row benches sweep).
  double er_edge_probability = 0.45;
  /// Grid seeds (each is an independent repetition of every cell).
  std::vector<std::uint64_t> seeds = {1};
  /// Adversary. When `strategy_follows_algorithm` is set the strategy is
  /// chosen per algorithm as the e2e suite does (spoofer for the strong
  /// algorithms, crash for crash-real gathering, `strategy` otherwise).
  /// `strategy_overrides` wins over both for the listed algorithms, so one
  /// sweep can pit each algorithm against its own adversary (the figure
  /// benches sweep all algorithms in a single parallel grid this way).
  core::ByzStrategy strategy = core::ByzStrategy::kFakeSettler;
  bool strategy_follows_algorithm = true;
  std::map<core::Algorithm, core::ByzStrategy> strategy_overrides;
  /// Mixed into every per-point seed; change it to resample the whole sweep.
  std::uint64_t base_seed = 0x9E3779B97F4A7C15ULL;
  /// Derive the *graph* seed from (family, n, seed) only, so every
  /// algorithm and every f of a cell run on the same graph — the
  /// controlled-comparison mode the figure/row benches use (scenario
  /// randomness still differs per point). Off by default: independent
  /// graphs per point give sweeps more scenario diversity.
  bool common_graphs = false;
  /// Worker threads for the sweep (0 = hardware concurrency). Results do
  /// not depend on this value.
  unsigned threads = 0;
  gather::CostModel cost{/*scaled=*/true};
  /// Give the f smallest IDs to Byzantine robots (worst case).
  bool byz_smallest_ids = true;
};

/// One expanded grid point.
struct SweepPoint {
  core::Algorithm algorithm{};
  std::string family;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::uint64_t seed = 0;  ///< grid seed (repetition index), not the derived one
  core::ByzStrategy strategy{};
};

struct PointResult {
  SweepPoint point;
  std::uint64_t derived_seed = 0;  ///< actual graph/scenario seed used
  /// Point could not run: family unsupported at this n, or the algorithm's
  /// preconditions don't hold there (quotient/ring requirements).
  bool skipped = false;
  std::string skip_reason;
  bool ok = false;  ///< Definition 1 verified
  std::string detail;
  sim::RunStats stats;
  std::uint64_t planned_rounds = 0;
  double seconds = 0.0;
};

/// Per-cell aggregate over seeds: (algorithm, family, n, f).
struct CellAggregate {
  core::Algorithm algorithm{};
  std::string family;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::size_t runs = 0;       ///< non-skipped points
  std::size_t dispersed = 0;  ///< points with ok == true
  std::uint64_t min_rounds = 0;
  std::uint64_t max_rounds = 0;
  double mean_rounds = 0.0;
  double mean_simulated = 0.0;
  double mean_moves = 0.0;
  double mean_messages = 0.0;
  double mean_seconds = 0.0;
};

struct SweepResult {
  std::vector<PointResult> points;  ///< grid order, independent of threads
  std::vector<CellAggregate> cells;
  double wall_seconds = 0.0;

  [[nodiscard]] bool all_dispersed() const;
  [[nodiscard]] std::size_t skipped() const;
};

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// Expand the grid in deterministic order: algorithm-major, then family,
/// n, f, seed. Throws std::invalid_argument on a family name that is not
/// in known_families() (a typo'd family must not silently skip its
/// coverage).
[[nodiscard]] std::vector<SweepPoint> expand_grid(const SweepSpec& spec);

/// Seed for one point: splitmix-style hash of the coordinates into
/// base_seed. Stable across platforms and sweep composition (adding more
/// sizes/algorithms never changes another point's seed).
[[nodiscard]] std::uint64_t point_seed(std::uint64_t base_seed,
                                       const SweepPoint& p);

/// Seed the point's graph is built from: point_seed, or (with
/// spec.common_graphs) the hash of (family, n, seed) only, shared across
/// the algorithm and f axes.
[[nodiscard]] std::uint64_t point_graph_seed(const SweepSpec& spec,
                                             const SweepPoint& p);

/// Run one point in its own Engine + Rng; fills everything but `seconds`'
/// surroundings deterministically.
[[nodiscard]] PointResult run_point(const SweepSpec& spec,
                                    const SweepPoint& p);

/// Expand, run (in parallel), aggregate.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

}  // namespace bdg::run
