#pragma once
// Deterministic parallel scenario-sweep runner.
//
// A sweep expands an (algorithm x graph-family x n x k x f x adversary-mix
// x seed) grid into points, runs every point in its own Engine + Rng
// (bit-reproducible: the per-point seed is derived by hashing the point's
// coordinates into the spec's base seed, never by position in a shared
// generator — the deterministic per-point seeding idiom of the
// exposed-memory model literature), and aggregates RunStats per
// (algorithm, family, n, k, f, mix) cell. Points run across hardware
// threads via util/parallel.h; results land in grid order, so output is
// identical for every thread count, including 1.
//
// Production-sweep machinery on top of the grid:
//  * k-robots axis (Theorem 8): robot_counts sweeps k != n; infeasible
//    (k, n, f) points become structured skips, feasible ones run through
//    the wave scheduler in core/scenario and verify the generalized
//    Definition 1 cap;
//  * heterogeneous adversaries: strategy_mixes assigns each Byzantine
//    robot a strategy from a mix, hashed reorder-invariantly into the
//    per-point seed;
//  * resumable + sharded execution: a JSON-lines checkpoint (run/report)
//    persists per-point results keyed by derived seed, completed points
//    are skipped on re-run, `shard i of m` expands only a stripe of the
//    grid, and a progress callback can abort mid-sweep without losing
//    finished work.
//
// This is the one harness behind the Table 1 row benches, the figure
// sweeps and the e2e conformance tests; report.h renders results as
// JSON/CSV for downstream tooling.
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "graph/graph.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace bdg::run {

// ---------------------------------------------------------------------------
// Graph-family registry
// ---------------------------------------------------------------------------

/// Names accepted by SweepSpec::families, in registry order:
/// "er", "ring", "oriented_ring", "grid", "tree", "complete", "star",
/// "lollipop", "torus", "hypercube", "regular".
[[nodiscard]] const std::vector<std::string>& known_families();

/// Whether `family` can produce a graph on exactly n nodes (e.g. "torus"
/// needs a rows x cols factorization with both sides >= 3, "hypercube"
/// needs n to be a power of two).
[[nodiscard]] bool family_supports(const std::string& family, std::uint32_t n);

/// Build a graph of `family` on n nodes from `seed` (deterministic). When
/// `need_trivial_quotient` is set (Theorem 1), resamples until all views
/// are distinct; returns nullopt if the family cannot satisfy the request
/// (unsupported n, or no trivial-quotient sample found).
[[nodiscard]] std::optional<Graph> build_family_graph(
    const std::string& family, std::uint32_t n, std::uint64_t seed,
    bool need_trivial_quotient = false, double er_edge_probability = 0.45);

// ---------------------------------------------------------------------------
// Sweep specification and results
// ---------------------------------------------------------------------------

struct PointResult;

struct SweepSpec {
  std::vector<core::Algorithm> algorithms;
  std::vector<std::string> families;
  std::vector<std::uint32_t> sizes;  ///< n values
  /// Robot counts k to sweep (Theorem 8's generalized setting). Empty =
  /// one point per n at k = n (the Table 1 setting). Values are taken
  /// verbatim: k < n runs an undersubscribed instance, k > n runs the
  /// wave scheduler; (k, n, f) combinations that Theorem 8 rules out are
  /// recorded as structured skips, never failures.
  std::vector<std::uint32_t> robot_counts;
  /// Byzantine counts to sweep. Empty = one point per (algorithm, n, k) at
  /// the algorithm's maximum claimed tolerance (Table 1, generalized by
  /// max_tolerated_f_k for k != n). Values exceeding the tolerance for
  /// some algorithm are clamped to it unless `clamp_f_to_tolerance` is off
  /// (tolerance-frontier sweeps probe past the claim on purpose).
  std::vector<std::uint32_t> byzantine_counts;
  bool clamp_f_to_tolerance = true;
  /// Require every graph to have all views distinct (G ~ Q_G), not just the
  /// Theorem 1 points — the Table 1 row benches share one family across all
  /// algorithms so that every theorem applies to the same graphs.
  bool require_trivial_quotient = false;
  /// Edge probability for the "er" family (<= 0 = near the connectivity
  /// threshold, the sparse regime the row benches sweep).
  double er_edge_probability = 0.45;
  /// Grid seeds (each is an independent repetition of every cell).
  std::vector<std::uint64_t> seeds = {1};
  /// Adversary. When `strategy_follows_algorithm` is set the strategy is
  /// chosen per algorithm as the e2e suite does (spoofer for the strong
  /// algorithms, crash for crash-real gathering, `strategy` otherwise).
  /// `strategy_overrides` wins over both for the listed algorithms, so one
  /// sweep can pit each algorithm against its own adversary (the figure
  /// benches sweep all algorithms in a single parallel grid this way).
  core::ByzStrategy strategy = core::ByzStrategy::kFakeSettler;
  bool strategy_follows_algorithm = true;
  std::map<core::Algorithm, core::ByzStrategy> strategy_overrides;
  /// Heterogeneous adversary mixes: when non-empty the grid gains a mix
  /// axis and the i-th Byzantine robot of a point runs mix[i % mix.size()]
  /// (core::ScenarioConfig::strategies). Each mix is canonicalized (sorted)
  /// at expansion and hashed commutatively into the derived seed, so a mix
  /// is a multiset: reordering it changes neither seeds nor results. An
  /// empty mix inside the list means "the scalar strategy" for that point.
  std::vector<std::vector<core::ByzStrategy>> strategy_mixes;
  /// Mixed into every per-point seed; change it to resample the whole sweep.
  std::uint64_t base_seed = 0x9E3779B97F4A7C15ULL;
  /// Derive the *graph* seed from (family, n, seed) only, so every
  /// algorithm and every f of a cell run on the same graph — the
  /// controlled-comparison mode the figure/row benches use (scenario
  /// randomness still differs per point). Off by default: independent
  /// graphs per point give sweeps more scenario diversity.
  bool common_graphs = false;
  /// Worker threads for the sweep (0 = hardware concurrency). Results do
  /// not depend on this value.
  unsigned threads = 0;
  gather::CostModel cost{/*scaled=*/true};
  /// Give the f smallest IDs to Byzantine robots (worst case).
  bool byz_smallest_ids = true;
  /// Run adversaries through the compiled range-effect interpreter
  /// (core::ScenarioConfig::compiled_adversary). Point results are
  /// bit-identical either way — the conformance tier pins it — but the
  /// flag folds into spec_fingerprint anyway so checkpoints state which
  /// execution path produced them.
  bool compiled_adversary = true;
  /// Shard selection: expand_grid keeps only points whose index in the
  /// full (deduplicated) grid satisfies index % shard_count == shard_index.
  /// The union of the m stripes is exactly the unsharded grid, so m
  /// machines can split one sweep and merge via a shared checkpoint.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// JSON-lines checkpoint file (empty = no checkpointing). Existing
  /// entries whose coordinates match a grid point are reused instead of
  /// re-run; every newly finished point is appended and flushed, so an
  /// aborted or crashed sweep resumes where it stopped.
  std::string checkpoint_path;
  /// Record wall-clock per point / per sweep. Off = all `seconds` fields
  /// are 0, making reports a pure function of the spec (byte-identical
  /// across runs, resumes, shards and thread counts) — the conformance
  /// tests and the CI resume-smoke diff run in this mode.
  bool measure_seconds = true;
  /// Called after every completed point (under a lock, with the number of
  /// completed points including checkpoint hits and the grid total).
  /// Return false to abort: no further points start, finished ones are
  /// checkpointed, and the unrun remainder is marked as aborted skips.
  std::function<bool(const PointResult&, std::size_t completed,
                     std::size_t total)>
      progress;
};

/// One expanded grid point.
struct SweepPoint {
  core::Algorithm algorithm{};
  std::string family;
  std::uint32_t n = 0;
  std::uint32_t k = 0;  ///< robot count; 0 is accepted and means k = n
                        ///< (expand_grid always stores the resolved count)
  std::uint32_t f = 0;
  std::uint64_t seed = 0;  ///< grid seed (repetition index), not the derived one
  core::ByzStrategy strategy{};
  /// Heterogeneous adversary mix (empty = the scalar strategy). Kept in
  /// canonical (sorted) order by expand_grid.
  std::vector<core::ByzStrategy> mix;
};

/// Full coordinate equality (including strategy and mix) — the checkpoint
/// reader uses it to reject stale entries whose derived seed collides.
[[nodiscard]] bool same_point(const SweepPoint& a, const SweepPoint& b);

struct PointResult {
  SweepPoint point;
  std::uint64_t derived_seed = 0;  ///< actual graph/scenario seed used
  /// Point could not run: family unsupported at this n, the algorithm's
  /// preconditions don't hold there (quotient/ring requirements), the
  /// (k, n, f) combination is infeasible per Theorem 8, the planned round
  /// bound saturated 128-bit accounting, or the sweep was aborted before
  /// the point started.
  bool skipped = false;
  std::string skip_reason;
  /// The plan's round bound overflowed 128-bit accounting (implies
  /// skipped). sweep_cli turns any saturated point into a loud grid
  /// rejection (exit code 4) instead of a silent skip row.
  bool saturated = false;
  bool ok = false;  ///< Definition 1 verified (generalized cap when k != n)
  std::string detail;
  sim::RunStats stats;
  core::Round planned_rounds = 0;
  double seconds = 0.0;
};

/// Per-cell aggregate over seeds: (algorithm, family, n, k, f, mix).
struct CellAggregate {
  core::Algorithm algorithm{};
  std::string family;
  std::uint32_t n = 0;
  std::uint32_t k = 0;
  std::uint32_t f = 0;
  std::vector<core::ByzStrategy> mix;
  std::size_t runs = 0;       ///< non-skipped points
  std::size_t dispersed = 0;  ///< points with ok == true
  core::Round min_rounds = 0;
  core::Round max_rounds = 0;
  double mean_rounds = 0.0;
  double mean_simulated = 0.0;
  double mean_moves = 0.0;
  double mean_messages = 0.0;
  double mean_seconds = 0.0;
};

struct SweepResult {
  std::vector<PointResult> points;  ///< grid order, independent of threads
  std::vector<CellAggregate> cells;
  double wall_seconds = 0.0;
  bool aborted = false;      ///< progress callback stopped the sweep early
  std::size_t from_checkpoint = 0;  ///< points restored, not re-run
  /// Torn (truncated) checkpoint lines skipped while restoring — a crash
  /// mid-append leaves one; it re-runs, and the count is surfaced here and
  /// in the JSON report so the loss is loud.
  std::size_t torn_checkpoint_lines = 0;

  [[nodiscard]] bool all_dispersed() const;
  [[nodiscard]] std::size_t skipped() const;
};

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// Whether the scenario harness can actually execute algorithm `a` with k
/// robots on an n-node graph (independent of Theorem 8 feasibility, which
/// run_point checks separately). k == n is always supported; the k-axis
/// algorithms are validated by the k-robots conformance tier.
[[nodiscard]] bool algorithm_supports_k(core::Algorithm a, std::uint32_t k,
                                        std::uint32_t n);

/// Expand the grid in deterministic order: algorithm-major, then family,
/// n, k, f, mix, seed — exact duplicate points (e.g. after f clamping, or
/// robot_counts listing both 0 and n) are dropped so aggregates never
/// double-count a derived seed, and only the spec's shard stripe is kept.
/// Throws std::invalid_argument on a family name that is not in
/// known_families() (a typo'd family must not silently skip its coverage)
/// or on shard_index >= shard_count.
[[nodiscard]] std::vector<SweepPoint> expand_grid(const SweepSpec& spec);

/// Fingerprint of every spec knob that changes what a point *computes*
/// beyond its own coordinates: base_seed, common_graphs,
/// require_trivial_quotient (and whether kQuotient is in the sweep, which
/// tightens graph sampling under common_graphs), er_edge_probability, the
/// cost model, byz_smallest_ids and measure_seconds (cached wall seconds
/// must not leak into a deterministic-report run). Checkpoint entries
/// record it, and resume only reuses entries whose fingerprint matches —
/// a checkpoint written under different knobs re-runs instead of silently
/// importing foreign results. Execution-shape knobs (threads, shards,
/// progress) are deliberately excluded: they never change point results.
[[nodiscard]] std::uint64_t spec_fingerprint(const SweepSpec& spec);

/// Fingerprint of the fully expanded grid PLUS the spec knobs
/// (spec_fingerprint): folds every point's derived seed and strategy in
/// grid order. The sweep service leases points by grid INDEX, so a
/// coordinator and a worker must prove they expanded the same grid before
/// any lease is honored — same flags => same fingerprint, any drift
/// (different axes, shard stripe, base seed, clamping) => rejected hello.
[[nodiscard]] std::uint64_t grid_fingerprint(
    const SweepSpec& spec, const std::vector<SweepPoint>& grid);

/// Seed for one point: splitmix-style hash of the coordinates into
/// base_seed. Stable across platforms and sweep composition (adding more
/// sizes/algorithms never changes another point's seed; points with k = n
/// and no mix hash exactly as the pre-k-axis grid did, so committed
/// baselines stay valid). The mix is hashed commutatively: permuting it
/// never changes the seed.
[[nodiscard]] std::uint64_t point_seed(std::uint64_t base_seed,
                                       const SweepPoint& p);

/// Seed the point's graph is built from: point_seed, or (with
/// spec.common_graphs) the hash of (family, n, seed) only, shared across
/// the algorithm, k, f and mix axes.
[[nodiscard]] std::uint64_t point_graph_seed(const SweepSpec& spec,
                                             const SweepPoint& p);

/// Run one point in its own Engine + Rng; fills everything but `seconds`'
/// surroundings deterministically (and `seconds` itself is 0 when the spec
/// disables wall-clock measurement).
[[nodiscard]] PointResult run_point(const SweepSpec& spec,
                                    const SweepPoint& p);

/// Expand, run (in parallel), aggregate. Honors the spec's checkpoint
/// (reuse + append), shard stripe and progress/abort callback.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

// ---------------------------------------------------------------------------
// Shared internals of run_sweep and the sweepd coordinator (run/service).
// Both execution paths restore, merge and aggregate through these exact
// functions so a distributed sweep is byte-identical to single-shot by
// construction, not by parallel maintenance.
// ---------------------------------------------------------------------------

/// What restoring spec.checkpoint_path yielded for one expanded grid.
struct RestoredCheckpoint {
  std::vector<std::size_t> todo;  ///< grid indices still to run, grid order
  std::size_t restored = 0;       ///< points placed from the checkpoint
  std::size_t torn = 0;           ///< truncated lines skipped (surfaced)
};

/// Load spec.checkpoint_path (when set), place every matching completed
/// point at its grid index in `out` (resized to the grid), and list the
/// rest as todo. Entries match on spec fingerprint, derived seed AND full
/// coordinates, exactly as run_sweep resumes.
[[nodiscard]] RestoredCheckpoint restore_checkpoint(
    const SweepSpec& spec, const std::vector<SweepPoint>& grid,
    std::vector<PointResult>& out);

/// Incrementally maintained (algorithm, family, n, k, f, mix) cell
/// aggregates — the aggregation recurrence behind rebuild_cell_aggregates,
/// extracted so the sweepd coordinator can fold every merged point into
/// live aggregate state instead of rebuilding a full report per query.
///
/// Bit-identity contract: cells() is bit-identical (including the
/// order-sensitive floating-point running means) to rebuild_cell_aggregates
/// over the same set of points, REGARDLESS of the order add() saw them in.
/// Each cell keeps its member points sorted by grid index; an in-order add
/// folds in O(1) (the recurrence is incremental), an out-of-order add
/// replays only that cell's members (bounded by the seeds-per-cell count,
/// not the grid) so arrival order — lease reassignment, duplicate racing,
/// local fallback — can never leak into the aggregates.
class CellAggregator {
 public:
  /// Fold one completed point, identified by its grid index, into its
  /// cell. Skipped points are ignored (they never aggregate). Call at most
  /// once per grid index.
  void add(std::size_t grid_index, const PointResult& p);

  /// Distinct cells seen so far.
  [[nodiscard]] std::size_t cell_count() const { return states_.size(); }

  /// Snapshot of every cell, ordered by first (grid-order) appearance —
  /// exactly rebuild_cell_aggregates' output over the same points.
  [[nodiscard]] std::vector<CellAggregate> cells() const;

 private:
  /// The per-point contribution, small enough to copy so replay never
  /// needs the full PointResult back.
  struct Member {
    std::size_t index = 0;
    bool ok = false;
    core::Round rounds = 0;
    std::uint64_t simulated = 0;
    std::uint64_t moves = 0;
    std::uint64_t messages = 0;
    double seconds = 0.0;
  };
  struct State {
    CellAggregate agg;
    std::vector<Member> members;  ///< sorted by grid index
  };

  static void fold(CellAggregate& cell, const Member& m);
  void replay(State& st);

  std::vector<State> states_;
  /// Coordinate-hash buckets (collisions resolved by exact match) so
  /// million-point sweeps aggregate in O(points). Lookup-only — cell
  /// ordering comes from states_ (first-appearance grid order), never from
  /// this map — and util::FlatMap makes the no-iteration property
  /// structural: there is no begin()/end() to accidentally walk.
  util::FlatMap<std::uint64_t, std::vector<std::size_t>> index_;
};

/// Rebuild result.cells from result.points: first-appearance (grid) order,
/// skips excluded — the one aggregation routine behind every report
/// (implemented as an in-order CellAggregator pass, so the batch and
/// incremental paths cannot drift).
void rebuild_cell_aggregates(SweepResult& result);

}  // namespace bdg::run
