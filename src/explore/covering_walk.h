#pragma once
// Covering walks — the library's substitute for universal exploration
// sequences (Aleliunas et al. [2], Ta-Shma–Zwick [45]).
//
// The paper's imported subroutines only need a walk that visits every node
// within a charged round budget X(n). True UES constructions have
// impractical constants; this oracle computes, for a concrete graph and
// start node, a DFS (Euler tour) port walk of length 2(n-1)..2m that
// visits all nodes and returns to the start. Benchmarks charge the
// configurable theoretical X(n) on top (see gather/gathering.h), so round
// accounting keeps the paper's shape while the simulation stays tractable.
#include <vector>

#include "graph/graph.h"

namespace bdg {

/// Port walk from `start` that visits every node of the connected graph and
/// ends back at `start` (DFS tree Euler tour: 2(n-1) steps).
[[nodiscard]] std::vector<Port> covering_walk_ports(const Graph& g,
                                                    NodeId start);

/// Euler tour of the DFS tree of `g` rooted at `root`, annotated with the
/// node reached after each step; used by Dispersion-Using-Map to traverse
/// its spanning tree ("a robot locally computes a spanning tree (say, a
/// DFS tree) on the map", paper Section 2.2).
struct TourStep {
  Port port;    ///< outgoing port at the current node
  NodeId node;  ///< node reached after the move (map-local id)
};
[[nodiscard]] std::vector<TourStep> dfs_tour(const Graph& g, NodeId root);

}  // namespace bdg
