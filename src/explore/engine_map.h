#pragma once
// In-engine map finding with a movable token ([24], used by Theorems 2-7).
//
// One subroutine covers every variant in the paper:
//  * a robot PAIR (Theorems 2/3): agents = {R}, tokens = {R'}, quorums 1/1;
//  * three groups A/B/C (Theorem 4): agents = A, tokens = B u C,
//    agent quorum floor(k/6)+1, token quorum floor(k/3)+1;
//  * two halves (Theorem 5): majority quorums on each side;
//  * two halves with absolute floor(n/4) quorums (Theorems 6/7, strong
//    Byzantine robots that may fake IDs — quorums count distinct claimed
//    IDs inside the expected group, so forging needs quorum-many liars).
//
// Protocol (per round, three sub-rounds):
//   sub 0  every agent-group member broadcasts the next deterministic
//          instruction INSTR[op, port] of the shared map-building algorithm;
//   sub 1  token-group members tally instructions (>= agent_quorum distinct
//          claimed agent IDs with identical payload), obey the winner; a
//          QUERY is answered by broadcasting TOKEN_HERE;
//   sub 2  agent members tally TOKEN_HERE (>= token_quorum distinct claimed
//          token IDs); everyone commits its move for the round boundary.
//
// Safety against abandonment: every participant logs the arrival port of
// each move; when the window budget runs low it walks the reversed log,
// which provably returns it to the rally node no matter what Byzantine
// partners did. So honest robots are always back at the rally when the
// fixed-length window ends, keeping the outer protocol synchronized.
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/canonical.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace bdg::explore {

/// Message kinds (engine-global namespace: map finding owns 100..199).
enum MapMsgKind : std::uint32_t {
  kMsgInstr = 100,      ///< data = [op, port]
  kMsgTokenHere = 101,  ///< data = []
  kMsgMapCode = 102,    ///< data = canonical code of the finished map
};

/// Instruction opcodes, carried in kMsgInstr payloads.
enum class MapOp : std::int64_t {
  kTMove = 1,   ///< agents and token move through `port` together
  kAMove = 2,   ///< agents move alone (token parked elsewhere)
  kPark = 3,    ///< token parks at the current node
  kAttach = 4,  ///< token resumes traveling with the agents
  kQuery = 5,   ///< token answers TOKEN_HERE if present
  kNoop = 6,    ///< keep the round cadence without acting
  kDone = 7,    ///< map finished; MAP_CODE carries the result
};

struct MapFindConfig {
  std::vector<sim::RobotId> agents;  ///< agent-group member IDs (sorted)
  std::vector<sim::RobotId> tokens;  ///< token-group member IDs (sorted)
  std::uint32_t agent_quorum = 1;    ///< instructions believed at this count
  std::uint32_t token_quorum = 1;    ///< presence believed at this count
  core::Round round_budget = 0;      ///< fixed window length (rounds)
  std::uint32_t n = 0;               ///< known node count (map size cap)
  /// Token-side fast path for the PAIR setting (one agent, one token):
  /// close the window on the first OUT-OF-PROTOCOL silent round. Silence
  /// is in-protocol only while the token is parked (broadcasts are
  /// node-local and the agent is off probing candidates — at most ~n^2
  /// rounds for an honest agent), so the token closes immediately on
  /// unparked silence and after the probing bound on parked silence.
  /// Sound in the pair setting: silence then proves the single agent is
  /// done, aborted or Byzantine, and nothing later in the window can
  /// affect this robot's vote (tokens never vote their partner's window)
  /// or its rally-return contract (it walks its move log home and sleeps
  /// out the window). MUST stay off for the group settings: there a
  /// quorum can dip below threshold while honest agents still need token
  /// service.
  bool early_close = false;
};

/// Window length ample for an honest run on any simple n-node graph,
/// including the unconditional walk-home reserve. This is the paper's T2
/// (an O(n^3) bound for exploration with a movable token). Returned as a
/// saturating Round so the window formula itself can never wrap at large n
/// — the outer plan bounds multiply it further.
[[nodiscard]] core::Round default_map_window(std::uint32_t n);

struct MapFindOutcome {
  /// Canonical code of the constructed map, rooted at the rally node;
  /// nullopt when the run aborted (budget, inconsistency, no quorum).
  std::optional<CanonicalCode> code;
  bool aborted = false;
  std::uint64_t active_rounds = 0;  ///< rounds before going idle
  /// Set by run_map_agent_cached alone: the cached map passed every
  /// physical check of the verify-only walk (code echoes the cache).
  /// False from run_map_agent_cached means the walk hit a mismatch and
  /// the window fell back to a full rebuild (code, if any, is then a
  /// fresh self-built map); run_map_publish and the build/token runs
  /// perform no walk and always leave it false.
  bool verified_cache = false;
};

/// Agent-group member program. Must start at the rally node at the first
/// round of the window; returns after exactly cfg.round_budget rounds with
/// the robot back at the rally node.
[[nodiscard]] sim::Task<MapFindOutcome> run_map_agent(sim::Ctx ctx,
                                                      MapFindConfig cfg);

/// Token-group member program (same window contract). The returned code is
/// the one the agent group broadcast with >= agent_quorum support.
[[nodiscard]] sim::Task<MapFindOutcome> run_map_token(sim::Ctx ctx,
                                                      MapFindConfig cfg);

/// Agent-side window that reuses a previously self-built map instead of
/// exploring from scratch: a silent verify-only walk covers every edge of
/// `cached_map` (DFS tree advances/retreats plus out-and-back probes of
/// the non-tree edges, ~2|E| rounds instead of the full identity-test
/// build), cross-checking the physically observed arrival port and degree
/// of every move against the cache. On a clean pass the agent publishes
/// Done + the cached code exactly like a fresh build and sleeps out the
/// window (outcome.verified_cache = true). On ANY mismatch the cache is
/// untrusted: the agent walks its move log back to the rally node and
/// runs a full run_map_agent rebuild in the remaining budget — a poisoned
/// cache burns the window but can never put an unverified map into the
/// caller's vote. Same fixed-window contract as run_map_agent. NOTE: the
/// walk alone does not prove the cache correct on adversarially symmetric
/// graphs (local port/degree checks cannot always distinguish a map from
/// a consistent pseudo-cover); callers must gate caching on independent
/// evidence — the tournament only caches a code it fully built in f+1
/// distinct windows.
[[nodiscard]] sim::Task<MapFindOutcome> run_map_agent_cached(
    sim::Ctx ctx, MapFindConfig cfg, const Graph& cached_map,
    const CanonicalCode& cached_code);

/// Agent-side window fast path for a map that is already confirmed AND
/// physically self-checked: broadcast Done + `code` in the first round
/// (so an honest token partner finishes immediately too) and sleep the
/// rest of the window in one jump. Same fixed-window contract; the robot
/// never leaves the rally node.
[[nodiscard]] sim::Task<MapFindOutcome> run_map_publish(
    sim::Ctx ctx, MapFindConfig cfg, const CanonicalCode& code);

/// Convenience: offline honest two-robot map construction (agent id 1,
/// token id 2) on `g` from `start`; used by tests and by harnesses needing
/// ground-truth maps. Returns the map (isomorphic to g, node 0 = start).
struct ReferenceMapResult {
  Graph map;
  std::uint64_t active_rounds = 0;
};
[[nodiscard]] ReferenceMapResult build_map_with_token(const Graph& g,
                                                      NodeId start);

}  // namespace bdg::explore
