#pragma once
// Ring-specialized Find-Map — the setting of the paper's predecessors
// (Molla-Mondal-Moses Jr. [34, 36], Time-Opt-Ring-Dispersion).
//
// On an anonymous ring a single robot needs no token and no imported
// exploration bound: it walks "always exit through the port you did not
// arrive by" for n steps, recording the port pair of every edge, and is
// provably back at its start with a complete rooted map. O(n) rounds,
// no communication — hence immune to any number of Byzantine robots,
// exactly like Theorem 1's Find-Map but constructive and linear-time.
#include "graph/graph.h"
#include "sim/engine.h"
#include "sim/task.h"

namespace bdg::explore {

/// True if g is a simple cycle (every node degree 2, connected, n >= 3).
[[nodiscard]] bool is_ring(const Graph& g);

/// Walk the ring once and return the map rooted at the start node
/// (map node 0 = start). Consumes exactly ctx.n() rounds. Requires the
/// underlying graph to be a ring (the caller checks with is_ring; the
/// walk itself relies only on every visited node having degree 2).
[[nodiscard]] sim::Task<Graph> run_ring_find_map(sim::Ctx ctx);

}  // namespace bdg::explore
