#include "explore/engine_map.h"

#include <memory>
#include <stdexcept>

#include "core/protocol_slack.h"
#include "explore/group_map.h"
#include "explore/token_map.h"

namespace bdg::explore {
namespace {

using sim::Ctx;
using sim::Task;

/// Shared state of one agent-side window run.
struct AgentRun {
  Ctx ctx;
  MapFindConfig cfg;
  PartialMap pm;
  NodeId map_pos = 0;          ///< agent's node in the partial map
  std::uint64_t used = 0;      ///< rounds consumed inside the window
  std::vector<Port> home;      ///< arrival ports of every move (walk-home log)
  bool failed = false;         ///< inconsistency detected -> abort
  // Reusable per-window buffers: route/candidate computation in the hot
  // exploration loop stops allocating after warmup. travel_buf serves the
  // non-nested travel legs; probe_route_buf the routes inside the
  // candidate loop, which iterates cands_buf concurrently.
  std::vector<Port> travel_buf, probe_route_buf;
  std::vector<NodeId> cands_buf;

  AgentRun(Ctx c, MapFindConfig f) : ctx(c), cfg(std::move(f)), pm(c.degree()) {}

  /// Rounds still guaranteed to suffice for one more op plus walking home.
  [[nodiscard]] bool can_spend() const {
    return core::Round(used + home.size() + core::kAgentOpReserve) <=
           cfg.round_budget;
  }
};

/// One protocol round from the agent side: instruct at sub 0, collect token
/// presence votes at sub 2, move at the round boundary. Returns whether the
/// token group attested presence with quorum support.
Task<bool> a_round(AgentRun& r, MapOp op, Port port) {
  const std::int64_t instr[2] = {static_cast<std::int64_t>(op),
                                 static_cast<std::int64_t>(port)};
  r.ctx.broadcast_pooled(kMsgInstr, instr);
  co_await r.ctx.next_subround();  // sub 1: token side acts
  co_await r.ctx.next_subround();  // sub 2: read presence votes
  const bool here =
      presence_support(r.ctx.inbox(), kMsgTokenHere, r.cfg.tokens) >=
      r.cfg.token_quorum;
  std::optional<Port> mv;
  if (op == MapOp::kTMove || op == MapOp::kAMove) mv = port;
  co_await r.ctx.end_round(mv);
  ++r.used;
  if (mv.has_value()) r.home.push_back(r.ctx.arrival_port());
  co_return here;
}

/// Move along an already-explored map edge, cross-checking the observed
/// arrival port and degree against the map; any mismatch proves a past lie
/// by the token group and aborts the run.
Task<void> a_move_known(AgentRun& r, Port s, bool with_token) {
  const HalfEdge expect = r.pm.hop(r.map_pos, s);
  (void)co_await a_round(r, with_token ? MapOp::kTMove : MapOp::kAMove, s);
  if (r.ctx.arrival_port() != expect.reverse ||
      r.ctx.degree() != r.pm.degree(expect.to)) {
    r.failed = true;
    co_return;
  }
  r.map_pos = expect.to;
}

/// Unconditional return to the rally node: replay the reversed move log.
/// Works regardless of how corrupted the map is, because the log records
/// physically performed moves.
Task<void> walk_home(Ctx ctx, std::vector<Port>& home, std::uint64_t& used) {
  while (!home.empty()) {
    const Port p = home.back();
    home.pop_back();
    co_await ctx.end_round(p);
    ++used;
  }
}

Task<void> idle_rest(Ctx ctx, std::uint64_t used, core::Round budget) {
  if (core::Round(used) < budget) co_await ctx.sleep_rounds(budget - used);
}

/// The one-round Done handshake every agent-side window ends with: publish
/// Done + the map code in the same sub-round 0 (token-group members read
/// both from one inbox), then finish the round. Consumes exactly one round.
Task<void> publish_done(Ctx ctx, const CanonicalCode& code) {
  ctx.broadcast(kMsgInstr, {static_cast<std::int64_t>(MapOp::kDone), 0});
  ctx.broadcast(kMsgMapCode, {code.begin(), code.end()});
  co_await ctx.next_subround();
  co_await ctx.next_subround();
  co_await ctx.end_round(std::nullopt);
}

std::optional<CanonicalCode> code_from_payload(
    std::span<const std::int64_t> data) {
  CanonicalCode code;
  code.reserve(data.size());
  for (std::int64_t v : data) {
    if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) return std::nullopt;
    code.push_back(static_cast<std::uint32_t>(v));
  }
  return code;
}

/// One round of the verify-only walk: move through `out`, expecting to
/// arrive through `arrive` at a node of degree `far_deg`.
struct VerifyStep {
  Port out;
  Port arrive;
  std::uint32_t far_deg;
};

/// Closed walk from `root` covering every edge of `m`: DFS tree edges are
/// advanced and retreated (checked in both directions), non-tree edges
/// probed out-and-back — ~2|E| steps total, ending back at `root`.
std::vector<VerifyStep> verify_walk_plan(const Graph& m, NodeId root) {
  std::vector<VerifyStep> steps;
  std::vector<std::vector<char>> covered(m.n());
  for (NodeId v = 0; v < m.n(); ++v) covered[v].assign(m.degree(v), 0);
  std::vector<char> visited(m.n(), 0);
  visited[root] = 1;
  struct Frame {
    NodeId node;
    Port next;         ///< next port of `node` to consider
    Port parent_port;  ///< port leading back to the DFS parent
  };
  std::vector<Frame> stack{{root, 0, kNoPort}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next >= m.degree(f.node)) {
      if (f.parent_port != kNoPort) {  // retreat to the DFS parent
        const HalfEdge up = m.hop(f.node, f.parent_port);
        steps.push_back({f.parent_port, up.reverse, m.degree(up.to)});
      }
      stack.pop_back();
      continue;
    }
    const Port p = f.next++;
    if (covered[f.node][p] != 0) continue;
    const HalfEdge he = m.hop(f.node, p);
    covered[f.node][p] = 1;
    covered[he.to][he.reverse] = 1;
    steps.push_back({p, he.reverse, m.degree(he.to)});
    if (visited[he.to] == 0) {  // tree edge: descend (invalidates f)
      visited[he.to] = 1;
      stack.push_back({he.to, 0, he.reverse});
    } else {  // non-tree edge: step straight back
      steps.push_back({he.reverse, p, m.degree(f.node)});
    }
  }
  return steps;
}

}  // namespace

core::Round default_map_window(std::uint32_t n) {
  const core::Round nn = n;
  return 8 * nn * nn * nn + 64 * nn + 96;
}

Task<MapFindOutcome> run_map_agent(Ctx ctx, MapFindConfig cfg) {
  if (cfg.round_budget == 0) cfg.round_budget = default_map_window(cfg.n);
  AgentRun r(ctx, cfg);

  // Main exploration loop: resolve frontier ports one at a time.
  while (!r.failed) {
    const auto frontier = r.pm.first_unexplored();
    if (!frontier.has_value()) break;
    const auto [u, p] = *frontier;

    // 1. Travel (with the token) to the frontier node u.
    r.pm.route_into(r.map_pos, u, r.travel_buf);
    for (std::size_t i = 0; i < r.travel_buf.size(); ++i) {
      if (!r.can_spend()) r.failed = true;
      if (r.failed) break;
      co_await a_move_known(r, r.travel_buf[i], /*with_token=*/true);
    }
    if (r.failed) break;

    // 2. Step through the frontier port; observe the far endpoint.
    if (!r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kTMove, p);
    const std::uint32_t wdeg = r.ctx.degree();
    const Port q = r.ctx.arrival_port();

    r.pm.candidates_into(wdeg, q, r.cands_buf);
    if (r.cands_buf.empty()) {
      // Certainly a new node: no known node could be its far side.
      if (r.pm.size() >= cfg.n) {  // token group lied somewhere
        r.failed = true;
        break;
      }
      const NodeId w = r.pm.add_node(wdeg);
      r.pm.connect(u, p, w, q);
      r.map_pos = w;
      continue;
    }

    // 3. Identity test: park the token at the far endpoint, walk back, and
    //    probe each candidate for its presence.
    if (!r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kPark, 0);
    if (!r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kAMove, q);  // back over the same edge
    if (r.ctx.arrival_port() != p || r.ctx.degree() != r.pm.degree(u)) {
      r.failed = true;
      break;
    }
    r.map_pos = u;

    NodeId found = kNoNode;
    for (std::size_t ci = 0; ci < r.cands_buf.size(); ++ci) {
      const NodeId x = r.cands_buf[ci];
      r.pm.route_into(r.map_pos, x, r.probe_route_buf);
      for (std::size_t i = 0; i < r.probe_route_buf.size(); ++i) {
        if (!r.can_spend()) r.failed = true;
        if (r.failed) break;
        co_await a_move_known(r, r.probe_route_buf[i], /*with_token=*/false);
      }
      if (r.failed || !r.can_spend()) break;
      if (co_await a_round(r, MapOp::kQuery, 0)) {
        found = x;
        break;
      }
    }
    if (r.failed) break;

    if (found != kNoNode) {
      r.pm.connect(u, p, found, q);
      r.map_pos = found;
      if (!r.can_spend()) break;
      (void)co_await a_round(r, MapOp::kAttach, 0);
      continue;
    }

    // 4. No candidate held the token: the far endpoint is new. Return to u,
    //    re-enter it, and pick the token back up.
    r.pm.route_into(r.map_pos, u, r.travel_buf);
    for (std::size_t i = 0; i < r.travel_buf.size(); ++i) {
      if (!r.can_spend()) r.failed = true;
      if (r.failed) break;
      co_await a_move_known(r, r.travel_buf[i], /*with_token=*/false);
    }
    if (r.failed || !r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kAMove, p);
    if (r.ctx.arrival_port() != q || r.ctx.degree() != wdeg) {
      r.failed = true;
      break;
    }
    if (r.pm.size() >= cfg.n) {
      r.failed = true;
      break;
    }
    const NodeId w = r.pm.add_node(wdeg);
    r.pm.connect(u, p, w, q);
    r.map_pos = w;
    (void)co_await a_round(r, MapOp::kAttach, 0);
  }

  MapFindOutcome out;
  if (!r.failed && r.pm.complete()) {
    const CanonicalCode code = rooted_code(r.pm.to_graph(), 0);
    // Publish the result so token-group members learn the map too.
    co_await publish_done(r.ctx, code);
    ++r.used;
    out.code = code;
  } else {
    out.aborted = true;
  }
  out.active_rounds = r.used;
  co_await walk_home(ctx, r.home, r.used);
  co_await idle_rest(ctx, r.used, cfg.round_budget);
  co_return out;
}

Task<MapFindOutcome> run_map_token(Ctx ctx, MapFindConfig cfg) {
  if (cfg.round_budget == 0) cfg.round_budget = default_map_window(cfg.n);
  std::uint64_t used = 0;
  std::vector<Port> home;
  std::optional<CanonicalCode> code;
  bool finished = false;
  // Early-close bookkeeping (pair setting only). Broadcasts are node-local,
  // so silence is expected exactly while the token is PARKED (the agent is
  // off probing candidates, at most ~n^2 rounds for an honest agent); any
  // other silent round proves the pair-agent is done, aborted or Byzantine.
  bool parked = false;
  std::uint64_t parked_silence = 0;
  const core::Round parked_silence_bound =
      core::Round(cfg.n) * cfg.n + 2 * core::Round(cfg.n) +
      core::kAgentOpReserve;
  // Round-invariant presence beacon, pooled once and re-sent shared.
  const util::PayloadRef token_here = ctx.make_payload({});

  while (core::Round(used) < cfg.round_budget) {
    // Leave exactly enough rounds to walk the reversed move log back to the
    // rally node, whatever Byzantine agents did.
    if (finished || cfg.round_budget - used <=
                        core::Round(home.size() + core::kTokenStepReserve))
      break;
    co_await ctx.next_subround();  // sub 1: read instructions from sub 0
    const auto instr =
        believed_payload(ctx.inbox(), kMsgInstr, cfg.agents, cfg.agent_quorum);
    if (!instr.has_value() && cfg.early_close) {
      // An honest pair-agent is co-located and instructing every round
      // except while it parked us: close the window on the first
      // out-of-protocol silent round (immediately when unparked; after
      // the honest probing bound when parked), walk home and sleep the
      // idle tail in one jump instead of listening round by round.
      ++parked_silence;
      if (!parked || core::Round(parked_silence) > parked_silence_bound) {
        co_await ctx.end_round(std::nullopt);
        ++used;
        break;
      }
    } else {
      parked_silence = 0;
    }
    std::optional<Port> mv;
    if (instr.has_value() && instr->size() == 2) {
      const auto op = static_cast<MapOp>((*instr)[0]);
      const auto port = static_cast<std::uint64_t>((*instr)[1]);
      switch (op) {
        case MapOp::kTMove:
          if (port < ctx.degree()) mv = static_cast<Port>(port);
          break;
        case MapOp::kQuery:
          ctx.broadcast_shared(kMsgTokenHere, token_here);
          break;
        case MapOp::kDone: {
          const auto payload = believed_payload(ctx.inbox(), kMsgMapCode,
                                                cfg.agents, cfg.agent_quorum);
          if (payload.has_value()) code = code_from_payload(*payload);
          finished = true;
          break;
        }
        case MapOp::kPark:
          parked = true;  // agent excursions ahead: silence is in-protocol
          break;
        case MapOp::kAttach:
          parked = false;
          break;
        case MapOp::kAMove:
        case MapOp::kNoop:
          break;  // the token only moves on TMove
      }
    }
    co_await ctx.end_round(mv);
    ++used;
    if (mv.has_value()) home.push_back(ctx.arrival_port());
  }

  MapFindOutcome out;
  out.code = code;
  out.aborted = !code.has_value();
  out.active_rounds = used;
  co_await walk_home(ctx, home, used);
  co_await idle_rest(ctx, used, cfg.round_budget);
  co_return out;
}

Task<MapFindOutcome> run_map_agent_cached(Ctx ctx, MapFindConfig cfg,
                                          const Graph& cached_map,
                                          const CanonicalCode& cached_code) {
  if (cfg.round_budget == 0) cfg.round_budget = default_map_window(cfg.n);
  std::uint64_t used = 0;
  std::vector<Port> home;
  const auto can_spend = [&] {
    return core::Round(used + home.size() + core::kAgentOpReserve) <=
           cfg.round_budget;
  };
  bool mismatch =
      cached_map.n() != cfg.n || ctx.degree() != cached_map.degree(0);
  if (!mismatch) {
    const std::vector<VerifyStep> plan = verify_walk_plan(cached_map, 0);
    for (const VerifyStep& s : plan) {
      if (!can_spend()) {
        mismatch = true;
        break;
      }
      // The walk is silent: its moves are checked against physical ground
      // truth alone, and broadcasts are node-local so instructions could
      // not reach the rally-parked token partner anyway (which, in the
      // batched pair setting, early-closes its half on the first silent
      // round and sleeps).
      co_await ctx.end_round(s.out);
      ++used;
      home.push_back(ctx.arrival_port());
      if (ctx.arrival_port() != s.arrive || ctx.degree() != s.far_deg) {
        mismatch = true;
        break;
      }
    }
  }
  MapFindOutcome out;
  if (!mismatch) {
    // The closed walk ended back at the rally node with every cache edge
    // physically re-checked: publish exactly like a fresh build.
    co_await publish_done(ctx, cached_code);
    ++used;
    out.code = cached_code;
    out.verified_cache = true;
    out.active_rounds = used;
    co_await idle_rest(ctx, used, cfg.round_budget);
    co_return out;
  }
  // Mismatch (or no budget for the walk): the cache is untrusted. Replay
  // the move log back to the rally node, then rebuild from scratch in the
  // remaining budget. Within the declared adversary budget this path is
  // unreachable (only a code built in f+1 distinct windows is ever
  // cached); beyond it the rebuild runs against a token that may already
  // have closed its window, so it can abort — burning the window, which
  // is exactly the contract: a poisoned cache never reaches the vote
  // unchecked.
  co_await walk_home(ctx, home, used);
  MapFindConfig rest = cfg;
  rest.round_budget = cfg.round_budget - used;
  if (rest.round_budget <= core::Round(core::kAgentOpReserve)) {
    // Cannot happen under the default window (the walk is ~2|E| <= n^2
    // rounds of an 8n^3 budget), but a caller-shrunk budget degrades to a
    // burned window, never an unpadded one.
    out.aborted = true;
    out.active_rounds = used;
    co_await idle_rest(ctx, used, cfg.round_budget);
    co_return out;
  }
  out = co_await run_map_agent(ctx, rest);
  out.active_rounds += used;
  out.verified_cache = false;
  co_return out;
}

Task<MapFindOutcome> run_map_publish(Ctx ctx, MapFindConfig cfg,
                                     const CanonicalCode& code) {
  if (cfg.round_budget == 0) cfg.round_budget = default_map_window(cfg.n);
  co_await publish_done(ctx, code);
  MapFindOutcome out;
  out.code = code;
  out.active_rounds = 1;
  co_await idle_rest(ctx, 1, cfg.round_budget);
  co_return out;
}

namespace {

sim::Proc reference_agent(Ctx ctx, MapFindConfig cfg,
                          std::shared_ptr<MapFindOutcome> out) {
  *out = co_await run_map_agent(ctx, cfg);
}

sim::Proc reference_token(Ctx ctx, MapFindConfig cfg,
                          std::shared_ptr<MapFindOutcome> out) {
  *out = co_await run_map_token(ctx, cfg);
}

}  // namespace

ReferenceMapResult build_map_with_token(const Graph& g, NodeId start) {
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = static_cast<std::uint32_t>(g.n());
  cfg.round_budget = default_map_window(cfg.n);
  auto agent_out = std::make_shared<MapFindOutcome>();
  auto token_out = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, start, [=](Ctx c) {
    return reference_agent(c, cfg, agent_out);
  });
  eng.add_robot(2, sim::Faultiness::kHonest, start, [=](Ctx c) {
    return reference_token(c, cfg, token_out);
  });
  eng.run(cfg.round_budget + core::kPlanCloseSlack);
  if (!agent_out->code.has_value())
    throw std::runtime_error("build_map_with_token: honest run failed");
  ReferenceMapResult res{graph_from_code(*agent_out->code),
                         agent_out->active_rounds};
  return res;
}

}  // namespace bdg::explore
