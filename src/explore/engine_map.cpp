#include "explore/engine_map.h"

#include <memory>
#include <stdexcept>

#include "explore/group_map.h"
#include "explore/token_map.h"

namespace bdg::explore {
namespace {

using sim::Ctx;
using sim::Task;

/// Shared state of one agent-side window run.
struct AgentRun {
  Ctx ctx;
  MapFindConfig cfg;
  PartialMap pm;
  NodeId map_pos = 0;          ///< agent's node in the partial map
  std::uint64_t used = 0;      ///< rounds consumed inside the window
  std::vector<Port> home;      ///< arrival ports of every move (walk-home log)
  bool failed = false;         ///< inconsistency detected -> abort

  AgentRun(Ctx c, MapFindConfig f) : ctx(c), cfg(std::move(f)), pm(c.degree()) {}

  /// Rounds still guaranteed to suffice for one more op plus walking home.
  [[nodiscard]] bool can_spend() const {
    return core::Round(used + home.size() + 6) <= cfg.round_budget;
  }
};

/// One protocol round from the agent side: instruct at sub 0, collect token
/// presence votes at sub 2, move at the round boundary. Returns whether the
/// token group attested presence with quorum support.
Task<bool> a_round(AgentRun& r, MapOp op, Port port) {
  r.ctx.broadcast(kMsgInstr,
                  {static_cast<std::int64_t>(op), static_cast<std::int64_t>(port)});
  co_await r.ctx.next_subround();  // sub 1: token side acts
  co_await r.ctx.next_subround();  // sub 2: read presence votes
  const bool here =
      presence_support(r.ctx.inbox(), kMsgTokenHere, r.cfg.tokens) >=
      r.cfg.token_quorum;
  std::optional<Port> mv;
  if (op == MapOp::kTMove || op == MapOp::kAMove) mv = port;
  co_await r.ctx.end_round(mv);
  ++r.used;
  if (mv.has_value()) r.home.push_back(r.ctx.arrival_port());
  co_return here;
}

/// Move along an already-explored map edge, cross-checking the observed
/// arrival port and degree against the map; any mismatch proves a past lie
/// by the token group and aborts the run.
Task<void> a_move_known(AgentRun& r, Port s, bool with_token) {
  const HalfEdge expect = r.pm.hop(r.map_pos, s);
  (void)co_await a_round(r, with_token ? MapOp::kTMove : MapOp::kAMove, s);
  if (r.ctx.arrival_port() != expect.reverse ||
      r.ctx.degree() != r.pm.degree(expect.to)) {
    r.failed = true;
    co_return;
  }
  r.map_pos = expect.to;
}

/// Unconditional return to the rally node: replay the reversed move log.
/// Works regardless of how corrupted the map is, because the log records
/// physically performed moves.
Task<void> walk_home(Ctx ctx, std::vector<Port>& home, std::uint64_t& used) {
  while (!home.empty()) {
    const Port p = home.back();
    home.pop_back();
    co_await ctx.end_round(p);
    ++used;
  }
}

Task<void> idle_rest(Ctx ctx, std::uint64_t used, core::Round budget) {
  if (core::Round(used) < budget) co_await ctx.sleep_rounds(budget - used);
}

std::vector<std::int64_t> code_payload(const CanonicalCode& code) {
  return {code.begin(), code.end()};
}

std::optional<CanonicalCode> code_from_payload(
    const std::vector<std::int64_t>& data) {
  CanonicalCode code;
  code.reserve(data.size());
  for (std::int64_t v : data) {
    if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) return std::nullopt;
    code.push_back(static_cast<std::uint32_t>(v));
  }
  return code;
}

}  // namespace

core::Round default_map_window(std::uint32_t n) {
  const core::Round nn = n;
  return 8 * nn * nn * nn + 64 * nn + 96;
}

Task<MapFindOutcome> run_map_agent(Ctx ctx, MapFindConfig cfg) {
  if (cfg.round_budget == 0) cfg.round_budget = default_map_window(cfg.n);
  AgentRun r(ctx, cfg);

  // Main exploration loop: resolve frontier ports one at a time.
  while (!r.failed) {
    const auto frontier = r.pm.first_unexplored();
    if (!frontier.has_value()) break;
    const auto [u, p] = *frontier;

    // 1. Travel (with the token) to the frontier node u.
    for (const Port s : r.pm.route(r.map_pos, u)) {
      if (!r.can_spend()) r.failed = true;
      if (r.failed) break;
      co_await a_move_known(r, s, /*with_token=*/true);
    }
    if (r.failed) break;

    // 2. Step through the frontier port; observe the far endpoint.
    if (!r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kTMove, p);
    const std::uint32_t wdeg = r.ctx.degree();
    const Port q = r.ctx.arrival_port();

    const std::vector<NodeId> cands = r.pm.candidates(wdeg, q);
    if (cands.empty()) {
      // Certainly a new node: no known node could be its far side.
      if (r.pm.size() >= cfg.n) {  // token group lied somewhere
        r.failed = true;
        break;
      }
      const NodeId w = r.pm.add_node(wdeg);
      r.pm.connect(u, p, w, q);
      r.map_pos = w;
      continue;
    }

    // 3. Identity test: park the token at the far endpoint, walk back, and
    //    probe each candidate for its presence.
    if (!r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kPark, 0);
    if (!r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kAMove, q);  // back over the same edge
    if (r.ctx.arrival_port() != p || r.ctx.degree() != r.pm.degree(u)) {
      r.failed = true;
      break;
    }
    r.map_pos = u;

    NodeId found = kNoNode;
    for (const NodeId x : cands) {
      for (const Port s : r.pm.route(r.map_pos, x)) {
        if (!r.can_spend()) r.failed = true;
        if (r.failed) break;
        co_await a_move_known(r, s, /*with_token=*/false);
      }
      if (r.failed || !r.can_spend()) break;
      if (co_await a_round(r, MapOp::kQuery, 0)) {
        found = x;
        break;
      }
    }
    if (r.failed) break;

    if (found != kNoNode) {
      r.pm.connect(u, p, found, q);
      r.map_pos = found;
      if (!r.can_spend()) break;
      (void)co_await a_round(r, MapOp::kAttach, 0);
      continue;
    }

    // 4. No candidate held the token: the far endpoint is new. Return to u,
    //    re-enter it, and pick the token back up.
    for (const Port s : r.pm.route(r.map_pos, u)) {
      if (!r.can_spend()) r.failed = true;
      if (r.failed) break;
      co_await a_move_known(r, s, /*with_token=*/false);
    }
    if (r.failed || !r.can_spend()) break;
    (void)co_await a_round(r, MapOp::kAMove, p);
    if (r.ctx.arrival_port() != q || r.ctx.degree() != wdeg) {
      r.failed = true;
      break;
    }
    if (r.pm.size() >= cfg.n) {
      r.failed = true;
      break;
    }
    const NodeId w = r.pm.add_node(wdeg);
    r.pm.connect(u, p, w, q);
    r.map_pos = w;
    (void)co_await a_round(r, MapOp::kAttach, 0);
  }

  MapFindOutcome out;
  if (!r.failed && r.pm.complete()) {
    const CanonicalCode code = rooted_code(r.pm.to_graph(), 0);
    // Publish the result so token-group members learn the map too.
    r.ctx.broadcast(kMsgInstr, {static_cast<std::int64_t>(MapOp::kDone), 0});
    r.ctx.broadcast(kMsgMapCode, code_payload(code));
    co_await r.ctx.next_subround();
    co_await r.ctx.next_subround();
    co_await r.ctx.end_round(std::nullopt);
    ++r.used;
    out.code = code;
  } else {
    out.aborted = true;
  }
  out.active_rounds = r.used;
  co_await walk_home(ctx, r.home, r.used);
  co_await idle_rest(ctx, r.used, cfg.round_budget);
  co_return out;
}

Task<MapFindOutcome> run_map_token(Ctx ctx, MapFindConfig cfg) {
  if (cfg.round_budget == 0) cfg.round_budget = default_map_window(cfg.n);
  std::uint64_t used = 0;
  std::vector<Port> home;
  std::optional<CanonicalCode> code;
  bool finished = false;

  while (core::Round(used) < cfg.round_budget) {
    // Leave exactly enough rounds to walk the reversed move log back to the
    // rally node, whatever Byzantine agents did.
    if (finished ||
        cfg.round_budget - used <= core::Round(home.size() + 3))
      break;
    co_await ctx.next_subround();  // sub 1: read instructions from sub 0
    const auto instr =
        believed_payload(ctx.inbox(), kMsgInstr, cfg.agents, cfg.agent_quorum);
    std::optional<Port> mv;
    if (instr.has_value() && instr->size() == 2) {
      const auto op = static_cast<MapOp>((*instr)[0]);
      const auto port = static_cast<std::uint64_t>((*instr)[1]);
      switch (op) {
        case MapOp::kTMove:
          if (port < ctx.degree()) mv = static_cast<Port>(port);
          break;
        case MapOp::kQuery:
          ctx.broadcast(kMsgTokenHere);
          break;
        case MapOp::kDone: {
          const auto payload = believed_payload(ctx.inbox(), kMsgMapCode,
                                                cfg.agents, cfg.agent_quorum);
          if (payload.has_value()) code = code_from_payload(*payload);
          finished = true;
          break;
        }
        case MapOp::kAMove:
        case MapOp::kPark:
        case MapOp::kAttach:
        case MapOp::kNoop:
          break;  // the token only moves on TMove
      }
    }
    co_await ctx.end_round(mv);
    ++used;
    if (mv.has_value()) home.push_back(ctx.arrival_port());
  }

  MapFindOutcome out;
  out.code = code;
  out.aborted = !code.has_value();
  out.active_rounds = used;
  co_await walk_home(ctx, home, used);
  co_await idle_rest(ctx, used, cfg.round_budget);
  co_return out;
}

namespace {

sim::Proc reference_agent(Ctx ctx, MapFindConfig cfg,
                          std::shared_ptr<MapFindOutcome> out) {
  *out = co_await run_map_agent(ctx, cfg);
}

sim::Proc reference_token(Ctx ctx, MapFindConfig cfg,
                          std::shared_ptr<MapFindOutcome> out) {
  *out = co_await run_map_token(ctx, cfg);
}

}  // namespace

ReferenceMapResult build_map_with_token(const Graph& g, NodeId start) {
  sim::Engine eng(g);
  MapFindConfig cfg;
  cfg.agents = {1};
  cfg.tokens = {2};
  cfg.n = static_cast<std::uint32_t>(g.n());
  cfg.round_budget = default_map_window(cfg.n);
  auto agent_out = std::make_shared<MapFindOutcome>();
  auto token_out = std::make_shared<MapFindOutcome>();
  eng.add_robot(1, sim::Faultiness::kHonest, start, [=](Ctx c) {
    return reference_agent(c, cfg, agent_out);
  });
  eng.add_robot(2, sim::Faultiness::kHonest, start, [=](Ctx c) {
    return reference_token(c, cfg, token_out);
  });
  eng.run(cfg.round_budget + 8);
  if (!agent_out->code.has_value())
    throw std::runtime_error("build_map_with_token: honest run failed");
  ReferenceMapResult res{graph_from_code(*agent_out->code),
                         agent_out->active_rounds};
  return res;
}

}  // namespace bdg::explore
