#include "explore/ring_map.h"

#include <stdexcept>

namespace bdg::explore {

bool is_ring(const Graph& g) {
  if (g.n() < 3 || !g.is_connected() || !g.is_simple()) return false;
  for (NodeId v = 0; v < g.n(); ++v)
    if (g.degree(v) != 2) return false;
  return true;
}

sim::Task<Graph> run_ring_find_map(sim::Ctx ctx) {
  const std::uint32_t n = ctx.n();
  if (ctx.degree() != 2)
    throw std::logic_error("run_ring_find_map: start node is not degree 2");

  // Map node i = the node reached after i steps. exit[i] is the port used
  // to leave node i; entry[i] the port node i was entered through.
  std::vector<Port> exit_port(n, kNoPort), entry_port(n, kNoPort);
  Port arrival = kNoPort;  // not yet moved
  for (std::uint32_t i = 0; i < n; ++i) {
    // Leave through the port we did not arrive by (first step: port 0).
    const Port out = arrival == kNoPort ? Port{0} : Port{1 - arrival};
    exit_port[i] = out;
    co_await ctx.end_round(out);
    arrival = ctx.arrival_port();
    entry_port[(i + 1) % n] = arrival;
    if (ctx.degree() != 2)
      throw std::logic_error("run_ring_find_map: non-ring node encountered");
  }
  // After n steps on a simple cycle we are back at the start; entry_port[0]
  // holds the arrival port of the closing edge.
  std::vector<std::vector<HalfEdge>> adj(n);
  for (std::uint32_t i = 0; i < n; ++i) adj[i].resize(2);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = (i + 1) % n;
    adj[i][exit_port[i]] = HalfEdge{j, entry_port[j]};
    adj[j][entry_port[j]] = HalfEdge{i, exit_port[i]};
  }
  co_return Graph::from_adjacency(std::move(adj));
}

}  // namespace bdg::explore
