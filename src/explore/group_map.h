#pragma once
// Quorum tallying for group protocols: count distinct claimed sender IDs
// belonging to an expected membership set that support identical payloads.
// Strong Byzantine robots can forge sender IDs, so "support" can only ever
// be trusted above a quorum chosen per the paper's group arguments.
//
// These run once per token-group member per round on the group-dispersion
// hot path, so they tally into reusable flat scratch (no per-call maps,
// sets, or key copies) and hand results back as views into the inbox.
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/engine.h"

namespace bdg::explore {

/// Count distinct claimed IDs in `members` among messages of `kind`
/// carrying exactly `payload`.
[[nodiscard]] std::uint32_t support_for(std::span<const sim::Msg> inbox,
                                        std::uint32_t kind,
                                        std::span<const std::int64_t> payload,
                                        const std::vector<sim::RobotId>& members);

/// The payload of `kind` with maximum distinct support among `members`,
/// provided that support reaches `quorum`; ties broken by smaller payload.
/// The returned span aliases a message payload in `inbox` and is valid
/// only while that inbox is (i.e. within the current sub-round).
[[nodiscard]] std::optional<std::span<const std::int64_t>> believed_payload(
    std::span<const sim::Msg> inbox, std::uint32_t kind,
    const std::vector<sim::RobotId>& members, std::uint32_t quorum);

/// Count distinct claimed member IDs among messages of `kind`, regardless
/// of payload (presence votes).
[[nodiscard]] std::uint32_t presence_support(
    std::span<const sim::Msg> inbox, std::uint32_t kind,
    const std::vector<sim::RobotId>& members);

}  // namespace bdg::explore
