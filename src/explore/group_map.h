#pragma once
// Quorum tallying for group protocols: count distinct claimed sender IDs
// belonging to an expected membership set that support identical payloads.
// Strong Byzantine robots can forge sender IDs, so "support" can only ever
// be trusted above a quorum chosen per the paper's group arguments.
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/engine.h"

namespace bdg::explore {

/// Count distinct claimed IDs in `members` among messages of `kind`
/// carrying exactly `payload`.
[[nodiscard]] std::uint32_t support_for(const std::vector<sim::Msg>& inbox,
                                        std::uint32_t kind,
                                        const std::vector<std::int64_t>& payload,
                                        const std::vector<sim::RobotId>& members);

/// The payload of `kind` with maximum distinct support among `members`,
/// provided that support reaches `quorum`; ties broken by smaller payload.
[[nodiscard]] std::optional<std::vector<std::int64_t>> believed_payload(
    const std::vector<sim::Msg>& inbox, std::uint32_t kind,
    const std::vector<sim::RobotId>& members, std::uint32_t quorum);

/// Count distinct claimed member IDs among messages of `kind`, regardless
/// of payload (presence votes).
[[nodiscard]] std::uint32_t presence_support(
    const std::vector<sim::Msg>& inbox, std::uint32_t kind,
    const std::vector<sim::RobotId>& members);

}  // namespace bdg::explore
