#include "explore/token_map.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

namespace bdg {

PartialMap::PartialMap(std::uint32_t root_degree) {
  nodes_.emplace_back(root_degree, HalfEdge{});
}

NodeId PartialMap::add_node(std::uint32_t deg) {
  nodes_.emplace_back(deg, HalfEdge{});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void PartialMap::connect(NodeId u, Port pu, NodeId v, Port pv) {
  assert(u < size() && v < size());
  assert(pu < degree(u) && pv < degree(v));
  if (explored(u, pu) || explored(v, pv))
    throw std::logic_error("PartialMap::connect: slot already explored");
  nodes_[u][pu] = HalfEdge{v, pv};
  nodes_[v][pv] = HalfEdge{u, pu};
}

std::optional<std::pair<NodeId, Port>> PartialMap::first_unexplored() const {
  for (NodeId v = 0; v < size(); ++v)
    for (Port p = 0; p < degree(v); ++p)
      if (!explored(v, p)) return std::make_pair(v, p);
  return std::nullopt;
}

std::vector<NodeId> PartialMap::candidates(std::uint32_t deg, Port q) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < size(); ++v)
    if (degree(v) == deg && q < degree(v) && !explored(v, q))
      out.push_back(v);
  return out;
}

std::vector<Port> PartialMap::route(NodeId from, NodeId to) const {
  if (from == to) return {};
  std::vector<NodeId> parent(size(), kNoNode);
  std::vector<Port> via(size(), kNoPort);
  std::queue<NodeId> q;
  parent[from] = from;
  q.push(from);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (Port p = 0; p < degree(v); ++p) {
      if (!explored(v, p)) continue;
      const NodeId u = nodes_[v][p].to;
      if (parent[u] != kNoNode) continue;
      parent[u] = v;
      via[u] = p;
      if (u == to) {
        std::vector<Port> path;
        for (NodeId w = to; w != from; w = parent[w]) path.push_back(via[w]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.push(u);
    }
  }
  throw std::logic_error("PartialMap::route: no explored route");
}

bool PartialMap::complete() const { return !first_unexplored().has_value(); }

Graph PartialMap::to_graph() const {
  if (!complete())
    throw std::logic_error("PartialMap::to_graph: map incomplete");
  return Graph::from_adjacency(nodes_);
}

}  // namespace bdg
