#include "explore/token_map.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bdg {

PartialMap::PartialMap(std::uint32_t root_degree) {
  nodes_.emplace_back().resize(root_degree);  // HalfEdge{} = unexplored
}

NodeId PartialMap::add_node(std::uint32_t deg) {
  nodes_.emplace_back().resize(deg);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void PartialMap::connect(NodeId u, Port pu, NodeId v, Port pv) {
  assert(u < size() && v < size());
  assert(pu < degree(u) && pv < degree(v));
  if (explored(u, pu) || explored(v, pv))
    throw std::logic_error("PartialMap::connect: slot already explored");
  nodes_[u][pu] = HalfEdge{v, pv};
  nodes_[v][pv] = HalfEdge{u, pu};
}

std::optional<std::pair<NodeId, Port>> PartialMap::first_unexplored() const {
  // Slots only transition unexplored -> explored and nodes are appended,
  // so the lexicographically first unexplored slot never moves backwards:
  // resume the scan at the cursor left by the previous call.
  for (NodeId v = scan_node_; v < size(); ++v) {
    for (Port p = (v == scan_node_ ? scan_port_ : 0); p < degree(v); ++p) {
      if (!explored(v, p)) {
        scan_node_ = v;
        scan_port_ = p;
        return std::make_pair(v, p);
      }
    }
  }
  scan_node_ = size();
  scan_port_ = 0;
  return std::nullopt;
}

std::vector<NodeId> PartialMap::candidates(std::uint32_t deg, Port q) const {
  std::vector<NodeId> out;
  candidates_into(deg, q, out);
  return out;
}

void PartialMap::candidates_into(std::uint32_t deg, Port q,
                                 std::vector<NodeId>& out) const {
  out.clear();
  for (NodeId v = 0; v < size(); ++v)
    if (degree(v) == deg && q < degree(v) && !explored(v, q))
      out.push_back(v);
}

std::vector<Port> PartialMap::route(NodeId from, NodeId to) const {
  std::vector<Port> out;
  route_into(from, to, out);
  return out;
}

void PartialMap::route_into(NodeId from, NodeId to,
                            std::vector<Port>& out) const {
  out.clear();
  if (from == to) return;
  bfs_parent_.assign(size(), kNoNode);
  bfs_via_.assign(size(), kNoPort);
  bfs_queue_.clear();
  bfs_parent_[from] = from;
  bfs_queue_.push_back(from);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const NodeId v = bfs_queue_[head];
    for (Port p = 0; p < degree(v); ++p) {
      if (!explored(v, p)) continue;
      const NodeId u = nodes_[v][p].to;
      if (bfs_parent_[u] != kNoNode) continue;
      bfs_parent_[u] = v;
      bfs_via_[u] = p;
      if (u == to) {
        for (NodeId w = to; w != from; w = bfs_parent_[w])
          out.push_back(bfs_via_[w]);
        std::reverse(out.begin(), out.end());
        return;
      }
      bfs_queue_.push_back(u);
    }
  }
  throw std::logic_error("PartialMap::route: no explored route");
}

bool PartialMap::complete() const { return !first_unexplored().has_value(); }

Graph PartialMap::to_graph() const {
  if (!complete())
    throw std::logic_error("PartialMap::to_graph: map incomplete");
  std::vector<std::vector<HalfEdge>> adj(nodes_.size());
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    adj[v].assign(nodes_[v].begin(), nodes_[v].end());
  return Graph::from_adjacency(std::move(adj));
}

}  // namespace bdg
