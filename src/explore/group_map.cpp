#include "explore/group_map.h"

#include <algorithm>

#include "util/smallvec.h"

namespace bdg::explore {

namespace {

bool is_member(sim::RobotId id, const std::vector<sim::RobotId>& members) {
  return std::binary_search(members.begin(), members.end(), id);
}

/// Distinct physical sources supporting one payload. Voter sets are small
/// (bounded by co-located robots), so a linear-dedup inline vector beats
/// any tree/hash per call.
struct VoteTally {
  std::span<const std::int64_t> payload;
  std::uint64_t hash = 0;       ///< PayloadRef::content_hash of `payload`
  std::uint32_t first_msg = 0;  ///< inbox index that opened this tally
  util::SmallVec<std::uint32_t, 16> voters;

  void add_voter(std::uint32_t source) {
    for (const std::uint32_t v : voters)
      if (v == source) return;
    voters.push_back(source);
  }
};

bool same_payload(std::span<const std::int64_t> a,
                  std::span<const std::int64_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool lex_less(std::span<const std::int64_t> a,
              std::span<const std::int64_t> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

/// Per-thread tally scratch, reused across calls. Entries are recycled by
/// a live count rather than destroyed, so each slot's voter buffer keeps
/// its capacity and the steady state performs no allocation. Engines are
/// thread-confined (sweeps parallelize across engines), so thread_local
/// scratch is race-free by construction.
struct TallyScratch {
  std::vector<VoteTally> slots;
  std::size_t live = 0;

  void reset() { live = 0; }

  /// `hash` pre-filters the payload compare: adversarial inboxes carry
  /// many DISTINCT long payloads (forged map codes), and without the
  /// fingerprint every message deep-compared against every live tally.
  VoteTally& tally_for(std::span<const std::int64_t> payload,
                       std::uint64_t hash, std::uint32_t msg_idx) {
    for (std::size_t i = 0; i < live; ++i)
      if (slots[i].hash == hash && same_payload(slots[i].payload, payload))
        return slots[i];
    if (live == slots.size()) slots.emplace_back();
    VoteTally& t = slots[live++];
    t.payload = payload;
    t.hash = hash;
    t.first_msg = msg_idx;
    t.voters.clear();
    return t;
  }
};

thread_local TallyScratch g_tallies;
thread_local util::SmallVec<std::uint32_t, 16> g_voters;

/// Memo for one support query. All members of a co-located group run the
/// SAME vote over the SAME delivered inbox each sub-round, so the 2nd..kth
/// caller can reuse the 1st caller's tally. The key is the inbox IDENTITY
/// (address + length) made sound by sim::delivery_epoch(): the engine
/// opens a new epoch whenever delivered inboxes may change (each delivery,
/// engine construction/destruction), so within one epoch a pointer match
/// guarantees a content match — the hit check costs O(members), never a
/// payload scan. Query parameters are compared by value; `members` by
/// contents, since each robot carries its own config copy of the same
/// group roster.
struct QueryCache {
  struct Entry {
    std::uint64_t epoch = 0;
    const void* box = nullptr;
    std::size_t box_len = 0;
    std::uint64_t kind_quorum = ~std::uint64_t{0};
    std::vector<sim::RobotId> members;  // snapshot; keeps capacity
    std::int64_t result = 0;
  };
  // A few entries, replaced round-robin: one round interleaves queries for
  // several kinds on the same inbox (the token asks for instructions AND
  // map codes), so a single slot would thrash to a 0% hit rate.
  static constexpr std::size_t kEntries = 4;
  Entry entries[kEntries];
  std::size_t next = 0;
  std::int64_t result = 0;  ///< result of the last successful lookup()

  bool lookup(std::span<const sim::Msg> inbox, std::uint32_t kind,
              const std::vector<sim::RobotId>& mem, std::uint64_t extra) {
    const std::uint64_t epoch = sim::delivery_epoch();
    const std::uint64_t kq = (static_cast<std::uint64_t>(kind) << 32) | extra;
    for (Entry& e : entries) {
      if (e.epoch == epoch && e.box == inbox.data() &&
          e.box_len == inbox.size() && e.kind_quorum == kq &&
          e.members == mem) {
        result = e.result;
        return true;
      }
    }
    return false;
  }

  void store(std::span<const sim::Msg> inbox, std::uint32_t kind,
             const std::vector<sim::RobotId>& mem, std::uint64_t extra,
             std::int64_t r) {
    Entry& e = entries[next];
    next = (next + 1) % kEntries;
    e.epoch = sim::delivery_epoch();
    e.box = inbox.data();
    e.box_len = inbox.size();
    e.kind_quorum = (static_cast<std::uint64_t>(kind) << 32) | extra;
    e.members.assign(mem.begin(), mem.end());
    e.result = r;
  }
};

thread_local QueryCache g_believed_cache, g_presence_cache;

}  // namespace

std::uint32_t support_for(std::span<const sim::Msg> inbox, std::uint32_t kind,
                          std::span<const std::int64_t> payload,
                          const std::vector<sim::RobotId>& members) {
  // One vote per PHYSICAL sender (Msg::source): a strong Byzantine robot
  // can forge the claimed ID but still presents one memory ([24]'s
  // exposed-memory model; see Msg::source).
  g_voters.clear();
  for (const sim::Msg& m : inbox) {
    if (m.kind != kind || !same_payload(m.data.view(), payload)) continue;
    if (!is_member(m.claimed, members)) continue;
    if (std::find(g_voters.begin(), g_voters.end(), m.source) ==
        g_voters.end())
      g_voters.push_back(m.source);
  }
  return static_cast<std::uint32_t>(g_voters.size());
}

std::optional<std::span<const std::int64_t>> believed_payload(
    std::span<const sim::Msg> inbox, std::uint32_t kind,
    const std::vector<sim::RobotId>& members, std::uint32_t quorum) {
  // A robot that supports several conflicting payloads contributes one vote
  // to each; that cannot push any forged payload beyond the liar count,
  // which is what the quorum guards against.
  if (g_believed_cache.lookup(inbox, kind, members, quorum)) {
    if (g_believed_cache.result < 0) return std::nullopt;
    // Re-derive the span from the CURRENT inbox (never a stored pointer):
    // fingerprint equality guarantees this message carries the winning
    // payload, and the returned view aliases a live delivered block.
    return inbox[static_cast<std::size_t>(g_believed_cache.result)]
        .data.view();
  }
  g_tallies.reset();
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    const sim::Msg& m = inbox[i];
    if (m.kind != kind) continue;
    if (!is_member(m.claimed, members)) continue;
    g_tallies
        .tally_for(m.data.view(), m.data.content_hash(),
                   static_cast<std::uint32_t>(i))
        .add_voter(m.source);
  }
  // Max support; ties go to the lexicographically smaller payload (the
  // order the old ascending std::map produced).
  const VoteTally* best = nullptr;
  for (std::size_t i = 0; i < g_tallies.live; ++i) {
    const VoteTally& t = g_tallies.slots[i];
    if (best == nullptr || t.voters.size() > best->voters.size() ||
        (t.voters.size() == best->voters.size() &&
         lex_less(t.payload, best->payload)))
      best = &t;
  }
  if (best != nullptr && best->voters.size() >= quorum) {
    g_believed_cache.store(inbox, kind, members, quorum, best->first_msg);
    return best->payload;
  }
  g_believed_cache.store(inbox, kind, members, quorum, -1);
  return std::nullopt;
}

std::uint32_t presence_support(std::span<const sim::Msg> inbox,
                               std::uint32_t kind,
                               const std::vector<sim::RobotId>& members) {
  if (g_presence_cache.lookup(inbox, kind, members, 0))
    return static_cast<std::uint32_t>(g_presence_cache.result);
  g_voters.clear();
  for (const sim::Msg& m : inbox) {
    if (m.kind != kind || !is_member(m.claimed, members)) continue;
    if (std::find(g_voters.begin(), g_voters.end(), m.source) ==
        g_voters.end())
      g_voters.push_back(m.source);
  }
  g_presence_cache.store(inbox, kind, members, 0,
                         static_cast<std::int64_t>(g_voters.size()));
  return static_cast<std::uint32_t>(g_voters.size());
}

}  // namespace bdg::explore
