#include "explore/group_map.h"

#include <algorithm>
#include <map>
#include <set>

namespace bdg::explore {

namespace {
bool is_member(sim::RobotId id, const std::vector<sim::RobotId>& members) {
  return std::binary_search(members.begin(), members.end(), id);
}
}  // namespace

std::uint32_t support_for(const std::vector<sim::Msg>& inbox,
                          std::uint32_t kind,
                          const std::vector<std::int64_t>& payload,
                          const std::vector<sim::RobotId>& members) {
  // One vote per PHYSICAL sender (Msg::source): a strong Byzantine robot
  // can forge the claimed ID but still presents one memory ([24]'s
  // exposed-memory model; see Msg::source).
  std::set<std::uint32_t> voters;
  for (const sim::Msg& m : inbox) {
    if (m.kind != kind || m.data != payload) continue;
    if (!is_member(m.claimed, members)) continue;
    voters.insert(m.source);
  }
  return static_cast<std::uint32_t>(voters.size());
}

std::optional<std::vector<std::int64_t>> believed_payload(
    const std::vector<sim::Msg>& inbox, std::uint32_t kind,
    const std::vector<sim::RobotId>& members, std::uint32_t quorum) {
  // A robot that supports several conflicting payloads contributes one vote
  // to each; that cannot push any forged payload beyond the liar count,
  // which is what the quorum guards against.
  std::map<std::vector<std::int64_t>, std::set<std::uint32_t>> votes;
  for (const sim::Msg& m : inbox) {
    if (m.kind != kind) continue;
    if (!is_member(m.claimed, members)) continue;
    votes[m.data].insert(m.source);
  }
  const std::vector<std::int64_t>* best = nullptr;
  std::size_t best_count = 0;
  for (const auto& [payload, voters] : votes) {
    if (voters.size() > best_count) {  // map order => ties keep smaller payload
      best_count = voters.size();
      best = &payload;
    }
  }
  if (best != nullptr && best_count >= quorum) return *best;
  return std::nullopt;
}

std::uint32_t presence_support(const std::vector<sim::Msg>& inbox,
                               std::uint32_t kind,
                               const std::vector<sim::RobotId>& members) {
  std::set<std::uint32_t> voters;
  for (const sim::Msg& m : inbox)
    if (m.kind == kind && is_member(m.claimed, members))
      voters.insert(m.source);
  return static_cast<std::uint32_t>(voters.size());
}

}  // namespace bdg::explore
