#pragma once
// Partial maps built by the agent-with-movable-token exploration protocol
// (Dieudonne-Pelc-Peleg [24], as used by the paper's Theorems 2-7).
//
// The agent discovers nodes incrementally. A node of a partial map has a
// known degree (observed on arrival) and a slot per port, initially
// unexplored. The identity question "is the node behind this frontier port
// new, or one I already know?" is settled physically: the agent parks the
// token there, walks back through mapped territory, and probes every
// candidate (same degree, compatible unexplored port) for the token.
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "util/smallvec.h"

namespace bdg {

/// Mutable map under construction. Node 0 is the start (rally) node.
class PartialMap {
 public:
  /// Begin a map whose root has the given degree.
  explicit PartialMap(std::uint32_t root_degree);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(nodes_[v].size());
  }
  [[nodiscard]] bool explored(NodeId v, Port p) const {
    return nodes_[v][p].to != kNoNode;
  }
  [[nodiscard]] const HalfEdge& hop(NodeId v, Port p) const {
    return nodes_[v][p];
  }

  /// Add a newly discovered node of the given degree; returns its id.
  NodeId add_node(std::uint32_t deg);

  /// Record the verified edge (u, pu) <-> (v, pv). Both slots must be
  /// unexplored (each physical edge is resolved exactly once).
  void connect(NodeId u, Port pu, NodeId v, Port pv);

  /// First unexplored (node, port) in (node, port) lexicographic order,
  /// or nullopt when the map is complete. Amortized O(1) over a build:
  /// slots only ever transition unexplored -> explored, so the scan
  /// resumes from a monotone cursor instead of rescanning from (0, 0).
  [[nodiscard]] std::optional<std::pair<NodeId, Port>> first_unexplored() const;

  /// Nodes that could be the one just reached through a frontier edge
  /// arriving at port q with observed degree deg: same degree, port q
  /// unexplored. Ordered by node id (deterministic probe order).
  [[nodiscard]] std::vector<NodeId> candidates(std::uint32_t deg,
                                               Port q) const;
  /// Allocation-free variant for per-round hot paths: fills `out`
  /// (cleared first), reusing its capacity.
  void candidates_into(std::uint32_t deg, Port q,
                       std::vector<NodeId>& out) const;

  /// Shortest route between known nodes using explored edges only, as a
  /// port sequence. Requires such a route to exist (explored subgraph is
  /// connected by construction).
  [[nodiscard]] std::vector<Port> route(NodeId from, NodeId to) const;
  /// Allocation-free variant: fills `out` (cleared first) and reuses the
  /// map's internal BFS scratch, so repeated routing inside one window
  /// stops allocating. Not reentrant (one route computation at a time).
  void route_into(NodeId from, NodeId to, std::vector<Port>& out) const;

  /// Finalize into a Graph. Requires the map to be complete.
  [[nodiscard]] Graph to_graph() const;

  [[nodiscard]] bool complete() const;

 private:
  /// Adjacency rows are inline-small: sweep families are sparse (degrees
  /// mostly <= 4), so a row rarely costs a heap block of its own.
  std::vector<util::SmallVec<HalfEdge, 4>> nodes_;
  /// Monotone frontier cursor for first_unexplored (see above).
  mutable NodeId scan_node_ = 0;
  mutable Port scan_port_ = 0;
  /// BFS scratch reused by route_into (parent node, arrival-via port, and
  /// the work queue), sized lazily to the current node count.
  mutable std::vector<NodeId> bfs_parent_;
  mutable std::vector<Port> bfs_via_;
  mutable std::vector<NodeId> bfs_queue_;
};

}  // namespace bdg
