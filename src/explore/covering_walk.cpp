#include "explore/covering_walk.h"

#include <stdexcept>

namespace bdg {
namespace {

void dfs(const Graph& g, NodeId v, std::vector<bool>& seen,
         std::vector<TourStep>& out) {
  seen[v] = true;
  for (Port p = 0; p < g.degree(v); ++p) {
    const HalfEdge he = g.hop(v, p);
    if (seen[he.to]) continue;
    out.push_back(TourStep{p, he.to});
    dfs(g, he.to, seen, out);
    out.push_back(TourStep{he.reverse, v});
  }
}

}  // namespace

std::vector<TourStep> dfs_tour(const Graph& g, NodeId root) {
  if (root >= g.n()) throw std::invalid_argument("dfs_tour: bad root");
  std::vector<bool> seen(g.n(), false);
  std::vector<TourStep> out;
  out.reserve(2 * g.n());
  dfs(g, root, seen, out);
  for (bool s : seen)
    if (!s) throw std::invalid_argument("dfs_tour: graph not connected");
  return out;
}

std::vector<Port> covering_walk_ports(const Graph& g, NodeId start) {
  std::vector<Port> ports;
  for (const TourStep& s : dfs_tour(g, start)) ports.push_back(s.port);
  return ports;
}

}  // namespace bdg
