#pragma once
// Deterministic, seedable pseudo-random number generation for the whole
// library. All randomness (graph generation, adversary choices, placements)
// flows through bdg::Rng so that every experiment is reproducible from a
// single 64-bit seed.
#include <cstdint>
#include <vector>

namespace bdg {

/// xoshiro256** generator, seeded via splitmix64. Deterministic across
/// platforms (unlike std::mt19937 distributions, whose mapping is
/// implementation-defined for std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). Requires bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability num/den. Requires den > 0.
  [[nodiscard]] bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-robot adversary state).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace bdg
