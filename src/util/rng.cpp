#include "util/rng.h"

namespace bdg {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (splitmix makes it astronomically unlikely,
  // but the generator would be stuck forever).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection for unbiased bounded values.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) noexcept {
  return below(den) < num;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() noexcept { return Rng(next()); }

}  // namespace bdg
