#pragma once
// Open-addressing hash map/set: one contiguous slot array, power-of-2
// capacity, linear probing, tombstones with reuse. Generalizes the
// quotient-refinement palette (graph/quotient.cpp), which proved the
// pattern on this codebase's hottest loop: node-based std::map /
// std::unordered_map cost one allocation and several cache misses per
// operation, while a flat table costs zero allocations at steady state and
// one predictable probe sequence.
//
// Determinism contract: iteration visits slots in array order, which is a
// pure function of the insertion/erasure history and the fixed hash
// constants below — never of pointer values or a per-process seed. Callers
// that need a canonical order (tie-breaks, report emission) must still sort
// or scan keys explicitly; tests pin that two identical histories iterate
// identically.
//
// Growth doubles the slot array and re-inserts live entries (dropping
// tombstones). Erase writes a tombstone so later probes keep walking;
// insert reuses the first tombstone seen on its probe path, so
// erase/insert churn at fixed size does not grow the table.
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bdg::util {

/// splitmix64 finalizer: full-avalanche mix for integral keys. Fixed
/// constants — table order must be reproducible across runs and platforms.
[[nodiscard]] inline std::uint64_t hash_u64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a word sequence, finished with the avalanche above (FNV's
/// low bits are weak alone; a power-of-2 table indexes with them).
template <class It>
[[nodiscard]] std::uint64_t hash_words(It first, It last) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; first != last; ++first) {
    h ^= static_cast<std::uint64_t>(*first);
    h *= 0x100000001b3ULL;
  }
  return hash_u64(h);
}

struct FlatHash {
  template <std::integral I>
  [[nodiscard]] std::uint64_t operator()(I k) const noexcept {
    return hash_u64(static_cast<std::uint64_t>(k));
  }
  template <class Seq>
  [[nodiscard]] std::uint64_t operator()(const Seq& s) const noexcept
    requires requires { s.begin(); s.end(); }
  {
    return hash_words(s.begin(), s.end());
  }
};

/// Open-addressing map. K must be equality-comparable; V default- and
/// move-constructible. Max load factor 7/8 before doubling.
template <class K, class V, class Hash = FlatHash>
class FlatMap {
  enum class State : std::uint8_t { kEmpty, kFull, kTomb };

  struct Slot {
    K key;
    V val;
  };

 public:
  using key_type = K;
  using mapped_type = V;

  FlatMap() = default;
  explicit FlatMap(std::size_t expected) { reserve(expected); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return states_.size(); }

  /// Drop all entries but keep the slot array: the hot-loop reset.
  void clear() noexcept {
    std::fill(states_.begin(), states_.end(), State::kEmpty);
    size_ = 0;
    used_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t want = 8;
    while (want * 7 / 8 < n) want *= 2;
    if (want > states_.size()) rehash(want);
  }

  [[nodiscard]] V* find(const K& key) noexcept {
    if (states_.empty()) return nullptr;
    const std::size_t mask = states_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (true) {
      if (states_[i] == State::kEmpty) return nullptr;
      if (states_[i] == State::kFull && slots_[i].key == key)
        return &slots_[i].val;
      i = (i + 1) & mask;
    }
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    return const_cast<FlatMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != nullptr;
  }

  /// std::map::operator[] semantics: default-construct on first access.
  V& operator[](const K& key) { return try_emplace(key).first; }
  V& operator[](K&& key) { return try_emplace(std::move(key)).first; }

  /// Returns {value-ref, inserted}. The key is moved in only on insert.
  /// Materialized as K up front so probing hashes and compares the SAME
  /// type the table stores (an int literal into a FlatSet<uint64_t> must
  /// not probe with mixed-signedness comparisons).
  template <class KK>
  std::pair<V&, bool> try_emplace(KK&& key_in) {
    K key(std::forward<KK>(key_in));
    grow_if_needed();
    const std::size_t mask = states_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    std::size_t tomb = states_.size();  // first tombstone on the probe path
    while (true) {
      if (states_[i] == State::kEmpty) {
        const std::size_t at = tomb != states_.size() ? tomb : i;
        if (at == i) ++used_;  // tombstone reuse doesn't consume a new slot
        states_[at] = State::kFull;
        slots_[at].key = std::move(key);
        slots_[at].val = V{};
        ++size_;
        return {slots_[at].val, true};
      }
      if (states_[i] == State::kTomb) {
        if (tomb == states_.size()) tomb = i;
      } else if (slots_[i].key == key) {
        return {slots_[i].val, false};
      }
      i = (i + 1) & mask;
    }
  }

  template <class KK>
  std::pair<V&, bool> insert_or_assign(KK&& key, V val) {
    auto [ref, inserted] = try_emplace(std::forward<KK>(key));
    ref = std::move(val);
    return {ref, inserted};
  }

  bool erase(const K& key) noexcept {
    if (states_.empty()) return false;
    const std::size_t mask = states_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (true) {
      if (states_[i] == State::kEmpty) return false;
      if (states_[i] == State::kFull && slots_[i].key == key) {
        states_[i] = State::kTomb;
        --size_;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  /// Visit entries in slot order (deterministic for a fixed history).
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < states_.size(); ++i)
      if (states_[i] == State::kFull) f(slots_[i].key, slots_[i].val);
  }
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < states_.size(); ++i)
      if (states_[i] == State::kFull) f(slots_[i].key, slots_[i].val);
  }

 private:
  void grow_if_needed() {
    if (states_.empty()) {
      rehash(8);
      return;
    }
    // Count tombstones (used_) against the load factor too: a table churned
    // by erase/insert rebuilds once probe chains get tombstone-heavy. Only
    // double when LIVE entries crowd the table; a tombstone-heavy rebuild
    // keeps its capacity, so fixed-size churn never grows the array.
    if ((used_ + 1) * 8 <= states_.size() * 7) return;
    const bool crowded = (size_ + 1) * 8 > states_.size() * 7;
    rehash(crowded ? states_.size() * 2 : states_.size());
  }

  void rehash(std::size_t ncap) {
    std::vector<State> ostates = std::move(states_);
    std::vector<Slot> oslots = std::move(slots_);
    states_.assign(ncap, State::kEmpty);
    slots_.clear();
    slots_.resize(ncap);
    size_ = 0;
    used_ = 0;
    const std::size_t mask = ncap - 1;
    for (std::size_t i = 0; i < ostates.size(); ++i) {
      if (ostates[i] != State::kFull) continue;
      std::size_t j = Hash{}(oslots[i].key) & mask;
      while (states_[j] == State::kFull) j = (j + 1) & mask;
      states_[j] = State::kFull;
      slots_[j].key = std::move(oslots[i].key);
      slots_[j].val = std::move(oslots[i].val);
      ++size_;
      ++used_;
    }
  }

  std::vector<State> states_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;  ///< live entries
  std::size_t used_ = 0;  ///< live entries + tombstones (load-factor input)
};

/// Open-addressing set over the same machinery.
template <class K, class Hash = FlatHash>
class FlatSet {
 public:
  using key_type = K;

  FlatSet() = default;
  explicit FlatSet(std::size_t expected) : map_(expected) {}

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  void clear() noexcept { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Returns true if the key was newly inserted.
  template <class KK>
  bool insert(KK&& key) {
    return map_.try_emplace(std::forward<KK>(key)).second;
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return map_.contains(key);
  }
  bool erase(const K& key) noexcept { return map_.erase(key); }

  template <class F>
  void for_each(F&& f) const {
    // FlatSet::for_each forwards to FlatMap::for_each without adding any
    // ordering assumption of its own — callers are the audited sites.
    // detlint: allow(unordered-iter) the primitive the rule polices
    map_.for_each([&f](const K& k, const Empty&) { f(k); });
  }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash> map_;
};

}  // namespace bdg::util
