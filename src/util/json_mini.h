#pragma once
// Minimal flat-JSON writer/scanner pair shared by the checkpoint format
// (run/report) and the sweep-service wire protocol (net/, run/service).
//
// This is deliberately not a JSON library: the scanner accepts exactly what
// the matched writers emit — one flat object per line, string values escaped
// by json_escape, no nested objects or arrays — so both the on-disk
// checkpoint records and the framed control messages round-trip without an
// external dependency. Anything else (torn tails, foreign data) must fail
// parsing, never be guessed at.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bdg::json {

/// Escape a string for emission inside a flat JSON object. Field names and
/// enum names are identifier-like, but escape anyway so free-form verifier
/// details stay valid JSON.
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Inverse of escape() for the escapes it emits (scanned lines only ever
/// contain writer-produced strings).
inline std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char e = s[++i];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 < s.size()) {
          const std::string hex = s.substr(i + 1, 4);
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          i += 4;
        }
        break;
      }
      default: out += e;
    }
  }
  return out;
}

/// Find `"key":` at top level of a flat object and return the raw value
/// token after it (string contents still escaped, numbers as text).
inline bool find_raw(const std::string& line, const char* key,
                     std::string& out) {
  std::string needle;  // built piecewise: GCC 12's -Wrestrict misfires on
  needle.reserve(std::char_traits<char>::length(key) + 3);  // "a"+b+"c"
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    // String: scan to the closing unescaped quote.
    std::size_t j = i + 1;
    while (j < line.size()) {
      if (line[j] == '\\') {
        j += 2;
        continue;
      }
      if (line[j] == '"') break;
      ++j;
    }
    if (j >= line.size()) return false;
    out = line.substr(i + 1, j - i - 1);
    return true;
  }
  std::size_t j = i;
  while (j < line.size() && line[j] != ',' && line[j] != '}') ++j;
  out = line.substr(i, j - i);
  return true;
}

inline bool find_string(const std::string& line, const char* key,
                        std::string& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  out = unescape(raw);
  return true;
}

inline bool find_u64(const std::string& line, const char* key,
                     std::uint64_t& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  char* end = nullptr;
  out = std::strtoull(raw.c_str(), &end, 10);
  return end != raw.c_str();
}

inline bool find_u32(const std::string& line, const char* key,
                     std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!find_u64(line, key, v)) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

inline bool find_bool(const std::string& line, const char* key, bool& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  if (raw == "true") {
    out = true;
    return true;
  }
  if (raw == "false") {
    out = false;
    return true;
  }
  return false;
}

inline bool find_double(const std::string& line, const char* key,
                        double& out) {
  std::string raw;
  if (!find_raw(line, key, raw)) return false;
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str();
}

}  // namespace bdg::json
