#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bdg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

}  // namespace bdg
