#pragma once
// Minimal fixed-width table printer used by the benchmark harnesses to
// emit the paper-style result rows (Table 1 reproductions, scaling series).
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/round.h"  // header-only; 128-bit round columns in benches

namespace bdg {

/// Collects rows of string cells and prints them with aligned columns.
/// Intentionally tiny: benches print to stdout, EXPERIMENTS.md copies rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with a separator line under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Helpers for cell formatting.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string num(core::Round v) { return v.to_string(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bdg
