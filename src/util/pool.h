#pragma once
// Refcounted pooled payload buffers. A broadcast payload is built once in a
// PayloadBlock; every message holding it (the sender re-broadcasting across
// rounds, observers, copies made by tests) shares one block through a
// PayloadRef handle. The owning pool keeps a bounded free list of unique
// blocks so steady-state payload construction allocates nothing.
//
// Lifetime rule that keeps handles safe BEYOND the pool: a block never
// points back at its pool. Dropping the last reference plain-deletes the
// block, so a PayloadRef copied out of an engine (tests stash Msgs and
// compare them after the engine is gone) stays valid with no dangling pool
// pointer. Recycling is therefore explicit and opportunistic: the engine
// hands a dying unique reference to PayloadPool::recycle(), which reclaims
// the block for the free list; anything it never sees is simply deleted.
//
// Refcounts are NOT atomic: an engine and everything it delivers to are
// confined to one thread (sweeps parallelize across engines, never within
// one); TSan runs the conformance tiers against exactly this claim.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/smallvec.h"

namespace bdg::util {

/// Inline-small payload words: protocol payloads are a handful of int64s
/// (codes, node ids, window indices), so most blocks never touch the heap
/// beyond the block itself.
inline constexpr std::size_t kPayloadInlineWords = 6;

struct PayloadBlock {
  std::uint32_t refs = 0;
  /// Lazy content fingerprint (0 = not yet computed; computed values are
  /// forced nonzero). Shared blocks make this pay: a beacon re-broadcast
  /// for R rounds to d recipients is hashed once, not R*d times. Only ever
  /// an equality PRE-filter — equal hashes still deep-compare.
  std::uint64_t hash = 0;
  SmallVec<std::int64_t, kPayloadInlineWords> data;
};

/// Shared immutable view of one PayloadBlock. Cheap to copy (one pointer,
/// one refcount bump); compares by CONTENTS, like the std::vector payload
/// it replaces, so protocol code and tests keep their equality semantics.
class PayloadRef {
 public:
  PayloadRef() = default;
  explicit PayloadRef(PayloadBlock* b) noexcept : b_(b) {
    if (b_ != nullptr) ++b_->refs;
  }
  PayloadRef(const PayloadRef& o) noexcept : b_(o.b_) {
    if (b_ != nullptr) ++b_->refs;
  }
  PayloadRef(PayloadRef&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  PayloadRef& operator=(const PayloadRef& o) noexcept {
    if (this == &o) return *this;
    release();
    b_ = o.b_;
    if (b_ != nullptr) ++b_->refs;
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this == &o) return *this;
    release();
    b_ = o.b_;
    o.b_ = nullptr;
    return *this;
  }
  ~PayloadRef() { release(); }

  [[nodiscard]] bool valid() const noexcept { return b_ != nullptr; }
  [[nodiscard]] bool unique() const noexcept {
    return b_ != nullptr && b_->refs == 1;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return b_ != nullptr ? b_->data.size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const std::int64_t* data() const noexcept {
    return b_ != nullptr ? b_->data.data() : nullptr;
  }
  [[nodiscard]] const std::int64_t* begin() const noexcept { return data(); }
  [[nodiscard]] const std::int64_t* end() const noexcept {
    return data() + size();
  }
  [[nodiscard]] std::int64_t operator[](std::size_t i) const {
    return b_->data[i];
  }
  [[nodiscard]] std::span<const std::int64_t> view() const noexcept {
    return {data(), size()};
  }

  /// Content fingerprint, memoized in the shared block (FNV-1a over the
  /// words, never 0). Distinct hashes imply distinct contents; equal
  /// hashes mean "probably equal — deep-compare to confirm".
  [[nodiscard]] std::uint64_t content_hash() const noexcept {
    if (b_ == nullptr) return kEmptyHash;
    if (b_->hash == 0) {
      std::uint64_t h = 14695981039346656037ull;
      for (const std::int64_t w : b_->data)
        h = (h ^ static_cast<std::uint64_t>(w)) * 1099511628211ull;
      b_->hash = h | 1;  // reserve 0 for "not computed"
    }
    return b_->hash;
  }
  static constexpr std::uint64_t kEmptyHash =
      14695981039346656037ull | 1;  // FNV basis of zero words, forced odd
  operator std::span<const std::int64_t>() const noexcept { return view(); }

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    if (a.b_ == b.b_) return true;  // shared block => identical contents
    return a.view().size() == b.view().size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const PayloadRef& a,
                         std::span<const std::int64_t> s) {
    return a.size() == s.size() && std::equal(a.begin(), a.end(), s.begin());
  }
  friend bool operator==(const PayloadRef& a,
                         const std::vector<std::int64_t>& v) {
    return a == std::span<const std::int64_t>(v);
  }

 private:
  friend class PayloadPool;
  void release() noexcept {
    if (b_ != nullptr && --b_->refs == 0) delete b_;
    b_ = nullptr;
  }
  PayloadBlock* b_ = nullptr;
};

/// Bounded free list of payload blocks. make() reuses a reclaimed block
/// when one is available; recycle() opportunistically reclaims a uniquely
/// held block from a dying reference. Blocks still referenced elsewhere
/// (or arriving after the list is full) fall back to plain delete via the
/// PayloadRef release path — never a leak, never a dangling pool pointer.
class PayloadPool {
 public:
  explicit PayloadPool(std::size_t cap = 1024) : cap_(cap) {}
  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;
  ~PayloadPool() {
    for (PayloadBlock* b : free_) delete b;
  }

  [[nodiscard]] std::size_t free_count() const noexcept {
    return free_.size();
  }

  [[nodiscard]] PayloadRef make(std::span<const std::int64_t> words) {
    PayloadBlock* b;
    if (!free_.empty()) {
      b = free_.back();
      free_.pop_back();
    } else {
      b = new PayloadBlock;
    }
    b->hash = 0;  // contents change; the fingerprint re-memoizes lazily
    b->data.assign(words.data(), words.data() + words.size());
    return PayloadRef{b};
  }

  /// Reclaim `r`'s block if this is the last reference; otherwise just
  /// drop the reference. Either way `r` is empty afterwards.
  void recycle(PayloadRef&& r) noexcept {
    if (r.b_ != nullptr && r.b_->refs == 1 && free_.size() < cap_) {
      r.b_->refs = 0;
      free_.push_back(r.b_);
      r.b_ = nullptr;
      return;
    }
    r.release();
  }

 private:
  std::vector<PayloadBlock*> free_;
  std::size_t cap_;
};

}  // namespace bdg::util
