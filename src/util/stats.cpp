#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace bdg {

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  PowerFit fit;
  std::vector<double> lx, ly;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > 0 && y[i] > 0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  if (lx.size() < 2) return fit;
  const double m = static_cast<double>(lx.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    sx += lx[i];
    sy += ly[i];
    sxx += lx[i] * lx[i];
    sxy += lx[i] * ly[i];
  }
  const double denom = m * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.exponent = (m * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / m;
  fit.constant = std::exp(intercept);
  // R^2 in log space.
  const double ybar = sy / m;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    const double pred = intercept + fit.exponent * lx[i];
    ss_res += (ly[i] - pred) * (ly[i] - pred);
    ss_tot += (ly[i] - ybar) * (ly[i] - ybar);
  }
  fit.r2 = ss_tot == 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

Summary summarize(const std::vector<double>& v) {
  Summary s;
  if (v.empty()) return s;
  s.count = v.size();
  s.min = *std::min_element(v.begin(), v.end());
  s.max = *std::max_element(v.begin(), v.end());
  double sum = 0;
  for (double d : v) sum += d;
  s.mean = sum / static_cast<double>(v.size());
  double var = 0;
  for (double d : v) var += (d - s.mean) * (d - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(v.size()));
  return s;
}

}  // namespace bdg
