#pragma once
// Inline-small vector: the first N elements live inside the object, larger
// contents spill to the heap. The per-round hot paths (engine inboxes,
// message payloads, partial-map adjacency, vote scratch) are overwhelmingly
// tiny — a node's inbox holds a handful of messages, a payload a couple of
// words — so keeping them inline removes the allocator from the round loop
// entirely while `clear()` retains spill capacity for the rare big case.
//
// Deliberately a subset of std::vector: contiguous storage, push/emplace,
// resize/reserve/assign, erase-by-iterator, swap. Growth never shrinks; use
// shrink_to_inline() to drop a spill buffer once contents fit inline again.
//
// Move semantics are where small-vector implementations classically go
// wrong (a moved-from inline buffer whose elements are destroyed once by
// the move and again by the destructor — the double-destruction bug class
// this header's tests in tests/util_test.cpp pin): after any move, the
// source is always a valid EMPTY vector, never a half-dead one.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bdg::util {

template <class T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec needs at least one inline slot");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(inline_ptr()), size_(0), cap_(N) {}

  SmallVec(std::initializer_list<T> init) : SmallVec() {
    reserve(init.size());
    for (const T& v : init) unchecked_push(v);
  }

  SmallVec(const SmallVec& other) : SmallVec() {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) unchecked_push(other.data_[i]);
  }

  SmallVec(SmallVec&& other) noexcept : SmallVec() { steal(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) unchecked_push(other.data_[i]);
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    destroy_all();
    release_heap();
    data_ = inline_ptr();
    size_ = 0;
    cap_ = N;
    steal(std::move(other));
    return *this;
  }

  ~SmallVec() {
    destroy_all();
    release_heap();
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool spilled() const noexcept { return data_ != inline_ptr(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  void push_back(const T& v) {
    grow_for(size_ + 1);
    unchecked_push(v);
  }
  void push_back(T&& v) {
    grow_for(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T(std::move(v));
    ++size_;
  }
  template <class... Args>
  T& emplace_back(Args&&... args) {
    grow_for(size_ + 1);
    T* slot = ::new (static_cast<void*>(data_ + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  /// Destroys the elements but keeps the current buffer (inline or spill),
  /// so refilling in a hot loop never reallocates.
  void clear() noexcept { destroy_all(); }

  void reserve(std::size_t n) { grow_for(n); }

  void resize(std::size_t n) {
    if (n < size_) {
      while (size_ > n) pop_back();
      return;
    }
    grow_for(n);
    while (size_ < n) unchecked_push(T{});
  }

  template <class It>
  void assign(It first, It last) {
    clear();
    if constexpr (std::contiguous_iterator<It> &&
                  std::is_trivially_copyable_v<T> &&
                  std::is_same_v<std::remove_const_t<
                                     std::remove_reference_t<decltype(*first)>>,
                                 T>) {
      const std::size_t n = static_cast<std::size_t>(last - first);
      grow_for(n);
      if (n != 0) std::memcpy(data_, std::to_address(first), n * sizeof(T));
      size_ = static_cast<std::uint32_t>(n);
    } else {
      for (; first != last; ++first) push_back(*first);
    }
  }

  iterator erase(iterator pos) {
    std::move(pos + 1, end(), pos);
    pop_back();
    return pos;
  }

  /// Insert before pos, shifting the tail right; returns the new element.
  iterator insert(iterator pos, const T& v) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    grow_for(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T{};
    ++size_;
    std::move_backward(data_ + at, data_ + size_ - 1, data_ + size_);
    data_[at] = v;
    return data_ + at;
  }

  /// Drop the spill buffer when the contents fit inline again (clear()
  /// deliberately keeps it; call this where retaining a one-off burst's
  /// capacity would pin memory).
  void shrink_to_inline() {
    if (!spilled() || size_ > N) return;
    T* heap = data_;
    const std::size_t n = size_;
    for (std::size_t i = 0; i < n; ++i) {
      ::new (static_cast<void*>(inline_ptr() + i)) T(std::move(heap[i]));
      heap[i].~T();
    }
    ::operator delete(static_cast<void*>(heap));
    data_ = inline_ptr();
    cap_ = N;
  }

  void swap(SmallVec& other) noexcept {
    if (this == &other) return;
    if (spilled() && other.spilled()) {
      std::swap(data_, other.data_);
      std::swap(size_, other.size_);
      std::swap(cap_, other.cap_);
      return;
    }
    // At least one side is inline: element-wise swap of the common prefix,
    // then move the longer tail across. Inline storage cannot be swapped by
    // pointer, and a spilled side's heap pointer must not be mixed with the
    // other's inline buffer, so fall back to moves through a temporary.
    SmallVec tmp(std::move(other));
    other = std::move(*this);
    *this = std::move(tmp);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  [[nodiscard]] T* inline_ptr() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  [[nodiscard]] const T* inline_ptr() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void unchecked_push(const T& v) {
    ::new (static_cast<void*>(data_ + size_)) T(v);
    ++size_;
  }

  void destroy_all() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void release_heap() noexcept {
    if (spilled()) ::operator delete(static_cast<void*>(data_));
  }

  /// Take other's contents; other ends up empty (valid, inline). A spilled
  /// buffer transfers by pointer; inline elements are moved one by one and
  /// destroyed in the source exactly once — the source's size is zeroed
  /// BEFORE its destructor can ever run again, which is the invariant the
  /// double-destruction regression test pins.
  void steal(SmallVec&& other) noexcept {
    if (other.spilled()) {
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = other.inline_ptr();
      other.size_ = 0;
      other.cap_ = N;
      return;
    }
    for (std::size_t i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      other.data_[i].~T();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void grow_for(std::size_t need) {
    if (need <= cap_) return;
    std::size_t ncap = cap_;
    while (ncap < need) ncap *= 2;
    T* nbuf = static_cast<T*>(::operator new(ncap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(nbuf + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    release_heap();
    data_ = nbuf;
    cap_ = ncap;
  }

  T* data_;
  std::uint32_t size_;
  std::uint32_t cap_;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace bdg::util
