#pragma once
// Small statistics helpers used by the benchmark harnesses: growth-exponent
// fits (log-log least squares) for comparing measured round counts against
// the paper's asymptotic bounds, and basic summaries.
#include <cstddef>
#include <vector>

namespace bdg {

struct PowerFit {
  double exponent = 0.0;  ///< slope of log(y) vs log(x)
  double constant = 0.0;  ///< exp(intercept)
  double r2 = 0.0;        ///< coefficient of determination in log space
};

/// Least-squares fit of y ≈ constant * x^exponent over matched vectors.
/// Entries with x <= 0 or y <= 0 are skipped. Requires >= 2 usable points.
[[nodiscard]] PowerFit fit_power_law(const std::vector<double>& x,
                                     const std::vector<double>& y);

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& v);

}  // namespace bdg
