#pragma once
// Ordered snapshots of hash containers — the ONLY sanctioned way to
// iterate a std::unordered_map/set or util::FlatMap/FlatSet in code that
// feeds reports, checkpoints, seeds or RNG (detlint rule unordered-iter).
//
// Hash iteration order is a pure function of insertion history at best
// (FlatMap) and implementation-defined at worst (libstdc++ vs libc++), so
// any byte that depends on it silently breaks the repo's byte-identity
// contracts. These helpers materialize the entries into a vector and sort
// by key before anything downstream can observe the order; the one
// allocation is the audit-visible price, which is why hot paths that can
// prove order-insensitivity carry an allow pragma instead.
#include <algorithm>
#include <utility>
#include <vector>

namespace bdg::util {

/// Key-sorted (key, value) snapshot of a FlatMap (or anything exposing
/// key_type/mapped_type and `for_each(f(const K&, const V&))`). Values are
/// copied.
template <class Map>
[[nodiscard]] auto sorted_items(const Map& m) {
  using Pair = std::pair<typename Map::key_type, typename Map::mapped_type>;
  std::vector<Pair> out;
  out.reserve(m.size());
  // detlint: allow(unordered-iter) this helper IS the sanctioned snapshot
  m.for_each([&out](const auto& k, const auto& v) { out.emplace_back(k, v); });
  std::sort(out.begin(), out.end(),
            [](const Pair& a, const Pair& b) { return a.first < b.first; });
  return out;
}

/// Sorted key snapshot of a FlatSet (or anything exposing
/// `for_each(f(const K&))`).
template <class Set>
[[nodiscard]] auto ordered_keys(const Set& s) {
  using Key = typename Set::key_type;
  std::vector<Key> out;
  out.reserve(s.size());
  // detlint: allow(unordered-iter) this helper IS the sanctioned snapshot
  s.for_each([&out](const Key& k) { out.push_back(k); });
  std::sort(out.begin(), out.end());
  return out;
}

/// Key-sorted snapshot of a std::unordered_map (iterator-based containers).
template <class UMap>
[[nodiscard]] auto sorted_items_std(const UMap& m) {
  using Pair = std::pair<typename UMap::key_type, typename UMap::mapped_type>;
  std::vector<Pair> out;
  out.reserve(m.size());
  // detlint: allow(unordered-iter) this helper IS the sanctioned snapshot
  for (const auto& [k, v] : m) out.emplace_back(k, v);
  std::sort(out.begin(), out.end(),
            [](const Pair& a, const Pair& b) { return a.first < b.first; });
  return out;
}

/// Sorted key snapshot of a std::unordered_set.
template <class USet>
[[nodiscard]] auto ordered_keys_std(const USet& s) {
  std::vector<typename USet::key_type> out;
  out.reserve(s.size());
  // detlint: allow(unordered-iter) this helper IS the sanctioned snapshot
  for (const auto& k : s) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bdg::util
