#pragma once
// Minimal thread-pool-free parallel sweep helper.
//
// The simulation engine is deliberately single-threaded (deterministic
// scheduling is part of the model), but experiment sweeps — independent
// (algorithm, n, f, seed) points — are embarrassingly parallel. The
// benchmark harnesses use parallel_for_index to spread points across
// hardware threads; every point stays bit-reproducible because each one
// owns its Engine and Rng.
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bdg {

/// Run body(i) for i in [0, count) across up to `threads` std::threads
/// (0 = hardware concurrency). Exceptions are captured and the first one
/// rethrown after all workers join. When `cancelled` is set, it is polled
/// before each index is claimed; once it returns true no further indices
/// start (indices already in flight complete normally — the sweep runner's
/// abort callback builds on this).
///
/// Cancellation-responsiveness contract (pinned by parallel_test):
///  * `cancelled` is polled ONLY at claim time, once per index, before the
///    body starts. A body already running is never interrupted — a cancel
///    observed while points are in flight stops the sweep before the NEXT
///    point starts, so the abort latency is bounded by the longest single
///    body, not by the remaining grid.
///  * Every spawned thread is joined before returning, on every path:
///    normal completion, cancellation, and an exception in any body (the
///    first exception is rethrown only after the join). Callers may
///    therefore touch captured state immediately after return.
///  * The poll is on the claiming thread; a `cancelled` callback must be
///    thread-safe but may be as simple as reading an std::atomic<bool>.
inline void parallel_for_index(std::size_t count,
                               const std::function<void(std::size_t)>& body,
                               unsigned threads = 0,
                               const std::function<bool()>& cancelled = {}) {
  if (count == 0) return;
  unsigned hw = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(hw, count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancelled && cancelled()) return;
      body(i);
    }
    return;
  }

  std::mutex mu;
  std::exception_ptr first_error;
  std::size_t next = 0;
  auto worker = [&] {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= count || first_error) return;
        i = next++;
      }
      if (cancelled && cancelled()) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bdg
