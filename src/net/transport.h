#pragma once
// Localhost TCP transport for the sweep service: a listener, framed
// connections, and a capped-exponential-backoff dialer with jitter.
//
// The coordinator multiplexes many connections with poll() (see
// run/service.cpp); connections therefore expose their fd and a
// non-blocking drain path in addition to the blocking-with-timeout
// recv_frame. Sends are blocking: frames are small (one checkpoint record
// or control message) and localhost socket buffers absorb them, so a
// deliberately slow peer can at worst stall its own lease, which the
// coordinator's deadline machinery already tolerates.
//
// Channel is the abstract seam the fault-injection shim (net/fault.h) wraps
// around: the service code talks to Channel only, so deterministic
// drop/delay/close faults compose transparently under it.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/framing.h"
#include "util/rng.h"

namespace bdg::net {

enum class RecvStatus {
  kFrame,    ///< a complete payload was produced
  kTimeout,  ///< no complete frame within the timeout
  kClosed,   ///< orderly EOF from the peer
  kError,    ///< transport error (treated like kClosed by the service)
};

/// A bidirectional framed byte channel. Implementations: Connection (real
/// socket) and FaultyChannel (deterministic fault shim around another
/// Channel).
class Channel {
 public:
  virtual ~Channel() = default;
  /// Send one framed payload. false on any transport failure.
  virtual bool send_frame(std::string_view payload) = 0;
  /// Wait up to timeout_ms (0 = only what is already buffered/readable,
  /// <0 = block) for one complete frame.
  virtual RecvStatus recv_frame(std::string& payload, int timeout_ms) = 0;
  /// Abrupt close (RST-ish): no goodbye, pending data discarded. Used by
  /// the fault shim's close-after-N and the kill hooks.
  virtual void shutdown() = 0;
  /// Underlying fd for poll() multiplexing; -1 once closed.
  [[nodiscard]] virtual int fd() const = 0;
};

/// One accepted or dialed TCP connection with frame reassembly.
class Connection : public Channel {
 public:
  explicit Connection(int fd);
  ~Connection() override;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool send_frame(std::string_view payload) override;
  RecvStatus recv_frame(std::string& payload, int timeout_ms) override;
  void shutdown() override;
  [[nodiscard]] int fd() const override { return fd_; }

 private:
  /// Pull whatever is readable into the reassembly buffer.
  RecvStatus drain();

  int fd_ = -1;
  FrameReader reader_;
};

/// Listening socket on 127.0.0.1 (loopback only — the service is a
/// localhost coordinator, not an exposed daemon). port 0 binds an
/// ephemeral port; port() reports the actual one.
class Listener {
 public:
  /// Throws std::runtime_error when the port cannot be bound.
  explicit Listener(std::uint16_t port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Accept one pending connection; nullptr when none is ready
  /// (non-blocking — poll on fd() to wait).
  [[nodiscard]] std::unique_ptr<Connection> accept();

  /// Stop listening: later dials are refused instead of queued in the
  /// accept backlog. The coordinator closes when serving ends, so a
  /// worker redialing a finished sweep fails fast rather than hanging
  /// on a connection nobody will ever accept.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Dial host:port once; nullptr on refusal/unreachable.
[[nodiscard]] std::unique_ptr<Connection> dial(const std::string& host,
                                               std::uint16_t port);

/// Worker-side reconnect policy: capped exponential backoff with jitter.
struct BackoffConfig {
  std::uint32_t attempts = 30;   ///< dial attempts before giving up
  std::uint32_t base_ms = 10;    ///< first retry delay
  std::uint32_t max_ms = 1000;   ///< delay cap
};

/// Dial with retries: delay before attempt i is
/// min(max_ms, base_ms << i) scaled by a uniform jitter in [0.5, 1.0)
/// drawn from `jitter` (so a fleet of workers restarting together does not
/// reconnect in lockstep). `cancelled` is polled before each attempt.
/// nullptr once attempts are exhausted or cancelled.
[[nodiscard]] std::unique_ptr<Connection> dial_with_backoff(
    const std::string& host, std::uint16_t port, const BackoffConfig& cfg,
    Rng& jitter, const std::function<bool()>& cancelled = {});

}  // namespace bdg::net
