#include "net/fault.h"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace bdg::net {

std::optional<FaultConfig> parse_fault_config(const std::string& text) {
  FaultConfig cfg;
  std::stringstream ss(text);
  std::string field;
  while (std::getline(ss, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    const std::string key = field.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : field.substr(eq + 1);
    char* end = nullptr;
    if (key == "seed") {
      cfg.seed = std::strtoull(val.c_str(), &end, 10);
    } else if (key == "drop") {
      cfg.drop = std::strtod(val.c_str(), &end);
    } else if (key == "delay") {
      cfg.delay = std::strtod(val.c_str(), &end);
    } else if (key == "delay_ms") {
      cfg.delay_ms = static_cast<std::uint32_t>(std::strtoul(val.c_str(), &end, 10));
    } else if (key == "close_after") {
      cfg.close_after_frames =
          static_cast<std::uint32_t>(std::strtoul(val.c_str(), &end, 10));
    } else if (key == "kill_after") {
      cfg.kill_after_points =
          static_cast<std::uint32_t>(std::strtoul(val.c_str(), &end, 10));
    } else if (key == "hard") {
      cfg.kill_hard = true;
      end = nullptr;  // flag field, no value to validate
      cfg.enabled = true;
      continue;
    } else {
      return std::nullopt;
    }
    if (val.empty() || end == val.c_str() ||
        static_cast<std::size_t>(end - val.c_str()) != val.size())
      return std::nullopt;
    cfg.enabled = true;
  }
  if (!cfg.enabled) return std::nullopt;  // empty spec is a usage error
  if (cfg.drop < 0 || cfg.drop > 1 || cfg.delay < 0 || cfg.delay > 1)
    return std::nullopt;
  return cfg;
}

std::string to_string(const FaultConfig& cfg) {
  if (!cfg.enabled) return "off";
  std::ostringstream os;
  os << "seed=" << cfg.seed;
  if (cfg.drop > 0) os << ",drop=" << cfg.drop;
  if (cfg.delay > 0) os << ",delay=" << cfg.delay << ",delay_ms=" << cfg.delay_ms;
  if (cfg.close_after_frames != 0) os << ",close_after=" << cfg.close_after_frames;
  if (cfg.kill_after_points != 0) os << ",kill_after=" << cfg.kill_after_points;
  if (cfg.kill_hard) os << ",hard";
  return os.str();
}

FaultInjector::FaultInjector(const FaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

FaultInjector::Action FaultInjector::next_send() {
  Action a;
  ++frames_;
  if (cfg_.close_after_frames != 0 && frames_ >= cfg_.close_after_frames) {
    a.close = true;
    return a;
  }
  // Fixed draw order per frame — drop then delay — so the schedule is a
  // pure function of (seed, frame index) regardless of which faults are
  // configured on.
  const double u_drop = rng_.uniform();
  const double u_delay = rng_.uniform();
  if (cfg_.drop > 0 && u_drop < cfg_.drop) {
    a.drop = true;
    return a;
  }
  if (cfg_.delay > 0 && u_delay < cfg_.delay) a.delay_ms = cfg_.delay_ms;
  return a;
}

FaultyChannel::FaultyChannel(std::unique_ptr<Channel> inner,
                             const FaultConfig& cfg)
    : inner_(std::move(inner)), injector_(cfg) {}

bool FaultyChannel::send_frame(std::string_view payload) {
  const FaultInjector::Action a = injector_.next_send();
  if (a.close) {
    inner_->shutdown();
    return false;
  }
  if (a.drop) return true;  // vanished in transit: sender believes it went
  if (a.delay_ms != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(a.delay_ms));
  return inner_->send_frame(payload);
}

RecvStatus FaultyChannel::recv_frame(std::string& payload, int timeout_ms) {
  return inner_->recv_frame(payload, timeout_ms);
}

void FaultyChannel::shutdown() { inner_->shutdown(); }

int FaultyChannel::fd() const { return inner_->fd(); }

std::unique_ptr<Channel> maybe_shim(std::unique_ptr<Channel> conn,
                                    const FaultConfig& cfg) {
  if (!cfg.enabled) return conn;
  return std::make_unique<FaultyChannel>(std::move(conn), cfg);
}

}  // namespace bdg::net
