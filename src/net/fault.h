#pragma once
// Deterministic fault injection for the sweep service's conformance tier.
//
// A FaultConfig describes a seeded schedule of transport faults — drop a
// frame in transit, delay it, abruptly close the connection after N frames
// — plus the worker-level kill hook (die after N executed points, either a
// hard _Exit simulating SIGKILL for the CI process smoke, or an abrupt
// connection drop for the in-process test tier). The schedule is a pure
// function of (seed, event index): two shims with the same config take the
// same actions in the same order, so fault sweeps are as reproducible as
// honest ones — the sweepd_test tier pins both the determinism and that
// the merged report stays byte-identical under faults.
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/transport.h"
#include "util/rng.h"

namespace bdg::net {

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;  ///< schedule seed (same seed = same schedule)
  double drop = 0.0;       ///< P(frame silently dropped in transit)
  double delay = 0.0;      ///< P(frame delayed by delay_ms before sending)
  std::uint32_t delay_ms = 2;
  /// Abruptly close the channel after this many send attempts (0 = never).
  std::uint32_t close_after_frames = 0;
  /// Worker hook: die after this many executed points (0 = never).
  std::uint32_t kill_after_points = 0;
  /// Worker kill mode: true = std::_Exit(137), simulating SIGKILL for the
  /// CI process smoke; false = drop the connection and stop, for the
  /// in-process test tier (threads cannot be SIGKILLed individually).
  bool kill_hard = false;
};

/// Parse "seed=7,drop=0.1,delay=0.05,delay_ms=3,close_after=20,
/// kill_after=9,hard" (any subset, comma-separated; presence of any field
/// enables the shim). nullopt on an unknown field or malformed number.
[[nodiscard]] std::optional<FaultConfig> parse_fault_config(
    const std::string& text);

[[nodiscard]] std::string to_string(const FaultConfig& cfg);

/// The seeded schedule itself, exposed for determinism tests: the fate of
/// outbound frame k is decided by draws from an Rng seeded once with
/// cfg.seed, in frame order.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg);

  struct Action {
    bool drop = false;
    bool close = false;  ///< close the channel instead of sending
    std::uint32_t delay_ms = 0;
  };

  /// Decide the fate of the next outbound frame.
  [[nodiscard]] Action next_send();

  [[nodiscard]] std::uint64_t frames_seen() const { return frames_; }

 private:
  FaultConfig cfg_;
  Rng rng_;
  std::uint64_t frames_ = 0;
};

/// Channel decorator applying the injector's schedule to outbound frames.
/// Inbound frames pass through untouched: dropping a direction's traffic is
/// expressed by shimming that sender's side, which keeps every lost frame
/// attributable to exactly one schedule.
class FaultyChannel : public Channel {
 public:
  FaultyChannel(std::unique_ptr<Channel> inner, const FaultConfig& cfg);

  bool send_frame(std::string_view payload) override;
  RecvStatus recv_frame(std::string& payload, int timeout_ms) override;
  void shutdown() override;
  [[nodiscard]] int fd() const override;

 private:
  std::unique_ptr<Channel> inner_;
  FaultInjector injector_;
};

/// Wrap `conn` in a FaultyChannel when cfg.enabled, else pass it through.
[[nodiscard]] std::unique_ptr<Channel> maybe_shim(
    std::unique_ptr<Channel> conn, const FaultConfig& cfg);

}  // namespace bdg::net
