#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace bdg::net {
namespace {

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("transport: bad IPv4 address: " + host);
  return addr;
}

}  // namespace

// --- Connection ------------------------------------------------------------

Connection::Connection(int fd) : fd_(fd) {
  const int one = 1;
  // Frames are request/response-ish and small: turn off Nagle so lease and
  // heartbeat latency is not batched behind 40ms delayed ACKs.
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Connection::~Connection() { shutdown(); }

void Connection::shutdown() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Connection::send_frame(std::string_view payload) {
  if (fd_ < 0) return false;
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus Connection::drain() {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
    if (n > 0) {
      reader_.feed(buf, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof buf)) return RecvStatus::kFrame;
      continue;  // maybe more buffered
    }
    if (n == 0) return RecvStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::kTimeout;
    return RecvStatus::kError;
  }
}

RecvStatus Connection::recv_frame(std::string& payload, int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      timeout_ms < 0 ? clock::time_point::max()
                     : clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    // Frames already reassembled win before any socket wait.
    if (auto frame = reader_.next()) {
      payload = std::move(*frame);
      return RecvStatus::kFrame;
    }
    if (fd_ < 0) return RecvStatus::kClosed;
    int wait_ms;
    if (timeout_ms < 0) {
      wait_ms = -1;
    } else {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - clock::now())
                            .count();
      if (left < 0) return RecvStatus::kTimeout;
      wait_ms = static_cast<int>(left);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (pr == 0) return RecvStatus::kTimeout;
    const RecvStatus st = drain();
    if (st == RecvStatus::kClosed || st == RecvStatus::kError) {
      // EOF may still leave complete frames in the buffer; hand those out
      // first so a peer that sends-then-closes loses nothing.
      if (auto frame = reader_.next()) {
        payload = std::move(*frame);
        return RecvStatus::kFrame;
      }
      return st;
    }
  }
}

// --- Listener --------------------------------------------------------------

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("transport: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("transport: cannot listen on 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::unique_ptr<Connection> Listener::accept() {
  if (fd_ < 0) return nullptr;
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, 0) <= 0) return nullptr;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return nullptr;
  return std::make_unique<Connection>(fd);
}

// --- dialing ---------------------------------------------------------------

std::unique_ptr<Connection> dial(const std::string& host,
                                 std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr = loopback_addr(host, port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return nullptr;
  }
  return std::make_unique<Connection>(fd);
}

std::unique_ptr<Connection> dial_with_backoff(
    const std::string& host, std::uint16_t port, const BackoffConfig& cfg,
    Rng& jitter, const std::function<bool()>& cancelled) {
  std::uint64_t delay = cfg.base_ms;
  for (std::uint32_t attempt = 0; attempt < cfg.attempts; ++attempt) {
    if (cancelled && cancelled()) return nullptr;
    if (auto conn = dial(host, port)) return conn;
    // Jittered, capped exponential backoff: [0.5, 1.0) of the nominal
    // delay so restarting fleets spread out instead of thundering.
    const double scale = 0.5 + 0.5 * jitter.uniform();
    const auto ms = static_cast<std::uint64_t>(
        static_cast<double>(std::min<std::uint64_t>(delay, cfg.max_ms)) *
        scale);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    if (delay < cfg.max_ms) delay *= 2;
  }
  return nullptr;
}

}  // namespace bdg::net
