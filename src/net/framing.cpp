#include "net/framing.h"

#include <stdexcept>

namespace bdg::net {

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("encode_frame: payload exceeds kMaxFrameBytes");
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xFF));
  out.push_back(static_cast<char>((n >> 16) & 0xFF));
  out.push_back(static_cast<char>((n >> 8) & 0xFF));
  out.push_back(static_cast<char>(n & 0xFF));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameReader::feed(const char* data, std::size_t len) {
  // Compact once the consumed prefix dominates, so long sessions do not
  // grow the buffer without bound.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(data, len);
}

std::optional<std::string> FrameReader::next() {
  if (buf_.size() - off_ < 4) return std::nullopt;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data() + off_);
  const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  if (n > kMaxFrameBytes)
    throw std::runtime_error(
        "FrameReader: frame length exceeds kMaxFrameBytes (corrupt stream "
        "or foreign protocol)");
  if (buf_.size() - off_ - 4 < n) return std::nullopt;
  std::string payload = buf_.substr(off_ + 4, n);
  off_ += 4 + n;
  return payload;
}

}  // namespace bdg::net
