#pragma once
// Length-prefixed framing for the sweep service's wire protocol.
//
// Every frame is a 4-byte big-endian payload length followed by the payload
// bytes. Payloads are single flat JSON objects (util/json_mini.h) — control
// messages carry a "type" key, and result frames are verbatim
// run/report.h checkpoint records (`{"v": 2, ...}`): the existing
// JSON-lines checkpoint format IS the wire format, so whatever survives the
// socket also survives a crash on disk, parsed by the same code.
//
// TCP delivers a byte stream, not frames; FrameReader reassembles frames
// from arbitrary read() chunk boundaries. A length prefix beyond
// kMaxFrameBytes means the peer is not speaking this protocol (or the
// stream is corrupt) — that throws instead of allocating gigabytes.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace bdg::net {

/// Upper bound on one payload. Checkpoint records are < 1 KiB; leases list
/// at most a few thousand indices. Anything past this is garbage.
constexpr std::size_t kMaxFrameBytes = 1u << 22;  // 4 MiB

/// Wrap a payload in its 4-byte big-endian length prefix.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental decoder: feed() raw socket bytes in any chunking, next()
/// pops complete payloads in order.
class FrameReader {
 public:
  /// Append raw bytes read from the transport.
  void feed(const char* data, std::size_t len);

  /// Pop the next complete frame payload; nullopt while incomplete.
  /// Throws std::runtime_error on a length prefix > kMaxFrameBytes.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes buffered but not yet returned (diagnostics/tests).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::string buf_;
  std::size_t off_ = 0;  ///< consumed prefix, compacted lazily
};

}  // namespace bdg::net
