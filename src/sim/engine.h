#pragma once
// Synchronous round/sub-round simulator for mobile robots on an anonymous
// port-labeled graph, implementing the paper's model (Section 1.1):
//
//  * each round, co-located robots exchange messages and compute, then all
//    robots move simultaneously along a chosen port (or stay);
//  * a round is divided into sub-rounds used only for communication and
//    local computation (the paper's synchronization device for
//    Dispersion-Using-Map); movement happens only at the round boundary;
//  * robots are anonymous to the *nodes* (nodes have no IDs), but robots
//    carry unique IDs attached to their messages; the engine enforces that
//    honest and WEAK Byzantine robots cannot fake the sender ID, while
//    STRONG Byzantine robots may claim any ID (Dieudonne-Pelc-Peleg [24]
//    strong/weak distinction);
//  * presence is observable only through messages: a silent robot is
//    invisible to co-located robots.
//
// Efficiency: scheduling is event-driven. Sleeping robots wait in a
// min-heap wake queue keyed by wake round, so stretches where every robot
// sleeps fast-forward in O(1) and each simulated round touches only the
// robots that actually run (a runnable list per sub-round, a movers list
// at the round boundary) — never the whole population. Message inboxes
// are inline-small vectors maintained with dirty-node lists, and payloads
// are refcounted pooled blocks shared by every recipient, so delivering
// and clearing costs O(active nodes), not O(n), per sub-round, with no
// allocator traffic. This lets benchmarks charge the paper's imported round
// bounds (gathering, Find-Map) without paying per-round simulation cost,
// while round accounting stays exact.
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "core/round.h"  // header-only, no bdg_core link dependency
#include "graph/graph.h"
#include "sim/proc.h"
#include "util/flat_hash.h"
#include "util/pool.h"
#include "util/smallvec.h"

namespace bdg::sim {

/// Thread-local delivery epoch: bumped whenever ANY engine on this thread
/// (engines are thread-confined) may have mutated or recycled delivered
/// inboxes — each sub-round delivery, plus engine construction and
/// destruction. Within one epoch, a delivered inbox's address, length and
/// contents are immutable, so (epoch, inbox pointer) keys memoized
/// inbox-derived computations exactly (explore/group_map.cpp's shared
/// vote tallies).
[[nodiscard]] std::uint64_t delivery_epoch() noexcept;

using RobotId = std::uint64_t;
/// Round counts are saturating 128-bit everywhere: the charged bounds the
/// engine fast-forwards (exponential gathering, theory-model charges)
/// exceed 64 bits long before the sweep grids' largest n.
using core::Round;

enum class Faultiness : std::uint8_t {
  kHonest,
  kWeakByzantine,
  kStrongByzantine,
};

/// Message broadcast to co-located robots; delivered in the next sub-round
/// to every robot present at the same node (including the sender).
struct Msg {
  RobotId claimed;  ///< sender ID as receivers see it (engine-enforced for
                    ///< honest/weak robots)
  /// Anonymous physical-sender tag. The paper inherits the exposed-memory
  /// communication model of [24]: a strong Byzantine robot can fake the ID
  /// written in its memory, but it still presents exactly one memory to
  /// co-located readers. Quorum counts are therefore per physical robot
  /// ("even if Byzantine robots duplicate IDs, still as a group they can
  /// not make it equal to floor(n/4)", Theorem 6). Protocols may use this
  /// tag ONLY to count distinct sources within a single inbox — never to
  /// identify or track a robot across rounds.
  std::uint32_t source = 0;
  std::uint32_t kind = 0;
  /// Shared refcounted payload: all recipients of one broadcast (and a
  /// sender re-broadcasting across rounds via broadcast_shared) hold
  /// references to ONE pooled block. Compares by contents like the
  /// std::vector it replaced; view() yields the words as a span.
  util::PayloadRef data;
};

class Engine;

/// Capability handle passed to a robot program. Valid only while its
/// coroutine is being resumed by the engine.
class Ctx {
 public:
  // --- identity & model constants -------------------------------------
  [[nodiscard]] RobotId self() const;
  [[nodiscard]] Faultiness faultiness() const;
  /// Number of graph nodes (robots know n; paper model).
  [[nodiscard]] std::uint32_t n() const;

  // --- local observation ------------------------------------------------
  /// Degree of the current node (a robot always knows the ports 0..deg-1).
  [[nodiscard]] std::uint32_t degree() const;
  /// Port of the current node through which the robot entered on its last
  /// move; kNoPort if it has not moved yet or stayed.
  [[nodiscard]] Port arrival_port() const;
  [[nodiscard]] Round round() const;
  [[nodiscard]] std::uint32_t subround() const;
  /// Messages broadcast at this node in the previous sub-round. The view
  /// is valid for the current sub-round only (delivery recycles buffers).
  [[nodiscard]] std::span<const Msg> inbox() const;

  // --- actions ------------------------------------------------------------
  /// Broadcast to co-located robots; delivered next sub-round. The sender
  /// ID is the robot's true ID (enforced). The words are copied once into
  /// a pooled block shared by every recipient.
  void broadcast(std::uint32_t kind, std::vector<std::int64_t> data = {});
  /// Span-taking variant for per-round hot paths: one copy into a pooled
  /// block, no intermediate vector. Semantically identical to broadcast()
  /// — receivers cannot tell the two apart.
  void broadcast_pooled(std::uint32_t kind, std::span<const std::int64_t> data);
  /// Build a pooled payload once; re-broadcast it any number of times with
  /// broadcast_shared at zero copies (each send is a refcount bump). The
  /// beacon loops (settled robots announcing every round) are the intended
  /// callers.
  [[nodiscard]] util::PayloadRef make_payload(
      std::span<const std::int64_t> data);
  /// Broadcast an already-built pooled payload; copy-free.
  void broadcast_shared(std::uint32_t kind, const util::PayloadRef& payload);
  /// Broadcast with a forged sender ID. Only strong Byzantine robots may
  /// call this; the engine throws std::logic_error otherwise.
  void spoof_broadcast(RobotId claimed, std::uint32_t kind,
                       std::vector<std::int64_t> data = {});
  /// Span-taking spoof for the compiled-adversary hot path: same checks
  /// and semantics as spoof_broadcast, one copy into a pooled block.
  void spoof_broadcast_pooled(RobotId claimed, std::uint32_t kind,
                              std::span<const std::int64_t> data);
  /// Spoof an already-built pooled payload; copy-free (the shared analogue
  /// of broadcast_shared, for round-invariant forged payloads).
  void spoof_broadcast_shared(RobotId claimed, std::uint32_t kind,
                              const util::PayloadRef& payload);

  // --- awaitables ----------------------------------------------------------
  /// Suspend until the next sub-round of the same round. If the current
  /// sub-round is the last, the robot stays put this round and resumes at
  /// sub-round 0 of the next round.
  [[nodiscard]] auto next_subround();
  /// Finish this round, moving through `port` at the round boundary
  /// (std::nullopt = stay). Resumes at sub-round 0 of the next round.
  [[nodiscard]] auto end_round(std::optional<Port> port);
  /// Stay put and skip `rounds` full rounds (counting the current one);
  /// resumes at sub-round 0. sleep_rounds(1) == end_round(nullopt) with no
  /// further sub-round participation this round. A saturated duration
  /// sleeps past any feasible run budget (the robot never runs again).
  [[nodiscard]] auto sleep_rounds(Round rounds);
  /// Finish this round like end_round, but park "ambient": the robot is
  /// re-run in EVERY simulated round — whatever its number — instead of
  /// holding the engine awake each round. Parked robots live outside both
  /// wake queues, so stretches where every queued robot sleeps still
  /// fast-forward in O(1); on resume ctx.round() may have jumped, and the
  /// program is responsible for replaying the skipped rounds (see
  /// ambient_round) so its RNG draws, moves and message totals stay
  /// bit-identical to the per-round execution. Compiled Byzantine
  /// strategies (core/byzantine.h) are the intended caller. Ambient
  /// robots never keep the run alive by themselves (matching the rule
  /// that Byzantine programs that never finish do not block completion).
  [[nodiscard]] auto end_round_ambient(std::optional<Port> port);

  // --- ambient replay accounting ---------------------------------------
  /// Account one fast-forwarded round on behalf of a parked ambient
  /// robot: apply an immediate hop through `port` (nullopt = stay,
  /// invalid port throws exactly like a live move) and add `messages`
  /// suppressed broadcasts to the run totals — nobody was awake to hear
  /// them, but the per-round path would still have counted them. Each
  /// call also counts toward the resume budget, so a runaway replay is
  /// caught like a livelocked coroutine. Only meaningful while the
  /// calling robot is catching up rounds strictly before ctx.round().
  void ambient_round(std::optional<Port> port, std::uint64_t messages);
  /// True while the engine is draining parked ambient robots after the
  /// run loop ended: the program must replay up to (not including)
  /// ctx.round(), then park again without acting.
  [[nodiscard]] bool draining() const;

 private:
  friend class Engine;
  Ctx(Engine* e, std::uint32_t idx) : engine_(e), idx_(idx) {}
  Engine* engine_;
  std::uint32_t idx_;
};

namespace detail {
struct WakeAwaiter;
}

/// Optional engine instrumentation: register with Engine::set_observer to
/// receive model-level events (used by the trace recorder, the CLI and
/// debugging sessions; zero cost when unset).
class Observer {
 public:
  virtual ~Observer() = default;
  /// A round is about to be simulated (fast-forwarded rounds don't fire).
  virtual void on_round(Round /*round*/) {}
  virtual void on_move(RobotId /*id*/, NodeId /*from*/, NodeId /*to*/,
                       Port /*via*/) {}
  virtual void on_message(const Msg& /*msg*/, NodeId /*at*/,
                          Round /*round*/) {}
  virtual void on_done(RobotId /*id*/, Round /*round*/) {}
};

using ProgramFactory = std::function<Proc(Ctx)>;

struct EngineConfig {
  /// Sub-rounds per round; must exceed the ranks used by protocols
  /// (Dispersion-Using-Map uses ranks up to #robots). 0 = #robots + 6.
  std::uint32_t subrounds = 0;
  /// Throw if the run exceeds this many robot resumptions (guards against
  /// livelocked protocols in tests).
  std::uint64_t max_resumes = 500'000'000ULL;
};

struct RunStats {
  Round rounds = 0;                    ///< rounds elapsed (incl. fast-forwarded)
  std::uint64_t simulated_rounds = 0;  ///< rounds actually iterated
  std::uint64_t resumes = 0;           ///< robot coroutine resumptions
  std::uint64_t moves = 0;             ///< edge traversals performed
  std::uint64_t messages = 0;          ///< broadcasts delivered
  bool all_honest_done = false;
};

/// The simulator. Add robots, then run().
class Engine {
 public:
  Engine(const Graph& g, EngineConfig cfg = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a robot. IDs must be unique and nonzero. Robots are scheduled
  /// each sub-round in increasing ID order. A robot with `start_round` > 0
  /// idles silently at its start node until that round: its program's first
  /// resume happens there (the k-robots wave scheduler stages cohorts this
  /// way). Presence is observable only through messages, so a not-yet-started
  /// robot is invisible to co-located protocols.
  void add_robot(RobotId id, Faultiness f, NodeId start,
                 ProgramFactory factory, Round start_round = 0);

  /// Run until every honest robot's program finished or `max_rounds`
  /// elapsed. Byzantine programs that never finish do not block completion.
  RunStats run(Round max_rounds);

  /// Attach an observer (nullptr detaches). Not owned; must outlive run().
  void set_observer(Observer* observer) { observer_ = observer; }

  // --- inspection (for verifiers, tests and benches) ----------------------
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] std::size_t num_robots() const;
  [[nodiscard]] RobotId robot_id(std::size_t idx) const;
  [[nodiscard]] Faultiness robot_faultiness(std::size_t idx) const;
  [[nodiscard]] NodeId robot_position(std::size_t idx) const;
  [[nodiscard]] bool robot_done(std::size_t idx) const;
  [[nodiscard]] NodeId position_of(RobotId id) const;
  [[nodiscard]] Round current_round() const { return round_; }

 private:
  friend class Ctx;
  friend struct detail::WakeAwaiter;

  enum class WakeKind : std::uint8_t { kSubround, kEndRound, kSleep, kAmbient };

  /// Engine-side per-robot state. The program coroutine is resumed only via
  /// resume_robot(); between resumptions `wake` describes when it runs next.
  /// Robots live contiguously in Engine::robots_; the vector never grows
  /// after start_programs(), so handles created then stay valid. Defined in
  /// the header so the Ctx accessors protocol coroutines hit every
  /// sub-round (inbox/degree/self) inline into their call sites.
  struct Robot {
    RobotId id = 0;
    Faultiness faultiness = Faultiness::kHonest;
    NodeId pos = kNoNode;
    Port arrival = kNoPort;
    ProgramFactory factory;
    Proc proc;
    Round start_round = 0;  ///< first round the program runs
    bool done = false;

    // Pending wake condition, written by WakeAwaiter via set_command().
    WakeKind wake = WakeKind::kSleep;
    std::optional<Port> move;  // for kEndRound
    Round wake_round = 0;      // for kSleep / kEndRound: first round in
                               // which the robot runs again
    // Innermost suspended coroutine; the engine resumes this, not the
    // root, so protocols can nest phases as Task<T> children.
    std::coroutine_handle<> leaf;
  };
  void set_command(std::uint32_t idx, WakeKind kind, std::optional<Port> port,
                   Round rounds, std::coroutine_handle<> leaf);

  /// Per-node inbox. Co-location counts are tiny on dispersive paths, so a
  /// few inline slots cover the common case; gathered-phase rally nodes
  /// spill once and keep their spill capacity for the run.
  using Inbox = util::SmallVec<Msg, 4>;

  [[nodiscard]] std::uint32_t subround_count() const;
  void start_programs();
  void run_subrounds();
  void apply_moves();
  [[nodiscard]] bool honest_all_done() const { return honest_live_ == 0; }
  void resume_robot(Robot& r);
  /// Clear an inbox, recycling unique payload blocks into the pool.
  void release_inbox(Inbox& box);
  void push_msg(std::uint32_t idx, RobotId claimed, std::uint32_t kind,
                util::PayloadRef payload, bool notify_observer);

  Graph graph_;
  EngineConfig cfg_;
  std::vector<Robot> robots_;  // contiguous, sorted by ID after start
  /// id -> index into robots_ (insertion index before start_programs,
  /// sorted index after). The single place duplicate IDs are caught.
  util::FlatMap<RobotId, std::uint32_t> index_of_;
  bool started_ = false;
  Round round_ = 0;
  std::uint32_t subround_ = 0;
  RunStats stats_;
  std::uint32_t honest_live_ = 0;  ///< honest robots not yet done

  /// Wake queue, split by horizon. Robots waking next round (end_round,
  /// sleep_rounds(1), sub-round budget exhaustion — the overwhelmingly
  /// common case) go to the next_round_ bucket: a plain vector, no heap
  /// toll per suspension. Longer sleeps go to the (wake_round, robot
  /// index) min-heap, which also drives the O(1) fast-forward over rounds
  /// where everybody sleeps. At every round boundary each live robot is in
  /// exactly one of the two; the merged wake set is sorted so robots run
  /// in index (= ID) order, preserving the deterministic schedule.
  std::vector<std::uint32_t> next_round_;
  using WakeEntry = std::pair<Round, std::uint32_t>;
  std::priority_queue<WakeEntry, std::vector<WakeEntry>,
                      std::greater<WakeEntry>>
      wake_queue_;
  /// Robots parked via end_round_ambient: merged into runnable_ at every
  /// simulated round, never consulted by the fast-forward logic. Drained
  /// (one final resume each, with draining_ set) after the run loop so
  /// their replay accounting covers rounds cut off by max_rounds or by
  /// the honest robots finishing.
  std::vector<std::uint32_t> ambient_;
  bool draining_ = false;
  /// Robots participating in the current / next sub-round, in ID order.
  std::vector<std::uint32_t> runnable_, next_runnable_;
  /// Robots that chose a port this round (sorted before applying).
  std::vector<std::uint32_t> movers_;

  // Per-node message buffers: delivered[v] = broadcasts from the previous
  // sub-round, pending[v] = broadcasts accumulated in the current one.
  // Only nodes on the dirty lists hold messages. Each node keeps its own
  // inline-small buffer (clear() retains spill capacity), so delivering
  // and clearing costs O(active nodes) with no arena shuffling.
  std::vector<Inbox> delivered_, pending_;
  std::vector<NodeId> delivered_dirty_, pending_dirty_;
  /// Pooled payload blocks (the PR 5 payload arena, generalized): cleared
  /// inboxes recycle uniquely held blocks into the pool's bounded free
  /// list, so steady-state payload construction performs no allocation.
  /// Blocks never point back at the pool, so Msgs copied out of the
  /// engine (tests, observers) outlive it safely.
  util::PayloadPool pool_;
  Observer* observer_ = nullptr;
};

namespace detail {
/// Shared awaiter for all three suspension kinds; records the robot's wish
/// in the engine and yields control back to the scheduler.
struct WakeAwaiter {
  Engine* engine;
  std::uint32_t idx;
  Engine::WakeKind kind;
  std::optional<Port> port;
  Round rounds;

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    engine->set_command(idx, kind, port, rounds, h);
  }
  void await_resume() const noexcept {}
};
}  // namespace detail

inline void Engine::set_command(std::uint32_t idx, WakeKind kind,
                                std::optional<Port> port, Round rounds,
                                std::coroutine_handle<> leaf) {
  Robot& r = robots_[idx];
  r.wake = kind;
  r.leaf = leaf;
  r.move = std::nullopt;
  switch (kind) {
    case WakeKind::kSubround:
      next_runnable_.push_back(idx);
      break;
    case WakeKind::kEndRound:
      r.move = port;
      r.wake_round = round_ + 1;
      next_round_.push_back(idx);
      if (port.has_value()) movers_.push_back(idx);
      break;
    case WakeKind::kSleep:
      r.wake_round = round_ + std::max<Round>(rounds, 1);
      if (r.wake_round == round_ + 1)
        next_round_.push_back(idx);
      else
        wake_queue_.push({r.wake_round, idx});
      break;
    case WakeKind::kAmbient:
      // Park outside both wake queues: the robot moves this round like
      // end_round, then waits to be merged into whichever round the
      // engine simulates next (possibly far ahead).
      r.move = port;
      r.wake_round = round_ + 1;
      ambient_.push_back(idx);
      if (port.has_value()) movers_.push_back(idx);
      break;
  }
}

// Hot per-sub-round observations, inline: every protocol coroutine calls
// these between suspensions, and an out-of-line hop per inbox()/degree()
// dominates their cost.
inline RobotId Ctx::self() const { return engine_->robots_[idx_].id; }
inline Faultiness Ctx::faultiness() const {
  return engine_->robots_[idx_].faultiness;
}
inline std::uint32_t Ctx::n() const {
  return static_cast<std::uint32_t>(engine_->graph_.n());
}
inline std::uint32_t Ctx::degree() const {
  return engine_->graph_.degree(engine_->robots_[idx_].pos);
}
inline Port Ctx::arrival_port() const { return engine_->robots_[idx_].arrival; }
inline Round Ctx::round() const { return engine_->round_; }
inline std::uint32_t Ctx::subround() const { return engine_->subround_; }

inline std::span<const Msg> Ctx::inbox() const {
  const Engine::Inbox& box = engine_->delivered_[engine_->robots_[idx_].pos];
  return {box.data(), box.size()};
}

inline auto Ctx::next_subround() {
  return detail::WakeAwaiter{engine_, idx_, Engine::WakeKind::kSubround,
                             std::nullopt, 0};
}

inline auto Ctx::end_round(std::optional<Port> port) {
  return detail::WakeAwaiter{engine_, idx_, Engine::WakeKind::kEndRound, port,
                             0};
}

inline auto Ctx::sleep_rounds(Round rounds) {
  return detail::WakeAwaiter{engine_, idx_, Engine::WakeKind::kSleep,
                             std::nullopt, rounds};
}

inline auto Ctx::end_round_ambient(std::optional<Port> port) {
  return detail::WakeAwaiter{engine_, idx_, Engine::WakeKind::kAmbient, port,
                             0};
}

}  // namespace bdg::sim
