#pragma once
// Coroutine plumbing for robot programs.
//
// A robot protocol is written as a C++20 coroutine returning sim::Proc.
// The engine owns the coroutine handle and resumes it when the robot is
// scheduled (next sub-round, next round after a move, or after a sleep).
// Protocol code therefore reads top-to-bottom like pseudocode from the
// paper, while scheduling stays fully deterministic and engine-driven.
#include <coroutine>
#include <exception>
#include <utility>

namespace bdg::sim {

class Proc {
 public:
  struct promise_type {
    std::exception_ptr exception;

    Proc get_return_object() {
      return Proc{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Proc() = default;
  explicit Proc(std::coroutine_handle<promise_type> h) : h_(h) {}
  Proc(Proc&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Proc& operator=(Proc&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return h_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return !h_ || h_.done(); }

  /// Root coroutine handle (the engine may instead resume a registered
  /// leaf handle when the protocol is suspended inside a child Task).
  [[nodiscard]] std::coroutine_handle<> handle() const noexcept { return h_; }

  /// Rethrow a protocol exception recorded at the root, if any.
  void rethrow_if_failed() const {
    if (h_ && h_.done() && h_.promise().exception)
      std::rethrow_exception(h_.promise().exception);
  }

  /// Resume the coroutine; rethrows any exception the protocol raised.
  void resume() {
    h_.resume();
    rethrow_if_failed();
  }

 private:
  void destroy() {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace bdg::sim
