#pragma once
// Awaitable sub-protocol tasks.
//
// End-to-end algorithms compose phases (gathering, map finding, dispersion)
// as nested coroutines: a parent protocol co_awaits a Task<T> child. The
// engine always resumes the innermost suspended coroutine (the "leaf",
// registered by WakeAwaiter), and a finished child transfers control back
// to its parent via symmetric transfer, so the whole stack behaves like one
// sequential program.
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace bdg::sim {

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::optional<T> value;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        auto c = h.promise().continuation;
        return c ? c : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  // Awaitable interface: starting the child on first await.
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    h_.promise().continuation = parent;
    return h_;  // symmetric transfer into the child
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

 private:
  void destroy() {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  std::coroutine_handle<promise_type> h_;
};

/// Task<void> specialization.
template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        auto c = h.promise().continuation;
        return c ? c : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    h_.promise().continuation = parent;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  void destroy() {
    if (h_) h_.destroy();
    h_ = nullptr;
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace bdg::sim
