#pragma once
// Trace recorder: a concrete Observer collecting per-robot activity
// statistics and a bounded event log. Useful for debugging protocols,
// rendering executions (dispersion_cli --trace) and asserting behavioral
// properties in tests (e.g. "a settled robot never moves again").
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace bdg::sim {

class TraceRecorder : public Observer {
 public:
  struct RobotActivity {
    std::uint64_t moves = 0;
    std::uint64_t messages = 0;
    Round last_move_round = 0;
    NodeId last_seen = kNoNode;
    Round done_round = 0;
    bool done = false;
  };

  struct Event {
    enum class Kind { kMove, kMessage, kDone } kind;
    Round round = 0;
    RobotId robot = 0;   // true ID for moves/done; CLAIMED ID for messages
    NodeId node = kNoNode;
    std::uint32_t detail = 0;  // port for moves, msg kind for messages
  };

  /// Keep at most `max_events` most recent events (0 = stats only).
  explicit TraceRecorder(std::size_t max_events = 4096)
      : max_events_(max_events) {}

  void on_round(Round round) override { last_round_ = round; }

  void on_move(RobotId id, NodeId from, NodeId to, Port via) override {
    auto& a = per_robot_[id];
    ++a.moves;
    a.last_move_round = last_round_;
    a.last_seen = to;
    ++node_visits_[to];
    push({Event::Kind::kMove, last_round_, id, from, via});
  }

  void on_message(const Msg& msg, NodeId at, Round round) override {
    ++per_robot_[msg.claimed].messages;
    push({Event::Kind::kMessage, round, msg.claimed, at, msg.kind});
  }

  void on_done(RobotId id, Round round) override {
    auto& a = per_robot_[id];
    a.done = true;
    a.done_round = round;
    push({Event::Kind::kDone, round, id, kNoNode, 0});
  }

  [[nodiscard]] const std::map<RobotId, RobotActivity>& per_robot() const {
    return per_robot_;
  }
  [[nodiscard]] const std::map<NodeId, std::uint64_t>& node_visits() const {
    return node_visits_;
  }
  [[nodiscard]] const std::deque<Event>& events() const { return events_; }

  /// Total moves across robots (cross-check against RunStats::moves).
  [[nodiscard]] std::uint64_t total_moves() const {
    std::uint64_t sum = 0;
    for (const auto& [id, a] : per_robot_) sum += a.moves;
    return sum;
  }

 private:
  void push(Event e) {
    if (max_events_ == 0) return;
    if (events_.size() == max_events_) events_.pop_front();
    events_.push_back(e);
  }

  std::size_t max_events_;
  Round last_round_ = 0;
  std::map<RobotId, RobotActivity> per_robot_;
  std::map<NodeId, std::uint64_t> node_visits_;
  std::deque<Event> events_;
};

}  // namespace bdg::sim
