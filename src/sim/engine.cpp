#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace bdg::sim {

namespace {
thread_local std::uint64_t t_delivery_epoch = 0;
}  // namespace

std::uint64_t delivery_epoch() noexcept { return t_delivery_epoch; }

Engine::Engine(const Graph& g, EngineConfig cfg) : graph_(g), cfg_(cfg) {
  if (graph_.n() == 0) throw std::invalid_argument("Engine: empty graph");
  delivered_.resize(graph_.n());
  pending_.resize(graph_.n());
  ++t_delivery_epoch;
}

Engine::~Engine() { ++t_delivery_epoch; }

void Engine::add_robot(RobotId id, Faultiness f, NodeId start,
                       ProgramFactory factory, Round start_round) {
  if (started_) throw std::logic_error("Engine: add_robot after run()");
  if (id == 0) throw std::invalid_argument("Engine: robot id must be nonzero");
  if (start >= graph_.n()) throw std::invalid_argument("Engine: bad start");
  const auto [slot, inserted] = index_of_.try_emplace(id);
  if (!inserted) throw std::invalid_argument("Engine: duplicate robot id");
  slot = static_cast<std::uint32_t>(robots_.size());
  Robot r;
  r.id = id;
  r.faultiness = f;
  r.pos = start;
  r.factory = std::move(factory);
  r.start_round = start_round;
  robots_.push_back(std::move(r));
}

std::uint32_t Engine::subround_count() const {
  return cfg_.subrounds != 0
             ? cfg_.subrounds
             : static_cast<std::uint32_t>(robots_.size()) + 6;
}

void Engine::start_programs() {
  // Deterministic scheduling order: increasing robot ID.
  std::sort(robots_.begin(), robots_.end(),
            [](const Robot& a, const Robot& b) { return a.id < b.id; });
  honest_live_ = 0;
  for (std::uint32_t i = 0; i < robots_.size(); ++i) {
    Robot& r = robots_[i];
    index_of_[r.id] = i;
    r.proc = r.factory(Ctx(this, i));
    r.leaf = r.proc.handle();
    r.wake = WakeKind::kSubround;  // run at start_round, sub-round 0
    r.wake_round = r.start_round;
    if (r.start_round == 0)
      next_round_.push_back(i);
    else
      wake_queue_.push({r.start_round, i});
    if (r.faultiness == Faultiness::kHonest) ++honest_live_;
  }
  started_ = true;
}

void Engine::resume_robot(Robot& r) {
  if (r.done) return;
  ++stats_.resumes;
  if (stats_.resumes > cfg_.max_resumes)
    throw std::runtime_error("Engine: resume budget exceeded (livelock?)");
  r.leaf.resume();
  if (r.proc.done()) {
    r.done = true;
    if (r.faultiness == Faultiness::kHonest) --honest_live_;
    if (observer_ != nullptr) observer_->on_done(r.id, round_);
    r.proc.rethrow_if_failed();
  }
}

void Engine::release_inbox(Inbox& box) {
  // Recycle uniquely held payload blocks into the pool before the Msgs
  // die; blocks still referenced elsewhere (shared beacons, stashed
  // copies) just drop this reference. clear() keeps the box's capacity.
  for (Msg& m : box) pool_.recycle(std::move(m.data));
  box.clear();
}

void Engine::run_subrounds() {
  const std::uint32_t subs = subround_count();
  for (subround_ = 0; subround_ < subs; ++subround_) {
    // Deliver last sub-round's broadcasts: recycle the previous inboxes,
    // promote pending buffers, swap the dirty lists. Delivered state is
    // about to change: open a new memoization epoch.
    ++t_delivery_epoch;
    for (const NodeId v : delivered_dirty_) release_inbox(delivered_[v]);
    delivered_dirty_.clear();
    for (const NodeId v : pending_dirty_) delivered_[v].swap(pending_[v]);
    delivered_dirty_.swap(pending_dirty_);

    const bool had_messages = !delivered_dirty_.empty();
    const bool anyone = !runnable_.empty();
    for (const std::uint32_t idx : runnable_) resume_robot(robots_[idx]);
    runnable_.swap(next_runnable_);
    next_runnable_.clear();
    // Nothing scheduled for later sub-rounds and no information in flight:
    // the rest of the round is empty.
    if (!anyone && !had_messages && pending_dirty_.empty()) break;
  }
  // Broadcasts from the final sub-round have no next sub-round to land in;
  // they are dropped (protocols know the sub-round budget).
  for (const NodeId v : delivered_dirty_) release_inbox(delivered_[v]);
  for (const NodeId v : pending_dirty_) release_inbox(pending_[v]);
  delivered_dirty_.clear();
  pending_dirty_.clear();
  // Robots still awaiting a sub-round when the round ends stay put and
  // resume at sub-round 0 of the next round.
  for (const std::uint32_t idx : runnable_) {
    Robot& r = robots_[idx];
    r.wake = WakeKind::kEndRound;
    r.move = std::nullopt;
    r.wake_round = round_ + 1;
    next_round_.push_back(idx);
  }
  runnable_.clear();
}

void Engine::apply_moves() {
  // set_command order interleaves sub-rounds; restore ID order so moves
  // (and their observer events) apply exactly as the per-robot scan did.
  // Single-suspension rounds leave the list already ordered — check first.
  if (!std::is_sorted(movers_.begin(), movers_.end()))
    std::sort(movers_.begin(), movers_.end());
  for (const std::uint32_t idx : movers_) {
    Robot& r = robots_[idx];
    if (r.done || !r.move.has_value()) continue;
    const Port p = *r.move;
    if (p >= graph_.degree(r.pos))
      throw std::logic_error("Engine: robot moved through invalid port");
    const HalfEdge he = graph_.hop(r.pos, p);
    if (observer_ != nullptr) observer_->on_move(r.id, r.pos, he.to, p);
    r.pos = he.to;
    r.arrival = he.reverse;
    r.move = std::nullopt;
    ++stats_.moves;
  }
  movers_.clear();
}

RunStats Engine::run(Round max_rounds) {
  if (!started_) start_programs();
  stats_ = RunStats{};
  while (round_ < max_rounds) {
    if (honest_all_done()) break;
    if (next_round_.empty() && wake_queue_.empty()) break;
    // Fast-forward stretches where nobody is scheduled (bucket empty =>
    // everybody sleeps until at least the heap's earliest wake).
    if (next_round_.empty()) {
      const Round wake = wake_queue_.top().first;
      if (wake > round_) {
        round_ = std::min(wake, max_rounds);
        if (round_ >= max_rounds) break;
      }
    }
    // Wake the robots whose time has come: the next-round bucket plus due
    // heap entries, sorted so robots run in ID order.
    runnable_.swap(next_round_);
    while (!wake_queue_.empty() && wake_queue_.top().first <= round_) {
      runnable_.push_back(wake_queue_.top().second);
      wake_queue_.pop();
    }
    // Parked ambient robots run in every simulated round: merged here (and
    // ID-sorted below with everyone else) their live broadcasts land in
    // exactly the rounds — and the inbox order — the per-round path would
    // produce, while skipped rounds are theirs to replay.
    if (!ambient_.empty()) {
      runnable_.insert(runnable_.end(), ambient_.begin(), ambient_.end());
      ambient_.clear();
    }
    // The bucket is usually filled in ID order already (robots suspend in
    // the sorted order they ran); is_sorted is O(k) vs the sort's k log k.
    if (!std::is_sorted(runnable_.begin(), runnable_.end()))
      std::sort(runnable_.begin(), runnable_.end());
    for (const std::uint32_t idx : runnable_) robots_[idx].wake = WakeKind::kSubround;
    ++stats_.simulated_rounds;
    if (observer_ != nullptr) observer_->on_round(round_);
    run_subrounds();
    apply_moves();
    round_ += 1;
  }
  // Drain parked ambient robots: one final resume each (with draining_
  // set) replays any rounds fast-forwarded past after their last live
  // action, so moves and message totals match the per-round path exactly
  // even when the run was cut off by max_rounds or by the honest robots
  // finishing before the adversary's tail.
  if (!ambient_.empty()) {
    draining_ = true;
    std::vector<std::uint32_t> parked;
    parked.swap(ambient_);
    std::sort(parked.begin(), parked.end());
    for (const std::uint32_t idx : parked) resume_robot(robots_[idx]);
    draining_ = false;
  }
  stats_.rounds = round_;
  stats_.all_honest_done = honest_all_done();
  return stats_;
}

std::size_t Engine::num_robots() const { return robots_.size(); }
RobotId Engine::robot_id(std::size_t idx) const { return robots_[idx].id; }
Faultiness Engine::robot_faultiness(std::size_t idx) const {
  return robots_[idx].faultiness;
}
NodeId Engine::robot_position(std::size_t idx) const {
  return robots_[idx].pos;
}
bool Engine::robot_done(std::size_t idx) const { return robots_[idx].done; }

NodeId Engine::position_of(RobotId id) const {
  const std::uint32_t* idx = index_of_.find(id);
  if (idx == nullptr) throw std::invalid_argument("Engine: unknown robot id");
  return robots_[*idx].pos;
}

// ---- Ctx ------------------------------------------------------------------
// (hot observation accessors are inline in engine.h)

void Engine::push_msg(std::uint32_t idx, RobotId claimed, std::uint32_t kind,
                      util::PayloadRef payload, bool notify_observer) {
  const auto& r = robots_[idx];
  Inbox& box = pending_[r.pos];
  if (box.empty()) pending_dirty_.push_back(r.pos);
  box.push_back(Msg{claimed, idx, kind, std::move(payload)});
  ++stats_.messages;
  if (notify_observer && observer_ != nullptr)
    observer_->on_message(box.back(), r.pos, round_);
}

void Ctx::broadcast(std::uint32_t kind, std::vector<std::int64_t> data) {
  Engine& e = *engine_;
  e.push_msg(idx_, e.robots_[idx_].id, kind, e.pool_.make(data),
             /*notify_observer=*/true);
}

void Ctx::broadcast_pooled(std::uint32_t kind,
                           std::span<const std::int64_t> data) {
  Engine& e = *engine_;
  e.push_msg(idx_, e.robots_[idx_].id, kind, e.pool_.make(data),
             /*notify_observer=*/true);
}

util::PayloadRef Ctx::make_payload(std::span<const std::int64_t> data) {
  return engine_->pool_.make(data);
}

void Ctx::broadcast_shared(std::uint32_t kind,
                           const util::PayloadRef& payload) {
  Engine& e = *engine_;
  e.push_msg(idx_, e.robots_[idx_].id, kind, payload,
             /*notify_observer=*/true);
}

void Ctx::ambient_round(std::optional<Port> port, std::uint64_t messages) {
  Engine& e = *engine_;
  // Replay is adversary work like any resume: budget it so a runaway
  // catch-up loop fails the same way a livelocked coroutine does.
  ++e.stats_.resumes;
  if (e.stats_.resumes > e.cfg_.max_resumes)
    throw std::runtime_error("Engine: resume budget exceeded (livelock?)");
  e.stats_.messages += messages;
  if (!port.has_value()) return;
  auto& r = e.robots_[idx_];
  if (*port >= e.graph_.degree(r.pos))
    throw std::logic_error("Engine: robot moved through invalid port");
  const HalfEdge he = e.graph_.hop(r.pos, *port);
  r.pos = he.to;
  r.arrival = he.reverse;
  ++e.stats_.moves;
}

bool Ctx::draining() const { return engine_->draining_; }

void Ctx::spoof_broadcast(RobotId claimed, std::uint32_t kind,
                          std::vector<std::int64_t> data) {
  Engine& e = *engine_;
  if (e.robots_[idx_].faultiness != Faultiness::kStrongByzantine)
    throw std::logic_error(
        "Ctx: only strong Byzantine robots can fake sender IDs");
  // Spoofed messages never fired the observer hook; preserved exactly so
  // trace streams stay bit-identical.
  e.push_msg(idx_, claimed, kind, e.pool_.make(data),
             /*notify_observer=*/false);
}

void Ctx::spoof_broadcast_pooled(RobotId claimed, std::uint32_t kind,
                                 std::span<const std::int64_t> data) {
  Engine& e = *engine_;
  if (e.robots_[idx_].faultiness != Faultiness::kStrongByzantine)
    throw std::logic_error(
        "Ctx: only strong Byzantine robots can fake sender IDs");
  e.push_msg(idx_, claimed, kind, e.pool_.make(data),
             /*notify_observer=*/false);
}

void Ctx::spoof_broadcast_shared(RobotId claimed, std::uint32_t kind,
                                 const util::PayloadRef& payload) {
  Engine& e = *engine_;
  if (e.robots_[idx_].faultiness != Faultiness::kStrongByzantine)
    throw std::logic_error(
        "Ctx: only strong Byzantine robots can fake sender IDs");
  e.push_msg(idx_, claimed, kind, payload,
             /*notify_observer=*/false);
}

}  // namespace bdg::sim
