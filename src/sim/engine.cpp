#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace bdg::sim {

const std::vector<Msg> Engine::kEmptyInbox{};

/// Engine-side per-robot state. The program coroutine is resumed only via
/// resume_robot(); between resumptions `wake` describes when it runs next.
struct Engine::Robot {
  RobotId id = 0;
  Faultiness faultiness = Faultiness::kHonest;
  NodeId pos = kNoNode;
  Port arrival = kNoPort;
  ProgramFactory factory;
  Proc proc;
  bool done = false;

  // Pending wake condition, written by WakeAwaiter via set_command().
  WakeKind wake = WakeKind::kSleep;
  std::optional<Port> move;      // for kEndRound
  std::uint64_t wake_round = 0;  // for kSleep / kEndRound: first round in
                                 // which the robot runs again
  // Innermost suspended coroutine; the engine resumes this, not the root,
  // so protocols can nest phases as Task<T> children.
  std::coroutine_handle<> leaf;
};

Engine::Engine(const Graph& g, EngineConfig cfg) : graph_(g), cfg_(cfg) {
  if (graph_.n() == 0) throw std::invalid_argument("Engine: empty graph");
  delivered_.resize(graph_.n());
  pending_.resize(graph_.n());
}

Engine::~Engine() = default;

void Engine::add_robot(RobotId id, Faultiness f, NodeId start,
                       ProgramFactory factory) {
  if (started_) throw std::logic_error("Engine: add_robot after run()");
  if (id == 0) throw std::invalid_argument("Engine: robot id must be nonzero");
  if (start >= graph_.n()) throw std::invalid_argument("Engine: bad start");
  for (const auto& r : robots_)
    if (r->id == id) throw std::invalid_argument("Engine: duplicate robot id");
  auto r = std::make_unique<Robot>();
  r->id = id;
  r->faultiness = f;
  r->pos = start;
  r->factory = std::move(factory);
  robots_.push_back(std::move(r));
}

std::uint32_t Engine::subround_count() const {
  return cfg_.subrounds != 0
             ? cfg_.subrounds
             : static_cast<std::uint32_t>(robots_.size()) + 6;
}

void Engine::start_programs() {
  // Deterministic scheduling order: increasing robot ID.
  std::sort(robots_.begin(), robots_.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  for (std::uint32_t i = 0; i < robots_.size(); ++i) {
    Robot& r = *robots_[i];
    r.proc = r.factory(Ctx(this, i));
    r.leaf = r.proc.handle();
    r.wake = WakeKind::kSubround;  // run at round 0, sub-round 0
    r.wake_round = 0;
  }
  started_ = true;
}

void Engine::set_command(std::uint32_t idx, WakeKind kind,
                         std::optional<Port> port, std::uint64_t rounds,
                         std::coroutine_handle<> leaf) {
  Robot& r = *robots_[idx];
  r.wake = kind;
  r.leaf = leaf;
  r.move = std::nullopt;
  switch (kind) {
    case WakeKind::kSubround:
      break;
    case WakeKind::kEndRound:
      r.move = port;
      r.wake_round = round_ + 1;
      break;
    case WakeKind::kSleep:
      r.wake_round = round_ + std::max<std::uint64_t>(rounds, 1);
      break;
  }
}

void Engine::resume_robot(Robot& r) {
  if (r.done) return;
  ++stats_.resumes;
  if (stats_.resumes > cfg_.max_resumes)
    throw std::runtime_error("Engine: resume budget exceeded (livelock?)");
  r.leaf.resume();
  if (r.proc.done()) {
    r.done = true;
    if (observer_ != nullptr) observer_->on_done(r.id, round_);
    r.proc.rethrow_if_failed();
  }
}

bool Engine::honest_all_done() const {
  return std::all_of(robots_.begin(), robots_.end(), [](const auto& r) {
    return r->faultiness != Faultiness::kHonest || r->done;
  });
}

std::uint64_t Engine::next_wake_round() const {
  std::uint64_t w = std::numeric_limits<std::uint64_t>::max();
  for (const auto& r : robots_)
    if (!r->done) w = std::min(w, r->wake_round);
  return w;
}

void Engine::run_subrounds() {
  const std::uint32_t subs = subround_count();
  for (subround_ = 0; subround_ < subs; ++subround_) {
    // Deliver last sub-round's broadcasts.
    delivered_.swap(pending_);
    for (auto& v : pending_) v.clear();
    const bool had_messages = any_pending_;
    any_pending_ = false;

    bool anyone = false;
    for (auto& rp : robots_) {
      Robot& r = *rp;
      if (r.done || r.wake != WakeKind::kSubround) continue;
      anyone = true;
      resume_robot(r);
    }
    // Nothing scheduled for later sub-rounds and no information in flight:
    // the rest of the round is empty.
    if (!anyone && !had_messages && !any_pending_) break;
  }
  // Broadcasts from the final sub-round have no next sub-round to land in;
  // they are dropped (protocols know the sub-round budget).
  for (auto& v : pending_) v.clear();
  for (auto& v : delivered_) v.clear();
  any_pending_ = false;
  // Robots still awaiting a sub-round when the round ends stay put and
  // resume at sub-round 0 of the next round.
  for (auto& rp : robots_) {
    Robot& r = *rp;
    if (!r.done && r.wake == WakeKind::kSubround) {
      r.wake_round = round_ + 1;
      r.move = std::nullopt;
      r.wake = WakeKind::kEndRound;
    }
  }
}

void Engine::apply_moves() {
  for (auto& rp : robots_) {
    Robot& r = *rp;
    if (r.done || r.wake != WakeKind::kEndRound || !r.move.has_value())
      continue;
    const Port p = *r.move;
    if (p >= graph_.degree(r.pos))
      throw std::logic_error("Engine: robot moved through invalid port");
    const HalfEdge he = graph_.hop(r.pos, p);
    if (observer_ != nullptr) observer_->on_move(r.id, r.pos, he.to, p);
    r.pos = he.to;
    r.arrival = he.reverse;
    r.move = std::nullopt;
    ++stats_.moves;
  }
}

RunStats Engine::run(std::uint64_t max_rounds) {
  if (!started_) start_programs();
  stats_ = RunStats{};
  while (round_ < max_rounds) {
    if (honest_all_done()) break;
    // Fast-forward stretches where nobody is scheduled.
    const std::uint64_t wake = next_wake_round();
    if (wake == std::numeric_limits<std::uint64_t>::max()) break;
    if (wake > round_) {
      round_ = std::min(wake, max_rounds);
      if (round_ >= max_rounds) break;
    }
    // Wake the robots whose time has come.
    for (auto& rp : robots_) {
      Robot& r = *rp;
      if (!r.done && r.wake != WakeKind::kSubround && r.wake_round <= round_)
        r.wake = WakeKind::kSubround;
    }
    ++stats_.simulated_rounds;
    if (observer_ != nullptr) observer_->on_round(round_);
    run_subrounds();
    apply_moves();
    ++round_;
  }
  stats_.rounds = round_;
  stats_.all_honest_done = honest_all_done();
  return stats_;
}

std::size_t Engine::num_robots() const { return robots_.size(); }
RobotId Engine::robot_id(std::size_t idx) const { return robots_[idx]->id; }
Faultiness Engine::robot_faultiness(std::size_t idx) const {
  return robots_[idx]->faultiness;
}
NodeId Engine::robot_position(std::size_t idx) const {
  return robots_[idx]->pos;
}
bool Engine::robot_done(std::size_t idx) const { return robots_[idx]->done; }

NodeId Engine::position_of(RobotId id) const {
  for (const auto& r : robots_)
    if (r->id == id) return r->pos;
  throw std::invalid_argument("Engine: unknown robot id");
}

// ---- Ctx ------------------------------------------------------------------

RobotId Ctx::self() const { return engine_->robots_[idx_]->id; }
Faultiness Ctx::faultiness() const {
  return engine_->robots_[idx_]->faultiness;
}
std::uint32_t Ctx::n() const {
  return static_cast<std::uint32_t>(engine_->graph_.n());
}
std::uint32_t Ctx::degree() const {
  return engine_->graph_.degree(engine_->robots_[idx_]->pos);
}
Port Ctx::arrival_port() const { return engine_->robots_[idx_]->arrival; }
std::uint64_t Ctx::round() const { return engine_->round_; }
std::uint32_t Ctx::subround() const { return engine_->subround_; }

const std::vector<Msg>& Ctx::inbox() const {
  const NodeId pos = engine_->robots_[idx_]->pos;
  return engine_->delivered_[pos];
}

void Ctx::broadcast(std::uint32_t kind, std::vector<std::int64_t> data) {
  const auto& r = *engine_->robots_[idx_];
  engine_->pending_[r.pos].push_back(Msg{r.id, idx_, kind, std::move(data)});
  engine_->any_pending_ = true;
  ++engine_->stats_.messages;
  if (engine_->observer_ != nullptr)
    engine_->observer_->on_message(engine_->pending_[r.pos].back(), r.pos,
                                   engine_->round_);
}

void Ctx::spoof_broadcast(RobotId claimed, std::uint32_t kind,
                          std::vector<std::int64_t> data) {
  const auto& r = *engine_->robots_[idx_];
  if (r.faultiness != Faultiness::kStrongByzantine)
    throw std::logic_error(
        "Ctx: only strong Byzantine robots can fake sender IDs");
  engine_->pending_[r.pos].push_back(Msg{claimed, idx_, kind, std::move(data)});
  engine_->any_pending_ = true;
  ++engine_->stats_.messages;
}

}  // namespace bdg::sim
