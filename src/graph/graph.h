#pragma once
// Port-labeled anonymous graphs — the substrate the paper's model runs on.
//
// Nodes are unlabeled (robots cannot read node identities); every node of
// degree d assigns its incident edge endpoints the distinct port numbers
// 0..d-1 (the paper writes [1, delta]; we use 0-based ports throughout).
// The two endpoints of an edge may carry different port numbers. A robot
// crossing an edge learns both the outgoing and the incoming port.
//
// The same type also represents robot-built maps and quotient graphs, which
// may contain self-loops and parallel edges; simple-graph invariants are
// checked only where generators promise them.
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace bdg {

using NodeId = std::uint32_t;
using Port = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr Port kNoPort = std::numeric_limits<Port>::max();

/// One directed half of an edge as seen from a node: the neighbor reached
/// through a port, and the port number assigned by that neighbor.
struct HalfEdge {
  NodeId to = kNoNode;
  Port reverse = kNoPort;
  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

/// Port-labeled (multi)graph. Ports of node v are 0..degree(v)-1 and index
/// directly into the adjacency vector, so "move through port p" is O(1).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  [[nodiscard]] std::size_t n() const noexcept { return adj_.size(); }

  /// Number of undirected edges (self-loops with a single port count as one
  /// half-edge and are not produced by any of our generators).
  [[nodiscard]] std::size_t m() const noexcept;

  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return static_cast<std::uint32_t>(adj_[v].size());
  }

  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// The half-edge out of v through port p. Precondition: p < degree(v).
  [[nodiscard]] const HalfEdge& hop(NodeId v, Port p) const {
    return adj_[v][p];
  }

  [[nodiscard]] const std::vector<HalfEdge>& edges_of(NodeId v) const {
    return adj_[v];
  }

  /// Append an undirected edge; the ports used are the next free port on
  /// each side. Returns the (port_u, port_v) pair assigned.
  std::pair<Port, Port> add_edge(NodeId u, NodeId v);

  /// Append an undirected edge with explicit ports. The ports must equal the
  /// next free slot on each side (edges must be added in port order); used
  /// by deserialization and quotient construction.
  void add_edge_with_ports(NodeId u, Port pu, NodeId v, Port pv);

  /// Grow the graph by one isolated node, returning its id.
  NodeId add_node();

  /// Build directly from an adjacency structure (used by port relabeling
  /// and node permutation). The caller promises port consistency; it is
  /// checked in debug builds.
  [[nodiscard]] static Graph from_adjacency(
      std::vector<std::vector<HalfEdge>> adj);

  /// Checks the port involution: hop(hop(v,p)) returns to (v,p) for every
  /// half-edge, and all entries are in range. Maps under construction and
  /// final graphs alike must satisfy this.
  [[nodiscard]] bool is_port_consistent() const noexcept;

  /// Connectivity over the undirected edge set (empty graph is connected).
  [[nodiscard]] bool is_connected() const;

  /// True if there are no self-loops and no parallel edges.
  [[nodiscard]] bool is_simple() const;

  /// BFS hop distances from src; unreachable nodes get UINT32_MAX.
  [[nodiscard]] std::vector<std::uint32_t> bfs_distances(NodeId src) const;

  /// Shortest path from src to dst as a sequence of outgoing ports, or
  /// nullopt when unreachable. Ties broken by smallest port (deterministic).
  [[nodiscard]] std::optional<std::vector<Port>> shortest_path_ports(
      NodeId src, NodeId dst) const;

  /// Node reached by starting at src and following the port walk; any
  /// out-of-range port aborts and returns kNoNode.
  [[nodiscard]] NodeId walk(NodeId src, const std::vector<Port>& ports) const;

  /// Largest finite BFS eccentricity (requires connected graph).
  [[nodiscard]] std::uint32_t diameter() const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::vector<HalfEdge>> adj_;
};

}  // namespace bdg
