#include "graph/serialize.h"

#include <sstream>
#include <stdexcept>

namespace bdg {

void write_graph(std::ostream& os, const Graph& g) {
  os << "bdg1 " << g.n() << "\n";
  for (NodeId v = 0; v < g.n(); ++v) {
    os << v << ":";
    for (Port p = 0; p < g.degree(v); ++p) {
      const HalfEdge he = g.hop(v, p);
      os << " " << he.to << " " << he.reverse;
    }
    os << "\n";
  }
}

std::string graph_to_string(const Graph& g) {
  std::ostringstream ss;
  write_graph(ss, g);
  return ss.str();
}

Graph read_graph(std::istream& is) {
  std::string magic;
  std::size_t n = 0;
  if (!(is >> magic >> n) || magic != "bdg1")
    throw std::invalid_argument("read_graph: missing bdg1 header");
  std::vector<std::vector<HalfEdge>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string label;
    if (!(is >> label))
      throw std::invalid_argument("read_graph: truncated node list");
    if (label != std::to_string(i) + ":")
      throw std::invalid_argument("read_graph: bad node label " + label);
    // Read pairs until the next label or EOF. Peek-based: consume tokens
    // while they parse as numbers in pairs on the remainder of the line.
    std::string line;
    std::getline(is, line);
    std::istringstream ls(line);
    std::uint64_t to = 0, rev = 0;
    while (ls >> to >> rev) {
      if (to >= n)
        throw std::invalid_argument("read_graph: edge target out of range");
      adj[i].push_back(
          HalfEdge{static_cast<NodeId>(to), static_cast<Port>(rev)});
    }
    if (!ls.eof() && ls.fail() && !ls.bad()) {
      // Trailing garbage that is not a number pair.
      std::string rest;
      ls.clear();
      if (ls >> rest)
        throw std::invalid_argument("read_graph: trailing tokens: " + rest);
    }
  }
  // Validate the involution BEFORE constructing (from_adjacency asserts it
  // in debug builds; malformed input must throw, not abort).
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t p = 0; p < adj[v].size(); ++p) {
      const HalfEdge& he = adj[v][p];
      if (he.to >= n || he.reverse >= adj[he.to].size() ||
          adj[he.to][he.reverse].to != v ||
          adj[he.to][he.reverse].reverse != p)
        throw std::invalid_argument("read_graph: port involution violated");
    }
  }
  return Graph::from_adjacency(std::move(adj));
}

Graph graph_from_string(const std::string& text) {
  std::istringstream ss(text);
  return read_graph(ss);
}

}  // namespace bdg
