#pragma once
// Canonical encodings and isomorphism of port-labeled graphs.
//
// Because every node totally orders its incident edges by port number, a
// *rooted* connected port-labeled graph admits a unique canonical form: a
// BFS from the root that explores ports in increasing order assigns each
// node a canonical index, and the flattened adjacency (per canonical node,
// per port: canonical neighbor + reverse port) is a complete invariant.
// Robots use exactly this to vote by majority over the maps they built
// (Theorems 2-4): two maps are "the same" iff their rooted codes match.
//
// For the unrooted case the canonical code is the lexicographic minimum of
// the rooted codes over all roots, giving an O(n * m) isomorphism test.
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace bdg {

using CanonicalCode = std::vector<std::uint32_t>;

/// Canonical code of (g, root). Requires g connected and root < g.n().
[[nodiscard]] CanonicalCode rooted_code(const Graph& g, NodeId root);

/// Lexicographically minimal rooted code over all roots.
[[nodiscard]] CanonicalCode unrooted_code(const Graph& g);

/// Rooted isomorphism: exists a bijection preserving ports and mapping
/// root to root.
[[nodiscard]] bool rooted_isomorphic(const Graph& a, NodeId root_a,
                                     const Graph& b, NodeId root_b);

/// Unrooted port-preserving isomorphism.
[[nodiscard]] bool isomorphic(const Graph& a, const Graph& b);

/// The node order assigned by the canonical BFS from root; out[i] is the
/// NodeId holding canonical index i. This is the deterministic node
/// ordering v(1), ..., v(n) that gathered robots agree on in Theorem 6.
[[nodiscard]] std::vector<NodeId> canonical_order(const Graph& g, NodeId root);

/// Reconstruct a graph from a rooted canonical code (inverse of
/// rooted_code up to isomorphism; node i of the result holds canonical
/// index i and the root is node 0). Throws on malformed codes.
[[nodiscard]] Graph graph_from_code(const CanonicalCode& code);

}  // namespace bdg
