#pragma once
// Graph family generators used across tests, examples and benchmarks.
//
// Every generator returns a connected, simple, port-consistent graph.
// Generators taking an Rng consume randomness deterministically, so the
// same seed always produces the same graph. Port labels follow insertion
// order; apply shuffle_ports() to randomize the labeling (which is what
// makes the anonymous-graph setting interesting — symmetric labelings can
// collapse the quotient graph, see quotient.h).
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace bdg {

/// Simple path v0 - v1 - ... - v{n-1}. Requires n >= 1.
[[nodiscard]] Graph make_path(std::size_t n);

/// Cycle with ports assigned in insertion order (node 0's port 0 goes
/// clockwise but interior nodes see ports 0=ccw/1=cw): NOT rotation
/// symmetric as a port-labeled graph. Requires n >= 3.
[[nodiscard]] Graph make_ring(std::size_t n);

/// Cycle where every node's port 0 points clockwise and port 1 counter-
/// clockwise. Fully rotation-symmetric: its quotient graph has one node.
/// Requires n >= 3.
[[nodiscard]] Graph make_oriented_ring(std::size_t n);

/// Complete graph K_n with insertion-order ports. Requires n >= 2.
[[nodiscard]] Graph make_complete(std::size_t n);

/// Star: center node 0 with n-1 leaves. Requires n >= 2.
[[nodiscard]] Graph make_star(std::size_t n);

/// rows x cols grid (4-neighborhood). Requires rows*cols >= 1.
[[nodiscard]] Graph make_grid(std::size_t rows, std::size_t cols);

/// rows x cols torus (wrap-around grid); canonical direction ports make it
/// vertex-transitive when rows==cols. Requires rows >= 3 and cols >= 3.
[[nodiscard]] Graph make_torus(std::size_t rows, std::size_t cols);

/// Hypercube Q_dim with port i flipping bit i (fully symmetric labeling:
/// quotient graph has one node). Requires dim >= 1.
[[nodiscard]] Graph make_hypercube(std::size_t dim);

/// Complete binary tree with n nodes (heap order). Requires n >= 1.
[[nodiscard]] Graph make_binary_tree(std::size_t n);

/// Lollipop: clique on ceil(n/2) nodes plus a path; classic worst case for
/// exploration. Requires n >= 4.
[[nodiscard]] Graph make_lollipop(std::size_t n);

/// Uniform random labeled tree (Prufer sequence). Requires n >= 1.
[[nodiscard]] Graph make_random_tree(std::size_t n, Rng& rng);

/// Erdos-Renyi G(n, p) conditioned on connectivity (resamples until
/// connected; p defaults near the connectivity threshold if <= 0).
[[nodiscard]] Graph make_connected_er(std::size_t n, double p, Rng& rng);

/// Random d-regular simple graph via the pairing model with resampling.
/// Requires n*d even, d < n, n >= d+1.
[[nodiscard]] Graph make_random_regular(std::size_t n, std::size_t d,
                                        Rng& rng);

/// Re-assign every node's port numbers by a random permutation; the
/// underlying simple graph is unchanged but the port-labeled graph differs.
[[nodiscard]] Graph shuffle_ports(const Graph& g, Rng& rng);

/// Produce the isomorphic copy with node v renamed perm[v]; port numbers
/// are carried over unchanged. perm must be a permutation of 0..n-1.
[[nodiscard]] Graph relabel_nodes(const Graph& g,
                                  const std::vector<NodeId>& perm);

/// Named access to a standard test menagerie (used by parameterized tests).
struct NamedGraph {
  std::string name;
  Graph graph;
};

/// A diverse fixed set of graphs around the requested size; deterministic
/// for a given (size hint, seed).
[[nodiscard]] std::vector<NamedGraph> standard_menagerie(std::size_t n,
                                                         std::uint64_t seed);

}  // namespace bdg
