#include "graph/quotient.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace bdg {
namespace {

/// One round of refinement: two nodes keep the same color iff they had the
/// same color and, for every port p, the edge (p -> reverse port, neighbor
/// color) matches. Port labels make the signature ordered, no sorting
/// needed. Returns the number of colors after refinement.
std::uint32_t refine_once(const Graph& g, std::vector<std::uint32_t>& color) {
  using Sig = std::vector<std::uint64_t>;
  std::map<Sig, std::uint32_t> palette;
  std::vector<std::uint32_t> next(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    Sig sig;
    sig.reserve(1 + g.degree(v));
    sig.push_back(color[v]);
    for (Port p = 0; p < g.degree(v); ++p) {
      const HalfEdge he = g.hop(v, p);
      // Pack (reverse port, neighbor color) into one word; ports and colors
      // are both < n <= 2^32.
      sig.push_back((static_cast<std::uint64_t>(he.reverse) << 32) |
                    color[he.to]);
    }
    const auto [it, inserted] =
        palette.try_emplace(std::move(sig), static_cast<std::uint32_t>(palette.size()));
    next[v] = it->second;
  }
  color = std::move(next);
  return static_cast<std::uint32_t>(palette.size());
}

}  // namespace

QuotientResult quotient_graph(const Graph& g) {
  if (!g.is_connected())
    throw std::invalid_argument("quotient_graph: graph must be connected");
  QuotientResult res;
  res.cls.assign(g.n(), 0);
  if (g.n() == 0) return res;

  // Refine to a fixed point; at most n rounds (each strict refinement adds
  // a class). The fixed point partitions nodes exactly by view equality.
  std::uint32_t classes = refine_once(g, res.cls);
  for (;;) {
    const std::uint32_t next = refine_once(g, res.cls);
    if (next == classes) break;
    classes = next;
  }
  res.num_classes = classes;

  // Build the quotient multigraph from one representative per class. The
  // representative's ports enumerate the class's edges; consistency across
  // class members is guaranteed by the fixed point (and is asserted by the
  // port-involution check below in debug builds).
  std::vector<NodeId> rep(classes, kNoNode);
  for (NodeId v = 0; v < g.n(); ++v)
    if (rep[res.cls[v]] == kNoNode) rep[res.cls[v]] = v;

  std::vector<std::vector<HalfEdge>> adj(classes);
  for (std::uint32_t c = 0; c < classes; ++c) {
    const NodeId x = rep[c];
    adj[c].resize(g.degree(x));
    for (Port p = 0; p < g.degree(x); ++p) {
      const HalfEdge he = g.hop(x, p);
      adj[c][p] = HalfEdge{res.cls[he.to], he.reverse};
    }
  }
  res.quotient = Graph::from_adjacency(std::move(adj));
  return res;
}

bool has_trivial_quotient(const Graph& g) {
  return quotient_graph(g).num_classes == g.n();
}

}  // namespace bdg
