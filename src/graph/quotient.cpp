#include "graph/quotient.h"

#include <algorithm>
#include <stdexcept>

namespace bdg {
namespace {

/// Hash of a packed signature; collisions are resolved by full word
/// comparison, so this only needs to spread well (FNV-1a over words with a
/// final avalanche).
std::uint64_t hash_words(const std::uint64_t* w, std::size_t len) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= w[i];
    h *= 0x100000001B3ULL;
  }
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 29;
  return h;
}

/// Worklist color refinement to the coarsest stable partition — exactly
/// the view-equivalence classes (Yamashita-Kameda). Instead of re-hashing
/// every node every round, only classes containing a node whose own or
/// neighbor color changed in the previous round are re-examined; a class
/// splits by grouping its members over a hash table keyed on the packed
/// signature (own color, then (reverse port, neighbor color) per port).
/// Because the old color is part of the signature, refinement only ever
/// splits, so singleton classes are final and stable classes are never
/// re-hashed — the fixed point costs nothing beyond the last round that
/// actually changed something.
struct Refinement {
  std::vector<std::uint32_t> color;  ///< node -> class, first-appearance ids
  std::uint32_t num_classes = 0;
};

Refinement refine_classes(const Graph& g) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.n());
  Refinement res;
  res.color.assign(n, 0);
  res.num_classes = n == 0 ? 0 : 1;
  if (n <= 1) return res;

  std::vector<std::uint32_t>& color = res.color;
  std::uint32_t num_classes = 1;

  std::vector<std::vector<NodeId>> members(1);
  members[0].resize(n);
  std::vector<NodeId> changed(n);
  for (NodeId v = 0; v < n; ++v) members[0][v] = changed[v] = v;

  std::vector<char> touched_flag(n, 0);
  std::vector<NodeId> touched;
  std::vector<char> class_queued;
  std::vector<std::uint32_t> affected;

  // Per-class scratch, reused across splits: flat signature buffer with
  // per-member offsets, member group assignment, and the open-addressing
  // palette (slot -> group index + 1; 0 = empty).
  std::vector<std::uint64_t> sigbuf;
  std::vector<std::uint32_t> sig_off, group_of, group_rep;
  std::vector<std::uint32_t> palette;

  const auto signature_at = [&](std::uint32_t i) {
    return sigbuf.data() + sig_off[i];
  };
  const auto signature_len = [&](std::uint32_t i) {
    return sig_off[i + 1] - sig_off[i];
  };

  while (!changed.empty()) {
    // A node's signature changed iff its own or a neighbor's color did.
    touched.clear();
    const auto touch = [&](NodeId v) {
      if (!touched_flag[v]) {
        touched_flag[v] = 1;
        touched.push_back(v);
      }
    };
    for (const NodeId v : changed) {
      touch(v);
      for (const HalfEdge& he : g.edges_of(v)) touch(he.to);
    }
    changed.clear();

    class_queued.assign(num_classes, 0);
    affected.clear();
    for (const NodeId v : touched) {
      const std::uint32_t c = color[v];
      // Singleton classes can never split again.
      if (!class_queued[c] && members[c].size() >= 2) {
        class_queued[c] = 1;
        affected.push_back(c);
      }
      touched_flag[v] = 0;
    }

    for (const std::uint32_t c : affected) {
      // Moved out: members grows below, which would invalidate a reference.
      std::vector<NodeId> mem = std::move(members[c]);
      const std::uint32_t k = static_cast<std::uint32_t>(mem.size());

      sigbuf.clear();
      sig_off.assign(1, 0);
      for (const NodeId v : mem) {
        sigbuf.push_back(color[v]);
        for (const HalfEdge& he : g.edges_of(v)) {
          // Pack (reverse port, neighbor color) into one word; ports and
          // colors are both < n <= 2^32.
          sigbuf.push_back((static_cast<std::uint64_t>(he.reverse) << 32) |
                           color[he.to]);
        }
        sig_off.push_back(static_cast<std::uint32_t>(sigbuf.size()));
      }

      std::uint32_t slots = 4;
      while (slots < 2 * k) slots <<= 1;
      palette.assign(slots, 0);
      group_rep.clear();
      group_of.assign(k, 0);
      for (std::uint32_t i = 0; i < k; ++i) {
        const std::uint32_t len = signature_len(i);
        std::uint64_t slot = hash_words(signature_at(i), len) & (slots - 1);
        for (;; slot = (slot + 1) & (slots - 1)) {
          if (palette[slot] == 0) {
            palette[slot] = static_cast<std::uint32_t>(group_rep.size()) + 1;
            group_of[i] = static_cast<std::uint32_t>(group_rep.size());
            group_rep.push_back(i);
            break;
          }
          const std::uint32_t grp = palette[slot] - 1;
          const std::uint32_t rep = group_rep[grp];
          if (signature_len(rep) == len &&
              std::equal(signature_at(rep), signature_at(rep) + len,
                         signature_at(i))) {
            group_of[i] = grp;
            break;
          }
        }
      }
      if (group_rep.size() == 1) {
        members[c] = std::move(mem);
        continue;
      }

      // Split: the group of the first member keeps color c, the others get
      // fresh colors; only recolored nodes enter the next worklist.
      const std::uint32_t base = num_classes;
      num_classes += static_cast<std::uint32_t>(group_rep.size()) - 1;
      members.resize(num_classes);
      std::vector<NodeId> keep;
      for (std::uint32_t i = 0; i < k; ++i) {
        const NodeId v = mem[i];
        if (group_of[i] == 0) {
          keep.push_back(v);
        } else {
          const std::uint32_t nc = base + group_of[i] - 1;
          color[v] = nc;
          members[nc].push_back(v);
          changed.push_back(v);
        }
      }
      members[c] = std::move(keep);
    }
  }

  // First-appearance renumbering in node order — the same ids a full
  // refinement pass over nodes 0..n-1 would assign.
  constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
  std::vector<std::uint32_t> remap(num_classes, kUnset);
  std::uint32_t next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (remap[color[v]] == kUnset) remap[color[v]] = next++;
    color[v] = remap[color[v]];
  }
  res.num_classes = num_classes;
  return res;
}

}  // namespace

QuotientResult quotient_graph(const Graph& g) {
  if (!g.is_connected())
    throw std::invalid_argument("quotient_graph: graph must be connected");
  QuotientResult res;
  if (g.n() == 0) {
    res.cls.clear();
    return res;
  }

  Refinement ref = refine_classes(g);
  res.cls = std::move(ref.color);
  const std::uint32_t classes = ref.num_classes;
  res.num_classes = classes;

  // Build the quotient multigraph from one representative per class. The
  // representative's ports enumerate the class's edges; consistency across
  // class members is guaranteed by the fixed point (and is asserted by the
  // port-involution check below in debug builds).
  std::vector<NodeId> rep(classes, kNoNode);
  for (NodeId v = 0; v < g.n(); ++v)
    if (rep[res.cls[v]] == kNoNode) rep[res.cls[v]] = v;

  std::vector<std::vector<HalfEdge>> adj(classes);
  for (std::uint32_t c = 0; c < classes; ++c) {
    const NodeId x = rep[c];
    adj[c].resize(g.degree(x));
    for (Port p = 0; p < g.degree(x); ++p) {
      const HalfEdge he = g.hop(x, p);
      adj[c][p] = HalfEdge{res.cls[he.to], he.reverse};
    }
  }
  res.quotient = Graph::from_adjacency(std::move(adj));
  return res;
}

bool has_trivial_quotient(const Graph& g) {
  if (!g.is_connected())
    throw std::invalid_argument("quotient_graph: graph must be connected");
  // Classes-only fast path: callers probing for all-distinct views (the
  // resampling loop in run/sweep graph construction) don't need the
  // quotient multigraph built.
  return refine_classes(g).num_classes == g.n();
}

}  // namespace bdg
