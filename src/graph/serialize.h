#pragma once
// Text serialization of port-labeled graphs, for reproducible experiment
// configs (dispersion_cli --graph-file) and golden-file tests.
//
// Format (whitespace-separated):
//   bdg1 <n>
//   <node>: (<to> <reverse_port>)*    one line per node, ports in order
// Example (a 2-path):
//   bdg1 2
//   0: 1 0
//   1: 0 0
#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace bdg {

/// Write g in the bdg1 text format.
void write_graph(std::ostream& os, const Graph& g);
[[nodiscard]] std::string graph_to_string(const Graph& g);

/// Parse a bdg1 graph; throws std::invalid_argument on malformed input or
/// port-inconsistent adjacency.
[[nodiscard]] Graph read_graph(std::istream& is);
[[nodiscard]] Graph graph_from_string(const std::string& text);

}  // namespace bdg
