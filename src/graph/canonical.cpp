#include "graph/canonical.h"

#include <queue>
#include <stdexcept>

namespace bdg {
namespace {

/// Canonical BFS discovery order: visit ports in increasing order; the
/// port labels leave no tie-breaking freedom, so the order is a complete
/// invariant of the rooted port-labeled graph.
std::vector<NodeId> discovery_order(const Graph& g, NodeId root,
                                    std::vector<std::uint32_t>& index_of) {
  index_of.assign(g.n(), UINT32_MAX);
  std::vector<NodeId> order;
  order.reserve(g.n());
  std::queue<NodeId> q;
  index_of[root] = 0;
  order.push_back(root);
  q.push(root);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (Port p = 0; p < g.degree(v); ++p) {
      const NodeId u = g.hop(v, p).to;
      if (index_of[u] == UINT32_MAX) {
        index_of[u] = static_cast<std::uint32_t>(order.size());
        order.push_back(u);
        q.push(u);
      }
    }
  }
  return order;
}

}  // namespace

CanonicalCode rooted_code(const Graph& g, NodeId root) {
  if (root >= g.n()) throw std::invalid_argument("rooted_code: bad root");
  std::vector<std::uint32_t> index_of;
  const auto order = discovery_order(g, root, index_of);
  if (order.size() != g.n())
    throw std::invalid_argument("rooted_code: graph not connected");
  CanonicalCode code;
  code.reserve(1 + g.n() + 2 * g.m() * 2);
  code.push_back(static_cast<std::uint32_t>(g.n()));
  for (NodeId v : order) {
    code.push_back(g.degree(v));
    for (Port p = 0; p < g.degree(v); ++p) {
      const HalfEdge he = g.hop(v, p);
      code.push_back(index_of[he.to]);
      code.push_back(he.reverse);
    }
  }
  return code;
}

CanonicalCode unrooted_code(const Graph& g) {
  if (g.n() == 0) return {0};
  CanonicalCode best = rooted_code(g, 0);
  for (NodeId r = 1; r < g.n(); ++r) {
    CanonicalCode c = rooted_code(g, r);
    if (c < best) best = std::move(c);
  }
  return best;
}

bool rooted_isomorphic(const Graph& a, NodeId root_a, const Graph& b,
                       NodeId root_b) {
  if (a.n() != b.n() || a.m() != b.m()) return false;
  return rooted_code(a, root_a) == rooted_code(b, root_b);
}

bool isomorphic(const Graph& a, const Graph& b) {
  if (a.n() != b.n() || a.m() != b.m()) return false;
  if (a.n() == 0) return true;
  // Fix root 0 in a; try every root of b. Rooted codes are complete
  // invariants, so this is exact.
  const CanonicalCode ca = rooted_code(a, 0);
  for (NodeId r = 0; r < b.n(); ++r)
    if (rooted_code(b, r) == ca) return true;
  return false;
}

std::vector<NodeId> canonical_order(const Graph& g, NodeId root) {
  std::vector<std::uint32_t> index_of;
  auto order = discovery_order(g, root, index_of);
  if (order.size() != g.n())
    throw std::invalid_argument("canonical_order: graph not connected");
  return order;
}

Graph graph_from_code(const CanonicalCode& code) {
  if (code.empty()) throw std::invalid_argument("graph_from_code: empty");
  const std::size_t n = code[0];
  std::vector<std::vector<HalfEdge>> adj(n);
  std::size_t i = 1;
  for (std::size_t v = 0; v < n; ++v) {
    if (i >= code.size()) throw std::invalid_argument("graph_from_code: truncated");
    const std::uint32_t deg = code[i++];
    adj[v].resize(deg);
    for (std::uint32_t p = 0; p < deg; ++p) {
      if (i + 2 > code.size())
        throw std::invalid_argument("graph_from_code: truncated");
      const std::uint32_t to = code[i++];
      const std::uint32_t rev = code[i++];
      if (to >= n) throw std::invalid_argument("graph_from_code: bad target");
      adj[v][p] = HalfEdge{to, rev};
    }
  }
  if (i != code.size()) throw std::invalid_argument("graph_from_code: trailing");
  Graph g = Graph::from_adjacency(std::move(adj));
  if (!g.is_port_consistent())
    throw std::invalid_argument("graph_from_code: inconsistent ports");
  return g;
}

}  // namespace bdg
