#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>

namespace bdg {

std::size_t Graph::m() const noexcept {
  std::size_t half_edges = 0;
  for (const auto& v : adj_) half_edges += v.size();
  return half_edges / 2;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t d = 0;
  for (NodeId v = 0; v < n(); ++v) d = std::max(d, degree(v));
  return d;
}

std::pair<Port, Port> Graph::add_edge(NodeId u, NodeId v) {
  assert(u < n() && v < n());
  const Port pu = static_cast<Port>(adj_[u].size());
  // For a self-loop the second endpoint's port is allocated after the first.
  adj_[u].push_back(HalfEdge{});
  const Port pv = static_cast<Port>(adj_[v].size());
  adj_[v].push_back(HalfEdge{});
  adj_[u][pu] = HalfEdge{v, pv};
  adj_[v][pv] = HalfEdge{u, pu};
  return {pu, pv};
}

void Graph::add_edge_with_ports(NodeId u, Port pu, NodeId v, Port pv) {
  assert(u < n() && v < n());
  assert(pu == adj_[u].size());
  adj_[u].push_back(HalfEdge{});
  assert(pv == adj_[v].size());
  adj_[v].push_back(HalfEdge{});
  adj_[u][pu] = HalfEdge{v, pv};
  adj_[v][pv] = HalfEdge{u, pu};
}

NodeId Graph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

Graph Graph::from_adjacency(std::vector<std::vector<HalfEdge>> adj) {
  Graph g;
  g.adj_ = std::move(adj);
  assert(g.is_port_consistent());
  return g;
}

bool Graph::is_port_consistent() const noexcept {
  for (NodeId v = 0; v < n(); ++v) {
    for (Port p = 0; p < degree(v); ++p) {
      const HalfEdge& he = adj_[v][p];
      if (he.to >= n()) return false;
      if (he.reverse >= degree(he.to)) return false;
      const HalfEdge& back = adj_[he.to][he.reverse];
      if (back.to != v || back.reverse != p) return false;
    }
  }
  return true;
}

bool Graph::is_connected() const {
  if (n() == 0) return true;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == std::numeric_limits<std::uint32_t>::max();
  });
}

bool Graph::is_simple() const {
  for (NodeId v = 0; v < n(); ++v) {
    std::set<NodeId> seen;
    for (const HalfEdge& he : adj_[v]) {
      if (he.to == v) return false;
      if (!seen.insert(he.to).second) return false;
    }
  }
  return true;
}

std::vector<std::uint32_t> Graph::bfs_distances(NodeId src) const {
  std::vector<std::uint32_t> dist(n(), std::numeric_limits<std::uint32_t>::max());
  if (src >= n()) return dist;
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const HalfEdge& he : adj_[v]) {
      if (dist[he.to] == std::numeric_limits<std::uint32_t>::max()) {
        dist[he.to] = dist[v] + 1;
        q.push(he.to);
      }
    }
  }
  return dist;
}

std::optional<std::vector<Port>> Graph::shortest_path_ports(NodeId src,
                                                            NodeId dst) const {
  if (src >= n() || dst >= n()) return std::nullopt;
  if (src == dst) return std::vector<Port>{};
  // BFS storing the (parent, port-from-parent) that first discovers a node;
  // exploring ports in increasing order makes the result deterministic.
  std::vector<NodeId> parent(n(), kNoNode);
  std::vector<Port> via(n(), kNoPort);
  std::queue<NodeId> q;
  parent[src] = src;
  q.push(src);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (Port p = 0; p < degree(v); ++p) {
      const NodeId u = adj_[v][p].to;
      if (parent[u] == kNoNode) {
        parent[u] = v;
        via[u] = p;
        if (u == dst) {
          std::vector<Port> path;
          for (NodeId w = dst; w != src; w = parent[w]) path.push_back(via[w]);
          std::reverse(path.begin(), path.end());
          return path;
        }
        q.push(u);
      }
    }
  }
  return std::nullopt;
}

NodeId Graph::walk(NodeId src, const std::vector<Port>& ports) const {
  NodeId v = src;
  for (Port p : ports) {
    if (v >= n() || p >= degree(v)) return kNoNode;
    v = adj_[v][p].to;
  }
  return v;
}

std::uint32_t Graph::diameter() const {
  std::uint32_t d = 0;
  for (NodeId v = 0; v < n(); ++v) {
    for (std::uint32_t x : bfs_distances(v)) {
      assert(x != std::numeric_limits<std::uint32_t>::max());
      d = std::max(d, x);
    }
  }
  return d;
}

}  // namespace bdg
