#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace bdg {

Graph make_path(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_path: n >= 1 required");
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph make_ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: n >= 3 required");
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, static_cast<NodeId>((v + 1) % n));
  return g;
}

Graph make_oriented_ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_oriented_ring: n >= 3 required");
  // Build adjacency directly so that EVERY node has port 0 -> clockwise
  // (v+1) and port 1 -> counter-clockwise (v-1).
  std::vector<std::vector<HalfEdge>> adj(n);
  for (NodeId v = 0; v < n; ++v) {
    const NodeId cw = static_cast<NodeId>((v + 1) % n);
    const NodeId ccw = static_cast<NodeId>((v + n - 1) % n);
    adj[v] = {HalfEdge{cw, 1}, HalfEdge{ccw, 0}};
  }
  return Graph::from_adjacency(std::move(adj));
}

Graph make_complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_complete: n >= 2 required");
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_star: n >= 2 required");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  if (rows * cols < 1) throw std::invalid_argument("make_grid: empty");
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  if (rows < 3 || cols < 3)
    throw std::invalid_argument("make_torus: rows, cols >= 3 required");
  // Direction-consistent ports: 0=east, 1=west, 2=south, 3=north, making
  // the square torus vertex-transitive as a port-labeled graph.
  const std::size_t n = rows * cols;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  std::vector<std::vector<HalfEdge>> adj(n);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const NodeId east = id(r, (c + 1) % cols);
      const NodeId west = id(r, (c + cols - 1) % cols);
      const NodeId south = id((r + 1) % rows, c);
      const NodeId north = id((r + rows - 1) % rows, c);
      adj[id(r, c)] = {HalfEdge{east, 1}, HalfEdge{west, 0},
                       HalfEdge{south, 3}, HalfEdge{north, 2}};
    }
  }
  return Graph::from_adjacency(std::move(adj));
}

Graph make_hypercube(std::size_t dim) {
  if (dim < 1) throw std::invalid_argument("make_hypercube: dim >= 1");
  const std::size_t n = std::size_t{1} << dim;
  std::vector<std::vector<HalfEdge>> adj(n);
  for (NodeId v = 0; v < n; ++v) {
    adj[v].resize(dim);
    for (std::size_t b = 0; b < dim; ++b) {
      adj[v][b] = HalfEdge{static_cast<NodeId>(v ^ (std::size_t{1} << b)),
                           static_cast<Port>(b)};
    }
  }
  return Graph::from_adjacency(std::move(adj));
}

Graph make_binary_tree(std::size_t n) {
  if (n < 1) throw std::invalid_argument("make_binary_tree: n >= 1");
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / 2, v);
  return g;
}

Graph make_lollipop(std::size_t n) {
  if (n < 4) throw std::invalid_argument("make_lollipop: n >= 4 required");
  const std::size_t clique = (n + 1) / 2;
  Graph g(n);
  for (NodeId u = 0; u < clique; ++u)
    for (NodeId v = u + 1; v < clique; ++v) g.add_edge(u, v);
  for (NodeId v = static_cast<NodeId>(clique); v < n; ++v)
    g.add_edge(v - 1 < clique ? static_cast<NodeId>(clique - 1) : v - 1, v);
  return g;
}

Graph make_random_tree(std::size_t n, Rng& rng) {
  if (n < 1) throw std::invalid_argument("make_random_tree: n >= 1");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Prufer decoding yields the uniform distribution over labeled trees.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));
  std::vector<std::uint32_t> deg(n, 1);
  for (NodeId x : prufer) ++deg[x];
  std::set<NodeId> leaves;
  for (NodeId v = 0; v < n; ++v)
    if (deg[v] == 1) leaves.insert(v);
  for (NodeId x : prufer) {
    const NodeId leaf = *leaves.begin();
    leaves.erase(leaves.begin());
    g.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.insert(x);
  }
  const NodeId a = *leaves.begin();
  const NodeId b = *std::next(leaves.begin());
  g.add_edge(a, b);
  return g;
}

Graph make_connected_er(std::size_t n, double p, Rng& rng) {
  if (n < 2) throw std::invalid_argument("make_connected_er: n >= 2");
  if (p <= 0) {
    // Just above the connectivity threshold ln(n)/n, with slack.
    p = std::min(1.0, 2.5 * std::max(1.0, std::log(static_cast<double>(n))) /
                          static_cast<double>(n));
  }
  for (int attempt = 0; attempt < 4096; ++attempt) {
    Graph g(n);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (rng.uniform() < p) g.add_edge(u, v);
    if (g.is_connected()) return g;
  }
  throw std::runtime_error("make_connected_er: failed to get connected graph");
}

Graph make_random_regular(std::size_t n, std::size_t d, Rng& rng) {
  if (n * d % 2 != 0 || d >= n || n < d + 1)
    throw std::invalid_argument("make_random_regular: invalid (n, d)");
  for (int attempt = 0; attempt < 8192; ++attempt) {
    // Pairing (configuration) model: put d stubs per node, match uniformly,
    // reject on loops/multi-edges or disconnection.
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    Graph g(n);
    std::set<std::pair<NodeId, NodeId>> used;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      NodeId u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!used.insert({u, v}).second) {
        ok = false;
        break;
      }
      g.add_edge(u, v);
    }
    if (ok && g.is_connected()) return g;
  }
  throw std::runtime_error("make_random_regular: resampling failed");
}

Graph shuffle_ports(const Graph& g, Rng& rng) {
  // perms[v] maps old port -> new port at node v.
  std::vector<std::vector<Port>> perms(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    perms[v].resize(g.degree(v));
    std::iota(perms[v].begin(), perms[v].end(), Port{0});
    rng.shuffle(perms[v]);
  }
  std::vector<std::vector<HalfEdge>> adj(g.n());
  for (NodeId v = 0; v < g.n(); ++v) adj[v].resize(g.degree(v));
  for (NodeId v = 0; v < g.n(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      const HalfEdge he = g.hop(v, p);
      adj[v][perms[v][p]] = HalfEdge{he.to, perms[he.to][he.reverse]};
    }
  }
  return Graph::from_adjacency(std::move(adj));
}

Graph relabel_nodes(const Graph& g, const std::vector<NodeId>& perm) {
  assert(perm.size() == g.n());
  std::vector<std::vector<HalfEdge>> adj(g.n());
  for (NodeId v = 0; v < g.n(); ++v) adj[perm[v]].resize(g.degree(v));
  for (NodeId v = 0; v < g.n(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      const HalfEdge he = g.hop(v, p);
      adj[perm[v]][p] = HalfEdge{perm[he.to], he.reverse};
    }
  }
  return Graph::from_adjacency(std::move(adj));
}

std::vector<NamedGraph> standard_menagerie(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedGraph> out;
  const std::size_t nn = std::max<std::size_t>(n, 4);
  out.push_back({"path", make_path(nn)});
  out.push_back({"ring", make_ring(nn)});
  out.push_back({"complete", make_complete(nn)});
  out.push_back({"star", make_star(nn)});
  {
    std::size_t r = 2;
    while (r * r < nn) ++r;
    out.push_back({"grid", make_grid(r, (nn + r - 1) / r)});
  }
  out.push_back({"binary_tree", make_binary_tree(nn)});
  out.push_back({"lollipop", make_lollipop(nn)});
  out.push_back({"random_tree", make_random_tree(nn, rng)});
  out.push_back({"er", make_connected_er(nn, 0.0, rng)});
  if (nn >= 5 && (nn * 3) % 2 == 0)
    out.push_back({"regular3", make_random_regular(nn, 3, rng)});
  // Port-shuffled variants exercise labelings without structural symmetry.
  out.push_back({"ring_shuffled", shuffle_ports(make_ring(nn), rng)});
  out.push_back({"er_shuffled", shuffle_ports(make_connected_er(nn, 0.0, rng), rng)});
  return out;
}

}  // namespace bdg
