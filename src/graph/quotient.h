#pragma once
// Views and quotient graphs of anonymous port-labeled graphs
// (Yamashita-Kameda [47]; used by Czyzowicz et al. [16] as the map a
// single robot can construct, and by this paper's Theorem 1).
//
// The *view* of node v is the infinite rooted tree of all port-labeled
// walks from v. Two nodes are equivalent iff their views are equal; by
// Norris' theorem views truncated at depth n-1 already decide equality.
// The quotient graph Q_G has one node per equivalence class, with an edge
// (X, p) -> (Y, q) whenever some (equivalently, every) x in X has port p
// leading to a class-Y node that sees x through port q. Q_G may contain
// self-loops and parallel edges.
//
// We compute the classes by iterated signature refinement, which converges
// to exactly the view-equivalence classes.
//
// Theorem 1 of the paper applies precisely to graphs where G ~ Q_G, i.e.
// where all n views are distinct (a quotient with fewer nodes can never be
// isomorphic to G).
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace bdg {

struct QuotientResult {
  Graph quotient;                    ///< the quotient (multi)graph
  std::vector<std::uint32_t> cls;    ///< node -> class id (= quotient node)
  std::uint32_t num_classes = 0;
};

/// Compute view-equivalence classes and the quotient graph of g.
/// Requires g connected.
[[nodiscard]] QuotientResult quotient_graph(const Graph& g);

/// True iff every node of g has a distinct view, i.e. Q_G has n nodes and
/// is therefore (trivially) isomorphic to G. This is the graph-class
/// precondition of Theorem 1.
[[nodiscard]] bool has_trivial_quotient(const Graph& g);

}  // namespace bdg
