#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "core/crash_dispersion.h"
#include "core/ring_dispersion.h"
#include "core/group_dispersion.h"
#include "core/quotient_dispersion.h"
#include "core/strong_dispersion.h"
#include "core/tournament_dispersion.h"
#include "util/rng.h"

namespace bdg::core {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kQuotient: return "quotient(T1)";
    case Algorithm::kTournamentArbitrary: return "tournament-arbitrary(T2)";
    case Algorithm::kSqrtArbitrary: return "sqrt-arbitrary(T5)";
    case Algorithm::kTournamentGathered: return "tournament-gathered(T3)";
    case Algorithm::kThreeGroupGathered: return "three-group(T4)";
    case Algorithm::kStrongArbitrary: return "strong-arbitrary(T7)";
    case Algorithm::kStrongGathered: return "strong-gathered(T6)";
    case Algorithm::kCrashRealGathering: return "crash-real-gathering(ext)";
    case Algorithm::kRingBaseline: return "ring-baseline[34,36]";
  }
  return "unknown";
}

std::uint32_t max_tolerated_f(Algorithm a, std::uint32_t n) {
  switch (a) {
    case Algorithm::kQuotient:
    case Algorithm::kRingBaseline:
      return n >= 1 ? n - 1 : 0;
    case Algorithm::kTournamentArbitrary:
    case Algorithm::kTournamentGathered:
      return n / 2 >= 1 ? n / 2 - 1 : 0;
    case Algorithm::kThreeGroupGathered:
    case Algorithm::kCrashRealGathering:
      return n / 3 >= 1 ? n / 3 - 1 : 0;
    case Algorithm::kSqrtArbitrary: {
      // The paper's f = O(sqrt n) claim is asymptotic: the two-group run
      // needs honest majorities in BOTH halves, i.e. f <= ceil(|A|/2)-1
      // with |A| = floor(n/2). At small n that bound is the binding one.
      const auto sqrtn =
          static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
      const std::uint32_t half = n / 2;
      const std::uint32_t group_safe = half >= 1 ? (half + 1) / 2 - 1 : 0;
      return std::min(sqrtn, group_safe);
    }
    case Algorithm::kStrongArbitrary:
    case Algorithm::kStrongGathered:
      return n / 4 >= 1 ? n / 4 - 1 : 0;
  }
  return 0;
}

bool starts_gathered(Algorithm a) {
  switch (a) {
    case Algorithm::kQuotient:
    case Algorithm::kTournamentArbitrary:
    case Algorithm::kSqrtArbitrary:
    case Algorithm::kStrongArbitrary:
    case Algorithm::kCrashRealGathering:
    case Algorithm::kRingBaseline:
      return false;
    case Algorithm::kTournamentGathered:
    case Algorithm::kThreeGroupGathered:
    case Algorithm::kStrongGathered:
      return true;
  }
  return true;
}

bool handles_strong(Algorithm a) {
  return a == Algorithm::kStrongGathered || a == Algorithm::kStrongArbitrary;
}

namespace {

/// Distinct robot IDs from [1, n^2] (paper: IDs from [1, n^c], c > 1).
std::vector<sim::RobotId> draw_ids(std::uint32_t n, Rng& rng) {
  const std::uint64_t space = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(n) * n, static_cast<std::uint64_t>(n) + 1);
  std::set<sim::RobotId> ids;
  while (ids.size() < n) ids.insert(1 + rng.below(space));
  return {ids.begin(), ids.end()};
}

AlgorithmPlan make_plan(Algorithm a, const Graph& g,
                        const std::vector<sim::RobotId>& ids, std::uint32_t f,
                        const gather::CostModel& cost) {
  switch (a) {
    case Algorithm::kQuotient:
      return plan_quotient_dispersion(g, cost);
    case Algorithm::kTournamentArbitrary:
      return plan_tournament_dispersion(g, ids, /*gathered=*/false, f, cost);
    case Algorithm::kTournamentGathered:
      return plan_tournament_dispersion(g, ids, /*gathered=*/true, f, cost);
    case Algorithm::kThreeGroupGathered:
      return plan_three_group_dispersion(g, ids, cost);
    case Algorithm::kSqrtArbitrary:
      return plan_sqrt_dispersion(g, ids, f, cost);
    case Algorithm::kStrongGathered:
      return plan_strong_gathered_dispersion(g, ids, cost);
    case Algorithm::kStrongArbitrary:
      return plan_strong_arbitrary_dispersion(g, ids, f, cost);
    case Algorithm::kCrashRealGathering:
      return plan_crash_real_dispersion(g, ids, cost);
    case Algorithm::kRingBaseline:
      return plan_ring_dispersion(g, cost);
  }
  throw std::invalid_argument("make_plan: bad algorithm");
}

}  // namespace

ScenarioResult run_scenario(const Graph& g, const ScenarioConfig& cfg) {
  const auto n = static_cast<std::uint32_t>(g.n());
  if (cfg.num_byzantine >= n)
    throw std::invalid_argument("run_scenario: need at least one honest robot");
  Rng rng(cfg.seed);
  const std::vector<sim::RobotId> ids = draw_ids(n, rng);  // sorted (std::set)

  // Byzantine subset: smallest IDs (worst case for rank preference) or a
  // random subset.
  std::vector<bool> is_byz(n, false);
  if (cfg.byz_smallest_ids) {
    for (std::uint32_t i = 0; i < cfg.num_byzantine; ++i) is_byz[i] = true;
  } else {
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    rng.shuffle(idx);
    for (std::uint32_t i = 0; i < cfg.num_byzantine; ++i) is_byz[idx[i]] = true;
  }

  // Placements: gathered algorithms put everyone at the rally node 0;
  // otherwise robots are scattered uniformly (Byzantine anywhere).
  std::vector<NodeId> starts(n, 0);
  if (!starts_gathered(cfg.algorithm)) {
    for (auto& s : starts) s = static_cast<NodeId>(rng.below(g.n()));
  }

  const bool strong = cfg.strong_byzantine || handles_strong(cfg.algorithm);
  const AlgorithmPlan plan =
      make_plan(cfg.algorithm, g, ids, cfg.num_byzantine, cfg.cost);

  sim::Engine eng(g);
  eng.set_observer(cfg.observer);
  std::uint32_t byz_index = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (is_byz[i]) {
      const ByzStrategy strategy =
          cfg.strategies.empty()
              ? cfg.strategy
              : cfg.strategies[byz_index % cfg.strategies.size()];
      ++byz_index;
      eng.add_robot(ids[i],
                    strong ? sim::Faultiness::kStrongByzantine
                           : sim::Faultiness::kWeakByzantine,
                    starts[i],
                    make_byzantine_program(strategy, ids, rng.next(),
                                           plan.byz_wake_round));
    } else {
      eng.add_robot(ids[i], sim::Faultiness::kHonest, starts[i],
                    plan.honest(ids[i], starts[i]));
    }
  }

  ScenarioResult res;
  res.planned_rounds = plan.total_rounds;
  res.stats = eng.run(plan.total_rounds + 16);
  res.verify = verify_dispersion(eng);
  return res;
}

}  // namespace bdg::core
