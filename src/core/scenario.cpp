#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "core/crash_dispersion.h"
#include "core/ring_dispersion.h"
#include "core/group_dispersion.h"
#include "core/quotient_dispersion.h"
#include "core/strong_dispersion.h"
#include "core/tournament_dispersion.h"
#include "util/rng.h"

namespace bdg::core {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kQuotient: return "quotient(T1)";
    case Algorithm::kTournamentArbitrary: return "tournament-arbitrary(T2)";
    case Algorithm::kSqrtArbitrary: return "sqrt-arbitrary(T5)";
    case Algorithm::kTournamentGathered: return "tournament-gathered(T3)";
    case Algorithm::kThreeGroupGathered: return "three-group(T4)";
    case Algorithm::kStrongArbitrary: return "strong-arbitrary(T7)";
    case Algorithm::kStrongGathered: return "strong-gathered(T6)";
    case Algorithm::kCrashRealGathering: return "crash-real-gathering(ext)";
    case Algorithm::kRingBaseline: return "ring-baseline[34,36]";
  }
  return "unknown";
}

std::optional<Algorithm> algorithm_from_string(const std::string& name) {
  // Keep this list in sync with the Algorithm enum (the to_string switch
  // warns on a missing case; this list is the matching inverse). A missed
  // entry degrades safely: checkpoint lines for that algorithm parse to
  // nullopt and the points re-run instead of resuming.
  for (const Algorithm a :
       {Algorithm::kQuotient, Algorithm::kTournamentArbitrary,
        Algorithm::kSqrtArbitrary, Algorithm::kTournamentGathered,
        Algorithm::kThreeGroupGathered, Algorithm::kStrongArbitrary,
        Algorithm::kStrongGathered, Algorithm::kCrashRealGathering,
        Algorithm::kRingBaseline}) {
    if (to_string(a) == name) return a;
  }
  return std::nullopt;
}

std::uint32_t max_tolerated_f(Algorithm a, std::uint32_t n) {
  switch (a) {
    case Algorithm::kQuotient:
    case Algorithm::kRingBaseline:
      return n >= 1 ? n - 1 : 0;
    case Algorithm::kTournamentArbitrary:
    case Algorithm::kTournamentGathered:
      return n / 2 >= 1 ? n / 2 - 1 : 0;
    case Algorithm::kThreeGroupGathered:
    case Algorithm::kCrashRealGathering:
      return n / 3 >= 1 ? n / 3 - 1 : 0;
    case Algorithm::kSqrtArbitrary: {
      // The paper's f = O(sqrt n) claim is asymptotic: the two-group run
      // needs honest majorities in BOTH halves, i.e. f <= ceil(|A|/2)-1
      // with |A| = floor(n/2). At small n that bound is the binding one.
      const auto sqrtn =
          static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n)));
      const std::uint32_t half = n / 2;
      const std::uint32_t group_safe = half >= 1 ? (half + 1) / 2 - 1 : 0;
      return std::min(sqrtn, group_safe);
    }
    case Algorithm::kStrongArbitrary:
    case Algorithm::kStrongGathered:
      return n / 4 >= 1 ? n / 4 - 1 : 0;
  }
  return 0;
}

std::uint32_t max_tolerated_f_k(Algorithm a, std::uint32_t n,
                                std::uint32_t k) {
  if (k == 0) k = n;
  if (k == 0 || n == 0) return 0;  // no graph / no robots: nothing tolerated
  const std::uint32_t waves = (k + n - 1) / n;
  // Per-wave tolerance of the smallest wave; striping puts at most
  // ceil(f / waves) Byzantine robots in any wave.
  const std::uint32_t per_wave = max_tolerated_f(a, k / waves);
  std::uint32_t f = waves * per_wave;
  // Theorem 8 feasibility: ceil((k - f)/n) must stay equal to ceil(k/n),
  // i.e. f < k - (waves - 1) * n.
  const std::uint32_t residue = k - (waves - 1) * n;
  f = std::min(f, residue >= 1 ? residue - 1 : 0);
  // Wave capacity: a node-denying adversary (squatter) costs every wave a
  // settlement slot, so W waves place at most W * (n - f) honest robots;
  // W * (n - f) >= k - f gives f <= (W*n - k) / (W - 1). Full waves
  // (k = W * n) therefore tolerate no faults — the price of meeting the
  // exact ceil((k - f)/n) cap with per-wave 1-per-node instances.
  if (waves > 1) f = std::min(f, (waves * n - k) / (waves - 1));
  return std::min(f, k - 1);
}

bool starts_gathered(Algorithm a) {
  switch (a) {
    case Algorithm::kQuotient:
    case Algorithm::kTournamentArbitrary:
    case Algorithm::kSqrtArbitrary:
    case Algorithm::kStrongArbitrary:
    case Algorithm::kCrashRealGathering:
    case Algorithm::kRingBaseline:
      return false;
    case Algorithm::kTournamentGathered:
    case Algorithm::kThreeGroupGathered:
    case Algorithm::kStrongGathered:
      return true;
  }
  return true;
}

bool handles_strong(Algorithm a) {
  return a == Algorithm::kStrongGathered || a == Algorithm::kStrongArbitrary;
}

namespace {

/// Distinct robot IDs from [1, max(k, n)^2] (paper: IDs from [1, n^c],
/// c > 1). For k == n this is the seed-stable [1, n^2] draw.
std::vector<sim::RobotId> draw_ids(std::uint32_t k, std::uint32_t n,
                                   Rng& rng) {
  const std::uint64_t m = std::max(k, n);
  const std::uint64_t space =
      std::max<std::uint64_t>(m * m, static_cast<std::uint64_t>(k) + 1);
  std::set<sim::RobotId> ids;
  while (ids.size() < k) ids.insert(1 + rng.below(space));
  return {ids.begin(), ids.end()};
}

AlgorithmPlan make_plan(Algorithm a, const Graph& g,
                        const std::vector<sim::RobotId>& ids, std::uint32_t f,
                        const gather::CostModel& cost, bool batched_pairing) {
  switch (a) {
    case Algorithm::kQuotient:
      return plan_quotient_dispersion(g, cost);
    case Algorithm::kTournamentArbitrary:
      return plan_tournament_dispersion(g, ids, /*gathered=*/false, f, cost,
                                        batched_pairing);
    case Algorithm::kTournamentGathered:
      return plan_tournament_dispersion(g, ids, /*gathered=*/true, f, cost,
                                        batched_pairing);
    case Algorithm::kThreeGroupGathered:
      return plan_three_group_dispersion(g, ids, cost);
    case Algorithm::kSqrtArbitrary:
      return plan_sqrt_dispersion(g, ids, f, cost);
    case Algorithm::kStrongGathered:
      return plan_strong_gathered_dispersion(g, ids, cost);
    case Algorithm::kStrongArbitrary:
      return plan_strong_arbitrary_dispersion(g, ids, f, cost);
    case Algorithm::kCrashRealGathering:
      return plan_crash_real_dispersion(g, ids, cost);
    case Algorithm::kRingBaseline:
      return plan_ring_dispersion(g, cost);
  }
  throw std::invalid_argument("make_plan: bad algorithm");
}

}  // namespace

std::vector<sim::RobotId> draw_robot_ids(std::uint32_t k, std::uint32_t n,
                                         std::uint64_t seed) {
  Rng rng(seed);
  return draw_ids(k, n, rng);
}

ScenarioResult run_scenario(const Graph& g, const ScenarioConfig& cfg) {
  const auto n = static_cast<std::uint32_t>(g.n());
  const std::uint32_t k = cfg.num_robots == 0 ? n : cfg.num_robots;
  if (cfg.num_byzantine >= k)
    throw std::invalid_argument("run_scenario: need at least one honest robot");
  Rng rng(cfg.seed);
  const std::vector<sim::RobotId> ids =
      draw_ids(k, n, rng);  // sorted (std::set)

  // Byzantine subset: smallest IDs (worst case for rank preference) or a
  // random subset.
  std::vector<bool> is_byz(k, false);
  if (cfg.byz_smallest_ids) {
    for (std::uint32_t i = 0; i < cfg.num_byzantine; ++i) is_byz[i] = true;
  } else {
    std::vector<std::uint32_t> idx(k);
    for (std::uint32_t i = 0; i < k; ++i) idx[i] = i;
    rng.shuffle(idx);
    for (std::uint32_t i = 0; i < cfg.num_byzantine; ++i) is_byz[idx[i]] = true;
  }

  // Placements: gathered algorithms put everyone at the rally node 0;
  // otherwise robots are scattered uniformly (Byzantine anywhere).
  std::vector<NodeId> starts(k, 0);
  if (!starts_gathered(cfg.algorithm)) {
    for (auto& s : starts) s = static_cast<NodeId>(rng.below(g.n()));
  }

  // Wave scheduling (Theorem 8's k-robot setting): robots are striped
  // across ceil(k/n) waves by ID rank (wave of rank i = i mod waves), each
  // wave runs its own instance of the algorithm, and wave w's programs
  // start only after waves 0..w-1 exhausted their round budgets. Each wave
  // settles at most one honest robot per node, so the final load is at most
  // ceil(k/n) = ceil((k-f)/n) per node whenever Theorem 8 says dispersion
  // is feasible. k <= n is the degenerate single-wave case and runs
  // exactly the paper's Table 1 pipeline.
  const std::uint32_t waves = (k + n - 1) / n;
  std::vector<std::vector<sim::RobotId>> wave_ids(waves);
  std::vector<std::uint32_t> wave_byz(waves, 0);
  for (std::uint32_t i = 0; i < k; ++i) {
    wave_ids[i % waves].push_back(ids[i]);
    if (is_byz[i]) ++wave_byz[i % waves];
  }

  const bool strong = cfg.strong_byzantine || handles_strong(cfg.algorithm);
  std::vector<AlgorithmPlan> plans;
  std::vector<Round> offsets(waves, Round(0));
  Round total_rounds = 0;
  plans.reserve(waves);
  for (std::uint32_t w = 0; w < waves; ++w) {
    plans.push_back(make_plan(cfg.algorithm, g, wave_ids[w], wave_byz[w],
                              cfg.cost, cfg.batched_pairing));
    offsets[w] = total_rounds;
    total_rounds += plans[w].total_rounds;
  }

  ScenarioResult res;
  res.planned_rounds = total_rounds;
  // A bound past 2^128-1 cannot be run OR verified: fail loudly before
  // touching the engine instead of capping silently (the pre-Round code
  // clamped at 2^62 and reported fictitious round counts).
  if (total_rounds.is_saturated()) {
    res.saturated = true;
    res.verify = verify_round_bound(total_rounds);
    return res;
  }

  // Charged oracle windows [begin, end) per wave, in global rounds. Every
  // Byzantine robot sleeps through each window at or after its own wake
  // round (nothing can be attacked there — honest robots are walking or
  // sleeping out an imported bound — and staying awake would defeat the
  // engine's fast-forwarding for every later wave).
  std::vector<std::pair<Round, Round>> charged;
  for (std::uint32_t w = 0; w < waves; ++w) {
    // Explicit non-empty guard: a zero-length wave prefix must not emit an
    // [a, a) window (ByzSchedule validation rejects it; ChargeGate would
    // only skip it by accident of its >= comparison).
    const std::pair<Round, Round> win{offsets[w],
                                      offsets[w] + plans[w].byz_wake_round};
    if (win.second > win.first) charged.push_back(win);
  }

  sim::Engine eng(g);
  eng.set_observer(cfg.observer);
  std::uint32_t byz_index = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t w = i % waves;
    if (is_byz[i]) {
      const ByzStrategy strategy =
          cfg.strategies.empty()
              ? cfg.strategy
              : cfg.strategies[byz_index % cfg.strategies.size()];
      ++byz_index;
      ByzSchedule sched;
      sched.wake = offsets[w] + plans[w].byz_wake_round;
      for (const auto& win : charged)
        if (win.first >= sched.wake) sched.charged.push_back(win);
      // Draw the robot's seed exactly once so the compiled and coroutine
      // paths consume the scenario RNG identically.
      const std::uint64_t byz_seed = rng.next();
      const bool compiled =
          cfg.compiled_adversary && cfg.observer == nullptr;
      eng.add_robot(ids[i],
                    strong ? sim::Faultiness::kStrongByzantine
                           : sim::Faultiness::kWeakByzantine,
                    starts[i],
                    compiled ? make_compiled_byzantine_program(
                                   strategy, ids, byz_seed, std::move(sched))
                             : make_byzantine_program(strategy, ids, byz_seed,
                                                      std::move(sched)));
    } else {
      eng.add_robot(ids[i], sim::Faultiness::kHonest, starts[i],
                    plans[w].honest(ids[i], starts[i]), offsets[w]);
    }
  }

  res.stats = eng.run(total_rounds + 16);
  res.verify = k == n ? verify_dispersion(eng)
                      : verify_k_dispersion(eng, k, cfg.num_byzantine);
  return res;
}

}  // namespace bdg::core
