#pragma once
// Shared building blocks of the end-to-end dispersion algorithms:
// round-robin pairing schedules, majority voting over map codes, and the
// common plan interface consumed by the scenario harness.
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/round.h"
#include "graph/canonical.h"
#include "graph/graph.h"
#include "sim/engine.h"

namespace bdg::core {

/// One pairing window: each participant appears in at most one pair.
/// A robot absent from every pair idles that window.
using PairingWindow = std::vector<std::pair<sim::RobotId, sim::RobotId>>;

/// All-pairs round-robin schedule (circle method): k participants meet
/// pairwise across k-1 windows (k even; one participant idles per window
/// when k is odd). This realizes the paper's "every robot pairs up with
/// every other robot in O(n) stages" with the same guarantees.
///
/// Throws std::invalid_argument if any id is 0: the schedule uses 0 as
/// its internal dummy-bye marker, and the pairing protocols use "no
/// partner" sentinels — a real robot with ID 0 would silently idle every
/// window and corrupt the schedule, so it is rejected loudly at plan time
/// (the engine likewise rejects ID 0 at add_robot).
[[nodiscard]] std::vector<PairingWindow> round_robin_schedule(
    std::vector<sim::RobotId> ids);

/// Most frequent code among votes whose count strictly exceeds
/// `fault_budget` (ties above the budget: lexicographically smallest);
/// nullopt when votes is empty or no count clears the budget.
///
/// Callers that know their adversary bound f MUST pass it: within
/// tolerance the true map collects at least f+1 votes (every honest
/// pairing yields it) while coordinated liars collect at most f, so the
/// budget filter never changes a legal-f outcome — but AT the tolerance
/// frontier it turns "adversarial code deterministically wins a tie
/// toward the smaller canonical code" into a loud no-map abort the
/// verifier flags. The default budget 0 is plain plurality, kept for the
/// group algorithms whose vote multisets are quorum-filtered upstream.
[[nodiscard]] std::optional<CanonicalCode> majority_code(
    const std::vector<CanonicalCode>& votes, std::size_t fault_budget = 0);

/// Decode a voted map code defensively (Byzantine-supplied codes may be
/// garbage); nullopt if the code is not a valid connected port-labeled map
/// of exactly n nodes.
[[nodiscard]] std::optional<Graph> decode_map(const CanonicalCode& code,
                                              std::uint32_t n);

/// A planned algorithm instance: the scenario harness builds one per run.
struct AlgorithmPlan {
  /// Upper bound on the honest termination round (engine run budget).
  /// Saturating 128-bit: a plan whose bound overflows reports
  /// is_saturated() and the scenario harness refuses to run it (loud
  /// verification failure / structured sweep skip), never a silent cap.
  Round total_rounds = 0;
  /// End of the charged oracle prefix (gathering / Find-Map); Byzantine
  /// programs sleep until here so fast-forwarding stays effective.
  Round byz_wake_round = 0;
  /// Program builder for an honest robot with the given ID and start node.
  std::function<sim::ProgramFactory(sim::RobotId, NodeId)> honest;
};

}  // namespace bdg::core
