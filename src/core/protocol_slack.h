#pragma once
// Protocol slack constants, named in one place with the invariant each one
// protects. These used to be magic "+ 8" / "+ 6" / "+ 3" literals drifting
// independently across core/tournament_dispersion.cpp and
// explore/engine_map.cpp; a change to one of them without the matching
// change elsewhere silently broke the fixed-length-window synchrony the
// outer protocols rely on (both partners of every pairing window must end
// the window on the same round). tests/tournament_test.cpp pins the
// synchrony invariant across seeds and adversary mixes.
#include <cstdint>

namespace bdg::core {

/// Rounds appended to an algorithm plan's total (and to harness run
/// budgets) beyond the sum of its phase bounds. Invariant protected: the
/// final publish/settle round of a phase plus the engine's end-of-round
/// bookkeeping never spill past the plan bound, so `verify_round_bound`
/// and the engine budget `plan.total_rounds` remain true upper bounds on
/// honest termination. Must be >= 1 (the map-finding Done broadcast
/// consumes one round after the last exploration op); 8 keeps headroom
/// for a phase gaining a constant number of closing rounds.
inline constexpr std::uint64_t kPlanCloseSlack = 8;

/// Agent-side reserve inside one map-finding window, checked by
/// AgentRun::can_spend before every protocol op. Invariant protected: a
/// single op sequence between two can_spend checks consumes at most 3
/// rounds (step + park + re-enter is the longest) and can grow the
/// walk-home log by at most 3 ports, so `used + home + kAgentOpReserve`
/// staying within the budget guarantees the unconditional walk home (the
/// reversed move log) plus the op always fit — an honest agent is back at
/// the rally node when the fixed-length window ends, whatever Byzantine
/// partners did.
inline constexpr std::uint64_t kAgentOpReserve = 6;

/// Token-side reserve inside one map-finding window. Invariant protected:
/// one listen round can add at most one move to the token's walk-home log,
/// so breaking out while `budget - used > home + kTokenStepReserve` leaves
/// the token enough rounds to replay its reversed move log and be back at
/// the rally node at the window boundary.
inline constexpr std::uint64_t kTokenStepReserve = 3;

}  // namespace bdg::core
