#include "core/algorithm_common.h"

#include <algorithm>
#include <stdexcept>

namespace bdg::core {

std::vector<PairingWindow> round_robin_schedule(std::vector<sim::RobotId> ids) {
  std::sort(ids.begin(), ids.end());
  if (!ids.empty() && ids.front() == 0)
    throw std::invalid_argument(
        "round_robin_schedule: robot id 0 is reserved (dummy bye)");
  if (ids.size() % 2 != 0) ids.push_back(0);  // 0 = dummy (idle partner)
  const std::size_t k = ids.size();
  if (k < 2) return {};
  std::vector<PairingWindow> windows;
  windows.reserve(k - 1);
  // Circle method: ids[0] fixed, the rest rotate one slot per window.
  std::vector<sim::RobotId> arr = ids;
  for (std::size_t w = 0; w + 1 < k; ++w) {
    PairingWindow win;
    for (std::size_t i = 0; i < k / 2; ++i) {
      const sim::RobotId a = arr[i];
      const sim::RobotId b = arr[k - 1 - i];
      if (a != 0 && b != 0) win.emplace_back(std::min(a, b), std::max(a, b));
    }
    windows.push_back(std::move(win));
    // Rotate arr[1..k-1] right by one.
    std::rotate(arr.begin() + 1, arr.end() - 1, arr.end());
  }
  return windows;
}

std::optional<CanonicalCode> majority_code(
    const std::vector<CanonicalCode>& votes, std::size_t fault_budget) {
  if (votes.empty()) return std::nullopt;
  // Sort-and-run-count instead of a tree map: equal codes become adjacent
  // runs in ascending order, so the first run to strictly beat the budget
  // bar is exactly the old map scan's winner (ties keep the smaller code).
  std::vector<const CanonicalCode*> sorted;
  sorted.reserve(votes.size());
  for (const auto& v : votes) sorted.push_back(&v);
  std::sort(sorted.begin(), sorted.end(),
            [](const CanonicalCode* a, const CanonicalCode* b) {
              return *a < *b;
            });
  const CanonicalCode* best = nullptr;
  std::size_t best_count = fault_budget;  // must strictly beat the budget
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i + 1;
    while (j < sorted.size() && *sorted[j] == *sorted[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = sorted[i];
    }
    i = j;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<Graph> decode_map(const CanonicalCode& code, std::uint32_t n) {
  try {
    Graph g = graph_from_code(code);
    if (g.n() != n || !g.is_connected()) return std::nullopt;
    return g;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace bdg::core
