#pragma once
// Byzantine behavior library — the adversary strategies the test suite and
// benchmarks pit against the honest protocols. A weak Byzantine robot may
// lie arbitrarily in message *payloads* and deviate from the protocol, but
// its messages always carry its true ID (engine-enforced); a strong one
// additionally forges sender IDs via Ctx::spoof_broadcast.
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/round.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace bdg::core {

enum class ByzStrategy {
  kCrash,          ///< never communicates, never moves
  kRandomWalker,   ///< wanders, beacons tobeSettled, never settles
  kSquatter,       ///< sits at its start node claiming Settled forever
  kFakeSettler,    ///< claims Settled, relocates periodically, claims again
  kSilentSettler,  ///< claims Settled once, then goes silent (step-4 bait)
  kIntentSpammer,  ///< always flags intent/settle announcements, never stays
  kMapLiar,        ///< in map finding: garbage instructions / presence lies
  kSpoofer,        ///< strong only: forges honest IDs and quorum votes
};

[[nodiscard]] std::string to_string(ByzStrategy s);

/// Inverse of to_string(ByzStrategy); nullopt for unknown names. Used by
/// the sweep checkpoint reader and the CLI mix parser.
[[nodiscard]] std::optional<ByzStrategy> strategy_from_string(
    const std::string& name);

/// All weak-compatible strategies (everything but kSpoofer).
[[nodiscard]] const std::vector<ByzStrategy>& weak_strategies();

/// When a Byzantine robot is allowed to act. During a charged oracle phase
/// (gathering / Find-Map) every honest robot is walking or sleeping out an
/// imported round bound: there is nothing to attack, and a Byzantine robot
/// that stays awake only defeats the engine's round fast-forwarding. The
/// scenario harness therefore hands each Byzantine robot its wave's wake
/// round plus the charged windows of every LATER wave (Theorem 8 wave
/// scheduling), and the strategies sleep through all of them — so
/// multi-wave k > n sweeps fast-forward their oracle prefixes exactly like
/// single-wave runs.
struct ByzSchedule {
  /// First active round (end of the robot's own wave's charged prefix).
  Round wake = 0;
  /// Charged windows [begin, end) at or after `wake`, sorted and disjoint;
  /// the robot sleeps through each.
  std::vector<std::pair<Round, Round>> charged;

  ByzSchedule() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a bare wake round is a
  // schedule (the single-wave case every test and bench uses).
  ByzSchedule(Round wake_round) : wake(wake_round) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  ByzSchedule(std::uint64_t wake_round) : wake(wake_round) {}
};

/// Build the engine program for a Byzantine robot.
/// `peer_ids` lists all robot IDs (used for spoofing and targeted lies);
/// `seed` derives the robot's private randomness.
[[nodiscard]] sim::ProgramFactory make_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed);

/// Same, but the robot honors `schedule`: it sleeps until schedule.wake
/// first and stays asleep through every later charged window.
[[nodiscard]] sim::ProgramFactory make_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed, ByzSchedule schedule);

}  // namespace bdg::core
