#pragma once
// Byzantine behavior library — the adversary strategies the test suite and
// benchmarks pit against the honest protocols. A weak Byzantine robot may
// lie arbitrarily in message *payloads* and deviate from the protocol, but
// its messages always carry its true ID (engine-enforced); a strong one
// additionally forges sender IDs via Ctx::spoof_broadcast.
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/round.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace bdg::core {

enum class ByzStrategy {
  kCrash,          ///< never communicates, never moves
  kRandomWalker,   ///< wanders, beacons tobeSettled, never settles
  kSquatter,       ///< sits at its start node claiming Settled forever
  kFakeSettler,    ///< claims Settled, relocates periodically, claims again
  kSilentSettler,  ///< claims Settled once, then goes silent (step-4 bait)
  kIntentSpammer,  ///< always flags intent/settle announcements, never stays
  kMapLiar,        ///< in map finding: garbage instructions / presence lies
  kSpoofer,        ///< strong only: forges honest IDs and quorum votes
};

[[nodiscard]] std::string to_string(ByzStrategy s);

/// Inverse of to_string(ByzStrategy); nullopt for unknown names. Used by
/// the sweep checkpoint reader and the CLI mix parser.
[[nodiscard]] std::optional<ByzStrategy> strategy_from_string(
    const std::string& name);

/// All weak-compatible strategies (everything but kSpoofer).
[[nodiscard]] const std::vector<ByzStrategy>& weak_strategies();

/// When a Byzantine robot is allowed to act. During a charged oracle phase
/// (gathering / Find-Map) every honest robot is walking or sleeping out an
/// imported round bound: there is nothing to attack, and a Byzantine robot
/// that stays awake only defeats the engine's round fast-forwarding. The
/// scenario harness therefore hands each Byzantine robot its wave's wake
/// round plus the charged windows of every LATER wave (Theorem 8 wave
/// scheduling), and the strategies sleep through all of them — so
/// multi-wave k > n sweeps fast-forward their oracle prefixes exactly like
/// single-wave runs.
struct ByzSchedule {
  /// First active round (end of the robot's own wave's charged prefix).
  Round wake = 0;
  /// Charged windows [begin, end) at or after `wake`, sorted and disjoint;
  /// the robot sleeps through each.
  std::vector<std::pair<Round, Round>> charged;

  ByzSchedule() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a bare wake round is a
  // schedule (the single-wave case every test and bench uses).
  ByzSchedule(Round wake_round) : wake(wake_round) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  ByzSchedule(std::uint64_t wake_round) : wake(wake_round) {}
};

/// Cursor over a schedule's charged windows. pending() returns how long to
/// sleep from `now` to clear the window containing it (0 = outside every
/// window). Windows are sorted, so the cursor only ever advances —
/// checking costs O(1) per awake round. Shared by the coroutine strategies
/// and the compiled-strategy interpreter (which also uses until_next to
/// bound bulk range effects).
struct ChargeGate {
  ByzSchedule sched;
  std::size_t next = 0;

  [[nodiscard]] Round pending(Round now);
  /// Rounds from `now` until the next charged window begins; saturated
  /// when no window remains. Requires a preceding pending(now) == 0 call
  /// (the cursor must already sit on the first window at or after now).
  [[nodiscard]] Round until_next(Round now) const;
};

// ---------------------------------------------------------------------------
// Compiled strategies (range-effect IR)
// ---------------------------------------------------------------------------
//
// Every per-round strategy coroutine above a crash is a tiny loop: emit a
// fixed op list each round, draw a move, occasionally switch phase.
// CompiledStrategy captures that loop as data — phases of round-ranges
// with per-round ops — so ONE interpreter coroutine (behind
// make_compiled_byzantine_program) can either act live in a simulated
// round or *replay* a fast-forwarded round by executing the same ops with
// broadcasts suppressed (but counted) and moves applied immediately. The
// interpreter parks via Ctx::end_round_ambient between rounds, so an
// always-broadcasting adversary no longer blocks the engine's O(1)
// fast-forward over honest sleep windows; per-round semantics (message
// contents and order, RNG draw order, move timing) are preserved
// bit-identically because live and replay paths share the op walk.
struct CompiledStrategy {
  /// Payload element: a literal, or one rng.below(4) draw at emission
  /// time (draw order = element order within the op list).
  struct PayloadElem {
    std::int64_t literal = 0;
    bool draw_below4 = false;
  };
  enum class OpKind : std::uint8_t {
    kBroadcast,       ///< broadcast(msg_kind, payload)
    kSpoofBroadcast,  ///< spoof_broadcast(current victim, msg_kind, payload)
    kDrawVictim,      ///< victim = peers[below(|peers|)] (no-op if none)
    kNextSubround,    ///< advance to the next sub-round (live rounds only)
  };
  struct Op {
    OpKind kind = OpKind::kBroadcast;
    std::uint32_t msg_kind = 0;
    std::vector<PayloadElem> payload;
  };
  /// How many rounds a phase lasts when (re-)entered.
  enum class LenRule : std::uint8_t {
    kForever,        ///< never leaves the phase
    kFixed,          ///< base rounds
    kDrawOnce,       ///< base + below(bound) drawn once at program start
    kDrawEachEntry,  ///< base + below(bound) drawn at every phase entry
  };
  /// Move drawn at each round boundary of the phase.
  enum class MoveRule : std::uint8_t {
    kStay,
    kRandomPort,  ///< below(degree); stays (and draws nothing) at degree 0
    kChancePort,  ///< chance(1,2), then kRandomPort on success
  };
  struct Phase {
    LenRule len = LenRule::kForever;
    std::uint64_t base = 0;   ///< fixed length / draw offset
    std::uint64_t bound = 0;  ///< draw bound (0 = no draw)
    bool n_scaled = false;    ///< multiply bound by ctx.n() (fake settler)
    std::vector<Op> ops;      ///< per-round ops in emission order
    MoveRule move = MoveRule::kStay;
    // Derived by compile_strategy():
    /// Draw-free and stationary: a fast-forwarded stretch inside this
    /// phase replays as one range effect (message count += rounds x
    /// messages_per_round) instead of round by round.
    bool bulk_ok = false;
    std::uint64_t messages_per_round = 0;
  };
  std::vector<Phase> phases;
  bool loop = true;      ///< cycle phases forever; false = run once, finish
  bool spoofing = false; ///< requires a strong robot (kSpoofer)
};

/// Range-effect form of `s`; nullopt for kCrash (nothing to compile — the
/// crash program finishes immediately and never wakes the engine).
[[nodiscard]] std::optional<CompiledStrategy> compile_strategy(ByzStrategy s);

/// Build the engine program for a Byzantine robot.
/// `peer_ids` lists all robot IDs (used for spoofing and targeted lies);
/// `seed` derives the robot's private randomness.
[[nodiscard]] sim::ProgramFactory make_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed);

/// Same, but the robot honors `schedule`: it sleeps until schedule.wake
/// first and stays asleep through every later charged window. Throws
/// std::invalid_argument on a malformed schedule (an empty [a, a) window,
/// unsorted/overlapping windows, or a window starting before wake).
[[nodiscard]] sim::ProgramFactory make_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed, ByzSchedule schedule);

/// Compiled variant of make_byzantine_program: same observable behavior
/// bit-for-bit (verdicts, rounds, moves, messages, RNG draws, final
/// position), but executed as range effects through Ctx::end_round_ambient
/// so the engine can fast-forward honest sleep windows the adversary would
/// otherwise keep awake. Falls back to the coroutine program for kCrash.
[[nodiscard]] sim::ProgramFactory make_compiled_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed, ByzSchedule schedule);

}  // namespace bdg::core
