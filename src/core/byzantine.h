#pragma once
// Byzantine behavior library — the adversary strategies the test suite and
// benchmarks pit against the honest protocols. A weak Byzantine robot may
// lie arbitrarily in message *payloads* and deviate from the protocol, but
// its messages always carry its true ID (engine-enforced); a strong one
// additionally forges sender IDs via Ctx::spoof_broadcast.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/rng.h"

namespace bdg::core {

enum class ByzStrategy {
  kCrash,          ///< never communicates, never moves
  kRandomWalker,   ///< wanders, beacons tobeSettled, never settles
  kSquatter,       ///< sits at its start node claiming Settled forever
  kFakeSettler,    ///< claims Settled, relocates periodically, claims again
  kSilentSettler,  ///< claims Settled once, then goes silent (step-4 bait)
  kIntentSpammer,  ///< always flags intent/settle announcements, never stays
  kMapLiar,        ///< in map finding: garbage instructions / presence lies
  kSpoofer,        ///< strong only: forges honest IDs and quorum votes
};

[[nodiscard]] std::string to_string(ByzStrategy s);

/// Inverse of to_string(ByzStrategy); nullopt for unknown names. Used by
/// the sweep checkpoint reader and the CLI mix parser.
[[nodiscard]] std::optional<ByzStrategy> strategy_from_string(
    const std::string& name);

/// All weak-compatible strategies (everything but kSpoofer).
[[nodiscard]] const std::vector<ByzStrategy>& weak_strategies();

/// Build the engine program for a Byzantine robot.
/// `peer_ids` lists all robot IDs (used for spoofing and targeted lies);
/// `seed` derives the robot's private randomness.
[[nodiscard]] sim::ProgramFactory make_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed);

/// Same, but the robot sleeps until `wake_round` first (scenarios use this
/// to skip the charged oracle phases, where nothing can be attacked and
/// staying awake would defeat round fast-forwarding).
[[nodiscard]] sim::ProgramFactory make_byzantine_program(
    ByzStrategy strategy, std::vector<sim::RobotId> peer_ids,
    std::uint64_t seed, std::uint64_t wake_round);

}  // namespace bdg::core
