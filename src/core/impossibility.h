#pragma once
// Theorem 8: with k robots on an n-node graph and f weak Byzantine robots,
// no deterministic algorithm solves (generalized) Byzantine dispersion
// when ceil(k/n) > ceil((k-f)/n).
//
// The proof is a mirror argument: take any algorithm A, run it with f = 0,
// pick a node where ceil(k/n) robots settle; in a second execution make
// those robots honest and let f Byzantine robots replay, step for step,
// the behavior f other robots had in the first execution. Honest robots
// observe identical histories, so the same ceil(k/n) of them co-settle —
// exceeding the ceil((k-f)/n) cap.
//
// demonstrate_impossibility() executes exactly this construction against a
// concrete deterministic algorithm (rank assignment on a ring), so the
// benchmark can exhibit the violation rather than just assert the formula.
#include <cstdint>

#include "core/verifier.h"

namespace bdg::core {

/// The feasibility predicate of Theorem 8.
[[nodiscard]] bool k_dispersion_feasible(std::uint32_t k, std::uint32_t n,
                                         std::uint32_t f);

struct ImpossibilityDemo {
  VerifyResult baseline;     ///< execution 1: f = 0, cap ceil(k/n) — passes
  VerifyResult adversarial;  ///< execution 2: cap ceil((k-f)/n)
  bool violated = false;     ///< true when execution 2 breaks the cap
};

/// Run the two mirrored executions on an n-node ring with k robots, f of
/// which are Byzantine in the second execution. Requires k >= 1, n >= 3,
/// f < k.
[[nodiscard]] ImpossibilityDemo demonstrate_impossibility(std::uint32_t n,
                                                          std::uint32_t k,
                                                          std::uint32_t f);

}  // namespace bdg::core
