#include "core/dispersion_using_map.h"

#include <algorithm>
#include <map>
#include <vector>

#include "core/protocol_msgs.h"
#include "explore/covering_walk.h"

namespace bdg::core {
namespace {

using sim::Ctx;
using sim::RobotId;
using sim::Task;

/// Per-round status payloads, broadcast through the engine's payload
/// arena so the beacon loops stop allocating (the phase-3 hot path: every
/// settled robot beacons every round).
constexpr std::int64_t kSettledPayload[] = {kStateSettled};
constexpr std::int64_t kToBeSettledPayload[] = {kStateToBeSettled};

/// Settled loop: beacon STATUS(Settled) every round until the phase ends.
Task<void> settled_beacon(Ctx ctx, Round remaining) {
  for (Round i = 0; i < remaining; i += 1) {
    ctx.broadcast_pooled(kMsgStatus, kSettledPayload);
    co_await ctx.end_round(std::nullopt);
  }
}

}  // namespace

Round dispersion_phase_rounds(std::uint32_t n) {
  return 6 * Round(n) + 16;
}

Task<DispersionOutcome> run_dispersion_using_map(Ctx ctx,
                                                 DispersionParams params) {
  if (params.phase_rounds == 0)
    params.phase_rounds = dispersion_phase_rounds(ctx.n());
  const RobotId self = ctx.self();

  // A_r: per map node, the settled IDs recorded there; plus the reverse
  // index "where was this ID first recorded" used for blacklisting.
  std::vector<std::set<RobotId>> A(params.map.n());
  std::map<RobotId, NodeId> recorded_at;
  std::set<RobotId> B;  // blacklist B_r

  const auto tour = dfs_tour(params.map, params.map_root);
  std::size_t tour_i = 0;
  NodeId v = params.map_root;
  std::uint64_t used = 0;

  DispersionOutcome out;
  while (used < params.phase_rounds) {
    // ---- one decision round at map node v -------------------------------
    // Sub-round 0: status beacons.
    ctx.broadcast_pooled(kMsgStatus, kToBeSettledPayload);
    co_await ctx.next_subround();  // sub 1: read status

    std::set<RobotId> settled_claims, tbs_claims, heard;
    for (const sim::Msg& m : ctx.inbox()) {
      if (m.kind != kMsgStatus || m.data.size() != 1) continue;
      heard.insert(m.claimed);
      if (m.data[0] == kStateSettled)
        settled_claims.insert(m.claimed);
      else
        tbs_claims.insert(m.claimed);
    }
    // Step 4a: a robot recorded settled elsewhere that is heard here moved;
    // blacklist it. (A settled robot never changes position or state.)
    for (const RobotId id : heard) {
      const auto it = recorded_at.find(id);
      if (it != recorded_at.end() && it->second != v) B.insert(id);
    }
    // Recorded settlers claiming tobeSettled changed state: blacklist.
    for (const RobotId id : tbs_claims)
      if (recorded_at.count(id) != 0) B.insert(id);
    // Step 4b: recorded settlers of v that failed to beacon are Byzantine.
    for (const RobotId id : A[v])
      if (heard.count(id) == 0) B.insert(id);

    // A conflicted beacon (both states) counts as a settled claim only.
    for (const RobotId id : settled_claims) tbs_claims.erase(id);

    // Valid settlers currently visible at v.
    std::set<RobotId> valid_settlers;
    for (const RobotId id : settled_claims)
      if (B.count(id) == 0) valid_settlers.insert(id);

    // Sub-round 1: announce intent (flag = 1) if we might settle here.
    if (valid_settlers.empty()) ctx.broadcast(kMsgIntent);

    // Rank over the *unfiltered* tobeSettled set (identical for every
    // honest observer; filtering by private blacklists could collide two
    // honest decision sub-rounds).
    tbs_claims.insert(self);
    const std::uint32_t rank = static_cast<std::uint32_t>(
        std::distance(tbs_claims.begin(), tbs_claims.find(self)));

    // Collect SETTLED announcements from smaller ranks while waiting for
    // sub-round 3 + rank. (We are at sub-round 1; announcements made in
    // sub-round s are readable from s+1 on.)
    std::set<RobotId> announced;
    while (ctx.subround() < 3 + rank) {
      co_await ctx.next_subround();
      for (const sim::Msg& m : ctx.inbox())
        if (m.kind == kMsgSettled) announced.insert(m.claimed);
    }

    // Decision: settle unless a non-blacklisted settler is visible.
    std::set<RobotId> visible = valid_settlers;
    for (const RobotId id : announced)
      if (B.count(id) == 0 && id != self) visible.insert(id);

    if (visible.empty()) {
      ctx.broadcast(kMsgSettled);
      co_await ctx.end_round(std::nullopt);
      ++used;
      out.settled = true;
      out.settled_map_node = v;
      out.settle_round = used;
      out.blacklisted = static_cast<std::uint32_t>(B.size());
      co_await settled_beacon(ctx, params.phase_rounds - used);
      co_return out;
    }

    // Record the settlers that justified skipping (the paper's A_r[v]).
    for (const RobotId id : visible) {
      A[v].insert(id);
      recorded_at.try_emplace(id, v);
    }
    ++out.nodes_skipped;

    // Move along the Euler tour; wrap defensively (Lemma 4 makes one tour
    // sufficient, the wrap only matters under adversarial surprises).
    std::optional<Port> mv;
    if (!tour.empty()) {
      const TourStep step = tour[tour_i];
      tour_i = (tour_i + 1) % tour.size();
      mv = step.port;
      v = step.node;
    }
    co_await ctx.end_round(mv);
    ++used;
  }

  out.blacklisted = static_cast<std::uint32_t>(B.size());
  co_return out;
}

}  // namespace bdg::core
