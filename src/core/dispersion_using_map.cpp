#include "core/dispersion_using_map.h"

#include <algorithm>
#include <vector>

#include "core/protocol_msgs.h"
#include "explore/covering_walk.h"
#include "util/flat_hash.h"
#include "util/smallvec.h"

namespace bdg::core {
namespace {

using sim::Ctx;
using sim::RobotId;
using sim::Task;

/// Per-round status payloads. Built once per run as pooled shared blocks:
/// the phase-3 hot path (every settled robot beacons every round) then
/// broadcasts at zero copies — each send is a refcount bump on one block.
constexpr std::int64_t kSettledPayload[] = {kStateSettled};
constexpr std::int64_t kToBeSettledPayload[] = {kStateToBeSettled};

/// Sorted-unique inline id set: the per-round claim sets are tiny (co-
/// located robots), so sort+dedup on an inline buffer replaces std::set.
using IdVec = bdg::util::SmallVec<RobotId, 16>;

void sort_unique(IdVec& v) {
  std::sort(v.begin(), v.end());
  const auto it = std::unique(v.begin(), v.end());
  while (v.end() != it) v.pop_back();
}

bool contains(const IdVec& v, RobotId id) {
  return std::binary_search(v.begin(), v.end(), id);
}

/// Settled loop: beacon STATUS(Settled) every round until the phase ends.
Task<void> settled_beacon(Ctx ctx, Round remaining) {
  const util::PayloadRef beacon = ctx.make_payload(kSettledPayload);
  for (Round i = 0; i < remaining; i += 1) {
    ctx.broadcast_shared(kMsgStatus, beacon);
    co_await ctx.end_round(std::nullopt);
  }
}

}  // namespace

Round dispersion_phase_rounds(std::uint32_t n) {
  return 6 * Round(n) + 16;
}

Task<DispersionOutcome> run_dispersion_using_map(Ctx ctx,
                                                 DispersionParams params) {
  if (params.phase_rounds == 0)
    params.phase_rounds = dispersion_phase_rounds(ctx.n());
  const RobotId self = ctx.self();

  // A_r: per map node, the settled IDs recorded there; plus the reverse
  // index "where was this ID first recorded" used for blacklisting. Flat
  // open-addressing tables: only insert/contains/size are consumed, never
  // an ordered walk.
  std::vector<util::FlatSet<RobotId>> A(params.map.n());
  util::FlatMap<RobotId, NodeId> recorded_at;
  util::FlatSet<RobotId> B;  // blacklist B_r

  const auto tour = dfs_tour(params.map, params.map_root);
  std::size_t tour_i = 0;
  NodeId v = params.map_root;
  std::uint64_t used = 0;

  // Round-scratch id sets; coroutine-frame locals, so capacity persists
  // across rounds and the decision loop stops allocating after warmup.
  IdVec settled_claims, tbs_claims, heard, valid_settlers, announced, visible;
  const util::PayloadRef tbs_beacon = ctx.make_payload(kToBeSettledPayload);
  const util::PayloadRef intent_beacon = ctx.make_payload({});

  DispersionOutcome out;
  while (used < params.phase_rounds) {
    // ---- one decision round at map node v -------------------------------
    // Sub-round 0: status beacons.
    ctx.broadcast_shared(kMsgStatus, tbs_beacon);
    co_await ctx.next_subround();  // sub 1: read status

    settled_claims.clear();
    tbs_claims.clear();
    heard.clear();
    for (const sim::Msg& m : ctx.inbox()) {
      if (m.kind != kMsgStatus || m.data.size() != 1) continue;
      heard.push_back(m.claimed);
      if (m.data[0] == kStateSettled)
        settled_claims.push_back(m.claimed);
      else
        tbs_claims.push_back(m.claimed);
    }
    sort_unique(heard);
    sort_unique(settled_claims);
    sort_unique(tbs_claims);
    // Step 4a: a robot recorded settled elsewhere that is heard here moved;
    // blacklist it. (A settled robot never changes position or state.)
    for (const RobotId id : heard) {
      const NodeId* at = recorded_at.find(id);
      if (at != nullptr && *at != v) B.insert(id);
    }
    // Recorded settlers claiming tobeSettled changed state: blacklist.
    for (const RobotId id : tbs_claims)
      if (recorded_at.contains(id)) B.insert(id);
    // Step 4b: recorded settlers of v that failed to beacon are Byzantine.
    // Visit order cannot leak: B is only ever queried via contains(). An
    // ordered_keys() snapshot here would allocate per round and trip the
    // PR 9 zero-alloc gate (baselines/hotpaths_alloc.csv).
    // detlint: allow(unordered-iter) order-insensitive fold, see above
    A[v].for_each([&](const RobotId id) {
      if (!contains(heard, id)) B.insert(id);
    });

    // A conflicted beacon (both states) counts as a settled claim only.
    for (std::size_t i = 0; i < tbs_claims.size();) {
      if (contains(settled_claims, tbs_claims[i]))
        tbs_claims.erase(tbs_claims.begin() + i);
      else
        ++i;
    }

    // Valid settlers currently visible at v.
    valid_settlers.clear();
    for (const RobotId id : settled_claims)
      if (!B.contains(id)) valid_settlers.push_back(id);

    // Sub-round 1: announce intent (flag = 1) if we might settle here.
    if (valid_settlers.empty()) ctx.broadcast_shared(kMsgIntent, intent_beacon);

    // Rank over the *unfiltered* tobeSettled set (identical for every
    // honest observer; filtering by private blacklists could collide two
    // honest decision sub-rounds).
    if (!contains(tbs_claims, self))
      tbs_claims.insert(
          std::lower_bound(tbs_claims.begin(), tbs_claims.end(), self), self);
    const std::uint32_t rank = static_cast<std::uint32_t>(std::distance(
        tbs_claims.begin(),
        std::lower_bound(tbs_claims.begin(), tbs_claims.end(), self)));

    // Collect SETTLED announcements from smaller ranks while waiting for
    // sub-round 3 + rank. (We are at sub-round 1; announcements made in
    // sub-round s are readable from s+1 on.)
    announced.clear();
    while (ctx.subround() < 3 + rank) {
      co_await ctx.next_subround();
      for (const sim::Msg& m : ctx.inbox())
        if (m.kind == kMsgSettled) announced.push_back(m.claimed);
    }
    sort_unique(announced);

    // Decision: settle unless a non-blacklisted settler is visible.
    visible.clear();
    visible.assign(valid_settlers.begin(), valid_settlers.end());
    for (const RobotId id : announced)
      if (!B.contains(id) && id != self) visible.push_back(id);
    sort_unique(visible);

    if (visible.empty()) {
      ctx.broadcast(kMsgSettled);
      co_await ctx.end_round(std::nullopt);
      ++used;
      out.settled = true;
      out.settled_map_node = v;
      out.settle_round = used;
      out.blacklisted = static_cast<std::uint32_t>(B.size());
      co_await settled_beacon(ctx, params.phase_rounds - used);
      co_return out;
    }

    // Record the settlers that justified skipping (the paper's A_r[v]).
    for (const RobotId id : visible) {
      A[v].insert(id);
      const auto [at, inserted] = recorded_at.try_emplace(id);
      if (inserted) at = v;  // keep the FIRST node the id was recorded at
    }
    ++out.nodes_skipped;

    // Move along the Euler tour; wrap defensively (Lemma 4 makes one tour
    // sufficient, the wrap only matters under adversarial surprises).
    std::optional<Port> mv;
    if (!tour.empty()) {
      const TourStep step = tour[tour_i];
      tour_i = (tour_i + 1) % tour.size();
      mv = step.port;
      v = step.node;
    }
    co_await ctx.end_round(mv);
    ++used;
  }

  out.blacklisted = static_cast<std::uint32_t>(B.size());
  co_return out;
}

}  // namespace bdg::core
