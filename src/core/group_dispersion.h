#pragma once
// Theorem 4 (three groups, gathered, f <= floor(n/3)-1 weak, O(n^3)) and
// Theorem 5 (two groups after Hirose et al. [27] gathering, f = O(sqrt n)
// weak, O((f + |Lambda|) X(n))).
//
// Both replace the O(n) pairings of the tournament by O(1) group runs of
// the map-finding subroutine, with quorum-believed instructions:
//  * Theorem 4: groups A, B, C by sorted ID; three runs (A vs B u C,
//    B vs A u C, C vs B u A); the token side believes >= floor(k/6)+1
//    agent votes, the agent side believes >= floor(k/3)+1 token votes; at
//    most one group can be corrupted beyond its quorum, so at least two of
//    the three maps are correct and majority voting fixes the result.
//  * Theorem 5: two halves, one run, simple-majority quorums on each side
//    (both halves have honest majorities when f = O(sqrt n)).
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Theorem 4 plan; robots must start gathered at node 0.
[[nodiscard]] AlgorithmPlan plan_three_group_dispersion(
    const Graph& g, std::vector<sim::RobotId> ids,
    const gather::CostModel& cost);

/// The reusable Phases 1+2 of Theorem 4 (three group map-finding runs with
/// the paper's quorums, majority over the three maps, then
/// Dispersion-Using-Map). Precondition: the robot is co-located with every
/// other live participant (anywhere — the rally node becomes map node 0).
/// Consumes exactly 3*t2 + phase_rounds rounds. Also used by the
/// crash-fault extension after its real (non-oracle) gathering.
[[nodiscard]] sim::Task<bool> run_three_group_phase(
    sim::Ctx ctx, std::vector<sim::RobotId> ids, std::uint32_t n, Round t2,
    Round phase_rounds);

/// Theorem 5 plan; arbitrary start, gathering charged per [27].
[[nodiscard]] AlgorithmPlan plan_sqrt_dispersion(const Graph& g,
                                                 std::vector<sim::RobotId> ids,
                                                 std::uint32_t f,
                                                 const gather::CostModel& cost);

}  // namespace bdg::core
