#pragma once
// Theorem 1: Byzantine dispersion tolerating up to n-1 weak Byzantine
// robots on graphs isomorphic to their quotient graph, from any starting
// configuration, in polynomial rounds.
//
// Phase 1 (Find-Map): every robot independently constructs the quotient
// graph of G (Czyzowicz et al. [16]); no Byzantine robot can interfere
// because the procedure is non-interactive. We compute Q_G exactly (view
// refinement) and charge the imported polynomial round bound; the robot
// receives Q_G rooted at its own view class (DESIGN.md substitution 3).
//
// Phase 2: Dispersion-Using-Map (Section 2.2).
#include "core/algorithm_common.h"
#include "gather/gathering.h"

namespace bdg::core {

/// Plans the Theorem 1 algorithm for all robots on `g`. The plan is valid
/// for dispersion only when g has a trivial quotient (all views distinct);
/// the caller can check with has_trivial_quotient(g). `starts[i]` is only
/// used to root robot programs; honest() takes (id, start).
[[nodiscard]] AlgorithmPlan plan_quotient_dispersion(
    const Graph& g, const gather::CostModel& cost);

}  // namespace bdg::core
