#include "core/tournament_dispersion.h"

#include <algorithm>

#include "core/dispersion_using_map.h"
#include "explore/engine_map.h"

namespace bdg::core {
namespace {

using explore::MapFindConfig;
using explore::MapFindOutcome;

struct TournamentConfig {
  std::vector<sim::RobotId> ids;  ///< all participants, sorted
  std::uint32_t n = 0;
  Round t2 = 0;                  ///< one map-finding window
  Round gather_rounds = 0;       ///< 0 when initially gathered
  std::vector<Port> rally_path;  ///< robot's own path to the rally node
  Round phase_rounds = 0;        ///< dispersion phase length
};

sim::Proc tournament_robot(sim::Ctx ctx, TournamentConfig cfg) {
  // Phase 1: gathering (oracle-charged; see DESIGN.md substitution 2).
  if (cfg.gather_rounds > 0) {
    gather::GatheringSpec spec{cfg.rally_path, cfg.gather_rounds};
    co_await gather::run_oracle_gathering(ctx, std::move(spec));
  }

  // Phase 2: all-pairs map finding. Every window is exactly 2*t2 rounds
  // for every robot, so the fleet stays synchronized whatever happens.
  const auto windows = round_robin_schedule(cfg.ids);
  std::vector<CanonicalCode> votes;
  for (const PairingWindow& win : windows) {
    sim::RobotId partner = 0;
    for (const auto& [a, b] : win) {
      if (a == ctx.self()) partner = b;
      if (b == ctx.self()) partner = a;
    }
    if (partner == 0) {
      co_await ctx.sleep_rounds(2 * cfg.t2);
      continue;
    }
    MapFindConfig mine, theirs;
    mine.agents = {ctx.self()};
    mine.tokens = {partner};
    mine.round_budget = cfg.t2;
    mine.n = cfg.n;
    theirs.agents = {partner};
    theirs.tokens = {ctx.self()};
    theirs.round_budget = cfg.t2;
    theirs.n = cfg.n;
    // The smaller ID explores first; then the roles swap. Only the maps a
    // robot built ITSELF as the agent enter its majority vote — it never
    // trusts a partner's claims.
    if (ctx.self() < partner) {
      const MapFindOutcome out = co_await explore::run_map_agent(ctx, mine);
      if (out.code.has_value()) votes.push_back(*out.code);
      (void)co_await explore::run_map_token(ctx, theirs);
    } else {
      (void)co_await explore::run_map_token(ctx, theirs);
      const MapFindOutcome out = co_await explore::run_map_agent(ctx, mine);
      if (out.code.has_value()) votes.push_back(*out.code);
    }
  }

  const auto code = majority_code(votes);
  const auto map = code.has_value() ? decode_map(*code, cfg.n) : std::nullopt;
  if (!map.has_value()) co_return;  // tolerance exceeded; verifier will flag

  // Phase 3: disperse from the rally node (map node 0).
  DispersionParams params;
  params.map = *map;
  params.map_root = 0;
  params.phase_rounds = cfg.phase_rounds;
  (void)co_await run_dispersion_using_map(ctx, std::move(params));
}

}  // namespace

AlgorithmPlan plan_tournament_dispersion(const Graph& g,
                                         std::vector<sim::RobotId> ids,
                                         bool gathered, std::uint32_t f,
                                         const gather::CostModel& cost) {
  std::sort(ids.begin(), ids.end());
  const auto n = static_cast<std::uint32_t>(g.n());
  const Round t2 = explore::default_map_window(n);
  const Round phase = dispersion_phase_rounds(n);
  const std::uint32_t lambda =
      gather::CostModel::id_bits(ids.empty() ? 1 : ids.back());
  const Round gather_rounds =
      gathered ? Round(0)
               : std::max<Round>(
                     cost.rounds(gather::GatherKind::kWeakDPP, n, f, lambda),
                     2 * g.n());  // at least enough to physically walk
  const std::size_t k_padded = ids.size() + (ids.size() % 2);
  const Round pairing_rounds =
      Round(k_padded == 0 ? 0 : (k_padded - 1)) * 2 * t2;

  AlgorithmPlan plan;
  plan.total_rounds = gather_rounds + pairing_rounds + phase + 8;
  plan.byz_wake_round = gather_rounds;
  plan.honest = [=, g = &g](sim::RobotId, NodeId start) -> sim::ProgramFactory {
    TournamentConfig cfg;
    cfg.ids = ids;
    cfg.n = n;
    cfg.t2 = t2;
    cfg.gather_rounds = gather_rounds;
    cfg.phase_rounds = phase;
    if (gather_rounds > 0) {
      auto path = g->shortest_path_ports(start, 0);
      cfg.rally_path = path.value_or(std::vector<Port>{});
    }
    return [cfg = std::move(cfg)](sim::Ctx c) {
      return tournament_robot(c, cfg);
    };
  };
  return plan;
}

}  // namespace bdg::core
